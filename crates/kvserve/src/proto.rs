//! Wire protocol: length-prefixed binary frames.
//!
//! Every frame is a little-endian `u32` payload length followed by the
//! payload. Requests are fixed 26 bytes:
//!
//! ```text
//! [ver: u8 = 1][op: u8][client_id: u64 LE][op_seq: u64 LE][arg: u64 LE]
//! ```
//!
//! Responses are fixed 18 bytes:
//!
//! ```text
//! [ver: u8 = 1][status: u8][op_seq: u64 LE][value: u64 LE]
//! ```
//!
//! `value` carries the engine's encoded result word verbatim
//! ([`isb::engine`]): `RES_TRUE`/`RES_FALSE` for map operations, `RES_UNIT`
//! for enqueue, `RES_EMPTY` or `RES_VAL_BASE + v` for dequeue. Replaying a
//! stored response therefore reproduces the original acknowledgement
//! byte-for-byte.
//!
//! Robustness contract: every malformed input a peer can send — truncated
//! frames, oversized or zero length prefixes, unknown opcodes, garbage
//! bytes — maps to a typed [`Status`] answered on the wire (when a length
//! prefix arrived at all) or a clean connection close (torn prefix). The
//! parser never panics and never reads past validated bounds.

use std::io::{self, Read};

/// Protocol version stamped in every frame.
pub const VERSION: u8 = 1;
/// Upper bound on accepted payload lengths. Requests are 26 bytes; anything
/// beyond this is garbage and answered [`Status::Oversized`].
pub const MAX_FRAME: usize = 1024;
/// Request payload size.
pub const REQ_BYTES: usize = 26;
/// Response payload size.
pub const RESP_BYTES: usize = 18;

/// Operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// Insert `arg` as a key into the hash map → `RES_TRUE`/`RES_FALSE`.
    Put = 1,
    /// Delete key `arg` from the hash map → `RES_TRUE`/`RES_FALSE`.
    Del = 2,
    /// Membership query for key `arg` → `RES_TRUE`/`RES_FALSE`.
    Get = 3,
    /// Enqueue value `arg` → `RES_UNIT`.
    Enq = 4,
    /// Dequeue (`arg` ignored) → `RES_EMPTY` or `RES_VAL_BASE + v`.
    Deq = 5,
}

impl OpCode {
    /// Decodes a wire opcode.
    pub fn from_u8(b: u8) -> Option<OpCode> {
        Some(match b {
            1 => OpCode::Put,
            2 => OpCode::Del,
            3 => OpCode::Get,
            4 => OpCode::Enq,
            5 => OpCode::Deq,
            _ => return None,
        })
    }
}

/// A parsed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The operation.
    pub op: OpCode,
    /// Client identity (nonzero; owns one response-table slot).
    pub client_id: u64,
    /// Per-client sequence number; must be `last_acked` (retry) or
    /// `last_acked + 1` (fresh).
    pub op_seq: u64,
    /// Key (map ops) or value (enqueue); ignored by dequeue.
    pub arg: u64,
}

/// Typed response status. Everything except [`Status::Ok`] is a protocol
/// error the server answers instead of panicking or closing silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Success; `value` is the encoded result.
    Ok = 0,
    /// Unknown protocol version byte (fatal: the stream is untrusted).
    BadVersion = 1,
    /// Payload length is zero or not a request's size (fatal).
    BadLength = 2,
    /// Unrecognized opcode (non-fatal; the frame was well-formed).
    UnknownOp = 3,
    /// `client_id` 0 is reserved (non-fatal).
    BadClientId = 4,
    /// `op_seq` is below the client's ack watermark: that response was
    /// already delivered and reclaimed (non-fatal).
    StaleSeq = 5,
    /// `op_seq` skips ahead of the watermark by more than one (non-fatal).
    SeqGap = 6,
    /// The response table has no free client slots (non-fatal).
    TableFull = 7,
    /// The client's previous request died with a server process whose
    /// recovery has not resolved it yet; retry shortly (non-fatal).
    Recovering = 8,
    /// Length prefix exceeds [`MAX_FRAME`] (fatal: framing lost).
    Oversized = 9,
}

impl Status {
    /// Decodes a wire status byte.
    pub fn from_u8(b: u8) -> Option<Status> {
        Some(match b {
            0 => Status::Ok,
            1 => Status::BadVersion,
            2 => Status::BadLength,
            3 => Status::UnknownOp,
            4 => Status::BadClientId,
            5 => Status::StaleSeq,
            6 => Status::SeqGap,
            7 => Status::TableFull,
            8 => Status::Recovering,
            9 => Status::Oversized,
            _ => return None,
        })
    }

    /// `true` when the error leaves the byte stream unsynchronized — the
    /// server answers it and then closes the connection.
    pub fn is_fatal(self) -> bool {
        matches!(self, Status::BadVersion | Status::BadLength | Status::Oversized)
    }
}

/// A response frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Outcome.
    pub status: Status,
    /// Echo of the request's sequence number (0 when no request parsed).
    pub op_seq: u64,
    /// Encoded result word (0 unless [`Status::Ok`]).
    pub value: u64,
}

impl Response {
    /// An error response carrying no result.
    pub fn err(status: Status, op_seq: u64) -> Response {
        Response { status, op_seq, value: 0 }
    }
}

/// Encodes a request as a complete frame (prefix + payload).
pub fn encode_request(req: &Request) -> [u8; 4 + REQ_BYTES] {
    let mut f = [0u8; 4 + REQ_BYTES];
    f[..4].copy_from_slice(&(REQ_BYTES as u32).to_le_bytes());
    f[4] = VERSION;
    f[5] = req.op as u8;
    f[6..14].copy_from_slice(&req.client_id.to_le_bytes());
    f[14..22].copy_from_slice(&req.op_seq.to_le_bytes());
    f[22..30].copy_from_slice(&req.arg.to_le_bytes());
    f
}

/// Encodes a response as a complete frame (prefix + payload).
pub fn encode_response(resp: &Response) -> [u8; 4 + RESP_BYTES] {
    let mut f = [0u8; 4 + RESP_BYTES];
    f[..4].copy_from_slice(&(RESP_BYTES as u32).to_le_bytes());
    f[4] = VERSION;
    f[5] = resp.status as u8;
    f[6..14].copy_from_slice(&resp.op_seq.to_le_bytes());
    f[14..22].copy_from_slice(&resp.value.to_le_bytes());
    f
}

fn u64_at(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes"))
}

/// Parses a request payload. Every rejection is a typed [`Status`].
pub fn parse_request(payload: &[u8]) -> Result<Request, Status> {
    if payload.len() != REQ_BYTES {
        return Err(Status::BadLength);
    }
    if payload[0] != VERSION {
        return Err(Status::BadVersion);
    }
    let Some(op) = OpCode::from_u8(payload[1]) else {
        return Err(Status::UnknownOp);
    };
    let client_id = u64_at(payload, 2);
    if client_id == 0 {
        return Err(Status::BadClientId);
    }
    Ok(Request { op, client_id, op_seq: u64_at(payload, 10), arg: u64_at(payload, 18) })
}

/// Parses a response payload (client side).
pub fn parse_response(payload: &[u8]) -> Result<Response, Status> {
    if payload.len() != RESP_BYTES {
        return Err(Status::BadLength);
    }
    if payload[0] != VERSION {
        return Err(Status::BadVersion);
    }
    let Some(status) = Status::from_u8(payload[1]) else {
        return Err(Status::BadVersion);
    };
    Ok(Response { status, op_seq: u64_at(payload, 2), value: u64_at(payload, 10) })
}

/// What [`read_frame`] produced.
#[derive(Debug)]
pub enum Frame {
    /// A complete payload of in-bounds length (content not yet validated).
    Payload(Vec<u8>),
    /// The length prefix itself was unusable; the payload was **not** read
    /// (it cannot be trusted). Answer the status and close.
    Bad(Status),
}

/// Reads one frame. `Ok(None)` on clean EOF at a frame boundary or when
/// `stop()` turns true while waiting; `Err` on torn prefixes/payloads and
/// transport errors. Timeout-typed I/O errors (`WouldBlock`/`TimedOut`) are
/// retried internally so callers can use read timeouts as a stop poll.
pub fn read_frame(r: &mut impl Read, stop: &dyn Fn() -> bool) -> io::Result<Option<Frame>> {
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None) // clean close between frames
                } else {
                    Err(io::Error::new(io::ErrorKind::UnexpectedEof, "torn length prefix"))
                };
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if stop() {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len == 0 {
        return Ok(Some(Frame::Bad(Status::BadLength)));
    }
    if len > MAX_FRAME {
        return Ok(Some(Frame::Bad(Status::Oversized)));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "torn payload"));
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if stop() {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Some(Frame::Payload(payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request { op: OpCode::Put, client_id: 7, op_seq: 3, arg: 99 };
        let f = encode_request(&req);
        assert_eq!(u32::from_le_bytes(f[..4].try_into().unwrap()) as usize, REQ_BYTES);
        assert_eq!(parse_request(&f[4..]), Ok(req));
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response { status: Status::Ok, op_seq: 9, value: 1234 };
        let f = encode_response(&resp);
        assert_eq!(parse_response(&f[4..]), Ok(resp));
    }

    #[test]
    fn rejects_are_typed() {
        assert_eq!(parse_request(&[]), Err(Status::BadLength));
        assert_eq!(parse_request(&[0u8; REQ_BYTES + 1]), Err(Status::BadLength));
        let mut p = encode_request(&Request { op: OpCode::Get, client_id: 1, op_seq: 1, arg: 0 });
        p[4] = 99; // version
        assert_eq!(parse_request(&p[4..]), Err(Status::BadVersion));
        let mut p = encode_request(&Request { op: OpCode::Get, client_id: 1, op_seq: 1, arg: 0 });
        p[5] = 200; // opcode
        assert_eq!(parse_request(&p[4..]), Err(Status::UnknownOp));
        let p = encode_request(&Request { op: OpCode::Get, client_id: 0, op_seq: 1, arg: 0 });
        assert_eq!(parse_request(&p[4..]), Err(Status::BadClientId));
    }

    #[test]
    fn read_frame_flags_bad_prefixes() {
        let stop = || false;
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty, &stop), Ok(None)));
        let mut torn: &[u8] = &[1, 0];
        assert!(read_frame(&mut torn, &stop).is_err());
        let mut zero: &[u8] = &0u32.to_le_bytes()[..];
        assert!(matches!(read_frame(&mut zero, &stop), Ok(Some(Frame::Bad(Status::BadLength)))));
        let mut big: &[u8] = &(MAX_FRAME as u32 + 1).to_le_bytes()[..];
        assert!(matches!(read_frame(&mut big, &stop), Ok(Some(Frame::Bad(Status::Oversized)))));
        let mut torn_payload: Vec<u8> = 10u32.to_le_bytes().to_vec();
        torn_payload.extend_from_slice(&[1, 2, 3]);
        assert!(read_frame(&mut torn_payload.as_slice(), &stop).is_err());
    }
}
