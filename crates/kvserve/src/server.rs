//! The KV server: per-shard worker threads over a recoverable [`Store`].
//!
//! # Exactly-once request path
//!
//! Connections are accepted on a listener thread; each connection gets a
//! reader thread that parses frames and routes requests to one of N worker
//! threads by `hash(client_id) % N` — so all requests of one client
//! serialize through one worker, which is what makes the dedup check and
//! the apply a single-threaded sequence per client. Each worker owns a
//! registered process slot (tid): its in-flight request is tracked by the
//! paper's per-process recovery slot *and* by the durable op-ID intent
//! record in the [`ResponseTable`].
//!
//! Worker order per request (see `isb::resptable` for the crash-window
//! argument): foreign-intent (failover) check → dedup check →
//! `note_invocation` (`CP_q := 0`, persisted) → durable intent record →
//! structure op → durable response finalize → intent clear → socket
//! acknowledgement. The foreign-intent check precedes even the dedup
//! read: a dead peer's healer writes the same client slot, and only the
//! observed absence of its intent proves the slot is quiescent.
//!
//! # Restart
//!
//! [`Server::start`] opens the store with the standard attach pipeline
//! (replay → scrub → census → sweep); `Store` resolves every in-flight
//! op-ID to Completed-with-response or Restart against the replay decisions
//! before the constructor returns, and only then does the server bind and
//! accept. In shared mode a healer thread additionally runs
//! [`Store::heal_peers`], so a SIGKILLed peer server's in-flight requests
//! resolve online while this process keeps serving; until that happens,
//! requests from the dead peer's clients are answered
//! [`Status::Recovering`] rather than risking a double apply.
//!
//! # Crash injection
//!
//! For the SIGKILL conformance suite the server self-kills (real `SIGKILL`
//! via [`nvm::die_sigkill`]) at a seeded request-path stage, configured by
//! environment: `ISB_KV_KILL_POINT` ∈ `accept|parse|invoke|preack|postack`
//! and `ISB_KV_KILL_AFTER=<n>` (the n-th hit of that point dies).

use crate::proto::{
    encode_response, parse_request, read_frame, Frame, OpCode, Request, Response, Status,
};
use isb::engine::{res_val, RES_FALSE, RES_TRUE, RES_UNIT};
use isb::hashmap::RHashMap;
use isb::queue::RQueue;
use isb::recovery::AttachError;
use isb::resptable::ResponseTable;
use isb::store::Store;
use nvm::mapped::{MappedHeap, MappedNvm};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Structure tuning arm the service opens its structures with.
pub const ARM: u8 = isb::arm::COALESCED;
/// Catalog name of the service's hash map.
pub const MAP_NAME: &str = "kv";
/// Catalog name of the service's queue.
pub const QUEUE_NAME: &str = "jobs";

/// Server configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Heap file path.
    pub path: PathBuf,
    /// Heap size on creation.
    pub heap_bytes: usize,
    /// Open the heap in live multi-process shared mode.
    pub shared: bool,
    /// Hash-map shard count (power of two).
    pub shards: usize,
    /// Worker threads (clamped: shared mode has a 8-tid participant band —
    /// 1 attach/healer tid + at most 7 workers).
    pub workers: usize,
    /// Bind address (port 0 picks a free port).
    pub addr: SocketAddr,
}

impl Config {
    /// A loopback config with small defaults.
    pub fn new(path: impl Into<PathBuf>) -> Config {
        Config {
            path: path.into(),
            heap_bytes: 32 << 20,
            shared: false,
            shards: 8,
            workers: 2,
            addr: "127.0.0.1:0".parse().expect("loopback"),
        }
    }
}

/// Typed server failures.
#[derive(Debug)]
pub enum ServeError {
    /// Store attach failed.
    Attach(AttachError),
    /// Socket-level failure.
    Io(io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Attach(e) => write!(f, "attach: {e}"),
            ServeError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<AttachError> for ServeError {
    fn from(e: AttachError) -> Self {
        ServeError::Attach(e)
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Seeded crash-injection stage (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// After accepting a connection.
    Accept,
    /// After parsing a request frame, before dispatch.
    Parse,
    /// After the durable intent record, before the structure op.
    Invoke,
    /// After the durable response finalize, before the socket write.
    PreAck,
    /// After the acknowledgement reached the socket.
    PostAck,
}

struct KillSpec {
    point: KillPoint,
    after: AtomicU64,
}

impl KillSpec {
    fn from_env() -> Option<KillSpec> {
        let point = match std::env::var("ISB_KV_KILL_POINT").ok()?.as_str() {
            "accept" => KillPoint::Accept,
            "parse" => KillPoint::Parse,
            "invoke" => KillPoint::Invoke,
            "preack" => KillPoint::PreAck,
            "postack" => KillPoint::PostAck,
            _ => return None,
        };
        let after = std::env::var("ISB_KV_KILL_AFTER")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(1)
            .max(1);
        Some(KillSpec { point, after: AtomicU64::new(after) })
    }

    fn hit(&self, p: KillPoint) {
        if self.point == p && self.after.fetch_sub(1, Ordering::Relaxed) == 1 {
            nvm::die_sigkill();
        }
    }
}

fn maybe_kill(spec: &Option<Arc<KillSpec>>, p: KillPoint) {
    if let Some(s) = spec {
        s.hit(p);
    }
}

struct Job {
    req: Request,
    reply: mpsc::Sender<Response>,
}

/// Per-worker context (deliberately *not* the acceptor's shared state: the
/// job senders must die with the acceptor side so worker receivers close).
struct WorkerCtx {
    map: Arc<RHashMap<MappedNvm, ARM>>,
    queue: Arc<RQueue<MappedNvm, ARM>>,
    resptab: ResponseTable,
    own_band: Range<usize>,
    kill: Option<Arc<KillSpec>>,
}

/// Connection-side shared state.
struct Shared {
    txs: Vec<mpsc::Sender<Job>>,
    stop: Arc<AtomicBool>,
    kill: Option<Arc<KillSpec>>,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`Server::stop`] for a graceful shutdown (tests that SIGKILL the process
/// never get that far, by design).
pub struct Server {
    addr: SocketAddr,
    store: Arc<Store>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    healer: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl Server {
    /// Opens (recovering) the store, binds, and starts serving. The calling
    /// thread's tid is (re)bound: tid 0 for an exclusive heap, the
    /// participant band's first tid in shared mode — that tid doubles as
    /// the healer's, so don't run structure ops on the calling thread while
    /// the server lives.
    pub fn start(cfg: Config) -> Result<Server, ServeError> {
        let kill = KillSpec::from_env().map(Arc::new);
        nvm::tid::set_tid(0);
        let store = Arc::new(if cfg.shared {
            Store::open_shared_sized(&cfg.path, cfg.heap_bytes)?
        } else {
            Store::open_sized(&cfg.path, cfg.heap_bytes)?
        });
        // Worker tids: an exclusive heap may use any tids; a shared
        // participant is confined to its 8-tid band (first tid = attach +
        // healer).
        let (base_tid, max_workers) = if cfg.shared {
            let slot = store.heap().my_participant().expect("registered participant");
            let band = MappedHeap::tid_band(slot);
            nvm::tid::set_tid(band.start);
            (band.start, band.len() - 1)
        } else {
            (0, nvm::MAX_PROCS - 1)
        };
        let n_workers = cfg.workers.clamp(1, max_workers);
        let own_band =
            if cfg.shared { base_tid..base_tid + 1 + max_workers } else { 0..n_workers + 1 };
        let map = store.hashmap::<ARM>(MAP_NAME, cfg.shards)?;
        let queue = store.queue::<ARM>(QUEUE_NAME)?;
        let resptab = store.response_table();

        let stop = Arc::new(AtomicBool::new(false));
        let mut txs = Vec::new();
        let mut workers = Vec::new();
        for w in 0..n_workers {
            let (tx, rx) = mpsc::channel::<Job>();
            txs.push(tx);
            let ctx = WorkerCtx {
                map: Arc::clone(&map),
                queue: Arc::clone(&queue),
                resptab: resptab.clone(),
                own_band: own_band.clone(),
                kill: kill.clone(),
            };
            let tid = base_tid + 1 + w;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("kv-worker-{w}"))
                    .spawn(move || worker_loop(ctx, tid, rx))
                    .expect("spawn worker"),
            );
        }

        let listener = TcpListener::bind(cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared =
            Arc::new(Shared { txs, stop: Arc::clone(&stop), kill, conns: Mutex::new(Vec::new()) });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("kv-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawn acceptor")
        };
        let healer = if cfg.shared {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let tid = base_tid;
            Some(
                std::thread::Builder::new()
                    .name("kv-healer".into())
                    .spawn(move || {
                        nvm::tid::set_tid(tid);
                        while !stop.load(Ordering::Acquire) {
                            // Dead peers resolve under a recovery lease;
                            // losing the lease race to another survivor is
                            // fine (they finish the job).
                            let _ = store.heal_peers();
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    })
                    .expect("spawn healer"),
            )
        } else {
            None
        };
        Ok(Server { addr, store, stop, acceptor: Some(acceptor), healer, workers, shared })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying store (e.g. for snapshots in tests).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Graceful shutdown: drain connections, close workers, join all.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(h) = self.healer.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock().unwrap());
        for c in conns {
            let _ = c.join();
        }
        // Dropping the last `Shared` owner drops the job senders, which
        // closes the worker receivers.
        let Server { workers, shared, .. } = self;
        drop(shared);
        for w in workers {
            let _ = w.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                maybe_kill(&shared.kill, KillPoint::Accept);
                let sh = Arc::clone(&shared);
                let h = std::thread::Builder::new()
                    .name("kv-conn".into())
                    .spawn(move || conn_loop(stream, sh))
                    .expect("spawn conn");
                shared.conns.lock().unwrap().push(h);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn conn_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let stop = Arc::clone(&shared.stop);
    let stop_fn = move || stop.load(Ordering::Acquire);
    loop {
        let frame = match read_frame(&mut stream, &stop_fn) {
            Ok(Some(f)) => f,
            Ok(None) => return, // clean close or stop
            Err(_) => return,   // torn frame / transport error
        };
        let payload = match frame {
            Frame::Payload(p) => p,
            Frame::Bad(status) => {
                // The stream is unsynchronized: answer typed, then close.
                let _ = stream.write_all(&encode_response(&Response::err(status, 0)));
                return;
            }
        };
        let resp = match parse_request(&payload) {
            Err(status) => Response::err(status, 0),
            Ok(req) => {
                maybe_kill(&shared.kill, KillPoint::Parse);
                let (tx, rx) = mpsc::channel();
                let widx = route(req.client_id, shared.txs.len());
                if shared.txs[widx].send(Job { req, reply: tx }).is_err() {
                    return; // shutting down
                }
                match rx.recv() {
                    Ok(r) => r,
                    Err(_) => return, // shutting down
                }
            }
        };
        if stream.write_all(&encode_response(&resp)).is_err() {
            return;
        }
        let _ = stream.flush();
        maybe_kill(&shared.kill, KillPoint::PostAck);
        if resp.status.is_fatal() {
            return;
        }
    }
}

/// Client → worker routing. Deterministic, so one client's requests always
/// serialize through the same worker (across connections too).
fn route(client_id: u64, n: usize) -> usize {
    (client_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % n
}

fn worker_loop(ctx: WorkerCtx, tid: usize, rx: mpsc::Receiver<Job>) {
    nvm::tid::set_tid(tid);
    for job in rx {
        let resp = handle(&ctx, tid, &job.req);
        let _ = job.reply.send(resp);
    }
}

/// One request, applied exactly once (see module docs for the ordering).
fn handle(ctx: &WorkerCtx, pid: usize, req: &Request) -> Response {
    let Some(client_idx) = ctx.resptab.register(req.client_id) else {
        return Response::err(Status::TableFull, req.op_seq);
    };
    // Failover guard FIRST — before the client slot is read at all. The
    // healer resolves a dead peer's intent by finalizing into the client
    // slot and only then clearing the intent, so observing no foreign
    // intent here guarantees the lookup below reads the fully resolved
    // watermark. Checking after the lookup leaves a race: a stale
    // `last_seq` read before the healer finalized could pass the
    // seq-window check once the intent clears and double-apply.
    if ctx.resptab.foreign_inflight(req.client_id, ctx.own_band.clone()) {
        // The client's previous request died with a peer process whose
        // recovery hasn't resolved it; applying now could double-apply,
        // and even the dedup pair could be read torn mid-finalize.
        return Response::err(Status::Recovering, req.op_seq);
    }
    let (last_seq, stored) = ctx.resptab.lookup(req.client_id).expect("registered above");
    if req.op_seq == last_seq && last_seq != 0 {
        // Retry of the acknowledged operation: replay the original
        // response from the durable table; nothing is re-applied.
        nvm::stats::count_kv_dedup_hits(1);
        return Response { status: Status::Ok, op_seq: req.op_seq, value: stored };
    }
    if req.op_seq <= last_seq {
        return Response::err(Status::StaleSeq, req.op_seq);
    }
    if req.op_seq != last_seq + 1 {
        return Response::err(Status::SeqGap, req.op_seq);
    }
    // The system half of the invocation (`CP_q := 0`, persisted) MUST
    // precede the intent record — this is what pins a later Completed
    // replay decision to *this* op-ID (see `isb::resptable`).
    match req.op {
        OpCode::Put | OpCode::Del | OpCode::Get => ctx.map.note_invocation(pid),
        OpCode::Enq | OpCode::Deq => ctx.queue.note_invocation(pid),
    }
    ctx.resptab.begin_op(pid, req.client_id, req.op_seq, req.op as u64, req.arg);
    maybe_kill(&ctx.kill, KillPoint::Invoke);
    let value = match req.op {
        OpCode::Put => {
            if ctx.map.insert(pid, req.arg) {
                RES_TRUE
            } else {
                RES_FALSE
            }
        }
        OpCode::Del => {
            if ctx.map.delete(pid, req.arg) {
                RES_TRUE
            } else {
                RES_FALSE
            }
        }
        OpCode::Get => {
            if ctx.map.find(pid, req.arg) {
                RES_TRUE
            } else {
                RES_FALSE
            }
        }
        OpCode::Enq => {
            ctx.queue.enqueue(pid, req.arg);
            RES_UNIT
        }
        OpCode::Deq => match ctx.queue.dequeue(pid) {
            Some(v) => res_val(v),
            None => isb::engine::RES_EMPTY,
        },
    };
    ctx.resptab.finish_op(pid, client_idx, req.op_seq, value);
    maybe_kill(&ctx.kill, KillPoint::PreAck);
    nvm::stats::count_kv_requests(1);
    Response { status: Status::Ok, op_seq: req.op_seq, value }
}
