//! Network-facing KV service with **client-visible exactly-once**.
//!
//! Fronts the recoverable multi-structure [`isb::store::Store`] over TCP
//! with a length-prefixed binary protocol ([`proto`]). Clients name every
//! request with a `(client_id, op_seq)` operation ID; the server maps those
//! onto the durable response table in the mapped heap
//! ([`isb::resptable::ResponseTable`]), so a retried request returns the
//! *original* response and never double-applies — across server SIGKILL,
//! restart, and (in shared mode) failover to a surviving peer process.
//!
//! The crate is three layers:
//!
//! * [`proto`] — frames, opcodes, typed error statuses;
//! * [`server`] — per-shard worker threads, the exactly-once request path,
//!   seeded SIGKILL crash injection for the conformance suite;
//! * [`client`] — a journaling client that tracks sequence numbers and
//!   replays unacknowledged requests after reconnect.
//!
//! The conformance suite (`tests/tests/exactly_once.rs`) is the contract's
//! proof: SIGKILL the server at seeded points on the request path, restart,
//! replay client retries, and assert original responses, zero duplicate
//! applies, and full model equivalence.

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{ClientError, KvClient};
pub use proto::{OpCode, Request, Response, Status};
pub use server::{Config, KillPoint, ServeError, Server};
