//! The journaling client: op-seq tracking, reconnect, and retry.
//!
//! Every request carries this client's `(client_id, op_seq)`. The client
//! keeps the last **unacknowledged** request (there is at most one — the
//! protocol is one-in-flight per client) and the last acknowledged
//! request/response pair. After a server crash the caller reconnects and:
//!
//! * [`KvClient::replay_last_acked`] re-sends the already-acknowledged
//!   request — the server must answer from its durable response table,
//!   byte-identical to the original acknowledgement, without re-applying;
//! * [`KvClient::retry_pending`] re-sends the in-flight request with its
//!   original sequence number — the server either replays the original
//!   response (the crashed attempt completed) or applies it fresh (it
//!   didn't); in both cases exactly once.
//!
//! [`Status::Recovering`] answers (failover to a survivor racing the
//! peer-recovery healer) are retried internally with a short backoff; if
//! the retries exhaust, the request **stays pending** — the dead peer's
//! healer may yet finalize it, so its sequence number cannot be reused —
//! and the caller re-issues it via [`KvClient::retry_pending`]. Every
//! request is bounded by [`KvClient::request_timeout`]; a wedged server
//! (accepts but never answers) fails typed with [`ClientError::TimedOut`]
//! rather than hanging.

use crate::proto::{
    encode_request, parse_response, read_frame, Frame, OpCode, Request, Response, Status,
};
use isb::engine::{val_of, RES_EMPTY, RES_TRUE, RES_UNIT, RES_VAL_BASE};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Typed client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connection died — reconnect and retry).
    Io(io::Error),
    /// The server answered a typed protocol error.
    Rejected(Status),
    /// The server's response frame was malformed.
    BadResponse(Status),
    /// No response within [`KvClient::request_timeout`] (wedged server).
    /// Like [`ClientError::Io`], the request may or may not have been
    /// applied: it stays pending — reconnect and [`KvClient::retry_pending`].
    TimedOut,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Rejected(s) => write!(f, "rejected: {s:?}"),
            ClientError::BadResponse(s) => write!(f, "bad response frame: {s:?}"),
            ClientError::TimedOut => write!(f, "no response within the request deadline"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected client session. See module docs.
pub struct KvClient {
    addr: SocketAddr,
    client_id: u64,
    next_seq: u64,
    stream: Option<TcpStream>,
    pending: Option<Request>,
    last_acked: Option<(Request, Response)>,
    /// Cap on consecutive [`Status::Recovering`] retries (~2 ms apart).
    pub recovering_retries: u32,
    /// Overall per-request deadline (send → response, including internal
    /// [`Status::Recovering`] backoff). A server that accepts but never
    /// answers fails typed ([`ClientError::TimedOut`]) instead of hanging.
    pub request_timeout: Duration,
}

impl KvClient {
    /// Connects to `addr` as `client_id` (nonzero).
    pub fn connect(addr: SocketAddr, client_id: u64) -> io::Result<KvClient> {
        assert_ne!(client_id, 0, "client IDs are nonzero");
        let mut c = KvClient {
            addr,
            client_id,
            next_seq: 1,
            stream: None,
            pending: None,
            last_acked: None,
            recovering_retries: 2000,
            request_timeout: Duration::from_secs(10),
        };
        c.reconnect(addr)?;
        Ok(c)
    }

    /// (Re)establishes the connection — to the same server after a
    /// restart, or to a survivor after failover.
    pub fn reconnect(&mut self, addr: SocketAddr) -> io::Result<()> {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?;
        // Short socket timeout: `read_frame` retries `WouldBlock`, so this
        // is the poll interval at which the overall request deadline is
        // checked, not a per-request limit.
        s.set_read_timeout(Some(Duration::from_millis(100)))?;
        self.addr = addr;
        self.stream = Some(s);
        Ok(())
    }

    /// This client's identity.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// The in-flight (sent, unacknowledged) request, if any.
    pub fn pending(&self) -> Option<Request> {
        self.pending
    }

    /// The last acknowledged request and its response.
    pub fn last_acked(&self) -> Option<(Request, Response)> {
        self.last_acked
    }

    fn roundtrip_once(
        &mut self,
        req: &Request,
        deadline: Instant,
    ) -> Result<Response, ClientError> {
        let stream = self.stream.as_mut().ok_or_else(|| {
            ClientError::Io(io::Error::new(io::ErrorKind::NotConnected, "not connected"))
        })?;
        stream.write_all(&encode_request(req))?;
        stream.flush()?;
        // The socket's short read timeout makes `read_frame` poll this
        // closure; past the deadline it returns `Ok(None)` and the wait
        // surfaces as a typed timeout instead of hanging forever on a
        // wedged (accepting but unresponsive) server.
        let expired = || Instant::now() >= deadline;
        let frame = read_frame(stream, &expired)?;
        let payload = match frame {
            Some(Frame::Payload(p)) => p,
            Some(Frame::Bad(s)) => return Err(ClientError::BadResponse(s)),
            None if expired() => return Err(ClientError::TimedOut),
            None => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed",
                )))
            }
        };
        parse_response(&payload).map_err(ClientError::BadResponse)
    }

    /// Sends `req` and waits for its response, absorbing
    /// [`Status::Recovering`] backpressure, all under one
    /// [`KvClient::request_timeout`] deadline. Transport errors and
    /// timeouts bubble up with the request still recorded as pending.
    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        let deadline = Instant::now() + self.request_timeout;
        let mut spins = self.recovering_retries;
        loop {
            let resp = self.roundtrip_once(req, deadline)?;
            if resp.status == Status::Recovering && spins > 0 && Instant::now() < deadline {
                spins -= 1;
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            return Ok(resp);
        }
    }

    fn finish(&mut self, req: Request, resp: Response) -> Result<u64, ClientError> {
        if resp.status != Status::Ok {
            // Refusal statuses are answered before the server applies
            // anything, so the seq was not consumed and pending can be
            // released. `Recovering` proves no such thing: the dead peer's
            // healer may yet finalize this very op-seq as Completed, and
            // reusing the seq for a different operation would dedup-hit
            // the old response and silently drop the new one — keep it
            // pending; the caller retries with the original seq.
            if resp.status != Status::Recovering {
                self.pending = None;
            }
            return Err(ClientError::Rejected(resp.status));
        }
        self.pending = None;
        self.last_acked = Some((req, resp));
        self.next_seq = req.op_seq + 1;
        Ok(resp.value)
    }

    /// Issues a fresh operation. At most one may be in flight: call
    /// [`KvClient::retry_pending`] first after a transport error.
    pub fn call(&mut self, op: OpCode, arg: u64) -> Result<u64, ClientError> {
        assert!(self.pending.is_none(), "retry the pending request first");
        let req = Request { op, client_id: self.client_id, op_seq: self.next_seq, arg };
        self.pending = Some(req);
        let resp = self.roundtrip(&req)?;
        self.finish(req, resp)
    }

    /// Re-sends the pending request with its **original** sequence number.
    /// Returns `Ok(None)` when nothing was pending.
    pub fn retry_pending(&mut self) -> Result<Option<u64>, ClientError> {
        let Some(req) = self.pending else { return Ok(None) };
        let resp = self.roundtrip(&req)?;
        self.finish(req, resp).map(Some)
    }

    /// Re-sends the last **acknowledged** request and returns the server's
    /// answer alongside the originally received response — the
    /// exactly-once conformance check asserts they are identical (the
    /// server replays its durable copy; nothing is re-applied).
    pub fn replay_last_acked(&mut self) -> Result<Option<(Response, Response)>, ClientError> {
        let Some((req, orig)) = self.last_acked else { return Ok(None) };
        let resp = self.roundtrip(&req)?;
        Ok(Some((resp, orig)))
    }

    /// `PUT key` → whether the key was newly inserted.
    pub fn put(&mut self, key: u64) -> Result<bool, ClientError> {
        Ok(self.call(OpCode::Put, key)? == RES_TRUE)
    }

    /// `DEL key` → whether the key was present.
    pub fn del(&mut self, key: u64) -> Result<bool, ClientError> {
        Ok(self.call(OpCode::Del, key)? == RES_TRUE)
    }

    /// `GET key` → membership.
    pub fn get(&mut self, key: u64) -> Result<bool, ClientError> {
        Ok(self.call(OpCode::Get, key)? == RES_TRUE)
    }

    /// `ENQ v`.
    pub fn enqueue(&mut self, v: u64) -> Result<(), ClientError> {
        let r = self.call(OpCode::Enq, v)?;
        debug_assert_eq!(r, RES_UNIT);
        Ok(())
    }

    /// `DEQ` → the dequeued value, or `None` on an empty queue.
    pub fn dequeue(&mut self) -> Result<Option<u64>, ClientError> {
        let r = self.call(OpCode::Deq, 0)?;
        Ok(if r == RES_EMPTY {
            None
        } else {
            debug_assert!(r >= RES_VAL_BASE);
            Some(val_of(r))
        })
    }
}

/// Decodes an encoded result word as the boolean ops see it.
pub fn as_bool(value: u64) -> bool {
    value == RES_TRUE
}

/// Decodes an encoded result word as dequeue sees it.
pub fn as_dequeued(value: u64) -> Option<u64> {
    if value == RES_EMPTY {
        None
    } else {
        Some(val_of(value))
    }
}
