//! `kvserved` — the KV service daemon.
//!
//! ```text
//! kvserved --path HEAP [--addr 127.0.0.1:0] [--shards 8] [--workers 2]
//!          [--heap-bytes N] [--shared] [--port-file F] [--stop-file F]
//! ```
//!
//! Opens (recovering) the store heap at `--path`, binds, prints the bound
//! address, and serves until killed — or until `--stop-file` appears, which
//! triggers a graceful shutdown (used by harnesses that need the process to
//! exit without SIGKILL so no in-flight state is left behind). With
//! `--port-file` the bound port is published atomically (write + rename)
//! once the server is accepting, which doubles as the "recovery finished"
//! handshake for restart harnesses.

use kvserve::{Config, Server};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: kvserved --path HEAP [--addr A] [--shards N] [--workers N] \
         [--heap-bytes N] [--shared] [--port-file F] [--stop-file F]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut shards = 8usize;
    let mut workers = 2usize;
    let mut heap_bytes = 32usize << 20;
    let mut shared = false;
    let mut port_file: Option<std::path::PathBuf> = None;
    let mut stop_file: Option<std::path::PathBuf> = None;
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--path" => path = Some(val()),
            "--addr" => addr = val(),
            "--shards" => shards = val().parse().unwrap_or_else(|_| usage()),
            "--workers" => workers = val().parse().unwrap_or_else(|_| usage()),
            "--heap-bytes" => heap_bytes = val().parse().unwrap_or_else(|_| usage()),
            "--shared" => shared = true,
            "--port-file" => port_file = Some(val().into()),
            "--stop-file" => stop_file = Some(val().into()),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let mut cfg = Config::new(path);
    cfg.addr = addr.parse().unwrap_or_else(|_| usage());
    cfg.shards = shards;
    cfg.workers = workers;
    cfg.heap_bytes = heap_bytes;
    cfg.shared = shared;

    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("kvserved: {e}");
            std::process::exit(1);
        }
    };
    println!("kvserved listening on {}", server.local_addr());
    if let Some(pf) = &port_file {
        let tmp = pf.with_extension("tmp");
        std::fs::write(&tmp, format!("{}\n", server.local_addr().port()))
            .and_then(|()| std::fs::rename(&tmp, pf))
            .expect("publish port file");
    }
    loop {
        if let Some(sf) = &stop_file {
            if sf.exists() {
                server.stop();
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}
