//! Pid-liveness probing for multi-process shared heaps.
//!
//! A participant registered in a [`crate::mapped::MappedHeap`] is identified
//! by its pid **plus a birth stamp** (the process start time from
//! `/proc/<pid>/stat`, in clock ticks since boot). The pair defeats pid
//! reuse: a recycled pid gets a fresh start time, so a registry slot whose
//! recorded birth disagrees with the live process's birth belongs to a dead
//! peer, even though a process with that pid exists right now.
//!
//! The probe sits behind the [`PidLiveness`] trait so tests can inject
//! adversarial answers — "falsely dead" (a live peer reported dead, which
//! the recovery-lease CAS must tolerate without double recovery) and
//! "zombie" (a dead-but-unreaped child, which must count as dead).

use std::sync::Arc;

/// Verdict source for "is the participant `(pid, birth)` still alive?".
///
/// Implementations must be cheap enough to call on recovery/arbitration
/// paths (a few times per lease decision, not per operation).
pub trait PidLiveness: Send + Sync {
    /// `true` iff a process with this pid is currently running (not a
    /// zombie) **and** its start time matches `birth`. `birth == 0` (a slot
    /// claimed but never fully stamped) never matches a real process.
    fn is_alive(&self, pid: u64, birth: u64) -> bool;
}

/// The real probe: parses `/proc/<pid>/stat`.
///
/// * missing file → dead (no such process);
/// * state `Z` (zombie) or `X` (dead) → dead;
/// * start time (field 22) ≠ `birth` → dead (pid was recycled).
#[derive(Debug, Default, Clone, Copy)]
pub struct ProcProbe;

impl PidLiveness for ProcProbe {
    fn is_alive(&self, pid: u64, birth: u64) -> bool {
        match proc_stat(pid) {
            Some((state, start)) => state != 'Z' && state != 'X' && start == birth && birth != 0,
            None => false,
        }
    }
}

/// Boxed default probe (the attach paths use this unless a test injects).
pub fn default_probe() -> Arc<dyn PidLiveness> {
    Arc::new(ProcProbe)
}

/// `(state, starttime)` of `/proc/<pid>/stat`, or `None` when unreadable.
///
/// The comm field (2) is parenthesized and may contain spaces, so parsing
/// anchors on the **last** `)`: the state is the first token after it and
/// the start time is token 20 after it (field 22 overall).
fn proc_stat(pid: u64) -> Option<(char, u64)> {
    let s = std::fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    let rest = &s[s.rfind(')')? + 1..];
    let mut toks = rest.split_ascii_whitespace();
    let state = toks.next()?.chars().next()?;
    let start = toks.nth(18)?.parse::<u64>().ok()?;
    Some((state, start))
}

/// Birth stamp of the calling process (0 when `/proc` is unavailable — on
/// such platforms mapped heaps are `Unsupported` anyway, so the value is
/// never compared against a live registry).
pub fn self_birth() -> u64 {
    proc_stat(std::process::id() as u64).map_or(0, |(_, start)| start)
}

/// Delivers `SIGKILL` to the calling process: the crash-injection primitive
/// of the SIGKILL conformance harnesses. Unlike `std::process::abort`, the
/// kernel tears the process down with **no** user-space epilogue at all —
/// exactly the failure the recovery protocol is specified against — so
/// kill-point injection with this helper exercises the same windows a
/// `kill -9` from outside would.
///
/// On platforms without the raw syscall the fallback is `abort` (no unwind,
/// no atexit handlers), which is indistinguishable for mapped-heap state.
pub fn die_sigkill() -> ! {
    const SIGKILL: usize = 9;
    let pid = std::process::id() as usize;
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 62usize => _, // __NR_kill
            in("rdi") pid,
            in("rsi") SIGKILL,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    #[cfg(all(target_os = "linux", target_arch = "aarch64"))]
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") 129usize, // __NR_kill
            inlateout("x0") pid => _,
            in("x1") SIGKILL,
            options(nostack)
        );
    }
    #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    let _ = (pid, SIGKILL);
    // Unreachable on Linux (SIGKILL is not deliverable-to-later: the
    // calling thread never returns to user space); the portable fallback.
    std::process::abort()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_is_alive_under_real_probe() {
        let birth = self_birth();
        assert_ne!(birth, 0, "/proc should be readable in the test environment");
        assert!(ProcProbe.is_alive(std::process::id() as u64, birth));
    }

    #[test]
    fn wrong_birth_is_dead_pid_reuse() {
        let birth = self_birth();
        // Same (live) pid, different birth stamp: the slot belongs to a
        // previous incarnation — must read as dead.
        assert!(!ProcProbe.is_alive(std::process::id() as u64, birth + 1));
        assert!(!ProcProbe.is_alive(std::process::id() as u64, 0));
    }

    #[test]
    fn nonexistent_pid_is_dead() {
        // Linux pids are bounded well below 2^22 by default.
        assert!(!ProcProbe.is_alive(u32::MAX as u64, 12345));
    }
}
