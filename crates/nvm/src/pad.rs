//! Cache-line padding to prevent false sharing of per-process slots.

use core::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 128 bytes (two lines, covering adjacent-line
/// prefetchers) so that per-process slots never share a cache line.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in padding.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the padding, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: Clone> Clone for CachePadded<T> {
    fn clone(&self) -> Self {
        Self::new(self.value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_alignment_and_size() {
        assert!(core::mem::size_of::<CachePadded<u8>>() >= 128);
        assert_eq!(core::mem::align_of::<CachePadded<u64>>(), 128);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        *p += 1;
        assert_eq!(p.into_inner(), 8);
    }

    #[test]
    fn array_of_padded_slots_do_not_share_lines() {
        let arr = [CachePadded::new(0u64), CachePadded::new(1u64)];
        let a = &*arr[0] as *const u64 as usize;
        let b = &*arr[1] as *const u64 as usize;
        assert!(b - a >= 128);
    }
}
