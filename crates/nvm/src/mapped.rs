//! [`MappedNvm`] + [`MappedHeap`]: a file-backed persistent heap with true
//! cross-process restart recovery.
//!
//! The other persistency models ([`crate::RealNvm`], [`crate::CountingNvm`],
//! [`crate::SimNvm`]) live entirely inside one process: a "crash" is a panic
//! in the same address space, and all persistent words sit on the ordinary
//! Rust heap. This module adds the third backend the evaluation stack needs:
//! a **`mmap`-backed arena** whose contents survive the death of the process
//! (`SIGKILL`, `abort`, power-independent kill), so detectable recovery can be
//! exercised across an *actual* process restart — the deployment model of
//! real persistent-memory pools (cf. memento's file-backed pool in PAPERS.md).
//!
//! ## Pieces
//!
//! * [`MappedNvm`] — a [`Persist`] implementation identical in spirit to
//!   [`crate::RealNvm`] (counted `pwb` = `clflush`, `psync` = `mfence`).
//!   Under kill-style crashes every completed *store* is durable (the page
//!   cache survives the process), so flushes matter for the persist-count
//!   experiments and for real-NVM deployments, not for `SIGKILL` testing.
//! * [`MappedHeap`] — the arena itself: a superblock (magic / version /
//!   base / sizes / attach epoch / **segment directory**), per-segment
//!   **commit bitmaps**, a sharded size-class allocator over a lock-free
//!   bump cursor handing out 64-byte-granular blocks, and a small **root
//!   directory** mapping well-known keys to stable payload offsets
//!   (recovery areas and structure heads live there).
//! * [`AttachReport`] — what [`MappedHeap::attach`] found: whether the heap
//!   was created fresh, whether it had to be **relocated** to a new base
//!   address, how many segments it spans, and how many torn tail
//!   allocations were poisoned.
//!
//! ## Multi-process sharing
//!
//! The superblock carries a durable **participant registry**: fixed slots of
//! `(pid, birth stamp, recovery lease, attach mode)`, claimed via CAS with
//! the same fields-first/valid-last crash ordering as the segment directory.
//! The birth stamp (`/proc` start time) defeats pid reuse. Exclusive
//! attaches fail typed ([`MapError::AlreadyAttached`]) when any registered
//! participant is still alive; [`MappedHeap::open_shared`] instead *joins*
//! a live heap — refusing live exclusive attachers
//! ([`MapError::ExclusivePeer`]), mapping the **whole reservation
//! file-backed** strictly at the recorded base (so a peer's later growth is
//! readable without a remap — growth extends the file before publishing the
//! segment), claiming a slot, and running none of the crash-healing passes.
//! In shared mode the bump path serializes under a liveness-arbitrated lock
//! word (stolen, with pad healing of the un-published reservation gap, from
//! SIGKILLed holders) and the per-class free stacks are cross-process (their
//! heads are superblock words). Survivors detect dead peers through
//! [`crate::PidLiveness`] and recover them **online** under a CAS-claimed,
//! sequence-stamped recovery lease ([`MappedHeap::lease_try_claim`]) that
//! probes the slot's liveness and re-verifies its `(pid, birth)` identity
//! after the claim CAS — a live peer's slot is never claimable, and a
//! recoverer that itself dies is detected and superseded. Slots torn
//! mid-claim are reclaimed under the attach flock
//! ([`MappedHeap::reclaim_torn_claim`]), never leased. See DESIGN.md §14 for
//! the full argument.
//!
//! ## Growable multi-segment arena (format v3)
//!
//! A fresh heap reserves a large contiguous virtual-address window (`PROT_NONE`
//! anonymous mapping, recorded in the superblock) and maps **segment 0** — the
//! superblock page, its bitmap, and its data region — over the front of it.
//! When allocation exhausts the mapped space the heap *grows*: the file is
//! extended, the new byte range is mapped (`MAP_FIXED`) directly after the
//! previous segments inside the reservation (file offset == VA offset, so the
//! arena stays contiguous), and the new segment is published in the
//! superblock's **segment directory**. Each extra segment is self-describing
//! from its byte length alone: `[commit bitmap][data]`, no superblock page.
//!
//! Growth publication is crash-ordered like every other heap mutation:
//!
//! 1. `ftruncate` extends the file (zero-filled = a valid, empty segment);
//! 2. the directory entry (the segment's byte length) is stamped and flushed;
//! 3. the **segment count is bumped last** and flushed — the count is the
//!    valid flag, mirroring the header-before-bump discipline below.
//!
//! A crash between (1)/(2) and (3) leaves a file longer than the directory
//! total — benign: attach maps exactly the published total and ignores the
//! tail (the next growth re-truncates and re-stamps). A file *shorter* than
//! the published total is typed corruption ([`MapError::Truncated`]).
//!
//! ## Sharded allocation
//!
//! Blocks of 1..=[`MAX_CLASS`] payload granules (the node/descriptor sizes on
//! every hot path) are served from per-thread (tid-indexed, cache-padded)
//! free lists, refilled [`SLAB_BLOCKS`] at a time from the bump cursor and
//! spilled to per-class **lock-free global stacks** (version-counted Treiber
//! stacks whose next-links live in the spare words of the free blocks'
//! header granules — volatile state in persistent space, rebuilt on every
//! attach). Larger blocks (recovery areas, roots, catalogs — cold paths) go
//! through a small non-poisoning mutex. The bump cursor itself is lock-free:
//! a volatile reservation cursor is advanced by CAS, and the persistent bump
//! word is published in reservation order so the header-before-bump invariant
//! below is preserved without a lock.
//!
//! ## Crash consistency
//!
//! Allocation state is reconstructible from the block headers plus the
//! commit bitmaps alone; the volatile free lists are rebuilt on every attach:
//!
//! 1. `alloc` writes the block header (`ALLOCATED`, size) **before**
//!    publishing the new bump offset, so every granule below `bump` always
//!    carries a valid header. (With the lock-free cursor this holds
//!    transitively: a reservation publishes the bump word only after all
//!    earlier reservations published theirs, and only after its own headers
//!    — including segment-tail `PAD` fillers — are written.)
//! 2. The caller initializes the payload, then `commit` sets the block's
//!    bitmap bit **before** flipping the header to `COMMITTED`.
//! 3. `free` flips the header to `FREE` **before** clearing the bitmap bit.
//!
//! The attach walk therefore classifies every torn state deterministically:
//! an `ALLOCATED` block is a torn tail allocation (poisoned with [`POISON`]
//! and freed), a `FREE` block with a set bit lost the bit-clear of step 3
//! (healed), and any other header/bitmap disagreement is *corruption* and
//! fails with a typed [`MapError`] — never undefined behaviour. Blocks never
//! straddle a segment boundary (the reservation path pads the tail with a
//! header-only `PAD` block), which is what makes the walk — and the sweep —
//! **embarrassingly parallel over segments** (see [`set_attach_threads`]).
//!
//! ## Addressing
//!
//! Structures store **absolute pointers** in their persistent words (the
//! same representation the in-process models use, so the entire engine is
//! shared). The heap therefore asks the kernel for a fixed base address
//! (`MAP_FIXED_NOREPLACE` at the base recorded in the superblock) on attach.
//! When that address is taken, attach falls back to an **offset-relocation
//! pass**: every word of every committed payload whose (tag-stripped) value
//! lands inside the old mapping is rebased to the new one. This is sound
//! because every persistent pointer in the ISB structures points into the
//! arena, and *user payloads must not alias the arena's address range*
//! (a 48-bit window; offset-based pointers à la memento would avoid the
//! caveat at the cost of an indirection on every dereference — see
//! DESIGN.md §10 for the trade-off discussion).

use crate::flush;
use crate::pad::CachePadded;
use crate::persist::{raw_cas, raw_load, raw_store, Persist};
use crate::pword::{PWord, PersistWords};
use crate::stats;
use crate::tid;
use crate::MAX_PROCS;
use std::cell::UnsafeCell;
use std::collections::{HashMap, HashSet};
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release, SeqCst};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

// ---------------------------------------------------------------------------
// Raw mmap/munmap (no libc in this workspace; the build environment has no
// registry access). Linux x86_64 + aarch64; other targets report Unsupported.
// ---------------------------------------------------------------------------

const PROT_NONE: usize = 0;
const PROT_READ: usize = 1;
const PROT_WRITE: usize = 2;
const MAP_SHARED: usize = 0x01;
const MAP_PRIVATE: usize = 0x02;
const MAP_FIXED: usize = 0x10;
const MAP_ANONYMOUS: usize = 0x20;
const MAP_NORESERVE: usize = 0x4000;
const MAP_FIXED_NOREPLACE: usize = 0x10_0000;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn sys_mmap(
    addr: usize,
    len: usize,
    prot: usize,
    flags: usize,
    fd: i32,
    off: usize,
) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 9isize => ret, // __NR_mmap (takes a byte offset)
            in("rdi") addr,
            in("rsi") len,
            in("rdx") prot,
            in("r10") flags,
            in("r8") fd as isize,
            in("r9") off,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    ret
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn sys_munmap(addr: usize, len: usize) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 11isize => ret, // __NR_munmap
            in("rdi") addr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn sys_mmap(
    addr: usize,
    len: usize,
    prot: usize,
    flags: usize,
    fd: i32,
    off: usize,
) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") 222usize, // __NR_mmap (takes a byte offset)
            inlateout("x0") addr => ret,
            in("x1") len,
            in("x2") prot,
            in("x3") flags,
            in("x4") fd as isize,
            in("x5") off,
            options(nostack)
        );
    }
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn sys_munmap(addr: usize, len: usize) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") 215usize, // __NR_munmap
            inlateout("x0") addr => ret,
            in("x1") len,
            options(nostack)
        );
    }
    ret
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
unsafe fn sys_mmap(
    _addr: usize,
    _len: usize,
    _prot: usize,
    _flags: usize,
    _fd: i32,
    _off: usize,
) -> isize {
    -38 // ENOSYS
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
unsafe fn sys_munmap(_addr: usize, _len: usize) -> isize {
    -38 // ENOSYS
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn sys_flock(fd: i32, op: usize) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 73isize => ret, // __NR_flock
            in("rdi") fd as isize,
            in("rsi") op,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn sys_flock(fd: i32, op: usize) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") 32usize, // __NR_flock
            inlateout("x0") fd as isize => ret,
            in("x1") op,
            options(nostack)
        );
    }
    ret
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
unsafe fn sys_flock(_fd: i32, _op: usize) -> isize {
    -38 // ENOSYS
}

const LOCK_EX: usize = 2;
const LOCK_UN: usize = 8;

/// Takes the advisory exclusive lock on `file` (blocking; retried on EINTR).
/// Attach-time only — the lock serializes attach/join/create decisions
/// across processes, never the operation hot path. Auto-released by the
/// kernel if the holder dies.
fn flock_ex(file: &std::fs::File) -> Result<(), MapError> {
    let fd = std::os::fd::AsRawFd::as_raw_fd(file);
    loop {
        let r = unsafe { sys_flock(fd, LOCK_EX) };
        if !is_sys_err(r) {
            return Ok(());
        }
        if r != -4 {
            // anything but EINTR
            return Err(sys_to_err(r));
        }
    }
}

fn flock_un(file: &std::fs::File) {
    let fd = std::os::fd::AsRawFd::as_raw_fd(file);
    unsafe { sys_flock(fd, LOCK_UN) };
}

/// `true` iff the raw-syscall return value is an error (`-errno`).
fn is_sys_err(r: isize) -> bool {
    (-4095..0).contains(&r)
}

fn sys_to_err(r: isize) -> MapError {
    if r == -38 {
        MapError::Unsupported
    } else {
        MapError::MapFailed(-r as i32)
    }
}

// ---------------------------------------------------------------------------
// Layout constants
// ---------------------------------------------------------------------------

/// Allocation granule (one cache line): blocks are sized and aligned to it,
/// and the commit bitmaps track one bit per granule.
pub const GRANULE: usize = 64;
const PAGE: usize = 4096;
/// Superblock magic ("ISBMAP01").
pub const MAGIC: u64 = 0x4953_424D_4150_3031;
/// On-disk format version. v2: the root directory's per-structure keys
/// (`HEADS`/`ANCHOR`) were replaced by the generic `STRUCT` key and the
/// named-structure catalog was added. v3: the growable multi-segment arena —
/// segment directory (`W_SEG_COUNT`, per-segment byte lengths) and the VA
/// reservation size joined the superblock, and the `PAD` block state was
/// added for segment-tail filler. Pre-v3 heaps must fail typed
/// (`BadVersion`) rather than silently attach with an empty directory.
pub const VERSION: u64 = 3;
/// Base address requested for fresh heaps: high in the 47-bit user window,
/// far from the default heap/mmap/stack regions of both parent and child
/// processes, so cross-process re-attach almost always lands at the same
/// address and the relocation pass stays a fallback.
pub const PREFERRED_BASE: usize = 0x6000_0000_0000;
/// Pattern written over the payload of torn (allocated-but-never-committed)
/// tail blocks before they are returned to the free list.
pub const POISON: u64 = 0xDEAD_BEEF_DEAD_BEEF;

const HDR_MAGIC: u64 = 0xB10C;
const ST_ALLOCATED: u64 = 1;
const ST_COMMITTED: u64 = 2;
const ST_FREE: u64 = 3;
/// Segment-tail filler written by the reservation path so blocks never
/// straddle a segment boundary. Header-only: the payload-granule count may
/// be zero, the commit bit is never set, and pads never enter a free list.
const ST_PAD: u64 = 4;

// Superblock word indices (u64 words from the start of the mapping).
const W_MAGIC: usize = 0;
const W_VERSION: usize = 1;
const W_BASE: usize = 2;
const W_SIZE: usize = 3; // bytes of segment 0 (the full file for a 1-segment heap)
const W_EPOCH: usize = 4;
const W_BUMP: usize = 5; // global granule-space bump (all segments)
const W_DATA_OFF: usize = 6;
const W_BM_OFF: usize = 7;
const W_GRANULES: usize = 8; // granules of segment 0
const W_KIND: usize = 9;
const W_SEG_COUNT: usize = 10; // number of *extra* segments (the valid flag)
const W_RESERVE: usize = 11; // VA reservation bytes (growth ceiling)
/// Shared-mode bump-path lock: holder participant slot + 1, 0 when free.
/// Volatile-in-persistent-space; stolen (with gap healing) from dead holders.
const W_ALLOC_LOCK: usize = 12;
/// Volatile reservation cursor over the global granule space; the persistent
/// `W_BUMP` trails it. Lives in the superblock so concurrent attachers of a
/// shared heap see one cursor; reset from `W_BUMP` on every full attach.
const W_BUMP_RESV: usize = 13;
/// Recovery-area geometry recorded by the first attach that placed a
/// recovery area on this heap: slot count and per-slot stride in bytes
/// (0 = not recorded yet). Peers built with different geometry must fail
/// typed ([`MapError::LayoutMismatch`]) instead of silently aliasing slots.
const W_REC_SLOTS: usize = 14;
const W_REC_STRIDE: usize = 15;
/// Number of root-directory slots.
pub const ROOT_SLOTS: usize = 16;
const W_ROOT0: usize = 16; // ROOT_SLOTS (key, payload-offset) pairs
/// Maximum number of *extra* segments a heap can grow (directory capacity).
pub const MAX_SEGMENTS: usize = 32;
const W_SEG0: usize = W_ROOT0 + 2 * ROOT_SLOTS; // MAX_SEGMENTS byte-length words
/// Per-class global free-stack heads (volatile-in-persistent-space, shared
/// by every attached process; reset + restocked by each full attach walk).
const W_GLOBAL0: usize = W_SEG0 + MAX_SEGMENTS;

// -- participant registry ----------------------------------------------------

/// Participant slots in the registry: the maximum number of processes that
/// can share one heap concurrently. Each slot owns a disjoint band of
/// [`PART_TIDS`] tids, keeping recovery-area slots, stats slots, reclamation
/// announce words and allocator thread caches per-process disjoint.
pub const PART_SLOTS: usize = 8;
/// Tids per participant band (`MAX_PROCS / PART_SLOTS`).
pub const PART_TIDS: usize = MAX_PROCS / PART_SLOTS;
/// One registry slot is one cache line of superblock words.
const PART_WORDS: usize = 8;
const W_PART0: usize = 96; // PART_SLOTS × PART_WORDS words (96..160)
/// Registry slot word indices.
const PW_PID: usize = 0; // claim/valid word: 0 free, CLAIMING mid-claim, else pid
const PW_BIRTH: usize = 1; // /proc starttime of the claimant
const PW_LEASE: usize = 2; // recovery lease: (seq << 8) | (recoverer slot + 1)
const PW_MODE: usize = 3; // attach mode of the claimant (MODE_*)
/// `PW_MODE` values. Stamped (with the birth) before the pid — the valid
/// flag — under the attach flock, so a live slot always carries the mode its
/// owner attached with. Joiners refuse heaps with a live **exclusive**
/// attacher: its collectors run private epochs and its bump path ignores
/// `W_ALLOC_LOCK`, so sharing the arena behind its back would be unsound.
const MODE_EXCLUSIVE: u64 = 1;
const MODE_SHARED: u64 = 2;
/// Mid-claim sentinel for `PW_PID`: reserves the slot before the birth stamp
/// is written (fields first, pid — the valid flag — last). Never a real pid,
/// so a crash mid-claim leaves a trivially-dead, reclaimable slot.
const CLAIMING: u64 = u64::MAX;

/// Smallest heap [`MappedHeap::create`] accepts.
pub const MIN_HEAP_BYTES: usize = 64 * 1024;
/// Default heap size used by the structures' `attach` constructors (the
/// *initial* segment; the arena grows on demand up to its VA reservation).
pub const DEFAULT_HEAP_BYTES: usize = 64 * 1024 * 1024;

/// Largest size class (payload granules) served by the sharded free lists;
/// larger blocks take the cold mutex path.
pub const MAX_CLASS: usize = 8;
/// Blocks carved from the bump region per sharded free-list refill.
pub const SLAB_BLOCKS: usize = 8;
/// Per-thread free-list capacity per class; overflow spills to the global
/// lock-free stack.
const CACHE_CAP: usize = 64;

#[inline]
fn encode_hdr(state: u64, payload_granules: u64) -> u64 {
    (HDR_MAGIC << 48) | (state << 40) | payload_granules
}

#[inline]
fn decode_hdr(h: u64) -> Option<(u64, u64)> {
    if h >> 48 != HDR_MAGIC {
        return None;
    }
    Some(((h >> 40) & 0xFF, h & 0xFFFF_FFFF))
}

/// Geometry of an extra (non-0) segment of `bytes`: `[bitmap][data]`, both
/// granule-aligned, derived deterministically from the byte length alone.
/// Returns `(bitmap_bytes, data_granules)`.
fn seg_geometry(bytes: usize) -> (usize, usize) {
    let bm_bytes = (bytes / GRANULE).div_ceil(8).next_multiple_of(GRANULE);
    (bm_bytes, bytes.saturating_sub(bm_bytes) / GRANULE)
}

/// Non-poisoning lock. The allocator/growth mutexes guard coordination state
/// that is consistent between operations; if a holder panics (e.g. an
/// assertion in unrelated caller code while an alloc is on the stack), later
/// operations must see the state, not a cascading `PoisonError` panic.
fn lock_np<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Attach parallelism knob
// ---------------------------------------------------------------------------

static ATTACH_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the number of worker threads used by the parallel attach phases
/// (segment walk, relocation, sweep — and the structure-level validate and
/// census drivers in `isb::recovery`). `0` restores the default
/// (`ISB_ATTACH_THREADS` env var, else `available_parallelism`).
pub fn set_attach_threads(n: usize) {
    ATTACH_THREADS.store(n, Relaxed);
}

/// Current attach worker-thread count (≥ 1). See [`set_attach_threads`].
pub fn attach_threads() -> usize {
    let n = ATTACH_THREADS.load(Relaxed);
    if n != 0 {
        return n;
    }
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("ISB_ATTACH_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

// ---------------------------------------------------------------------------
// Errors and reports
// ---------------------------------------------------------------------------

/// Typed attach/allocation failures. Every corrupt-image shape the attach
/// walk can encounter maps to one of these — attaching a damaged heap must
/// fail cleanly, never exhibit undefined behaviour.
#[derive(Debug)]
pub enum MapError {
    /// Filesystem error (open/create/metadata/resize).
    Io(std::io::Error),
    /// The platform has no mmap implementation in this build.
    Unsupported,
    /// `mmap` itself failed (`-errno`).
    MapFailed(i32),
    /// The file is shorter than its superblock + segment directory claim
    /// (or than a superblock). A file *longer* than the directory total is
    /// benign — a crash inside a growth extended the file before the new
    /// segment's directory entry was published.
    Truncated {
        /// Bytes the superblock (or format) requires.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// The superblock magic does not match [`MAGIC`].
    BadMagic(u64),
    /// The superblock version is not [`VERSION`].
    BadVersion(u64),
    /// Superblock geometry is inconsistent (unaligned/out-of-window base,
    /// impossible offsets, bump beyond the data region, an impossible
    /// segment-directory entry, …).
    BadSuperblock(&'static str),
    /// A block header below the bump offset is not a valid header.
    CorruptHeader {
        /// Granule index of the bad header.
        granule: usize,
    },
    /// The commit bitmap disagrees with the block headers in a way no crash
    /// ordering can produce (a set bit with no committed block under it, or
    /// a committed block whose bit is clear).
    CorruptBitmap {
        /// Granule index of the disagreement.
        granule: usize,
    },
    /// The heap hosts a different structure kind (or configuration) than the
    /// caller asked to attach.
    WrongKind {
        /// Kind/config expected by the caller.
        expected: u64,
        /// Kind/config recorded in the heap.
        found: u64,
    },
    /// A persistent pointer read from the image points outside the mapping
    /// (or the object graph does not terminate) — e.g. a superblock whose
    /// recorded base was rewritten to a different address, so the structure's
    /// absolute pointers no longer land inside the arena. Caught by the
    /// structures' pre-recovery validation walk before any dereference.
    CorruptPointer {
        /// The offending pointer value.
        addr: u64,
    },
    /// A catalog entry is inconsistent: unknown structure kind, impossible
    /// root offset, or a malformed name. No crash ordering produces this —
    /// entry creation stamps the kind word last, so a torn creation leaves
    /// the slot invisible, not damaged.
    CorruptCatalog {
        /// Catalog slot index of the bad entry.
        slot: usize,
    },
    /// The catalog has no free slot for another named structure.
    CatalogFull,
    /// The arena is out of space (VA reservation or segment directory full).
    Exhausted,
    /// The heap's participant registry holds a slot owned by a **live**
    /// process: an exclusive attach (or create over a live heap) would share
    /// the arena behind that process's back. Use the shared-attach API to
    /// join a live heap instead.
    AlreadyAttached {
        /// Pid recorded in the live registry slot.
        pid: u64,
    },
    /// Every participant slot of the registry is claimed (by live peers, or
    /// by dead ones whose online recovery has not reclaimed them yet).
    RegistryFull,
    /// A shared join found a live participant that attached in **exclusive**
    /// mode: it runs private epochs and an unlocked bump path, so joining
    /// would free memory it still reads. Wait for it to detach, or open the
    /// heap exclusively.
    ExclusivePeer {
        /// Pid of the live exclusive attacher.
        pid: u64,
    },
    /// A shared join could not map the heap at its recorded base address
    /// (taken in this process) — relocation is impossible while peers are
    /// live, because absolute pointers are shared.
    BaseTaken {
        /// The base address the live peers are using.
        base: u64,
    },
    /// A durable layout field recorded in the superblock disagrees with the
    /// geometry this build was compiled with (e.g. recovery-area slot count
    /// or stride). Mismatched builds must not silently alias shared state.
    LayoutMismatch {
        /// Which field disagreed.
        what: &'static str,
        /// Value this build expects.
        expected: u64,
        /// Value recorded in the heap.
        found: u64,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Io(e) => write!(f, "persistent heap I/O error: {e}"),
            MapError::Unsupported => write!(f, "mapped heaps are unsupported on this platform"),
            MapError::MapFailed(e) => write!(f, "mmap failed (errno {e})"),
            MapError::Truncated { expected, found } => {
                write!(f, "heap file truncated: expected {expected} bytes, found {found}")
            }
            MapError::BadMagic(m) => write!(f, "bad superblock magic {m:#x}"),
            MapError::BadVersion(v) => write!(f, "unsupported heap version {v}"),
            MapError::BadSuperblock(why) => write!(f, "corrupt superblock: {why}"),
            MapError::CorruptHeader { granule } => {
                write!(f, "corrupt block header at granule {granule}")
            }
            MapError::CorruptBitmap { granule } => {
                write!(f, "commit bitmap disagrees with headers at granule {granule}")
            }
            MapError::WrongKind { expected, found } => {
                write!(f, "heap hosts kind/config {found}, expected {expected}")
            }
            MapError::CorruptPointer { addr } => {
                write!(f, "persistent pointer {addr:#x} points outside the mapped arena")
            }
            MapError::CorruptCatalog { slot } => {
                write!(f, "corrupt catalog entry in slot {slot}")
            }
            MapError::CatalogFull => {
                write!(f, "catalog full ({CATALOG_SLOTS} named structures per heap)")
            }
            MapError::Exhausted => write!(f, "persistent heap exhausted"),
            MapError::AlreadyAttached { pid } => {
                write!(f, "heap is attached by live process {pid} (join it with the shared API)")
            }
            MapError::RegistryFull => {
                write!(f, "participant registry full ({PART_SLOTS} processes per shared heap)")
            }
            MapError::ExclusivePeer { pid } => {
                write!(f, "cannot join: live process {pid} attached this heap exclusively")
            }
            MapError::BaseTaken { base } => {
                write!(f, "cannot join shared heap: its base address {base:#x} is taken here")
            }
            MapError::LayoutMismatch { what, expected, found } => {
                write!(f, "heap layout mismatch: {what} is {found}, this build expects {expected}")
            }
        }
    }
}

impl std::error::Error for MapError {}

impl From<std::io::Error> for MapError {
    fn from(e: std::io::Error) -> Self {
        MapError::Io(e)
    }
}

/// What an attach found and did (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct AttachReport {
    /// The heap file did not exist (or was empty) and was created fresh.
    pub created: bool,
    /// The recorded base address was unavailable; every in-arena pointer was
    /// rebased by the offset-relocation pass.
    pub relocated: bool,
    /// Attach epoch after this attach (1 for a fresh heap).
    pub attach_epoch: u64,
    /// This attach *joined* a live shared heap: peers were already attached,
    /// so no walk/heal/relocation ran (the heap state is live, not a crash
    /// image).
    pub joined: bool,
    /// Torn tail allocations (allocated, never committed) that were poisoned
    /// and returned to the free list.
    pub poisoned: usize,
    /// `FREE` blocks whose commit bit was still set (crash between the two
    /// halves of a free) — healed by clearing the bit.
    pub healed_bits: usize,
    /// Committed (live) blocks found by the walk.
    pub committed: usize,
    /// Free blocks found by the walk.
    pub free_blocks: usize,
    /// Segments mapped (1 = the heap never grew past its initial segment).
    pub segments: usize,
}

/// Result of a recovery-lease claim attempt (see
/// [`MappedHeap::lease_try_claim_for`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseOutcome {
    /// This claimant holds the lease (freshly claimed, re-entered, or stolen
    /// from a dead recoverer); `seq` is its lease generation.
    Won {
        /// Lease sequence number (monotonic per dead slot).
        seq: u64,
    },
    /// A **live** recoverer already holds the lease; back off.
    Held {
        /// The holder's participant slot.
        holder: usize,
    },
    /// The slot was already reclaimed — recovery finished elsewhere.
    Gone,
    /// The slot's participant is **alive** (the caller's dead-list was stale,
    /// or the probe's verdict flipped): a live peer's slot is never
    /// lease-claimable, so its rec-slots, epochs and registration stay
    /// untouched.
    Live {
        /// The live participant's pid.
        pid: u64,
    },
    /// The slot is torn mid-claim (`PW_PID` still holds the claim sentinel).
    /// It carries no recoverable state and may belong to a *live* joiner
    /// between its slot reservation and its pid stamp, so it is never
    /// leased; reclaim it under the attach flock with
    /// [`MappedHeap::reclaim_torn_claim`].
    Torn,
}

// ---------------------------------------------------------------------------
// The heap
// ---------------------------------------------------------------------------

/// Volatile descriptor of one mapped segment. Slots are append-only: fields
/// are written, then the segment count is `Release`-published, so readers
/// that `Acquire`-load the count see fully initialized slots.
#[derive(Default)]
struct SegSlot {
    /// First global granule index served by this segment.
    g_start: AtomicUsize,
    /// Data granules in this segment.
    granules: AtomicUsize,
    /// VA offset (from `base`) of this segment's commit bitmap.
    bm_off: AtomicUsize,
    /// VA offset (from `base`) of this segment's data region.
    data_off: AtomicUsize,
}

/// Per-thread size-class free lists (header granule indices). Indexed by the
/// registered tid and only ever touched by that thread, which is what makes
/// the `UnsafeCell` sound (same discipline as `isb::pool`).
type ThreadCache = [Vec<u32>; MAX_CLASS];

/// Per-segment result of the (parallel) attach walk.
#[derive(Default)]
struct SegWalk {
    committed: Vec<(usize, usize)>,
    free: HashMap<u32, Vec<u32>>,
    poisoned: usize,
    healed: usize,
    free_blocks: usize,
}

/// A won bump reservation: granules `[from, end)` belong to the caller;
/// usable blocks start at `start` (pads, if any, were written to
/// `[from, start)`). The caller must write headers for every granule in
/// `[start, end)` and then call `publish_bump(from, end)`.
struct Resv {
    from: usize,
    start: usize,
    end: usize,
}

/// Holds the shared-mode bump lock (`W_ALLOC_LOCK`); released on drop. See
/// [`MappedHeap::lock_shared_bump`].
struct BumpLockGuard<'a> {
    heap: &'a MappedHeap,
}

impl Drop for BumpLockGuard<'_> {
    fn drop(&mut self) {
        self.heap.word(W_ALLOC_LOCK).store(0, Release);
    }
}

/// A file-backed persistent heap (see module docs).
///
/// One `MappedHeap` hosts one or more data structures (plus their recovery
/// areas); the structures' `attach` constructors enforce the kind via the
/// superblock. Exclusive attaches ([`MappedHeap::open`] /
/// [`MappedHeap::attach`]) admit **one process at a time**, enforced by the
/// durable participant registry ([`MapError::AlreadyAttached`]); shared
/// attaches ([`MappedHeap::open_shared`]) let up to [`PART_SLOTS`] processes
/// mutate the arena concurrently and recover a SIGKILLed peer online. All
/// allocation routes through [`MappedHeap::alloc`] / [`MappedHeap::commit`] /
/// [`MappedHeap::free`]; the object pools in `isb::pool` layer their
/// per-thread caches on top.
pub struct MappedHeap {
    base: *mut u8,
    /// VA reservation length — the munmap span and the growth ceiling.
    reserve: usize,
    /// Total mapped file bytes (all segments); grows.
    size: AtomicUsize,
    /// Published segment slots (including segment 0).
    n_segs: AtomicUsize,
    segs: [SegSlot; MAX_SEGMENTS + 1],
    /// Total data granules across published segments.
    total_granules: AtomicUsize,
    /// Segment 0 data offset (superblock validation/catalog bounds).
    data_off: usize,
    path: PathBuf,
    file: std::fs::File,
    /// Serializes growth and segment refresh (cold paths).
    grow_lock: Mutex<()>,
    /// Free lists for blocks above `MAX_CLASS` payload granules, and for
    /// everything when `use_sharded` is off (the pre-sharding allocator
    /// shape, kept for the fig13 microbench).
    cold: Mutex<HashMap<u32, Vec<u32>>>,
    caches: Vec<CachePadded<UnsafeCell<ThreadCache>>>,
    use_sharded: AtomicBool,
    /// Shared (multi-process) mode: the bump path serializes under
    /// `W_ALLOC_LOCK` and segment publications by peers are re-mapped on
    /// demand. Exclusive mode keeps the lock-free single-process paths.
    shared: bool,
    /// This process's participant-registry slot (`usize::MAX` = none).
    my_slot: AtomicUsize,
    /// Liveness verdict source (injectable by tests).
    liveness: Arc<dyn crate::liveness::PidLiveness>,
    /// Whether `file` still holds the attach flock (shared initial attacher
    /// keeps it through structure-level replay; see `release_attach_lock`).
    attach_flock: AtomicBool,
    report: AttachReport,
}

unsafe impl Send for MappedHeap {}
unsafe impl Sync for MappedHeap {}

impl std::fmt::Debug for MappedHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedHeap")
            .field("path", &self.path)
            .field("base", &self.base)
            .field("size", &self.size.load(Relaxed))
            .field("segments", &self.n_segs.load(Relaxed))
            .finish_non_exhaustive()
    }
}

impl Drop for MappedHeap {
    fn drop(&mut self) {
        // A clean detach retires this process's registry slot so later
        // attaches need no liveness probe to reclaim it.
        let slot = *self.my_slot.get_mut();
        if slot != usize::MAX {
            self.clear_participant(slot);
        }
        // The mapping is MAP_SHARED: all completed stores are already in the
        // page cache and reach the file regardless of this munmap. Unmapping
        // the whole reservation drops the tail too (PROT_NONE in exclusive
        // mode, file-backed in shared mode). Closing the
        // file also releases a still-held attach flock.
        unsafe { sys_munmap(self.base as usize, self.reserve) };
    }
}

/// Reserves `len` bytes of PROT_NONE address space, preferably at `hint`.
/// Returns the reservation base, or `None` when the hinted range is taken.
fn reserve_va(len: usize, hint: Option<usize>) -> Result<Option<*mut u8>, MapError> {
    let anon = MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE;
    match hint {
        Some(h) => {
            let r = unsafe { sys_mmap(h, len, PROT_NONE, anon | MAP_FIXED_NOREPLACE, -1, 0) };
            if is_sys_err(r) {
                if r == -38 {
                    return Err(MapError::Unsupported);
                }
                return Ok(None); // range taken (EEXIST) or otherwise refused
            }
            if r as usize != h {
                // Old kernels ignore NOREPLACE and map elsewhere: undo.
                unsafe { sys_munmap(r as usize, len) };
                return Ok(None);
            }
            Ok(Some(r as *mut u8))
        }
        None => {
            let r = unsafe { sys_mmap(0, len, PROT_NONE, anon, -1, 0) };
            if is_sys_err(r) {
                return Err(sys_to_err(r));
            }
            Ok(Some(r as *mut u8))
        }
    }
}

/// Maps `len` bytes of `fd` at file offset `off` to exactly `addr` (inside a
/// reservation this heap owns, so plain `MAP_FIXED` is safe).
fn map_file_at(fd: i32, len: usize, addr: usize, off: usize) -> Result<(), MapError> {
    let r = unsafe { sys_mmap(addr, len, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_FIXED, fd, off) };
    if is_sys_err(r) {
        return Err(sys_to_err(r));
    }
    debug_assert_eq!(r as usize, addr);
    Ok(())
}

/// Maps `len` bytes of `fd` from file offset 0 to exactly `hint`
/// (`MAP_SHARED`), claiming the whole range in one mapping. Returns `None`
/// when the hinted range is taken. Shared attachers map their **entire** VA
/// reservation file-backed this way (file offset == VA offset): a peer that
/// grows the heap extends the file *before* publishing the new segment, and
/// pages of a shared file mapping become readable the instant the file covers
/// them — so a pointer a peer links into a structure is dereferenceable here
/// the moment it exists, with no remap, no segment refresh, and no fault
/// window. Pages past EOF are plain address space; nothing points into them
/// until a growth has extended the file underneath.
fn map_shared_window(fd: i32, len: usize, hint: usize) -> Result<Option<*mut u8>, MapError> {
    let r = unsafe {
        sys_mmap(hint, len, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_FIXED_NOREPLACE, fd, 0)
    };
    if is_sys_err(r) {
        if r == -38 {
            return Err(MapError::Unsupported);
        }
        return Ok(None); // range taken (EEXIST) or otherwise refused
    }
    if r as usize != hint {
        // Old kernels ignore NOREPLACE and map elsewhere: undo.
        unsafe { sys_munmap(r as usize, len) };
        return Ok(None);
    }
    Ok(Some(r as *mut u8))
}

/// Overlays `[from, reserve)` of an attacher's reservation with the heap
/// file's bytes at the same offsets (see [`map_shared_window`]; shared mode
/// only — exclusive attachers keep the PROT_NONE tail). `MAP_FIXED` is safe:
/// the span lies inside a reservation this process owns.
fn map_window_tail(fd: i32, base: *mut u8, from: usize, reserve: usize) -> Result<(), MapError> {
    if from >= reserve {
        return Ok(());
    }
    map_file_at(fd, reserve - from, base as usize + from, from)
}

/// Reserves a VA window of `reserve` bytes (at `preferred` when possible) and
/// maps every `(file_offset, len)` segment contiguously over its front.
/// Returns `(base, relocated)`.
fn reserve_and_map(
    fd: i32,
    segs: &[(usize, usize)],
    reserve: usize,
    preferred: Option<usize>,
) -> Result<(*mut u8, bool), MapError> {
    let (base, relocated) = match preferred.and_then(|h| reserve_va(reserve, Some(h)).transpose()) {
        Some(r) => (r?, false),
        None => {
            let b = reserve_va(reserve, None)?.expect("hint-less reservation cannot be refused");
            (b, true)
        }
    };
    for &(off, len) in segs {
        if let Err(e) = map_file_at(fd, len, base as usize + off, off) {
            unsafe { sys_munmap(base as usize, reserve) };
            return Err(e);
        }
    }
    Ok((base, relocated))
}

fn empty_caches() -> Vec<CachePadded<UnsafeCell<ThreadCache>>> {
    (0..MAX_PROCS).map(|_| CachePadded::new(UnsafeCell::new(ThreadCache::default()))).collect()
}

/// Reads the superblock page with `pread` (no file-cursor mutation, so the
/// attach paths can re-read it at will).
fn read_page0(file: &std::fs::File) -> Result<[u8; PAGE], MapError> {
    use std::os::unix::fs::FileExt;
    let mut sb = [0u8; PAGE];
    file.read_exact_at(&mut sb, 0)?;
    Ok(sb)
}

/// First **live** participant pid recorded in superblock page `sb`, if any.
/// Non-heap / other-version pages answer `None` (no registry to honour).
fn sb_live_pid(sb: &[u8; PAGE], live: &dyn crate::liveness::PidLiveness) -> Option<u64> {
    let w = |i: usize| u64::from_le_bytes(sb[i * 8..i * 8 + 8].try_into().unwrap());
    if w(W_MAGIC) != MAGIC || w(W_VERSION) != VERSION {
        return None;
    }
    for s in 0..PART_SLOTS {
        let pid = w(W_PART0 + s * PART_WORDS + PW_PID);
        if pid != 0 && pid != CLAIMING && live.is_alive(pid, w(W_PART0 + s * PART_WORDS + PW_BIRTH))
        {
            return Some(pid);
        }
    }
    None
}

/// Superblock geometry parsed and validated from a plain (pre-mmap) read.
/// Segment 0's byte length is `spans[0].1`.
struct SbGeom {
    /// Byte lengths of the extra segments, in directory order.
    seg_lens: Vec<usize>,
    /// `(file_offset, len)` of every segment, including segment 0.
    spans: Vec<(usize, usize)>,
    /// Published bytes across all segments.
    total: usize,
    /// VA reservation length.
    reserve: usize,
    /// Base address recorded in the superblock.
    old_base: usize,
    /// Segment-0 data offset.
    data_off: usize,
    /// Segment-0 data granules.
    granules: usize,
    /// Data granules across all segments.
    total_granules: usize,
}

/// Validates the superblock page of a `len`-byte file (see the attach docs
/// for which shapes are benign-torn vs typed corruption).
fn parse_sb(sb: &[u8; PAGE], len: u64) -> Result<SbGeom, MapError> {
    let w = |i: usize| u64::from_le_bytes(sb[i * 8..i * 8 + 8].try_into().unwrap());
    if w(W_MAGIC) != MAGIC {
        return Err(MapError::BadMagic(w(W_MAGIC)));
    }
    if w(W_VERSION) != VERSION {
        return Err(MapError::BadVersion(w(W_VERSION)));
    }
    let size = w(W_SIZE);
    if size < PAGE as u64 || !(size as usize).is_multiple_of(PAGE) {
        return Err(MapError::BadSuperblock("segment-0 size is not a page multiple"));
    }
    // Segment directory: the count is the valid flag; each entry is the
    // segment's byte length. The published total must fit in the file
    // (a *longer* file is benign torn growth — see module docs).
    let seg_count = w(W_SEG_COUNT) as usize;
    if seg_count > MAX_SEGMENTS {
        return Err(MapError::BadSuperblock("segment count exceeds the directory"));
    }
    let mut seg_lens = Vec::with_capacity(seg_count);
    let mut total = size;
    for k in 0..seg_count {
        let b = w(W_SEG0 + k);
        if b < PAGE as u64 || !(b as usize).is_multiple_of(PAGE) || b >= 1 << 46 {
            return Err(MapError::BadSuperblock("impossible segment-directory entry"));
        }
        seg_lens.push(b as usize);
        total =
            total.checked_add(b).ok_or(MapError::BadSuperblock("segment directory overflows"))?;
    }
    if len < total {
        return Err(MapError::Truncated { expected: total, found: len });
    }
    let total = total as usize;
    let reserve = w(W_RESERVE) as usize;
    if reserve < total || !reserve.is_multiple_of(PAGE) || reserve >= 1 << 47 {
        return Err(MapError::BadSuperblock("VA reservation does not cover the segments"));
    }
    let old_base = w(W_BASE) as usize;
    if old_base == 0 || !old_base.is_multiple_of(PAGE) || old_base >= 1 << 47 {
        return Err(MapError::BadSuperblock("recorded base address is not a valid mapping"));
    }
    let size = size as usize;
    let data_off = w(W_DATA_OFF) as usize;
    let granules = w(W_GRANULES) as usize;
    if data_off < PAGE
        || !data_off.is_multiple_of(GRANULE)
        || data_off
            .checked_add(
                granules
                    .checked_mul(GRANULE)
                    .ok_or(MapError::BadSuperblock("granule count overflows the data region"))?,
            )
            .is_none_or(|end| end > size)
    {
        return Err(MapError::BadSuperblock("data region exceeds the file"));
    }
    // The commit bitmap (one bit per data granule, starting at PAGE)
    // must fit below the data region: otherwise bm_set/bm_clear would
    // silently write inside the data blocks.
    if w(W_BM_OFF) as usize != PAGE || PAGE + granules.div_ceil(64) * 8 > data_off {
        return Err(MapError::BadSuperblock("commit bitmap does not fit its region"));
    }
    let mut total_granules = granules;
    for &b in &seg_lens {
        total_granules += seg_geometry(b).1;
    }
    if (w(W_BUMP) as usize) > total_granules {
        return Err(MapError::BadSuperblock("bump offset beyond the data region"));
    }
    let mut spans = Vec::with_capacity(1 + seg_lens.len());
    spans.push((0usize, size));
    let mut off = size;
    for &b in &seg_lens {
        spans.push((off, b));
        off += b;
    }
    Ok(SbGeom { seg_lens, spans, total, reserve, old_base, data_off, granules, total_granules })
}

impl MappedHeap {
    // -- mapping ----------------------------------------------------------

    /// Creates a fresh heap whose *initial segment* holds (at least) `bytes`
    /// at `path`, truncating any existing file. The arena grows on demand up
    /// to a default VA reservation of `max(16 × bytes, 256 MiB)`. Prefer
    /// [`MappedHeap::open`].
    pub fn create(path: &Path, bytes: usize) -> Result<Arc<Self>, MapError> {
        Self::create_bounded(path, bytes, 0)
    }

    /// [`MappedHeap::create`] with an explicit growth ceiling: the arena
    /// never exceeds `max_bytes` in total (`max_bytes == bytes` disables
    /// growth entirely — used by exhaustion tests). `0` selects the default
    /// reservation.
    pub fn create_bounded(
        path: &Path,
        bytes: usize,
        max_bytes: usize,
    ) -> Result<Arc<Self>, MapError> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        flock_ex(&file)?;
        Self::create_locked(file, path, bytes, max_bytes, false, crate::liveness::default_probe())
    }

    /// Creation body. `file` is open (NOT yet truncated) and holds the attach
    /// flock; error paths release it implicitly by dropping/closing the file.
    /// Guards against creating over a heap with **live** participants (which
    /// would truncate the file out from under them — `SIGBUS` on their next
    /// access), then zeroes the file and lays the heap out. Exclusive mode
    /// releases the flock before returning; shared mode keeps holding it
    /// (see [`MappedHeap::release_attach_lock`]).
    fn create_locked(
        file: std::fs::File,
        path: &Path,
        bytes: usize,
        max_bytes: usize,
        shared: bool,
        live: Arc<dyn crate::liveness::PidLiveness>,
    ) -> Result<Arc<Self>, MapError> {
        if file.metadata()?.len() >= PAGE as u64 {
            if let Some(pid) = sb_live_pid(&read_page0(&file)?, &*live) {
                return Err(MapError::AlreadyAttached { pid });
            }
        }
        let size = bytes.max(MIN_HEAP_BYTES).next_multiple_of(PAGE);
        let reserve = if max_bytes == 0 {
            (size * 16).max(256 * 1024 * 1024)
        } else {
            max_bytes.max(size).next_multiple_of(PAGE)
        };
        // Shrink to zero first so every byte of the new extent — including
        // any stale superblock content — reads back as zero.
        file.set_len(0)?;
        file.set_len(size as u64)?;
        let fd = std::os::fd::AsRawFd::as_raw_fd(&file);

        // Segment-0 geometry: superblock page, then the bitmap (one bit per
        // data granule, rounded to a granule), then the data region.
        let data_guess = size - PAGE;
        let bm_bytes = (data_guess / GRANULE).div_ceil(8).next_multiple_of(GRANULE);
        let data_off = PAGE + bm_bytes;
        let granules = (size - data_off) / GRANULE;

        let (base, _) = reserve_and_map(fd, &[(0, size)], reserve, Some(PREFERRED_BASE))?;
        if shared {
            // Shared mode maps the unpublished tail of the reservation
            // file-backed too, so segments any peer grows later are readable
            // here without a remap (see `map_shared_window`).
            if let Err(e) = map_window_tail(fd, base, size, reserve) {
                unsafe { sys_munmap(base as usize, reserve) };
                return Err(e);
            }
        }
        let heap = MappedHeap {
            base,
            reserve,
            size: AtomicUsize::new(size),
            n_segs: AtomicUsize::new(1),
            segs: std::array::from_fn(|_| SegSlot::default()),
            total_granules: AtomicUsize::new(granules),
            data_off,
            path: path.to_path_buf(),
            file,
            grow_lock: Mutex::new(()),
            cold: Mutex::new(HashMap::new()),
            caches: empty_caches(),
            use_sharded: AtomicBool::new(true),
            shared,
            my_slot: AtomicUsize::new(usize::MAX),
            liveness: live,
            attach_flock: AtomicBool::new(false),
            report: AttachReport {
                created: true,
                attach_epoch: 1,
                segments: 1,
                ..Default::default()
            },
        };
        heap.segs[0].granules.store(granules, Relaxed);
        heap.segs[0].bm_off.store(PAGE, Relaxed);
        heap.segs[0].data_off.store(data_off, Relaxed);
        // Init order: every field first, the magic last — a creation cut
        // short by a crash leaves a file that fails attach with BadMagic
        // instead of a half-valid superblock.
        heap.word(W_VERSION).store(VERSION, SeqCst);
        heap.word(W_BASE).store(base as u64, SeqCst);
        heap.word(W_SIZE).store(size as u64, SeqCst);
        heap.word(W_EPOCH).store(1, SeqCst);
        heap.word(W_BUMP).store(0, SeqCst);
        heap.word(W_DATA_OFF).store(data_off as u64, SeqCst);
        heap.word(W_BM_OFF).store(PAGE as u64, SeqCst);
        heap.word(W_GRANULES).store(granules as u64, SeqCst);
        heap.word(W_KIND).store(0, SeqCst);
        heap.word(W_SEG_COUNT).store(0, SeqCst);
        heap.word(W_RESERVE).store(reserve as u64, SeqCst);
        heap.word(W_MAGIC).store(MAGIC, SeqCst);
        heap.claim_participant()?;
        if shared {
            heap.attach_flock.store(true, Relaxed);
        } else {
            flock_un(&heap.file);
        }
        Ok(Arc::new(heap))
    }

    /// Attaches an existing heap at its recorded base address, falling back
    /// to the relocation pass (see module docs).
    pub fn attach(path: &Path) -> Result<Arc<Self>, MapError> {
        Self::attach_opts(path, false)
    }

    /// [`MappedHeap::attach`] with the fixed-base request suppressed, forcing
    /// the offset-relocation pass (exercised directly by tests).
    pub fn attach_opts(path: &Path, force_new_base: bool) -> Result<Arc<Self>, MapError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        flock_ex(&file)?;
        Self::attach_locked(file, path, force_new_base, false, crate::liveness::default_probe())
    }

    /// Full (walking) attach body. `file` holds the attach flock; error paths
    /// release it implicitly by dropping/closing the file. Fails typed with
    /// [`MapError::AlreadyAttached`] when a live participant is registered —
    /// the walk resets shared volatile-in-persistent allocator state and
    /// heals "torn" blocks, which must never run under a live peer. Exclusive
    /// mode releases the flock before returning; shared mode keeps holding it
    /// (see [`MappedHeap::release_attach_lock`]).
    fn attach_locked(
        file: std::fs::File,
        path: &Path,
        force_new_base: bool,
        shared: bool,
        live: Arc<dyn crate::liveness::PidLiveness>,
    ) -> Result<Arc<Self>, MapError> {
        let len = file.metadata()?.len();
        if len < PAGE as u64 {
            return Err(MapError::Truncated { expected: PAGE as u64, found: len });
        }
        // Validate the superblock from a plain read before mapping anything.
        let sb = read_page0(&file)?;
        if let Some(pid) = sb_live_pid(&sb, &*live) {
            return Err(MapError::AlreadyAttached { pid });
        }
        let g = parse_sb(&sb, len)?;

        let fd = std::os::fd::AsRawFd::as_raw_fd(&file);
        let preferred = if force_new_base { None } else { Some(g.old_base) };
        let (base, _) = reserve_and_map(fd, &g.spans, g.reserve, preferred)?;
        let relocated = base as usize != g.old_base;
        if shared {
            // As in `create_locked`: keep the whole reservation file-backed
            // so peer growth never leaves an unmapped hole under a shared
            // pointer (see `map_shared_window`).
            if let Err(e) = map_window_tail(fd, base, g.total, g.reserve) {
                unsafe { sys_munmap(base as usize, g.reserve) };
                return Err(e);
            }
        }

        let mut heap = MappedHeap {
            base,
            reserve: g.reserve,
            size: AtomicUsize::new(g.total),
            n_segs: AtomicUsize::new(g.spans.len()),
            segs: std::array::from_fn(|_| SegSlot::default()),
            total_granules: AtomicUsize::new(g.total_granules),
            data_off: g.data_off,
            path: path.to_path_buf(),
            file,
            grow_lock: Mutex::new(()),
            cold: Mutex::new(HashMap::new()),
            caches: empty_caches(),
            use_sharded: AtomicBool::new(true),
            shared,
            my_slot: AtomicUsize::new(usize::MAX),
            liveness: live,
            attach_flock: AtomicBool::new(false),
            report: AttachReport { relocated, ..Default::default() },
        };
        heap.publish_seg_slots(&g);
        // Stale registry slots (every one is dead or mid-claim: the guard
        // above passed) are reclaimed before this process claims its own.
        heap.registry_clear_stale();
        let committed = heap.walk_and_heal()?;
        if relocated {
            heap.relocate(g.old_base, &committed);
            heap.word(W_BASE).store(base as u64, SeqCst);
        }
        let epoch = heap.word(W_EPOCH).load(Acquire) + 1;
        heap.word(W_EPOCH).store(epoch, SeqCst);
        heap.report.attach_epoch = epoch;
        heap.claim_participant()?;
        if shared {
            heap.attach_flock.store(true, Relaxed);
        } else {
            flock_un(&heap.file);
        }
        Ok(Arc::new(heap))
    }

    /// Joins a **live** shared heap: refuses live *exclusive* attachers
    /// ([`MapError::ExclusivePeer`]), maps the whole reservation file-backed
    /// strictly at the recorded base (peers exchange absolute pointers, so
    /// relocation is impossible — [`MapError::BaseTaken`]), claims a
    /// participant slot, and runs *no* walk/heal/sweep: the heap is live
    /// state, not a crash image. Releases the attach flock before returning.
    fn join_locked(
        file: std::fs::File,
        path: &Path,
        live: Arc<dyn crate::liveness::PidLiveness>,
    ) -> Result<Arc<Self>, MapError> {
        let len = file.metadata()?.len();
        if len < PAGE as u64 {
            return Err(MapError::Truncated { expected: PAGE as u64, found: len });
        }
        let sb = read_page0(&file)?;
        let g = parse_sb(&sb, len)?;
        // A live heap is only joinable when every live participant attached
        // in *shared* mode: an exclusive attacher runs private epochs and an
        // unlocked bump path, so sharing the arena behind its back frees
        // memory it still reads. The mode word is stamped before the pid
        // under this same flock, so a live slot always carries its mode
        // (checked from the page-0 buffer, before any mapping is attempted).
        let w = |i: usize| u64::from_le_bytes(sb[i * 8..i * 8 + 8].try_into().unwrap());
        for s in 0..PART_SLOTS {
            let pid = w(W_PART0 + s * PART_WORDS + PW_PID);
            if pid != 0
                && pid != CLAIMING
                && live.is_alive(pid, w(W_PART0 + s * PART_WORDS + PW_BIRTH))
                && w(W_PART0 + s * PART_WORDS + PW_MODE) != MODE_SHARED
            {
                return Err(MapError::ExclusivePeer { pid });
            }
        }
        let fd = std::os::fd::AsRawFd::as_raw_fd(&file);
        // Map the ENTIRE reservation file-backed at the recorded base — not
        // just the published segments — so a peer's later growth is readable
        // here the moment it happens (see `map_shared_window`).
        let Some(base) = map_shared_window(fd, g.reserve, g.old_base)? else {
            return Err(MapError::BaseTaken { base: g.old_base as u64 });
        };
        let mut heap = MappedHeap {
            base,
            reserve: g.reserve,
            size: AtomicUsize::new(g.total),
            n_segs: AtomicUsize::new(g.spans.len()),
            segs: std::array::from_fn(|_| SegSlot::default()),
            total_granules: AtomicUsize::new(g.total_granules),
            data_off: g.data_off,
            path: path.to_path_buf(),
            file,
            grow_lock: Mutex::new(()),
            cold: Mutex::new(HashMap::new()),
            caches: empty_caches(),
            use_sharded: AtomicBool::new(true),
            shared: true,
            my_slot: AtomicUsize::new(usize::MAX),
            liveness: live,
            attach_flock: AtomicBool::new(false),
            report: AttachReport { joined: true, segments: g.spans.len(), ..Default::default() },
        };
        heap.publish_seg_slots(&g);
        heap.claim_participant()?;
        let epoch = heap.word(W_EPOCH).fetch_add(1, SeqCst) + 1;
        heap.report.attach_epoch = epoch;
        flock_un(&heap.file);
        Ok(Arc::new(heap))
    }

    /// Fills the volatile segment slots from parsed superblock geometry.
    fn publish_seg_slots(&self, g: &SbGeom) {
        self.segs[0].granules.store(g.granules, Relaxed);
        self.segs[0].bm_off.store(PAGE, Relaxed);
        self.segs[0].data_off.store(g.data_off, Relaxed);
        let mut g_start = g.granules;
        for (k, &b) in g.seg_lens.iter().enumerate() {
            let (bm_bytes, gr) = seg_geometry(b);
            let s = &self.segs[1 + k];
            s.g_start.store(g_start, Relaxed);
            s.granules.store(gr, Relaxed);
            s.bm_off.store(g.spans[1 + k].0, Relaxed);
            s.data_off.store(g.spans[1 + k].0 + bm_bytes, Relaxed);
            g_start += gr;
        }
    }

    /// Attach `path` if it exists (and is non-empty), otherwise create a
    /// fresh heap of `bytes` there.
    pub fn open(path: &Path, bytes: usize) -> Result<Arc<Self>, MapError> {
        match std::fs::metadata(path) {
            Ok(m) if m.len() > 0 => Self::attach(path),
            _ => Self::create(path, bytes),
        }
    }

    /// Opens `path` for **shared multi-process** use: creates the heap when
    /// the file is absent/empty, *joins* it when live participants are
    /// registered, and otherwise runs a full walking attach. The decision is
    /// serialized across processes by an exclusive `flock` on the heap file
    /// (kernel-released if the holder dies). The initial attacher (create or
    /// full attach) returns **still holding** the lock, so the caller can
    /// finish structure-level recovery before admitting joiners — call
    /// [`MappedHeap::release_attach_lock`] when the heap is serviceable.
    /// Joiners return with the lock already released.
    pub fn open_shared(path: &Path, bytes: usize) -> Result<Arc<Self>, MapError> {
        Self::open_shared_with(path, bytes, crate::liveness::default_probe())
    }

    /// [`MappedHeap::open_shared`] with an injected liveness probe (tests
    /// exercise "falsely dead" / pid-reuse verdicts through this).
    pub fn open_shared_with(
        path: &Path,
        bytes: usize,
        live: Arc<dyn crate::liveness::PidLiveness>,
    ) -> Result<Arc<Self>, MapError> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        flock_ex(&file)?;
        if file.metadata()?.len() < PAGE as u64 {
            return Self::create_locked(file, path, bytes, 0, true, live);
        }
        if sb_live_pid(&read_page0(&file)?, &*live).is_some() {
            Self::join_locked(file, path, live)
        } else {
            Self::attach_locked(file, path, false, true, live)
        }
    }

    /// Releases the attach flock a shared-mode initial attach still holds
    /// (no-op otherwise, including for joiners). Until this is called,
    /// concurrent [`MappedHeap::open_shared`] callers block — that window is
    /// where the initial attacher replays structure-level recovery on what
    /// is still a crash image.
    pub fn release_attach_lock(&self) {
        if self.attach_flock.swap(false, AcqRel) {
            flock_un(&self.file);
        }
    }

    /// Runs `f` under an exclusive `flock` on the heap file — the
    /// cross-process mutex shared-mode catalog mutation serializes on. The
    /// kernel releases it if the holder dies, so a SIGKILLed peer can never
    /// wedge it. Must not be called while this handle still holds the
    /// *attach* lock (the unlock here would release that early); the
    /// store's shared open releases it before returning.
    pub fn with_file_lock<R>(&self, f: impl FnOnce() -> R) -> Result<R, MapError> {
        debug_assert!(
            !self.attach_flock.load(Relaxed),
            "with_file_lock while the attach flock is still held"
        );
        flock_ex(&self.file)?;
        let r = f();
        flock_un(&self.file);
        Ok(r)
    }

    // -- participant registry and recovery leases --------------------------

    #[inline]
    fn part_word(&self, slot: usize, w: usize) -> &AtomicU64 {
        debug_assert!(slot < PART_SLOTS && w < PART_WORDS);
        self.word(W_PART0 + slot * PART_WORDS + w)
    }

    /// Flushes a registry slot's cache line and fences — every registry
    /// transition is crash-ordered like the segment directory.
    fn flush_part(&self, slot: usize) {
        // SAFETY: superblock words inside the live mapping.
        unsafe { flush::clflush(self.base.add((W_PART0 + slot * PART_WORDS) * 8) as *const u8) };
        flush::mfence();
    }

    /// Claims a free registry slot for `(pid, birth)` attaching in `mode`.
    /// Crash-ordering: the slot is reserved with a CAS to the `CLAIMING`
    /// sentinel, the fields (birth, lease, mode) are written and flushed, and
    /// the **pid — the valid flag — is stored last** and flushed. A crash
    /// mid-claim leaves `CLAIMING`, which is never a live pid; it is
    /// reclaimed under the attach flock ([`MappedHeap::reclaim_torn_claim`]),
    /// never leased, because the sentinel may equally belong to a live joiner
    /// between its CAS and its pid stamp.
    fn claim_slot_raw(&self, pid: u64, birth: u64, mode: u64) -> Result<usize, MapError> {
        for s in 0..PART_SLOTS {
            let pw = self.part_word(s, PW_PID);
            if pw.load(Acquire) != 0 {
                continue;
            }
            if pw.compare_exchange(0, CLAIMING, AcqRel, Acquire).is_err() {
                continue;
            }
            self.part_word(s, PW_BIRTH).store(birth, SeqCst);
            self.part_word(s, PW_LEASE).store(0, SeqCst);
            self.part_word(s, PW_MODE).store(mode, SeqCst);
            self.flush_part(s);
            pw.store(pid, SeqCst);
            self.flush_part(s);
            return Ok(s);
        }
        Err(MapError::RegistryFull)
    }

    /// Claims this process's registry slot (every attach path does this).
    fn claim_participant(&self) -> Result<usize, MapError> {
        let mode = if self.shared { MODE_SHARED } else { MODE_EXCLUSIVE };
        let slot =
            self.claim_slot_raw(std::process::id() as u64, crate::liveness::self_birth(), mode)?;
        self.my_slot.store(slot, Relaxed);
        Ok(slot)
    }

    /// Clears every claimed registry slot (full attach, after the live-pid
    /// guard established they are all dead or mid-claim).
    fn registry_clear_stale(&self) {
        for s in 0..PART_SLOTS {
            if self.part_word(s, PW_PID).load(Acquire) != 0 {
                self.clear_participant(s);
            }
        }
    }

    /// Frees registry slot `slot`: the pid — the valid flag — is cleared and
    /// flushed **first**, so a concurrent lease claimant observes `Gone`
    /// before the lease word ever reads as free (clearing the lease first
    /// would let a second survivor win a lease on a slot that is mid-retire,
    /// then wipe state a *new* claimant of the slot owns). Crash-safe in
    /// either half: a re-claim overwrites birth/lease/mode before re-stamping
    /// the pid, so stale field bytes are never paired with a valid flag.
    /// Public for the recovery path, which calls it only after the dead
    /// peer's per-pid replay completed.
    pub fn clear_participant(&self, slot: usize) {
        self.part_word(slot, PW_PID).store(0, SeqCst);
        self.flush_part(slot);
        self.part_word(slot, PW_LEASE).store(0, SeqCst);
        self.part_word(slot, PW_BIRTH).store(0, SeqCst);
        self.part_word(slot, PW_MODE).store(0, SeqCst);
        self.flush_part(slot);
    }

    /// Whether registry slot `slot` holds a fully-claimed, live participant.
    fn slot_is_live(&self, slot: usize) -> bool {
        if slot >= PART_SLOTS {
            return false;
        }
        let pid = self.part_word(slot, PW_PID).load(Acquire);
        pid != 0
            && pid != CLAIMING
            && self.liveness.is_alive(pid, self.part_word(slot, PW_BIRTH).load(Acquire))
    }

    /// Every claimed registry slot as `(slot, pid, birth)` (`pid` may be the
    /// mid-claim sentinel; diagnostics and tests).
    pub fn participants(&self) -> Vec<(usize, u64, u64)> {
        (0..PART_SLOTS)
            .filter_map(|s| {
                let pid = self.part_word(s, PW_PID).load(Acquire);
                (pid != 0).then(|| (s, pid, self.part_word(s, PW_BIRTH).load(Acquire)))
            })
            .collect()
    }

    /// This process's registry slot (`None` before a claim — only possible
    /// on a heap mid-construction).
    pub fn my_participant(&self) -> Option<usize> {
        let s = self.my_slot.load(Relaxed);
        (s != usize::MAX).then_some(s)
    }

    /// Whether this handle attached in shared (multi-process) mode.
    pub fn is_shared(&self) -> bool {
        self.shared
    }

    /// The disjoint tid band owned by participant slot `slot`: every thread
    /// of that process must register a tid in this range so recovery-area
    /// slots, stats slots, epoch announce words and allocator caches stay
    /// per-process disjoint.
    pub fn tid_band(slot: usize) -> std::ops::Range<usize> {
        slot * PART_TIDS..(slot + 1) * PART_TIDS
    }

    /// Registry slots whose participant is **dead** (pid gone, recycled with
    /// a different birth stamp, zombie, or a claim torn mid-flight). Never
    /// includes this process's own slot.
    pub fn dead_participants(&self) -> Vec<usize> {
        let mine = self.my_slot.load(Relaxed);
        (0..PART_SLOTS)
            .filter(|&s| {
                s != mine && self.part_word(s, PW_PID).load(Acquire) != 0 && !self.slot_is_live(s)
            })
            .collect()
    }

    /// The injected liveness probe (recovery layers share its verdicts).
    pub fn liveness(&self) -> &Arc<dyn crate::liveness::PidLiveness> {
        &self.liveness
    }

    /// Tries to take the recovery lease on dead participant `dead` for this
    /// process. See [`MappedHeap::lease_try_claim_for`].
    pub fn lease_try_claim(&self, dead: usize) -> LeaseOutcome {
        match self.my_participant() {
            Some(me) => self.lease_try_claim_for(dead, me),
            None => LeaseOutcome::Held { holder: usize::MAX },
        }
    }

    /// Tries to take the recovery lease on dead participant `dead` for the
    /// claimant slot `claimant`. The lease word is `(seq << 8) | (holder
    /// slot + 1)`: a single CAS per seq transition means **at most one
    /// winner** even when several survivors (or a falsely-dead verdict)
    /// race for it. A lease whose holder is itself dead is *stolen* with a
    /// fresh sequence number, superseding the dead recoverer.
    ///
    /// The slot itself is probed before the lease is touched: a **live**
    /// participant's slot is never claimable ([`LeaseOutcome::Live`] — a
    /// stale dead-list must not erase a live registration), and a slot torn
    /// mid-claim carries no state to recover and may belong to a live joiner
    /// ([`LeaseOutcome::Torn`] — reclaim it under the attach flock instead).
    /// After winning the CAS the probed `(pid, birth)` identity is
    /// re-verified: the slot may have been retired — `clear_participant`
    /// clears the pid strictly before the lease — or even re-claimed between
    /// probe and CAS, in which case the claim is rolled back (by CAS, so a
    /// stale winner never wipes a successor's lease) and re-evaluated.
    pub fn lease_try_claim_for(&self, dead: usize, claimant: usize) -> LeaseOutcome {
        let lw = self.part_word(dead, PW_LEASE);
        loop {
            let pid = self.part_word(dead, PW_PID).load(Acquire);
            if pid == 0 {
                return LeaseOutcome::Gone;
            }
            if pid == CLAIMING {
                return LeaseOutcome::Torn;
            }
            let birth = self.part_word(dead, PW_BIRTH).load(Acquire);
            if self.liveness.is_alive(pid, birth) {
                return LeaseOutcome::Live { pid };
            }
            let cur = lw.load(Acquire);
            let holder = (cur & 0xFF) as usize;
            let next = (((cur >> 8) + 1) << 8) | (claimant as u64 + 1);
            if holder == claimant + 1 {
                // Re-entrant: we already hold it (idempotent recovery redo).
                return LeaseOutcome::Won { seq: cur >> 8 };
            }
            if holder != 0 && self.slot_is_live(holder - 1) {
                return LeaseOutcome::Held { holder: holder - 1 };
            }
            let stolen = holder != 0;
            if lw.compare_exchange(cur, next, AcqRel, Acquire).is_err() {
                continue;
            }
            if self.part_word(dead, PW_PID).load(Acquire) != pid
                || self.part_word(dead, PW_BIRTH).load(Acquire) != birth
            {
                let _ = lw.compare_exchange(next, 0, AcqRel, Acquire);
                self.flush_part(dead);
                continue;
            }
            self.flush_part(dead);
            if stolen {
                stats::count_leases_stolen(1);
            }
            return LeaseOutcome::Won { seq: next >> 8 };
        }
    }

    /// Reclaims a registry slot torn mid-claim (`PW_PID` still holds the
    /// claim sentinel), serialized under the attach flock. Claims themselves
    /// run under the flock, so while it is held a `CLAIMING` slot can only be
    /// the leftover of a crashed claimant — never a live joiner mid-claim —
    /// and clearing it races with nothing. Returns whether the slot was
    /// reclaimed (`false`: the claim completed or cleared in the meantime).
    pub fn reclaim_torn_claim(&self, slot: usize) -> Result<bool, MapError> {
        self.with_file_lock(|| {
            if self.part_word(slot, PW_PID).load(Acquire) == CLAIMING {
                self.clear_participant(slot);
                true
            } else {
                false
            }
        })
    }

    /// Drops a recovery lease without reclaiming the slot (a recoverer
    /// backing off; normally [`MappedHeap::clear_participant`] retires the
    /// lease together with the slot).
    pub fn lease_release(&self, dead: usize) {
        self.part_word(dead, PW_LEASE).store(0, SeqCst);
        self.flush_part(dead);
    }

    /// Test hook: registers a fake shared participant `(pid, birth)` in the
    /// registry, as if that process had attached. Returns its slot. Unlike a
    /// real claim this does not hold the attach flock — tests only.
    #[doc(hidden)]
    pub fn debug_register_peer(&self, pid: u64, birth: u64) -> Result<usize, MapError> {
        self.claim_slot_raw(pid, birth, MODE_SHARED)
    }

    /// Test hook: leaves registry slot `slot`'s pid word at the mid-claim
    /// sentinel, as a claimant crashed between its slot reservation and its
    /// pid stamp would. Tests only.
    #[doc(hidden)]
    pub fn debug_tear_claim(&self, slot: usize) {
        self.part_word(slot, PW_PID).store(CLAIMING, SeqCst);
        self.flush_part(slot);
    }

    /// Validates (or, on first use, records) the durable recovery-area
    /// geometry: builds whose slot count or stride disagree with what the
    /// heap was laid out with must fail typed instead of silently aliasing
    /// recovery slots across processes.
    pub fn validate_rec_geometry(&self, slots: u64, stride: u64) -> Result<(), MapError> {
        for (wi, what, expected) in [
            (W_REC_SLOTS, "recovery-area slot count", slots),
            (W_REC_STRIDE, "recovery-area slot stride", stride),
        ] {
            let w = self.word(wi);
            let found = w.load(Acquire);
            if found == 0 {
                w.store(expected, SeqCst);
                // SAFETY: superblock word inside the live mapping.
                unsafe { flush::clflush(self.base.add(wi * 8) as *const u8) };
                flush::mfence();
            } else if found != expected {
                return Err(MapError::LayoutMismatch { what, expected, found });
            }
        }
        Ok(())
    }

    // -- words, headers, bitmap -------------------------------------------

    #[inline]
    fn word(&self, idx: usize) -> &AtomicU64 {
        debug_assert!((idx + 1) * 8 <= PAGE);
        // SAFETY: inside the live, 8-aligned mapping.
        unsafe { &*(self.base.add(idx * 8) as *const AtomicU64) }
    }

    /// Index of the published segment holding global granule `g`.
    #[inline]
    fn seg_of_granule(&self, g: usize) -> Option<usize> {
        let n = self.n_segs.load(Acquire);
        // Newest segment first: the bump cursor lives there.
        for i in (0..n).rev() {
            let s = &self.segs[i];
            let start = s.g_start.load(Relaxed);
            if g >= start && g < start + s.granules.load(Relaxed) {
                return Some(i);
            }
        }
        None
    }

    /// As [`MappedHeap::seg_of_granule`], but a miss first re-maps segments a
    /// peer of a shared heap may have published since our last look.
    #[inline]
    fn seg_of_granule_refresh(&self, g: usize) -> Option<usize> {
        self.seg_of_granule(g).or_else(|| {
            self.refresh_segments().ok()?;
            self.seg_of_granule(g)
        })
    }

    /// VA offset of the *header granule* of global granule `g`.
    #[inline]
    fn granule_off(&self, g: usize) -> usize {
        let i = self.seg_of_granule_refresh(g).expect("granule inside the mapped arena");
        let s = &self.segs[i];
        s.data_off.load(Relaxed) + (g - s.g_start.load(Relaxed)) * GRANULE
    }

    #[inline]
    fn hdr(&self, g: usize) -> &AtomicU64 {
        // SAFETY: granule g starts inside a mapped data region.
        unsafe { &*(self.base.add(self.granule_off(g)) as *const AtomicU64) }
    }

    /// Second word of the header granule: the free-list next-link (volatile
    /// state in persistent space, rebuilt on attach; torn values harmless).
    #[inline]
    fn link_word(&self, g: usize) -> &AtomicU64 {
        // SAFETY: word 1 of the 8-word header granule.
        unsafe { &*(self.base.add(self.granule_off(g) + 8) as *const AtomicU64) }
    }

    #[inline]
    fn payload(&self, g: usize) -> *mut u8 {
        // Payload starts one granule after the header granule.
        unsafe { self.base.add(self.granule_off(g) + GRANULE) }
    }

    /// Granule index of the block whose payload starts at `p`.
    #[inline]
    fn granule_of(&self, p: *mut u8) -> usize {
        if let Some(g) = self.try_granule_of(p) {
            return g;
        }
        // Shared mode: the pointer may land in a segment a peer grew.
        let _ = self.refresh_segments();
        self.try_granule_of(p).expect("payload pointer outside every mapped segment")
    }

    fn try_granule_of(&self, p: *mut u8) -> Option<usize> {
        let off = (p as usize).checked_sub(self.base as usize)?;
        let n = self.n_segs.load(Acquire);
        for i in (0..n).rev() {
            let s = &self.segs[i];
            let doff = s.data_off.load(Relaxed);
            if off >= doff && off < doff + s.granules.load(Relaxed) * GRANULE {
                debug_assert!(off.is_multiple_of(GRANULE) && off >= doff + GRANULE);
                return Some(s.g_start.load(Relaxed) + (off - doff) / GRANULE - 1);
            }
        }
        None
    }

    /// Bitmap word + bit index covering global granule `g`.
    #[inline]
    fn bm_word(&self, g: usize) -> (&AtomicU64, u32) {
        let i = self.seg_of_granule_refresh(g).expect("granule inside the mapped arena");
        let s = &self.segs[i];
        let local = g - s.g_start.load(Relaxed);
        let off = s.bm_off.load(Relaxed) + (local / 64) * 8;
        debug_assert!(off + 8 <= s.data_off.load(Relaxed));
        // SAFETY: inside the segment's bitmap region.
        (unsafe { &*(self.base.add(off) as *const AtomicU64) }, (local % 64) as u32)
    }

    #[inline]
    fn bm_test(&self, g: usize) -> bool {
        let (w, b) = self.bm_word(g);
        w.load(Acquire) & (1 << b) != 0
    }

    #[inline]
    fn bm_set(&self, g: usize) {
        let (w, b) = self.bm_word(g);
        w.fetch_or(1 << b, SeqCst);
    }

    #[inline]
    fn bm_clear(&self, g: usize) {
        let (w, b) = self.bm_word(g);
        w.fetch_and(!(1 << b), SeqCst);
    }

    // -- attach walk -------------------------------------------------------

    /// Walks every block header up to the bump offset: rebuilds the free
    /// lists, poisons torn tail allocations, heals benign bitmap bits, and
    /// fails with a typed error on any state no crash ordering can produce.
    /// Blocks never straddle segments, so the walk runs **per segment on
    /// [`attach_threads`] scoped workers**. Returns the committed blocks as
    /// `(granule, payload_granules)`.
    fn walk_and_heal(&mut self) -> Result<Vec<(usize, usize)>, MapError> {
        let bump = self.word(W_BUMP).load(Acquire) as usize;
        // Reset the volatile-in-persistent allocator words (reservation
        // cursor, bump lock, global free-stack heads): their last-run values
        // are stale garbage, and the walk below restocks the stacks.
        self.word(W_BUMP_RESV).store(bump as u64, SeqCst);
        self.word(W_ALLOC_LOCK).store(0, SeqCst);
        for cls in 0..MAX_CLASS {
            self.word(W_GLOBAL0 + cls).store(0, SeqCst);
        }
        let n = self.n_segs.load(Acquire);
        let threads = attach_threads().min(n).max(1);
        let this = &*self;
        let results: Vec<Result<SegWalk, MapError>> = if threads <= 1 {
            (0..n).map(|i| this.walk_segment(i, bump)).collect()
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|sc| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let next = &next;
                        sc.spawn(move || {
                            let mut out = Vec::new();
                            loop {
                                let i = next.fetch_add(1, SeqCst);
                                if i >= n {
                                    break;
                                }
                                out.push((i, this.walk_segment(i, bump)));
                            }
                            out
                        })
                    })
                    .collect();
                let mut merged: Vec<Option<Result<SegWalk, MapError>>> =
                    (0..n).map(|_| None).collect();
                for h in handles {
                    for (i, r) in h.join().expect("attach walk worker panicked") {
                        merged[i] = Some(r);
                    }
                }
                merged.into_iter().map(|o| o.expect("every segment walked")).collect()
            })
        };
        let mut committed = Vec::new();
        let mut free: HashMap<u32, Vec<u32>> = HashMap::new();
        for r in results {
            let sw = r?;
            committed.extend(sw.committed);
            for (pg, mut list) in sw.free {
                free.entry(pg).or_default().append(&mut list);
            }
            self.report.poisoned += sw.poisoned;
            self.report.healed_bits += sw.healed;
            self.report.free_blocks += sw.free_blocks;
        }
        self.report.committed = committed.len();
        self.report.free_blocks += self.report.poisoned;
        self.report.segments = n;
        // Stock the allocator: hot classes into the lock-free stacks, the
        // rest into the cold map.
        for (pg, list) in free {
            if (pg as usize) <= MAX_CLASS {
                for g in list {
                    self.global_push(pg as usize - 1, g as usize);
                }
            } else {
                lock_np(&self.cold).entry(pg).or_default().extend(list);
            }
        }
        Ok(committed)
    }

    /// Walks one segment's slice of the granule space (see `walk_and_heal`).
    fn walk_segment(&self, i: usize, bump: usize) -> Result<SegWalk, MapError> {
        let s = &self.segs[i];
        let g0 = s.g_start.load(Relaxed);
        let granules = s.granules.load(Relaxed);
        let limit = bump.min(g0 + granules);
        let mut w = SegWalk::default();
        let mut committed_set: HashSet<usize> = HashSet::new();
        let mut g = g0;
        while g < limit {
            let (state, pg) = decode_hdr(self.hdr(g).load(Acquire))
                .ok_or(MapError::CorruptHeader { granule: g })?;
            let pg = pg as usize;
            if (state != ST_PAD && pg == 0) || g + 1 + pg > limit {
                return Err(MapError::CorruptHeader { granule: g });
            }
            match state {
                ST_PAD => {
                    // Segment-tail filler: skipped; its bits must be clear
                    // (enforced by the bitmap cross-check below).
                }
                ST_COMMITTED => {
                    if !self.bm_test(g) {
                        return Err(MapError::CorruptBitmap { granule: g });
                    }
                    w.committed.push((g, pg));
                    committed_set.insert(g);
                }
                ST_ALLOCATED => {
                    // Torn tail allocation: the owning operation never
                    // committed it, so nothing can reference it. Poison the
                    // payload (so any stale use is loud) and recycle it.
                    let p = self.payload(g) as *mut u64;
                    for k in 0..pg * (GRANULE / 8) {
                        // SAFETY: payload of a block wholly inside the arena.
                        unsafe { p.add(k).write(POISON) };
                    }
                    self.hdr(g).store(encode_hdr(ST_FREE, pg as u64), Release);
                    self.bm_clear(g);
                    w.free.entry(pg as u32).or_default().push(g as u32);
                    w.poisoned += 1;
                }
                ST_FREE => {
                    if self.bm_test(g) {
                        // Crash between the two halves of a free: benign.
                        self.bm_clear(g);
                        w.healed += 1;
                    }
                    w.free.entry(pg as u32).or_default().push(g as u32);
                    w.free_blocks += 1;
                }
                _ => return Err(MapError::CorruptHeader { granule: g }),
            }
            g += 1 + pg;
        }
        if g != limit {
            return Err(MapError::CorruptHeader { granule: g });
        }
        // Cross-check: every set bitmap bit must sit under a committed
        // header. A bit with no block under it cannot result from any crash
        // ordering — it is corruption.
        for wi in 0..granules.div_ceil(64) {
            let (word, _) = self.bm_word(g0 + wi * 64);
            let mut bits = word.load(Acquire);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let gran = g0 + wi * 64 + b;
                if !committed_set.contains(&gran) {
                    return Err(MapError::CorruptBitmap { granule: gran });
                }
            }
        }
        Ok(w)
    }

    /// The offset-relocation pass: rebases every committed payload word that
    /// points into the old mapping (see module docs for the aliasing caveat).
    /// Chunked over [`attach_threads`] workers — blocks are disjoint, so the
    /// chunks race on nothing.
    fn relocate(&self, old_base: usize, committed: &[(usize, usize)]) {
        let threads = attach_threads().max(1);
        if threads <= 1 || committed.len() < 1024 {
            self.relocate_chunk(old_base, committed);
            return;
        }
        let chunk = committed.len().div_ceil(threads);
        std::thread::scope(|sc| {
            for part in committed.chunks(chunk) {
                sc.spawn(move || self.relocate_chunk(old_base, part));
            }
        });
    }

    fn relocate_chunk(&self, old_base: usize, committed: &[(usize, usize)]) {
        let new_base = self.base as usize;
        let span = self.size.load(Acquire);
        for &(g, pg) in committed {
            let p = self.payload(g) as *mut u64;
            for i in 0..pg * (GRANULE / 8) {
                // SAFETY: exclusive attach; chunks hold disjoint blocks.
                let v = unsafe { p.add(i).read() };
                let t = v & !1; // strip the info-pointer tag bit
                if t >= old_base as u64 && t < (old_base + span) as u64 {
                    unsafe { p.add(i).write((t - old_base as u64 + new_base as u64) | (v & 1)) };
                }
            }
        }
    }

    // -- growth and the lock-free bump cursor ------------------------------

    /// Extends the arena by a new segment (double the current total, at
    /// least enough for `need_granules`, capped by the VA reservation).
    /// Returns `Ok` without growing when a concurrent grower already made
    /// room. See the module docs for the crash-ordering argument.
    fn grow(&self, need_granules: usize) -> Result<(), MapError> {
        let _guard = lock_np(&self.grow_lock);
        // A peer of a shared heap may have grown already: map its published
        // segments before extending the file ourselves.
        self.refresh_segments_locked()?;
        // Re-check under the lock: another thread may have grown while we
        // waited, or freed bump space past a pad.
        let cur = self.word(W_BUMP_RESV).load(Acquire) as usize;
        let mut pos = cur;
        while let Some(i) = self.seg_of_granule(pos) {
            let s = &self.segs[i];
            let end = s.g_start.load(Relaxed) + s.granules.load(Relaxed);
            if pos + need_granules <= end {
                return Ok(());
            }
            pos = end;
        }
        let n = self.n_segs.load(Acquire);
        let count = n - 1;
        if count >= MAX_SEGMENTS {
            return Err(MapError::Exhausted);
        }
        let total = self.size.load(Acquire);
        // Double the heap, but at least enough for the request; the VA
        // reservation is the hard ceiling.
        let min_bytes = ((need_granules + 2) * GRANULE * 2).next_multiple_of(PAGE);
        let mut new_bytes = total.max(min_bytes);
        if total.checked_add(new_bytes).is_none_or(|t| t > self.reserve) {
            new_bytes = self.reserve - total;
        }
        let (bm_bytes, granules) = seg_geometry(new_bytes);
        if new_bytes < PAGE || granules < need_granules {
            return Err(MapError::Exhausted);
        }
        // (1) Extend the file: the new range is zero-filled, i.e. a valid,
        // empty segment. (A longer leftover from a torn growth is truncated
        // away first — it was never published, so nothing points there.)
        self.file.set_len((total + new_bytes) as u64)?;
        let fd = std::os::fd::AsRawFd::as_raw_fd(&self.file);
        map_file_at(fd, new_bytes, self.base as usize + total, total)?;
        // (2) Stamp the directory entry, (3) publish the count last. The
        // flushes make the ordering hold on real NVM as well; they are
        // deliberately *uncounted* — allocator-internal durability, not part
        // of the measured op-level persistency protocol (persist-placement
        // goldens must not move).
        self.word(W_SEG0 + count).store(new_bytes as u64, SeqCst);
        // SAFETY: superblock word inside the live mapping.
        unsafe { flush::clflush(self.base.add((W_SEG0 + count) * 8) as *const u8) };
        flush::mfence();
        self.word(W_SEG_COUNT).store((count + 1) as u64, SeqCst);
        // SAFETY: superblock word inside the live mapping.
        unsafe { flush::clflush(self.base.add(W_SEG_COUNT * 8) as *const u8) };
        flush::mfence();
        // Volatile publication: slot fields first, slot count (Release) last.
        let g_start = self.total_granules.load(Acquire);
        let slot = &self.segs[n];
        slot.g_start.store(g_start, Relaxed);
        slot.granules.store(granules, Relaxed);
        slot.bm_off.store(total, Relaxed);
        slot.data_off.store(total + bm_bytes, Relaxed);
        self.total_granules.store(g_start + granules, Release);
        self.size.store(total + new_bytes, Release);
        self.n_segs.store(n + 1, Release);
        stats::count_segments_grown(1);
        Ok(())
    }

    /// Adopts any segments a *peer* published since our last look (shared
    /// heaps only; exclusive mode can never miss a segment). Cheap when
    /// nothing changed: one superblock load. This maintains the **volatile
    /// allocator metadata** (segment slots, granule ranges) — it does *not*
    /// gate dereference safety: shared attachers map their whole reservation
    /// file-backed up front, so peer-published bytes are readable before any
    /// refresh runs (see `map_shared_window`). The allocator refreshes on
    /// demand; public so readers about to translate a peer-published granule
    /// (catalog adoption) can refresh without allocating.
    pub fn refresh_segments(&self) -> Result<(), MapError> {
        if !self.shared
            || (self.word(W_SEG_COUNT).load(Acquire) as usize) < self.n_segs.load(Acquire)
        {
            return Ok(());
        }
        let _guard = lock_np(&self.grow_lock);
        self.refresh_segments_locked()
    }

    /// [`MappedHeap::refresh_segments`] body; caller holds `grow_lock`.
    /// Mirrors `grow`'s volatile publication (fields first, counts Release
    /// last), mapping each new segment at its file offset inside our own
    /// reservation — the grower already extended the file before publishing
    /// the directory entry, so `MAP_FIXED` of the published span is safe.
    fn refresh_segments_locked(&self) -> Result<(), MapError> {
        if !self.shared {
            return Ok(());
        }
        let published = self.word(W_SEG_COUNT).load(Acquire) as usize + 1;
        let n = self.n_segs.load(Acquire);
        if published <= n {
            return Ok(());
        }
        if published > MAX_SEGMENTS + 1 {
            return Err(MapError::BadSuperblock("segment count exceeds the directory"));
        }
        let fd = std::os::fd::AsRawFd::as_raw_fd(&self.file);
        for k in n..published {
            let bytes = self.word(W_SEG0 + k - 1).load(Acquire) as usize;
            if bytes < PAGE || !bytes.is_multiple_of(PAGE) {
                return Err(MapError::BadSuperblock("impossible segment-directory entry"));
            }
            let total = self.size.load(Acquire);
            if total + bytes > self.reserve {
                return Err(MapError::BadSuperblock("VA reservation does not cover the segments"));
            }
            map_file_at(fd, bytes, self.base as usize + total, total)?;
            let (bm_bytes, granules) = seg_geometry(bytes);
            let g_start = self.total_granules.load(Acquire);
            let slot = &self.segs[k];
            slot.g_start.store(g_start, Relaxed);
            slot.granules.store(granules, Relaxed);
            slot.bm_off.store(total, Relaxed);
            slot.data_off.store(total + bm_bytes, Relaxed);
            self.total_granules.store(g_start + granules, Release);
            self.size.store(total + bytes, Release);
            self.n_segs.store(k + 1, Release);
        }
        Ok(())
    }

    /// Serializes the shared-mode bump path under the `W_ALLOC_LOCK`
    /// superblock word (holder = participant slot + 1), stealing the lock —
    /// and healing the holder's un-published reservation gap — when the
    /// holder process is dead. Returns `None` in exclusive mode, where the
    /// bump path stays lock-free.
    fn lock_shared_bump(&self) -> Option<BumpLockGuard<'_>> {
        if !self.shared {
            return None;
        }
        let me = self.my_slot.load(Relaxed) as u64 + 1;
        let lock = self.word(W_ALLOC_LOCK);
        let mut spins = 0u32;
        loop {
            if lock.compare_exchange_weak(0, me, AcqRel, Acquire).is_ok() {
                self.heal_bump_gap();
                return Some(BumpLockGuard { heap: self });
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(1024) {
                // Periodically probe the holder: a SIGKILLed peer can die
                // with the lock held. (Threads of our own process read as
                // live — they release in finite time.)
                let cur = lock.load(Acquire);
                if cur != 0
                    && cur != me
                    && !self.slot_is_live((cur - 1) as usize)
                    && lock.compare_exchange(cur, me, AcqRel, Acquire).is_ok()
                {
                    self.heal_bump_gap();
                    return Some(BumpLockGuard { heap: self });
                }
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Closes the gap a dead bump-lock holder left between the persistent
    /// bump word and the reservation cursor: the granules were reserved but
    /// their headers may be missing, so the whole gap is overwritten with
    /// `PAD` filler (split at segment boundaries) and the bump published to
    /// the cursor. Restores the header-before-bump invariant for the next
    /// full-attach walk. Caller holds the bump lock; under it at most one
    /// reservation is ever outstanding, and a gap only exists after a steal.
    fn heal_bump_gap(&self) {
        let bump = self.word(W_BUMP).load(Acquire) as usize;
        let resv = self.word(W_BUMP_RESV).load(Acquire) as usize;
        if bump >= resv {
            return;
        }
        let mut g = bump;
        while g < resv {
            let i = match self.seg_of_granule(g) {
                Some(i) => i,
                None => {
                    let _ = self.refresh_segments();
                    self.seg_of_granule(g).expect("bump gap inside the mapped arena")
                }
            };
            let s = &self.segs[i];
            let end = (s.g_start.load(Relaxed) + s.granules.load(Relaxed)).min(resv);
            self.hdr(g).store(encode_hdr(ST_PAD, (end - g - 1) as u64), Release);
            // SAFETY: header granule inside the live mapping.
            unsafe { flush::clflush(self.base.add(self.granule_off(g)) as *const u8) };
            g = end;
        }
        flush::mfence();
        self.word(W_BUMP).store(resv as u64, Release);
        // SAFETY: superblock word inside the live mapping.
        unsafe { flush::clflush(self.base.add(W_BUMP * 8) as *const u8) };
        flush::mfence();
    }

    /// Reserves `need` contiguous granules from the bump region (growing the
    /// arena when exhausted). Lock-free: CASes the volatile reservation
    /// cursor forward, writing `PAD` filler over any segment tail it skips.
    fn bump_reserve(&self, need: usize) -> Result<Resv, MapError> {
        let resv = self.word(W_BUMP_RESV);
        loop {
            let cur = resv.load(Acquire) as usize;
            let mut pads: Vec<(usize, usize)> = Vec::new();
            let mut pos = cur;
            let start = loop {
                let Some(i) = self.seg_of_granule(pos) else { break None };
                let s = &self.segs[i];
                let seg_end = s.g_start.load(Relaxed) + s.granules.load(Relaxed);
                if pos + need <= seg_end {
                    break Some(pos);
                }
                pads.push((pos, seg_end - pos - 1));
                pos = seg_end;
            };
            let Some(start) = start else {
                self.grow(need)?;
                continue;
            };
            let end = start + need;
            if resv.compare_exchange(cur as u64, end as u64, AcqRel, Acquire).is_err() {
                continue;
            }
            // Won [cur, end): write the pad headers now; the caller writes
            // the block headers and then publishes the persistent bump.
            for (g, ppg) in pads {
                self.hdr(g).store(encode_hdr(ST_PAD, ppg as u64), Release);
            }
            return Ok(Resv { from: cur, start, end });
        }
    }

    /// Publishes the persistent bump word for the reservation `[from, to)`,
    /// **in reservation order**: waits until every earlier reservation has
    /// published (and therefore written its headers), preserving the
    /// header-before-bump invariant across threads.
    fn publish_bump(&self, from: usize, to: usize) {
        let w = self.word(W_BUMP);
        let mut spins = 0u32;
        while w.load(Acquire) != from as u64 {
            spins += 1;
            if spins > 128 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        w.store(to as u64, Release);
    }

    // -- allocation --------------------------------------------------------

    /// Pops from / pushes to the per-class global lock-free stack. The heads
    /// live in superblock words ([`W_GLOBAL0`]), so in shared mode every
    /// attached process pushes to and pops from the same stacks.
    fn global_pop(&self, cls: usize) -> Option<usize> {
        let head = self.word(W_GLOBAL0 + cls);
        loop {
            let h = head.load(Acquire);
            let g1 = h & 0xFFFF_FFFF;
            if g1 == 0 {
                return None;
            }
            let g = (g1 - 1) as usize;
            let next = self.link_word(g).load(Acquire) & 0xFFFF_FFFF;
            let ver = (h >> 32).wrapping_add(1) & 0xFFFF_FFFF;
            if head.compare_exchange_weak(h, (ver << 32) | next, AcqRel, Acquire).is_ok() {
                return Some(g);
            }
        }
    }

    fn global_push(&self, cls: usize, g: usize) {
        let head = self.word(W_GLOBAL0 + cls);
        loop {
            let h = head.load(Acquire);
            self.link_word(g).store(h & 0xFFFF_FFFF, Release);
            let ver = (h >> 32).wrapping_add(1) & 0xFFFF_FFFF;
            if head.compare_exchange_weak(h, (ver << 32) | (g as u64 + 1), AcqRel, Acquire).is_ok()
            {
                return;
            }
        }
    }

    /// This thread's size-class cache, when it has a registered tid.
    ///
    /// SAFETY (of the cell access): the slot is indexed by the caller's own
    /// tid and only ever touched by that thread.
    #[allow(clippy::mut_from_ref)]
    fn my_cache(&self) -> Option<&mut ThreadCache> {
        let t = tid::try_tid()?;
        Some(unsafe { &mut *self.caches[t].get() })
    }

    /// Allocates a block with at least `bytes` of payload (64-byte aligned,
    /// rounded up to whole granules). The block is `ALLOCATED`: the caller
    /// must initialize the payload and then call [`MappedHeap::commit`];
    /// until then an attach treats it as torn and poisons it.
    pub fn alloc(&self, bytes: usize) -> Result<*mut u8, MapError> {
        stats::count_heap_allocs(1);
        let pg = bytes.max(1).div_ceil(GRANULE);
        if pg <= MAX_CLASS && self.use_sharded.load(Relaxed) {
            self.alloc_sharded(pg)
        } else {
            self.alloc_cold(pg)
        }
    }

    /// Flips a free-list block back to `ALLOCATED` and returns its payload.
    fn take_block(&self, g: usize, pg: usize) -> *mut u8 {
        self.hdr(g).store(encode_hdr(ST_ALLOCATED, pg as u64), Release);
        self.payload(g)
    }

    fn alloc_sharded(&self, pg: usize) -> Result<*mut u8, MapError> {
        let cls = pg - 1;
        if let Some(cache) = self.my_cache() {
            if let Some(g) = cache[cls].pop() {
                stats::count_free_list_hits(1);
                return Ok(self.take_block(g as usize, pg));
            }
        }
        if let Some(g) = self.global_pop(cls) {
            stats::count_free_list_hits(1);
            return Ok(self.take_block(g, pg));
        }
        // Slab refill: carve SLAB_BLOCKS same-class blocks out of one bump
        // reservation. Block 0 is returned ALLOCATED; the rest are stocked
        // FREE (crash-safe: a lost cache is rebuilt from their headers).
        // Shared mode serializes the reserve+publish window under the bump
        // lock so a SIGKILLed peer can leave at most one healable gap.
        stats::count_slab_refills(1);
        let stride = 1 + pg;
        let bump_lock = self.lock_shared_bump();
        let r = self.bump_reserve(stride * SLAB_BLOCKS)?;
        self.hdr(r.start).store(encode_hdr(ST_ALLOCATED, pg as u64), Release);
        for i in 1..SLAB_BLOCKS {
            self.hdr(r.start + i * stride).store(encode_hdr(ST_FREE, pg as u64), Release);
        }
        self.publish_bump(r.from, r.end);
        drop(bump_lock);
        if let Some(cache) = self.my_cache() {
            for i in 1..SLAB_BLOCKS {
                cache[cls].push((r.start + i * stride) as u32);
            }
        } else {
            for i in 1..SLAB_BLOCKS {
                self.global_push(cls, r.start + i * stride);
            }
        }
        Ok(self.payload(r.start))
    }

    /// The mutex path: blocks above `MAX_CLASS` (recovery areas, roots,
    /// catalogs), plus everything when sharding is disabled — this is
    /// exactly the pre-v3 global-mutex allocator, kept reachable so fig13
    /// can measure old-vs-new on the same binary.
    fn alloc_cold(&self, pg: usize) -> Result<*mut u8, MapError> {
        let mut cold = lock_np(&self.cold);
        if let Some(list) = cold.get_mut(&(pg as u32)) {
            if let Some(g) = list.pop() {
                stats::count_free_list_hits(1);
                return Ok(self.take_block(g as usize, pg));
            }
        }
        // Held across the bump on purpose: models the old allocator's
        // serialization when sharding is off; large blocks are rare.
        let bump_lock = self.lock_shared_bump();
        let r = self.bump_reserve(1 + pg)?;
        self.hdr(r.start).store(encode_hdr(ST_ALLOCATED, pg as u64), Release);
        self.publish_bump(r.from, r.end);
        drop(bump_lock);
        Ok(self.payload(r.start))
    }

    /// Marks the block at payload `p` fully initialized. Bitmap bit before
    /// header state (see module docs for the crash analysis).
    pub fn commit(&self, p: *mut u8) {
        let g = self.granule_of(p);
        let (state, pg) = decode_hdr(self.hdr(g).load(Acquire)).expect("commit of a non-block");
        debug_assert_eq!(state, ST_ALLOCATED, "commit of a block not in ALLOCATED state");
        self.bm_set(g);
        self.hdr(g).store(encode_hdr(ST_COMMITTED, pg), Release);
    }

    /// Returns the block at payload `p` to the free lists (header to `FREE`
    /// before the bitmap bit clears; no destructor runs).
    ///
    /// # Safety
    /// `p` must be a payload pointer obtained from this heap's
    /// [`MappedHeap::alloc`] whose block no thread can still reach, freed at
    /// most once per allocation.
    pub unsafe fn free(&self, p: *mut u8) {
        let g = self.granule_of(p);
        let (_, pg) = decode_hdr(self.hdr(g).load(Acquire)).expect("free of a non-block");
        self.hdr(g).store(encode_hdr(ST_FREE, pg), Release);
        self.bm_clear(g);
        let pg = pg as usize;
        if pg <= MAX_CLASS && self.use_sharded.load(Relaxed) {
            let cls = pg - 1;
            if let Some(cache) = self.my_cache() {
                if cache[cls].len() < CACHE_CAP {
                    cache[cls].push(g as u32);
                    return;
                }
            }
            self.global_push(cls, g);
        } else {
            lock_np(&self.cold).entry(pg as u32).or_default().push(g as u32);
        }
    }

    /// Frees every committed block whose payload address is **not** in
    /// `live` (attach-time garbage collection of blocks leaked by a crash:
    /// pool caches, limbo bags, unlinked nodes). Runs per segment on
    /// [`attach_threads`] workers; the frees land in the lock-free stacks /
    /// cold map, which are safe under that concurrency. Returns the number
    /// swept.
    ///
    /// # Safety
    /// Requires quiescent exclusive access, and `live` must contain every
    /// payload address still reachable from the structure's roots.
    pub unsafe fn sweep_except(&self, live: &HashSet<usize>) -> usize {
        let bump = self.word(W_BUMP).load(Acquire) as usize;
        let n = self.n_segs.load(Acquire);
        let threads = attach_threads().min(n).max(1);
        if threads <= 1 {
            let mut swept = 0;
            for i in 0..n {
                swept += unsafe { self.sweep_segment(i, bump, live) };
            }
            return swept;
        }
        let next = AtomicUsize::new(0);
        let swept = AtomicUsize::new(0);
        std::thread::scope(|sc| {
            for _ in 0..threads {
                let next = &next;
                let swept = &swept;
                sc.spawn(move || loop {
                    let i = next.fetch_add(1, SeqCst);
                    if i >= n {
                        break;
                    }
                    swept.fetch_add(unsafe { self.sweep_segment(i, bump, live) }, SeqCst);
                });
            }
        });
        swept.load(SeqCst)
    }

    /// # Safety
    /// As [`MappedHeap::sweep_except`] (one segment's slice).
    unsafe fn sweep_segment(&self, i: usize, bump: usize, live: &HashSet<usize>) -> usize {
        let s = &self.segs[i];
        let g0 = s.g_start.load(Relaxed);
        let limit = bump.min(g0 + s.granules.load(Relaxed));
        let mut swept = 0;
        let mut g = g0;
        while g < limit {
            let (state, pg) = decode_hdr(self.hdr(g).load(Acquire)).expect("swept a corrupt heap");
            let pg = pg as usize;
            if state == ST_COMMITTED && !live.contains(&(self.payload(g) as usize)) {
                unsafe { self.free(self.payload(g)) };
                swept += 1;
            }
            g += 1 + pg;
        }
        swept
    }

    // -- root directory and metadata --------------------------------------

    /// Looks up a root-directory entry.
    pub fn root_get(&self, key: u64) -> Option<*mut u8> {
        debug_assert_ne!(key, 0, "root keys are nonzero");
        for s in 0..ROOT_SLOTS {
            if self.word(W_ROOT0 + 2 * s).load(Acquire) == key {
                let off = self.word(W_ROOT0 + 2 * s + 1).load(Acquire) as usize;
                // SAFETY: offsets are validated at registration.
                return Some(unsafe { self.base.add(off) });
            }
        }
        None
    }

    /// Returns the root block for `key`, allocating (zeroed) and registering
    /// a committed block of `bytes` on first use. The `bool` is `true` iff
    /// the block was created by this call.
    pub fn root_alloc(&self, key: u64, bytes: usize) -> Result<(*mut u8, bool), MapError> {
        if let Some(p) = self.root_get(key) {
            return Ok((p, false));
        }
        let p = self.alloc(bytes)?;
        // Blocks recycled from the free list carry stale payloads.
        unsafe { std::ptr::write_bytes(p, 0, bytes.max(1).div_ceil(GRANULE) * GRANULE) };
        self.commit(p);
        let off = (p as usize - self.base as usize) as u64;
        for s in 0..ROOT_SLOTS {
            let kw = self.word(W_ROOT0 + 2 * s);
            if kw.load(Acquire) == 0 {
                // Offset first, key last: the key word is the valid flag.
                self.word(W_ROOT0 + 2 * s + 1).store(off, SeqCst);
                kw.store(key, SeqCst);
                return Ok((p, true));
            }
        }
        Err(MapError::BadSuperblock("root directory full"))
    }

    /// Structure kind recorded in the superblock (0 = none yet).
    pub fn kind(&self) -> u64 {
        self.word(W_KIND).load(Acquire)
    }

    /// Records the structure kind hosted by this heap.
    pub fn set_kind(&self, kind: u64) {
        self.word(W_KIND).store(kind, SeqCst);
    }

    /// Whether `addr` lies inside this heap's mapping.
    pub fn contains(&self, addr: usize) -> bool {
        addr >= self.base as usize && addr < self.base as usize + self.size.load(Acquire)
    }

    /// Whether the whole `len`-byte span starting at `addr` lies inside the
    /// mapping — the check attach-time pointer validation must use before
    /// dereferencing an object of that size (an object *starting* in the
    /// last bytes of the mapping would otherwise be read past its end).
    pub fn contains_span(&self, addr: usize, len: usize) -> bool {
        addr >= self.base as usize
            && addr
                .checked_add(len)
                .is_some_and(|end| end <= self.base as usize + self.size.load(Acquire))
    }

    /// Base address of the mapping.
    pub fn base(&self) -> *mut u8 {
        self.base
    }

    /// Mapped size in bytes (all segments; grows).
    pub fn size(&self) -> usize {
        self.size.load(Acquire)
    }

    /// Mapped segments (1 until the heap first grows).
    pub fn segments(&self) -> usize {
        self.n_segs.load(Acquire)
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// What this attach found and did.
    pub fn report(&self) -> &AttachReport {
        &self.report
    }

    /// Granules currently allocated from the bump region (diagnostics).
    pub fn bump_granules(&self) -> usize {
        self.word(W_BUMP).load(Acquire) as usize
    }

    /// Routes **all** allocation through the single-mutex cold path,
    /// modelling the pre-v3 allocator (fig13's old-vs-sharded microbench).
    /// Call on a freshly created heap before its first allocation; blocks
    /// already stocked in the sharded lists are ignored until the next
    /// attach rebuilds the free lists.
    pub fn set_use_sharded(&self, on: bool) {
        self.use_sharded.store(on, Relaxed);
    }

    // -- named-structure catalog -------------------------------------------

    /// Returns (allocating on first use) the catalog block: a fixed array
    /// of [`CATALOG_SLOTS`] entries mapping *names* to
    /// `(kind, cfg, root block)` so one heap can host many structures
    /// (the store layer). The caller registers it under its own root key.
    pub fn catalog_root(&self, key: u64) -> Result<*mut u8, MapError> {
        let (p, _) = self.root_alloc(key, CATALOG_SLOTS * CATALOG_ENTRY_BYTES)?;
        Ok(p)
    }

    /// Entry slot `i` of the catalog block at `cat`.
    ///
    /// # Safety
    /// `cat` must be the committed catalog block of this heap.
    unsafe fn catalog_word(&self, cat: *mut u8, slot: usize, word: usize) -> &AtomicU64 {
        debug_assert!(slot < CATALOG_SLOTS && word < CATALOG_ENTRY_BYTES / 8);
        // SAFETY: in-bounds word of the committed catalog block.
        unsafe { &*(cat.add(slot * CATALOG_ENTRY_BYTES + word * 8) as *const AtomicU64) }
    }

    /// Decodes every valid catalog entry. Returns a typed
    /// [`MapError::CorruptCatalog`] for any slot whose kind word is set but
    /// whose fields are inconsistent (root offset out of bounds, oversized
    /// or non-UTF-8 name) — shapes no crash ordering can produce.
    ///
    /// # Safety
    /// `cat` must be the committed catalog block of this heap.
    pub unsafe fn catalog_entries(&self, cat: *mut u8) -> Result<Vec<CatalogEntry>, MapError> {
        let mut out = Vec::new();
        for slot in 0..CATALOG_SLOTS {
            // SAFETY: in-bounds catalog words.
            let e = unsafe { self.catalog_read(cat, slot) }?;
            if let Some(e) = e {
                out.push(e);
            }
        }
        Ok(out)
    }

    /// Decodes one catalog slot (`None` when empty).
    ///
    /// # Safety
    /// As [`MappedHeap::catalog_entries`].
    unsafe fn catalog_read(
        &self,
        cat: *mut u8,
        slot: usize,
    ) -> Result<Option<CatalogEntry>, MapError> {
        // SAFETY: in-bounds catalog words per CATALOG_SLOTS.
        let w = |i: usize| unsafe { self.catalog_word(cat, slot, i) }.load(Acquire);
        let kind = w(0);
        if kind == 0 {
            return Ok(None);
        }
        let cfg = w(1);
        let root_off = w(2) as usize;
        let name_len = w(3) as usize;
        if name_len == 0
            || name_len > CATALOG_NAME_BYTES
            || root_off < self.data_off
            || root_off >= self.size.load(Acquire)
        {
            return Err(MapError::CorruptCatalog { slot });
        }
        let mut raw = [0u8; CATALOG_NAME_BYTES];
        for (i, chunk) in raw.chunks_mut(8).enumerate() {
            chunk.copy_from_slice(&w(4 + i).to_le_bytes());
        }
        let Ok(name) = std::str::from_utf8(&raw[..name_len]) else {
            return Err(MapError::CorruptCatalog { slot });
        };
        Ok(Some(CatalogEntry {
            slot,
            name: name.to_string(),
            kind,
            cfg,
            // SAFETY: offset bounds-checked above.
            root: unsafe { self.base.add(root_off) },
        }))
    }

    /// Appends a named entry: allocates a zeroed, committed root block of
    /// `root_bytes`, writes the entry fields, and stamps the kind word
    /// **last** (the valid flag) — a creation cut short by a kill leaves
    /// the slot empty and the orphaned root block unreferenced, which the
    /// next attach sweeps. The caller must have checked the name is not
    /// already present.
    ///
    /// # Safety
    /// `cat` must be the committed catalog block of this heap; single
    /// attach-owner discipline (no concurrent catalog writers).
    pub unsafe fn catalog_append(
        &self,
        cat: *mut u8,
        name: &str,
        kind: u64,
        cfg: u64,
        root_bytes: usize,
    ) -> Result<*mut u8, MapError> {
        assert!(kind != 0, "kind 0 is the empty-slot marker");
        assert!(
            !name.is_empty() && name.len() <= CATALOG_NAME_BYTES,
            "catalog names must be 1..={CATALOG_NAME_BYTES} bytes, got {:?}",
            name
        );
        let slot = (0..CATALOG_SLOTS)
            // SAFETY: in-bounds catalog words.
            .find(|&s| unsafe { self.catalog_word(cat, s, 0) }.load(Acquire) == 0)
            .ok_or(MapError::CatalogFull)?;
        let root = self.alloc(root_bytes)?;
        // Blocks recycled from the free list carry stale payloads.
        // SAFETY: freshly allocated block of at least root_bytes.
        unsafe { std::ptr::write_bytes(root, 0, root_bytes.max(1).div_ceil(GRANULE) * GRANULE) };
        self.commit(root);
        let mut raw = [0u8; CATALOG_NAME_BYTES];
        raw[..name.len()].copy_from_slice(name.as_bytes());
        // SAFETY: in-bounds catalog words; fields first, kind (valid) last.
        unsafe {
            self.catalog_word(cat, slot, 1).store(cfg, SeqCst);
            self.catalog_word(cat, slot, 2)
                .store((root as usize - self.base as usize) as u64, SeqCst);
            self.catalog_word(cat, slot, 3).store(name.len() as u64, SeqCst);
            for (i, chunk) in raw.chunks(8).enumerate() {
                self.catalog_word(cat, slot, 4 + i)
                    .store(u64::from_le_bytes(chunk.try_into().unwrap()), SeqCst);
            }
            self.catalog_word(cat, slot, 0).store(kind, SeqCst);
        }
        Ok(root)
    }
}

/// Catalog geometry: entries per heap and bytes per entry / name.
pub const CATALOG_SLOTS: usize = 16;
/// Bytes of one catalog entry (one allocation granule).
pub const CATALOG_ENTRY_BYTES: usize = 64;
/// Maximum name length in bytes (UTF-8).
pub const CATALOG_NAME_BYTES: usize = 32;

/// One decoded catalog entry: a named structure hosted by the heap.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Catalog slot index (error reporting).
    pub slot: usize,
    /// The structure's name (unique per heap).
    pub name: String,
    /// Structure-kind tag (the store layer interprets it).
    pub kind: u64,
    /// Configuration word recorded at creation.
    pub cfg: u64,
    /// The structure's root block payload.
    pub root: *mut u8,
}

// ---------------------------------------------------------------------------
// The persistency model
// ---------------------------------------------------------------------------

/// Shared-cache persistency model over a [`MappedHeap`]: same instruction
/// behaviour as [`crate::RealNvm`] (`pwb` = `clflush`, `psync` = `mfence`,
/// all counted), but the persistent words live in a file-backed mapping, so
/// the structure state survives the process. See the module docs for what
/// `SIGKILL`-durability does and does not require.
pub struct MappedNvm;

impl Persist for MappedNvm {
    const NAME: &'static str = "mapped";
    const MAPPED: bool = true;
    type Meta = ();

    #[inline]
    fn load(w: &PWord<Self>) -> u64 {
        raw_load(w)
    }
    #[inline]
    fn store(w: &PWord<Self>, v: u64) {
        raw_store(w, v)
    }
    #[inline]
    fn cas(w: &PWord<Self>, old: u64, new: u64) -> u64 {
        raw_cas(w, old, new)
    }

    #[inline]
    fn pwb(w: &PWord<Self>) {
        crate::coalesce::lint::note_pwb(w.addr());
        // SAFETY: `w.addr()` points into the live `PWord` behind `w`.
        unsafe { flush::clflush(w.addr()) };
        stats::count_pwb(1);
    }
    #[inline]
    fn pfence() {
        // Pending coalesced lines must be written back before post-fence
        // flushes (same TSO argument as RealNvm).
        Self::coal_drain();
        crate::coalesce::lint::fence();
        stats::count_pfence();
    }
    #[inline]
    fn psync() {
        Self::coal_drain();
        crate::coalesce::lint::fence();
        flush::mfence();
        stats::count_psync();
    }
    #[inline]
    fn pbarrier(w: &PWord<Self>) {
        Self::coal_drain();
        crate::coalesce::lint::fence();
        // SAFETY: as in `pwb`.
        unsafe { flush::clflush(w.addr()) };
        flush::mfence();
        stats::count_pbarrier(1);
    }
    #[inline]
    fn pwb_obj<T: PersistWords<Self> + ?Sized>(obj: &T) {
        let (p, len) = obj.used_range();
        // SAFETY: `used_range` is a sub-range of the live object behind `obj`.
        let n = unsafe { flush::clflush_range(p, len) };
        stats::count_pwb(n);
    }
    #[inline]
    fn pbarrier_obj<T: PersistWords<Self> + ?Sized>(obj: &T) {
        Self::coal_drain();
        crate::coalesce::lint::fence();
        let (p, len) = obj.used_range();
        // SAFETY: as in `pwb_obj`.
        let n = unsafe { flush::clflush_range(p, len) };
        flush::mfence();
        stats::count_pbarrier(n);
    }

    #[inline]
    fn pwb_coal(w: &PWord<Self>) {
        match crate::coalesce::note(w.addr()) {
            crate::coalesce::Note::New => stats::count_pwb(1),
            crate::coalesce::Note::Dup => stats::count_pwb_elided(1),
            crate::coalesce::Note::Full => {
                // SAFETY: live `PWord` behind `w`.
                unsafe { flush::clflush(w.addr()) };
                stats::count_pwb(1);
            }
        }
    }
    #[inline]
    fn pwb_obj_coal<T: PersistWords<Self> + ?Sized>(obj: &T) {
        let (p, len) = obj.used_range();
        let mut line = crate::coalesce::line_of(p);
        let end = p as u64 + len as u64;
        while line < end {
            match crate::coalesce::note(line as *const u8) {
                crate::coalesce::Note::New => stats::count_pwb(1),
                crate::coalesce::Note::Dup => stats::count_pwb_elided(1),
                crate::coalesce::Note::Full => {
                    // SAFETY: the line lies inside the live object.
                    unsafe { flush::clflush(line as *const u8) };
                    stats::count_pwb(1);
                }
            }
            line += crate::CACHE_LINE as u64;
        }
    }
    #[inline]
    fn coal_drain() {
        // SAFETY: pending lines were noted from objects still live at the
        // draining fence (`pwb_coal` contract); mapped-heap objects are
        // additionally never unmapped while the structure is attached.
        let n = crate::coalesce::drain(|line| unsafe { flush::clflush(line as *const u8) });
        if n > 0 {
            stats::count_lines_coalesced(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "isb_mapped_{}_{}_{name}.heap",
            std::process::id(),
            rand_suffix()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn rand_suffix() -> u64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now().duration_since(UNIX_EPOCH).unwrap().subsec_nanos() as u64
    }

    #[test]
    fn create_alloc_commit_reattach_roundtrip() {
        let path = tmp("roundtrip");
        let vals: Vec<u64> = (0..100).map(|i| 0x1234_5678 + i).collect();
        let offs: Vec<usize> = {
            let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
            assert!(heap.report().created);
            vals.iter()
                .map(|&v| {
                    let p = heap.alloc(24).unwrap();
                    unsafe { (p as *mut u64).write(v) };
                    heap.commit(p);
                    p as usize - heap.base() as usize
                })
                .collect()
        }; // heap dropped: unmapped, file persists
        let heap = MappedHeap::attach(&path).unwrap();
        assert!(!heap.report().created);
        assert_eq!(heap.report().committed, 100);
        assert_eq!(heap.report().poisoned, 0);
        for (off, &v) in offs.iter().zip(&vals) {
            let p = unsafe { heap.base().add(*off) } as *const u64;
            assert_eq!(unsafe { p.read() }, v);
        }
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_allocation_is_poisoned_and_recycled() {
        let path = tmp("torn");
        {
            let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
            let p = heap.alloc(64).unwrap();
            unsafe { (p as *mut u64).write(7) };
            heap.commit(p);
            let torn = heap.alloc(64).unwrap();
            unsafe { (torn as *mut u64).write(0xAAAA) };
            // no commit: simulates a crash mid-allocation
        }
        let heap = MappedHeap::attach(&path).unwrap();
        assert_eq!(heap.report().poisoned, 1);
        assert_eq!(heap.report().committed, 1);
        // The torn block was recycled: the next same-size alloc reuses it,
        // and its payload was poisoned in between.
        let p = heap.alloc(64).unwrap();
        assert_eq!(unsafe { (p as *const u64).read() }, POISON);
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn free_and_reuse_across_attach() {
        let path = tmp("freelist");
        let (off_kept, off_freed) = {
            let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
            let a = heap.alloc(16).unwrap();
            heap.commit(a);
            let b = heap.alloc(16).unwrap();
            heap.commit(b);
            unsafe { heap.free(b) };
            (a as usize - heap.base() as usize, b as usize - heap.base() as usize)
        };
        let heap = MappedHeap::attach(&path).unwrap();
        assert_eq!(heap.report().committed, 1);
        // The slab refill carved extra FREE blocks besides the one we freed.
        assert!(heap.report().free_blocks >= 1);
        // Free blocks feed later allocations of their size class: the next
        // alloc comes off a rebuilt free list, not the bump cursor.
        let bump = heap.bump_granules();
        let c = heap.alloc(16).unwrap();
        assert!(c as usize - heap.base() as usize != off_kept);
        assert_eq!(heap.bump_granules(), bump, "allocation bypassed the free lists");
        let _ = off_freed;
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn root_directory_persists() {
        let path = tmp("roots");
        {
            let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
            let (p, fresh) = heap.root_alloc(42, 128).unwrap();
            assert!(fresh);
            unsafe { (p as *mut u64).write(0xC0FFEE) };
            heap.set_kind(7);
        }
        let heap = MappedHeap::attach(&path).unwrap();
        assert_eq!(heap.kind(), 7);
        let (p, fresh) = heap.root_alloc(42, 128).unwrap();
        assert!(!fresh);
        assert_eq!(unsafe { (p as *const u64).read() }, 0xC0FFEE);
        assert!(heap.root_get(99).is_none());
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exhaustion_is_a_typed_error() {
        let path = tmp("exhaust");
        // Growth disabled: the reservation equals the initial segment.
        let heap = MappedHeap::create_bounded(&path, MIN_HEAP_BYTES, MIN_HEAP_BYTES).unwrap();
        let mut n = 0;
        loop {
            match heap.alloc(4096) {
                Ok(p) => {
                    heap.commit(p);
                    n += 1;
                }
                Err(MapError::Exhausted) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(n > 5, "only {n} blocks fit");
        assert_eq!(heap.segments(), 1);
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn heap_grows_past_initial_segment_and_reattaches() {
        let path = tmp("grow");
        let offs: Vec<usize> = {
            let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
            // ~4096 blocks of 2 payload granules ≈ 768 KiB of data — far
            // beyond the 64 KiB initial segment.
            let offs = (0..4096u64)
                .map(|i| {
                    let p = heap.alloc(120).unwrap();
                    unsafe { (p as *mut u64).write(i) };
                    heap.commit(p);
                    p as usize - heap.base() as usize
                })
                .collect();
            assert!(heap.segments() > 1, "heap never grew");
            offs
        };
        let heap = MappedHeap::attach(&path).unwrap();
        assert!(heap.report().segments > 1);
        assert_eq!(heap.report().committed, 4096);
        assert_eq!(heap.report().poisoned, 0);
        for (i, off) in offs.iter().enumerate() {
            let p = unsafe { heap.base().add(*off) } as *const u64;
            assert_eq!(unsafe { p.read() }, i as u64);
        }
        // The grown arena keeps allocating without error.
        let p = heap.alloc(120).unwrap();
        heap.commit(p);
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn grown_heap_relocates_across_segments() {
        let path = tmp("grow_reloc");
        let (off_cell, off_target) = {
            let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
            // Fill past the first segment, then store a cross-segment
            // pointer: a late (segment-1) cell pointing at an early
            // (segment-0) target.
            let target = heap.alloc(8).unwrap();
            unsafe { (target as *mut u64).write(4242) };
            heap.commit(target);
            for _ in 0..2048 {
                let p = heap.alloc(120).unwrap();
                heap.commit(p);
            }
            assert!(heap.segments() > 1);
            let cell = heap.alloc(16).unwrap();
            unsafe { (cell as *mut u64).write(target as u64 | 1) };
            heap.commit(cell);
            (cell as usize - heap.base() as usize, target as usize - heap.base() as usize)
        };
        let heap = MappedHeap::attach_opts(&path, true).unwrap();
        let cell = unsafe { heap.base().add(off_cell) } as *const u64;
        let want = (heap.base() as usize + off_target) as u64 | 1;
        assert_eq!(unsafe { cell.read() }, want, "cross-segment pointer rebased");
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn forced_relocation_rebases_in_arena_pointers() {
        let path = tmp("reloc");
        let (old_base, off_cell, off_target) = {
            let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
            let target = heap.alloc(8).unwrap();
            unsafe { (target as *mut u64).write(4242) };
            heap.commit(target);
            let cell = heap.alloc(16).unwrap();
            // word 0: tagged in-arena pointer; word 1: user data that must
            // NOT be rebased.
            unsafe {
                (cell as *mut u64).write(target as u64 | 1);
                (cell as *mut u64).add(1).write(555);
            }
            heap.commit(cell);
            (
                heap.base() as usize,
                cell as usize - heap.base() as usize,
                target as usize - heap.base() as usize,
            )
        };
        let heap = MappedHeap::attach_opts(&path, true).unwrap();
        assert!(heap.report().relocated || heap.base() as usize == old_base);
        let cell = unsafe { heap.base().add(off_cell) } as *const u64;
        let want = (heap.base() as usize + off_target) as u64 | 1;
        assert_eq!(unsafe { cell.read() }, want, "tagged pointer rebased, tag preserved");
        assert_eq!(unsafe { cell.add(1).read() }, 555, "non-pointer word untouched");
        // The rebased pointer dereferences to the original value.
        let t = (unsafe { cell.read() } & !1) as *const u64;
        assert_eq!(unsafe { t.read() }, 4242);
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sweep_frees_unmarked_blocks() {
        let path = tmp("sweep");
        let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
        let keep = heap.alloc(32).unwrap();
        heap.commit(keep);
        let lost = heap.alloc(32).unwrap();
        heap.commit(lost);
        let mut live = HashSet::new();
        live.insert(keep as usize);
        assert_eq!(unsafe { heap.sweep_except(&live) }, 1);
        // The swept block is reusable.
        let again = heap.alloc(32).unwrap();
        assert_eq!(again, lost);
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sharded_allocator_round_trips_across_threads() {
        let path = tmp("sharded");
        let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
        let mut handles = Vec::new();
        for t in 0..4usize {
            let heap = Arc::clone(&heap);
            handles.push(std::thread::spawn(move || {
                tid::set_tid(MAX_PROCS - 8 + t);
                let mut ptrs = Vec::new();
                for i in 0..200u64 {
                    let p = heap.alloc(48).unwrap();
                    unsafe { (p as *mut u64).write((t as u64) << 32 | i) };
                    heap.commit(p);
                    ptrs.push((p, (t as u64) << 32 | i));
                    if i % 3 == 0 {
                        let (q, _) = ptrs.swap_remove(ptrs.len() / 2);
                        unsafe { heap.free(q) };
                    }
                }
                for (p, v) in ptrs {
                    assert_eq!(unsafe { (p as *const u64).read() }, v);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unsharded_knob_still_allocates() {
        let path = tmp("unsharded");
        let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
        heap.set_use_sharded(false);
        let a = heap.alloc(64).unwrap();
        heap.commit(a);
        unsafe { heap.free(a) };
        let b = heap.alloc(64).unwrap();
        assert_eq!(a, b, "cold free list reuses the freed block");
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    /// Configurable liveness verdicts: a pid is alive iff it is in the set.
    /// Birth stamps are ignored, so pid-reuse semantics stay with the real
    /// probe tests in `crate::liveness`.
    struct FakeProbe(Mutex<HashSet<u64>>);

    impl FakeProbe {
        fn with(pids: &[u64]) -> Arc<Self> {
            let mut set: HashSet<u64> = pids.iter().copied().collect();
            set.insert(std::process::id() as u64);
            Arc::new(FakeProbe(Mutex::new(set)))
        }
        fn kill(&self, pid: u64) {
            self.0.lock().unwrap().remove(&pid);
        }
    }

    impl crate::liveness::PidLiveness for FakeProbe {
        fn is_alive(&self, pid: u64, _birth: u64) -> bool {
            self.0.lock().unwrap().contains(&pid)
        }
    }

    #[test]
    fn exclusive_double_attach_fails_typed() {
        let path = tmp("double");
        let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
        assert_eq!(heap.my_participant(), Some(0));
        match MappedHeap::attach(&path) {
            Err(MapError::AlreadyAttached { pid }) => {
                assert_eq!(pid, std::process::id() as u64)
            }
            other => panic!("expected AlreadyAttached, got {other:?}"),
        }
        // A clean drop retires the slot; the next attach succeeds.
        drop(heap);
        let heap = MappedHeap::attach(&path).unwrap();
        assert_eq!(heap.participants().len(), 1);
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_and_pid_reused_slots_read_as_dead_and_are_reclaimed() {
        let path = tmp("stale");
        {
            let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
            // A nonexistent pid and our own pid with a recycled (wrong)
            // birth stamp: both must read as dead.
            heap.debug_register_peer(u32::MAX as u64, 1).unwrap();
            let my_birth = crate::liveness::self_birth();
            heap.debug_register_peer(std::process::id() as u64, my_birth + 17).unwrap();
            let dead = heap.dead_participants();
            assert_eq!(dead.len(), 2, "fake peers must both read as dead: {dead:?}");
            // Leak the slots: skip the Drop cleanup of *our* slot too by
            // forgetting the heap? No — drop normally; only our own slot is
            // cleared, the fake peers stay behind as stale slots.
        }
        let heap = MappedHeap::attach(&path).unwrap();
        // The full attach reclaimed the two stale slots and claimed ours.
        assert_eq!(heap.participants().len(), 1);
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lease_cas_arbitration_has_a_single_winner() {
        let path = tmp("lease");
        let probe = FakeProbe::with(&[1111, 2222]);
        let heap = MappedHeap::open_shared_with(&path, MIN_HEAP_BYTES, probe.clone()).unwrap();
        heap.release_attach_lock();
        let a = heap.debug_register_peer(1111, 5).unwrap();
        let b = heap.debug_register_peer(2222, 5).unwrap();
        let dead = heap.debug_register_peer(4242, 5).unwrap();
        assert_eq!(heap.dead_participants(), vec![dead]);

        // Two live survivors race for the lease (e.g. both saw a "dead" —
        // possibly falsely-dead — verdict): exactly one wins the CAS, the
        // loser observes a live holder and backs off.
        assert_eq!(heap.lease_try_claim_for(dead, a), LeaseOutcome::Won { seq: 1 });
        assert_eq!(heap.lease_try_claim_for(dead, b), LeaseOutcome::Held { holder: a });
        // Re-entry by the holder is idempotent.
        assert_eq!(heap.lease_try_claim_for(dead, a), LeaseOutcome::Won { seq: 1 });

        // The recoverer itself dies: the lease is stolen with a fresh seq.
        let before = stats::snapshot();
        probe.kill(1111);
        assert_eq!(heap.lease_try_claim_for(dead, b), LeaseOutcome::Won { seq: 2 });
        assert_eq!(stats::snapshot().since(&before).leases_stolen, 1);

        // Recovery completed: the slot is reclaimed, late claimants see Gone.
        heap.clear_participant(dead);
        assert_eq!(heap.lease_try_claim_for(dead, b), LeaseOutcome::Gone);
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lease_refuses_live_slots() {
        let path = tmp("leaselive");
        let probe = FakeProbe::with(&[1111, 2222]);
        let heap = MappedHeap::open_shared_with(&path, MIN_HEAP_BYTES, probe.clone()).unwrap();
        heap.release_attach_lock();
        let a = heap.debug_register_peer(1111, 5).unwrap();
        let b = heap.debug_register_peer(2222, 5).unwrap();
        // A stale dead-list (or a caller bug) names a live peer: the lease
        // must refuse, leaving the slot's registration untouched.
        assert_eq!(heap.lease_try_claim_for(a, b), LeaseOutcome::Live { pid: 1111 });
        assert!(heap.participants().iter().any(|&(s, pid, _)| s == a && pid == 1111));
        // The verdict flips (the peer actually died): now claimable.
        probe.kill(1111);
        assert_eq!(heap.lease_try_claim_for(a, b), LeaseOutcome::Won { seq: 1 });
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_claims_are_never_leased_and_reclaim_under_the_flock() {
        let path = tmp("torn");
        let probe = FakeProbe::with(&[2222]);
        let heap = MappedHeap::open_shared_with(&path, MIN_HEAP_BYTES, probe).unwrap();
        heap.release_attach_lock();
        let b = heap.debug_register_peer(2222, 5).unwrap();
        let torn = heap.debug_register_peer(4242, 5).unwrap();
        heap.debug_tear_claim(torn);
        // The torn slot reads as dead, but the lease path refuses it — the
        // sentinel may equally be a live joiner between CAS and pid stamp.
        assert!(heap.dead_participants().contains(&torn));
        assert_eq!(heap.lease_try_claim_for(torn, b), LeaseOutcome::Torn);
        // Under the attach flock the sentinel can only be a crashed claimant.
        assert!(heap.reclaim_torn_claim(torn).unwrap());
        assert!(!heap.reclaim_torn_claim(torn).unwrap(), "second reclaim is a no-op");
        assert_eq!(heap.lease_try_claim_for(torn, b), LeaseOutcome::Gone);
        // The reclaimed slot is re-claimable by a fresh participant.
        assert_eq!(heap.debug_register_peer(5555, 9).unwrap(), torn);
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn join_refuses_live_exclusive_attacher() {
        let path = tmp("exclpeer");
        // A real exclusive attach (default liveness probe) holds the heap.
        let excl = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
        // A shared open sees a live participant and takes the join path —
        // which must refuse: the live peer registered MODE_EXCLUSIVE.
        let probe = FakeProbe::with(&[]);
        match MappedHeap::open_shared_with(&path, MIN_HEAP_BYTES, probe.clone()) {
            Err(MapError::ExclusivePeer { pid }) => assert_eq!(pid, std::process::id() as u64),
            other => panic!("expected ExclusivePeer, got {other:?}"),
        }
        drop(excl);
        // Once the exclusive attacher detaches cleanly, shared open works.
        let heap = MappedHeap::open_shared_with(&path, MIN_HEAP_BYTES, probe).unwrap();
        assert!(heap.is_shared());
        heap.release_attach_lock();
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shared_join_with_base_taken_fails_typed() {
        let path = tmp("basetaken");
        let probe = FakeProbe::with(&[]);
        let heap = MappedHeap::open_shared_with(&path, MIN_HEAP_BYTES, probe.clone()).unwrap();
        assert!(heap.is_shared());
        assert!(!heap.report().joined);
        heap.release_attach_lock();
        // A second open_shared in the *same* process sees a live participant
        // (us) and takes the join path — which cannot map the recorded base
        // because our own mapping occupies it.
        match MappedHeap::open_shared_with(&path, MIN_HEAP_BYTES, probe.clone()) {
            Err(MapError::BaseTaken { base }) => assert_eq!(base, heap.base() as u64),
            other => panic!("expected BaseTaken, got {other:?}"),
        }
        drop(heap);
        // After a clean exit no participant is live: full attach, not join.
        let heap = MappedHeap::open_shared_with(&path, MIN_HEAP_BYTES, probe).unwrap();
        assert!(!heap.report().joined);
        heap.release_attach_lock();
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rec_geometry_mismatch_is_typed() {
        let path = tmp("recgeom");
        let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
        heap.validate_rec_geometry(64, 128).unwrap();
        heap.validate_rec_geometry(64, 128).unwrap();
        match heap.validate_rec_geometry(64, 256) {
            Err(MapError::LayoutMismatch { what, expected, found }) => {
                assert_eq!(what, "recovery-area slot stride");
                assert_eq!(expected, 256);
                assert_eq!(found, 128);
            }
            other => panic!("expected LayoutMismatch, got {other:?}"),
        }
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapped_nvm_counts_like_real() {
        crate::tid::set_tid(0);
        let before = stats::snapshot();
        let w: PWord<MappedNvm> = PWord::new(9);
        MappedNvm::pwb(&w);
        MappedNvm::pbarrier(&w);
        MappedNvm::psync();
        assert_eq!(w.load(), 9);
        let d = stats::snapshot().since(&before);
        assert_eq!(d.pwb, 1);
        assert_eq!(d.pbarrier, 1);
        assert_eq!(d.psync, 1);
    }
}
