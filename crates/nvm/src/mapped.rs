//! [`MappedNvm`] + [`MappedHeap`]: a file-backed persistent heap with true
//! cross-process restart recovery.
//!
//! The other persistency models ([`crate::RealNvm`], [`crate::CountingNvm`],
//! [`crate::SimNvm`]) live entirely inside one process: a "crash" is a panic
//! in the same address space, and all persistent words sit on the ordinary
//! Rust heap. This module adds the third backend the evaluation stack needs:
//! a **`mmap`-backed arena** whose contents survive the death of the process
//! (`SIGKILL`, `abort`, power-independent kill), so detectable recovery can be
//! exercised across an *actual* process restart — the deployment model of
//! real persistent-memory pools (cf. memento's file-backed pool in PAPERS.md).
//!
//! ## Pieces
//!
//! * [`MappedNvm`] — a [`Persist`] implementation identical in spirit to
//!   [`crate::RealNvm`] (counted `pwb` = `clflush`, `psync` = `mfence`).
//!   Under kill-style crashes every completed *store* is durable (the page
//!   cache survives the process), so flushes matter for the persist-count
//!   experiments and for real-NVM deployments, not for `SIGKILL` testing.
//! * [`MappedHeap`] — the arena itself: a superblock (magic / version /
//!   base / sizes / attach epoch), a **commit bitmap**, a bump + per-size
//!   free-list allocator handing out 64-byte-granular blocks, and a small
//!   **root directory** mapping well-known keys to stable payload offsets
//!   (recovery areas and structure heads live there).
//! * [`AttachReport`] — what [`MappedHeap::attach`] found: whether the heap
//!   was created fresh, whether it had to be **relocated** to a new base
//!   address, and how many torn tail allocations were poisoned.
//!
//! ## Crash consistency
//!
//! Allocation state is reconstructible from the block headers plus the
//! commit bitmap alone; the volatile free lists are rebuilt on every attach:
//!
//! 1. `alloc` writes the block header (`ALLOCATED`, size) **before**
//!    publishing the new bump offset, so every granule below `bump` always
//!    carries a valid header.
//! 2. The caller initializes the payload, then `commit` sets the block's
//!    bitmap bit **before** flipping the header to `COMMITTED`.
//! 3. `free` flips the header to `FREE` **before** clearing the bitmap bit.
//!
//! The attach walk therefore classifies every torn state deterministically:
//! an `ALLOCATED` block is a torn tail allocation (poisoned with [`POISON`]
//! and freed), a `FREE` block with a set bit lost the bit-clear of step 3
//! (healed), and any other header/bitmap disagreement is *corruption* and
//! fails with a typed [`MapError`] — never undefined behaviour.
//!
//! ## Addressing
//!
//! Structures store **absolute pointers** in their persistent words (the
//! same representation the in-process models use, so the entire engine is
//! shared). The heap therefore asks the kernel for a fixed base address
//! (`MAP_FIXED_NOREPLACE` at the base recorded in the superblock) on attach.
//! When that address is taken, attach falls back to an **offset-relocation
//! pass**: every word of every committed payload whose (tag-stripped) value
//! lands inside the old mapping is rebased to the new one. This is sound
//! because every persistent pointer in the ISB structures points into the
//! arena, and *user payloads must not alias the arena's address range*
//! (a 48-bit window; offset-based pointers à la memento would avoid the
//! caveat at the cost of an indirection on every dereference — see
//! DESIGN.md §10 for the trade-off discussion).

use crate::flush;
use crate::persist::{raw_cas, raw_load, raw_store, Persist};
use crate::pword::{PWord, PersistWords};
use crate::stats;
use std::collections::{HashMap, HashSet};
use std::fs::OpenOptions;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering::{Acquire, Release, SeqCst};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Raw mmap/munmap (no libc in this workspace; the build environment has no
// registry access). Linux x86_64 + aarch64; other targets report Unsupported.
// ---------------------------------------------------------------------------

const PROT_READ: usize = 1;
const PROT_WRITE: usize = 2;
const MAP_SHARED: usize = 0x01;
const MAP_FIXED_NOREPLACE: usize = 0x10_0000;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn sys_mmap(addr: usize, len: usize, prot: usize, flags: usize, fd: i32) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 9isize => ret, // __NR_mmap
            in("rdi") addr,
            in("rsi") len,
            in("rdx") prot,
            in("r10") flags,
            in("r8") fd as isize,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    ret
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn sys_munmap(addr: usize, len: usize) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 11isize => ret, // __NR_munmap
            in("rdi") addr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn sys_mmap(addr: usize, len: usize, prot: usize, flags: usize, fd: i32) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") 222usize, // __NR_mmap
            inlateout("x0") addr => ret,
            in("x1") len,
            in("x2") prot,
            in("x3") flags,
            in("x4") fd as isize,
            in("x5") 0usize,
            options(nostack)
        );
    }
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn sys_munmap(addr: usize, len: usize) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") 215usize, // __NR_munmap
            inlateout("x0") addr => ret,
            in("x1") len,
            options(nostack)
        );
    }
    ret
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
unsafe fn sys_mmap(_addr: usize, _len: usize, _prot: usize, _flags: usize, _fd: i32) -> isize {
    -38 // ENOSYS
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
unsafe fn sys_munmap(_addr: usize, _len: usize) -> isize {
    -38 // ENOSYS
}

/// `true` iff the raw-syscall return value is an error (`-errno`).
fn is_sys_err(r: isize) -> bool {
    (-4095..0).contains(&r)
}

// ---------------------------------------------------------------------------
// Layout constants
// ---------------------------------------------------------------------------

/// Allocation granule (one cache line): blocks are sized and aligned to it,
/// and the commit bitmap tracks one bit per granule.
pub const GRANULE: usize = 64;
const PAGE: usize = 4096;
/// Superblock magic ("ISBMAP01").
pub const MAGIC: u64 = 0x4953_424D_4150_3031;
/// On-disk format version. v2: the root directory's per-structure keys
/// (`HEADS`/`ANCHOR`) were replaced by the generic `STRUCT` key and the
/// named-structure catalog was added — v1 heaps must fail typed
/// (`BadVersion`) rather than silently attach with empty roots.
pub const VERSION: u64 = 2;
/// Base address requested for fresh heaps: high in the 47-bit user window,
/// far from the default heap/mmap/stack regions of both parent and child
/// processes, so cross-process re-attach almost always lands at the same
/// address and the relocation pass stays a fallback.
pub const PREFERRED_BASE: usize = 0x6000_0000_0000;
/// Pattern written over the payload of torn (allocated-but-never-committed)
/// tail blocks before they are returned to the free list.
pub const POISON: u64 = 0xDEAD_BEEF_DEAD_BEEF;

const HDR_MAGIC: u64 = 0xB10C;
const ST_ALLOCATED: u64 = 1;
const ST_COMMITTED: u64 = 2;
const ST_FREE: u64 = 3;

// Superblock word indices (u64 words from the start of the mapping).
const W_MAGIC: usize = 0;
const W_VERSION: usize = 1;
const W_BASE: usize = 2;
const W_SIZE: usize = 3;
const W_EPOCH: usize = 4;
const W_BUMP: usize = 5;
const W_DATA_OFF: usize = 6;
const W_BM_OFF: usize = 7;
const W_GRANULES: usize = 8;
const W_KIND: usize = 9;
/// Number of root-directory slots.
pub const ROOT_SLOTS: usize = 16;
const W_ROOT0: usize = 16; // ROOT_SLOTS (key, payload-offset) pairs

/// Smallest heap [`MappedHeap::create`] accepts.
pub const MIN_HEAP_BYTES: usize = 64 * 1024;
/// Default heap size used by the structures' `attach` constructors.
pub const DEFAULT_HEAP_BYTES: usize = 64 * 1024 * 1024;

#[inline]
fn encode_hdr(state: u64, payload_granules: u64) -> u64 {
    (HDR_MAGIC << 48) | (state << 40) | payload_granules
}

#[inline]
fn decode_hdr(h: u64) -> Option<(u64, u64)> {
    if h >> 48 != HDR_MAGIC {
        return None;
    }
    Some(((h >> 40) & 0xFF, h & 0xFFFF_FFFF))
}

// ---------------------------------------------------------------------------
// Errors and reports
// ---------------------------------------------------------------------------

/// Typed attach/allocation failures. Every corrupt-image shape the attach
/// walk can encounter maps to one of these — attaching a damaged heap must
/// fail cleanly, never exhibit undefined behaviour.
#[derive(Debug)]
pub enum MapError {
    /// Filesystem error (open/create/metadata/resize).
    Io(std::io::Error),
    /// The platform has no mmap implementation in this build.
    Unsupported,
    /// `mmap` itself failed (`-errno`).
    MapFailed(i32),
    /// The file is shorter than its superblock claims (or than a superblock).
    Truncated {
        /// Bytes the superblock (or format) requires.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// The superblock magic does not match [`MAGIC`].
    BadMagic(u64),
    /// The superblock version is not [`VERSION`].
    BadVersion(u64),
    /// Superblock geometry is inconsistent (unaligned/out-of-window base,
    /// impossible offsets, bump beyond the data region, …).
    BadSuperblock(&'static str),
    /// A block header below the bump offset is not a valid header.
    CorruptHeader {
        /// Granule index of the bad header.
        granule: usize,
    },
    /// The commit bitmap disagrees with the block headers in a way no crash
    /// ordering can produce (a set bit with no committed block under it, or
    /// a committed block whose bit is clear).
    CorruptBitmap {
        /// Granule index of the disagreement.
        granule: usize,
    },
    /// The heap hosts a different structure kind (or configuration) than the
    /// caller asked to attach.
    WrongKind {
        /// Kind/config expected by the caller.
        expected: u64,
        /// Kind/config recorded in the heap.
        found: u64,
    },
    /// A persistent pointer read from the image points outside the mapping
    /// (or the object graph does not terminate) — e.g. a superblock whose
    /// recorded base was rewritten to a different address, so the structure's
    /// absolute pointers no longer land inside the arena. Caught by the
    /// structures' pre-recovery validation walk before any dereference.
    CorruptPointer {
        /// The offending pointer value.
        addr: u64,
    },
    /// A catalog entry is inconsistent: unknown structure kind, impossible
    /// root offset, or a malformed name. No crash ordering produces this —
    /// entry creation stamps the kind word last, so a torn creation leaves
    /// the slot invisible, not damaged.
    CorruptCatalog {
        /// Catalog slot index of the bad entry.
        slot: usize,
    },
    /// The catalog has no free slot for another named structure.
    CatalogFull,
    /// The arena is out of space.
    Exhausted,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Io(e) => write!(f, "persistent heap I/O error: {e}"),
            MapError::Unsupported => write!(f, "mapped heaps are unsupported on this platform"),
            MapError::MapFailed(e) => write!(f, "mmap failed (errno {e})"),
            MapError::Truncated { expected, found } => {
                write!(f, "heap file truncated: expected {expected} bytes, found {found}")
            }
            MapError::BadMagic(m) => write!(f, "bad superblock magic {m:#x}"),
            MapError::BadVersion(v) => write!(f, "unsupported heap version {v}"),
            MapError::BadSuperblock(why) => write!(f, "corrupt superblock: {why}"),
            MapError::CorruptHeader { granule } => {
                write!(f, "corrupt block header at granule {granule}")
            }
            MapError::CorruptBitmap { granule } => {
                write!(f, "commit bitmap disagrees with headers at granule {granule}")
            }
            MapError::WrongKind { expected, found } => {
                write!(f, "heap hosts kind/config {found}, expected {expected}")
            }
            MapError::CorruptPointer { addr } => {
                write!(f, "persistent pointer {addr:#x} points outside the mapped arena")
            }
            MapError::CorruptCatalog { slot } => {
                write!(f, "corrupt catalog entry in slot {slot}")
            }
            MapError::CatalogFull => {
                write!(f, "catalog full ({CATALOG_SLOTS} named structures per heap)")
            }
            MapError::Exhausted => write!(f, "persistent heap exhausted"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<std::io::Error> for MapError {
    fn from(e: std::io::Error) -> Self {
        MapError::Io(e)
    }
}

/// What an attach found and did (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct AttachReport {
    /// The heap file did not exist (or was empty) and was created fresh.
    pub created: bool,
    /// The recorded base address was unavailable; every in-arena pointer was
    /// rebased by the offset-relocation pass.
    pub relocated: bool,
    /// Attach epoch after this attach (1 for a fresh heap).
    pub attach_epoch: u64,
    /// Torn tail allocations (allocated, never committed) that were poisoned
    /// and returned to the free list.
    pub poisoned: usize,
    /// `FREE` blocks whose commit bit was still set (crash between the two
    /// halves of a free) — healed by clearing the bit.
    pub healed_bits: usize,
    /// Committed (live) blocks found by the walk.
    pub committed: usize,
    /// Free blocks found by the walk.
    pub free_blocks: usize,
}

// ---------------------------------------------------------------------------
// The heap
// ---------------------------------------------------------------------------

struct AllocState {
    /// payload-granule-count → header granule indices of FREE blocks.
    free: HashMap<u32, Vec<u32>>,
}

/// A file-backed persistent heap (see module docs).
///
/// One `MappedHeap` hosts one data structure (plus its recovery area) and is
/// attached by **one process at a time**; the structures' `attach`
/// constructors enforce the kind via the superblock. All allocation routes
/// through [`MappedHeap::alloc`] / [`MappedHeap::commit`] /
/// [`MappedHeap::free`]; the object pools in `isb::pool` layer their
/// per-thread caches on top.
pub struct MappedHeap {
    base: *mut u8,
    size: usize,
    data_off: usize,
    granules: usize,
    path: PathBuf,
    alloc: Mutex<AllocState>,
    report: AttachReport,
}

unsafe impl Send for MappedHeap {}
unsafe impl Sync for MappedHeap {}

impl std::fmt::Debug for MappedHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedHeap")
            .field("path", &self.path)
            .field("base", &self.base)
            .field("size", &self.size)
            .finish_non_exhaustive()
    }
}

impl Drop for MappedHeap {
    fn drop(&mut self) {
        // The mapping is MAP_SHARED: all completed stores are already in the
        // page cache and reach the file regardless of this munmap.
        unsafe { sys_munmap(self.base as usize, self.size) };
    }
}

impl MappedHeap {
    // -- mapping ----------------------------------------------------------

    /// Creates a fresh heap of (at least) `bytes` at `path`, truncating any
    /// existing file. Prefer [`MappedHeap::open`].
    pub fn create(path: &Path, bytes: usize) -> Result<Arc<Self>, MapError> {
        let size = bytes.max(MIN_HEAP_BYTES).next_multiple_of(PAGE);
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        file.set_len(size as u64)?;
        let fd = std::os::fd::AsRawFd::as_raw_fd(&file);

        // Geometry: superblock page, then the bitmap (one bit per data
        // granule, rounded to a granule), then the data region.
        let data_guess = size - PAGE;
        let bm_bytes = (data_guess / GRANULE).div_ceil(8).next_multiple_of(GRANULE);
        let data_off = PAGE + bm_bytes;
        let granules = (size - data_off) / GRANULE;

        let base = map_file(fd, size, Some(PREFERRED_BASE))?;
        let heap = MappedHeap {
            base,
            size,
            data_off,
            granules,
            path: path.to_path_buf(),
            alloc: Mutex::new(AllocState { free: HashMap::new() }),
            report: AttachReport { created: true, attach_epoch: 1, ..Default::default() },
        };
        // Init order: every field first, the magic last — a creation cut
        // short by a crash leaves a file that fails attach with BadMagic
        // instead of a half-valid superblock.
        heap.word(W_VERSION).store(VERSION, SeqCst);
        heap.word(W_BASE).store(base as u64, SeqCst);
        heap.word(W_SIZE).store(size as u64, SeqCst);
        heap.word(W_EPOCH).store(1, SeqCst);
        heap.word(W_BUMP).store(0, SeqCst);
        heap.word(W_DATA_OFF).store(data_off as u64, SeqCst);
        heap.word(W_BM_OFF).store(PAGE as u64, SeqCst);
        heap.word(W_GRANULES).store(granules as u64, SeqCst);
        heap.word(W_KIND).store(0, SeqCst);
        heap.word(W_MAGIC).store(MAGIC, SeqCst);
        Ok(Arc::new(heap))
    }

    /// Attaches an existing heap at its recorded base address, falling back
    /// to the relocation pass (see module docs).
    pub fn attach(path: &Path) -> Result<Arc<Self>, MapError> {
        Self::attach_opts(path, false)
    }

    /// [`MappedHeap::attach`] with the fixed-base request suppressed, forcing
    /// the offset-relocation pass (exercised directly by tests).
    pub fn attach_opts(path: &Path, force_new_base: bool) -> Result<Arc<Self>, MapError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len < PAGE as u64 {
            return Err(MapError::Truncated { expected: PAGE as u64, found: len });
        }
        // Validate the superblock from a plain read before mapping anything.
        let mut sb = [0u8; PAGE];
        file.read_exact(&mut sb)?;
        let w = |i: usize| u64::from_le_bytes(sb[i * 8..i * 8 + 8].try_into().unwrap());
        if w(W_MAGIC) != MAGIC {
            return Err(MapError::BadMagic(w(W_MAGIC)));
        }
        if w(W_VERSION) != VERSION {
            return Err(MapError::BadVersion(w(W_VERSION)));
        }
        let size = w(W_SIZE);
        if size != len {
            return Err(MapError::Truncated { expected: size, found: len });
        }
        let old_base = w(W_BASE) as usize;
        if old_base == 0 || !old_base.is_multiple_of(PAGE) || old_base >= 1 << 47 {
            return Err(MapError::BadSuperblock("recorded base address is not a valid mapping"));
        }
        let size = size as usize;
        let data_off = w(W_DATA_OFF) as usize;
        let granules = w(W_GRANULES) as usize;
        if data_off < PAGE
            || !data_off.is_multiple_of(GRANULE)
            || data_off
                .checked_add(
                    granules.checked_mul(GRANULE).ok_or(MapError::BadSuperblock(
                        "granule count overflows the data region",
                    ))?,
                )
                .is_none_or(|end| end > size)
        {
            return Err(MapError::BadSuperblock("data region exceeds the file"));
        }
        if (w(W_BUMP) as usize) > granules {
            return Err(MapError::BadSuperblock("bump offset beyond the data region"));
        }
        // The commit bitmap (one bit per data granule, starting at PAGE)
        // must fit below the data region: otherwise bm_set/bm_clear would
        // silently write inside the data blocks.
        if w(W_BM_OFF) as usize != PAGE || PAGE + granules.div_ceil(64) * 8 > data_off {
            return Err(MapError::BadSuperblock("commit bitmap does not fit its region"));
        }

        let fd = std::os::fd::AsRawFd::as_raw_fd(&file);
        let (base, relocated) = if force_new_base {
            (map_file(fd, size, None)?, true)
        } else {
            match map_file_fixed(fd, size, old_base) {
                Some(b) => (b, false),
                None => (map_file(fd, size, None)?, true),
            }
        };
        let relocated = relocated && base as usize != old_base;

        let mut heap = MappedHeap {
            base,
            size,
            data_off,
            granules,
            path: path.to_path_buf(),
            alloc: Mutex::new(AllocState { free: HashMap::new() }),
            report: AttachReport { relocated, ..Default::default() },
        };
        let committed = heap.walk_and_heal()?;
        if relocated {
            heap.relocate(old_base, &committed);
            heap.word(W_BASE).store(base as u64, SeqCst);
        }
        let epoch = heap.word(W_EPOCH).load(Acquire) + 1;
        heap.word(W_EPOCH).store(epoch, SeqCst);
        heap.report.attach_epoch = epoch;
        Ok(Arc::new(heap))
    }

    /// Attach `path` if it exists (and is non-empty), otherwise create a
    /// fresh heap of `bytes` there.
    pub fn open(path: &Path, bytes: usize) -> Result<Arc<Self>, MapError> {
        match std::fs::metadata(path) {
            Ok(m) if m.len() > 0 => Self::attach(path),
            _ => Self::create(path, bytes),
        }
    }

    // -- words, headers, bitmap -------------------------------------------

    #[inline]
    fn word(&self, idx: usize) -> &AtomicU64 {
        debug_assert!((idx + 1) * 8 <= PAGE);
        // SAFETY: inside the live, 8-aligned mapping.
        unsafe { &*(self.base.add(idx * 8) as *const AtomicU64) }
    }

    #[inline]
    fn hdr(&self, g: usize) -> &AtomicU64 {
        debug_assert!(g < self.granules);
        // SAFETY: granule g starts inside the data region.
        unsafe { &*(self.base.add(self.data_off + g * GRANULE) as *const AtomicU64) }
    }

    #[inline]
    fn payload(&self, g: usize) -> *mut u8 {
        // Payload starts one granule after the header granule.
        unsafe { self.base.add(self.data_off + (g + 1) * GRANULE) }
    }

    /// Granule index of the block whose payload starts at `p`.
    #[inline]
    fn granule_of(&self, p: *mut u8) -> usize {
        let off = p as usize - self.base as usize - self.data_off;
        debug_assert!(off.is_multiple_of(GRANULE) && off >= GRANULE);
        off / GRANULE - 1
    }

    #[inline]
    fn bm_word(&self, g: usize) -> &AtomicU64 {
        let bm_off = PAGE + (g / 64) * 8;
        debug_assert!(bm_off + 8 <= self.data_off);
        // SAFETY: inside the bitmap region.
        unsafe { &*(self.base.add(bm_off) as *const AtomicU64) }
    }

    #[inline]
    fn bm_test(&self, g: usize) -> bool {
        self.bm_word(g).load(Acquire) & (1 << (g % 64)) != 0
    }

    #[inline]
    fn bm_set(&self, g: usize) {
        self.bm_word(g).fetch_or(1 << (g % 64), SeqCst);
    }

    #[inline]
    fn bm_clear(&self, g: usize) {
        self.bm_word(g).fetch_and(!(1 << (g % 64)), SeqCst);
    }

    // -- attach walk -------------------------------------------------------

    /// Walks every block header up to the bump offset: rebuilds the free
    /// lists, poisons torn tail allocations, heals benign bitmap bits, and
    /// fails with a typed error on any state no crash ordering can produce.
    /// Returns the committed blocks as `(granule, payload_granules)`.
    fn walk_and_heal(&mut self) -> Result<Vec<(usize, usize)>, MapError> {
        let bump = self.word(W_BUMP).load(Acquire) as usize;
        let mut committed = Vec::new();
        let mut committed_set: HashSet<usize> = HashSet::new();
        let mut free: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut g = 0usize;
        while g < bump {
            let (state, pg) = decode_hdr(self.hdr(g).load(Acquire))
                .ok_or(MapError::CorruptHeader { granule: g })?;
            let pg = pg as usize;
            if pg == 0 || g + 1 + pg > bump {
                return Err(MapError::CorruptHeader { granule: g });
            }
            match state {
                ST_COMMITTED => {
                    if !self.bm_test(g) {
                        return Err(MapError::CorruptBitmap { granule: g });
                    }
                    committed.push((g, pg));
                    committed_set.insert(g);
                }
                ST_ALLOCATED => {
                    // Torn tail allocation: the owning operation never
                    // committed it, so nothing can reference it. Poison the
                    // payload (so any stale use is loud) and recycle it.
                    let p = self.payload(g) as *mut u64;
                    for i in 0..pg * (GRANULE / 8) {
                        // SAFETY: payload of a block wholly inside the arena.
                        unsafe { p.add(i).write(POISON) };
                    }
                    self.hdr(g).store(encode_hdr(ST_FREE, pg as u64), Release);
                    self.bm_clear(g);
                    free.entry(pg as u32).or_default().push(g as u32);
                    self.report.poisoned += 1;
                }
                ST_FREE => {
                    if self.bm_test(g) {
                        // Crash between the two halves of a free: benign.
                        self.bm_clear(g);
                        self.report.healed_bits += 1;
                    }
                    free.entry(pg as u32).or_default().push(g as u32);
                    self.report.free_blocks += 1;
                }
                _ => return Err(MapError::CorruptHeader { granule: g }),
            }
            g += 1 + pg;
        }
        if g != bump {
            return Err(MapError::CorruptHeader { granule: g });
        }
        // Cross-check: every set bitmap bit must sit under a committed
        // header. A bit with no block under it cannot result from any crash
        // ordering — it is corruption.
        for wi in 0..self.granules.div_ceil(64) {
            let mut bits = self.bm_word(wi * 64).load(Acquire);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let gran = wi * 64 + b;
                if !committed_set.contains(&gran) {
                    return Err(MapError::CorruptBitmap { granule: gran });
                }
            }
        }
        self.report.committed = committed.len();
        self.report.free_blocks += self.report.poisoned;
        self.alloc.get_mut().unwrap().free = free;
        Ok(committed)
    }

    /// The offset-relocation pass: rebases every committed payload word that
    /// points into the old mapping (see module docs for the aliasing caveat).
    fn relocate(&self, old_base: usize, committed: &[(usize, usize)]) {
        let new_base = self.base as usize;
        let span = self.size;
        for &(g, pg) in committed {
            let p = self.payload(g) as *mut u64;
            for i in 0..pg * (GRANULE / 8) {
                // SAFETY: single-threaded attach; word inside the payload.
                let v = unsafe { p.add(i).read() };
                let t = v & !1; // strip the info-pointer tag bit
                if t >= old_base as u64 && t < (old_base + span) as u64 {
                    unsafe { p.add(i).write((t - old_base as u64 + new_base as u64) | (v & 1)) };
                }
            }
        }
    }

    // -- allocation --------------------------------------------------------

    /// Allocates a block with at least `bytes` of payload (64-byte aligned,
    /// rounded up to whole granules). The block is `ALLOCATED`: the caller
    /// must initialize the payload and then call [`MappedHeap::commit`];
    /// until then an attach treats it as torn and poisons it.
    pub fn alloc(&self, bytes: usize) -> Result<*mut u8, MapError> {
        let pg = bytes.max(1).div_ceil(GRANULE);
        let mut st = self.alloc.lock().unwrap();
        if let Some(list) = st.free.get_mut(&(pg as u32)) {
            if let Some(g) = list.pop() {
                let g = g as usize;
                self.hdr(g).store(encode_hdr(ST_ALLOCATED, pg as u64), Release);
                return Ok(self.payload(g));
            }
        }
        let bump = self.word(W_BUMP).load(Acquire) as usize;
        if bump + 1 + pg > self.granules {
            return Err(MapError::Exhausted);
        }
        // Header before bump: every granule below bump always has a header.
        self.hdr(bump).store(encode_hdr(ST_ALLOCATED, pg as u64), Release);
        self.word(W_BUMP).store((bump + 1 + pg) as u64, Release);
        Ok(self.payload(bump))
    }

    /// Marks the block at payload `p` fully initialized. Bitmap bit before
    /// header state (see module docs for the crash analysis).
    pub fn commit(&self, p: *mut u8) {
        let g = self.granule_of(p);
        let (state, pg) = decode_hdr(self.hdr(g).load(Acquire)).expect("commit of a non-block");
        debug_assert_eq!(state, ST_ALLOCATED, "commit of a block not in ALLOCATED state");
        self.bm_set(g);
        self.hdr(g).store(encode_hdr(ST_COMMITTED, pg), Release);
    }

    /// Returns the block at payload `p` to the free list (header to `FREE`
    /// before the bitmap bit clears; no destructor runs).
    ///
    /// # Safety
    /// `p` must be a payload pointer obtained from this heap's
    /// [`MappedHeap::alloc`] whose block no thread can still reach, freed at
    /// most once per allocation.
    pub unsafe fn free(&self, p: *mut u8) {
        let g = self.granule_of(p);
        let (_, pg) = decode_hdr(self.hdr(g).load(Acquire)).expect("free of a non-block");
        self.hdr(g).store(encode_hdr(ST_FREE, pg), Release);
        self.bm_clear(g);
        self.alloc.lock().unwrap().free.entry(pg as u32).or_default().push(g as u32);
    }

    /// Frees every committed block whose payload address is **not** in
    /// `live` (attach-time garbage collection of blocks leaked by a crash:
    /// pool caches, limbo bags, unlinked nodes). Returns the number swept.
    ///
    /// # Safety
    /// Requires quiescent exclusive access, and `live` must contain every
    /// payload address still reachable from the structure's roots.
    pub unsafe fn sweep_except(&self, live: &HashSet<usize>) -> usize {
        let bump = self.word(W_BUMP).load(Acquire) as usize;
        let mut swept = 0;
        let mut g = 0usize;
        while g < bump {
            let (state, pg) = decode_hdr(self.hdr(g).load(Acquire)).expect("swept a corrupt heap");
            let pg = pg as usize;
            if state == ST_COMMITTED && !live.contains(&(self.payload(g) as usize)) {
                unsafe { self.free(self.payload(g)) };
                swept += 1;
            }
            g += 1 + pg;
        }
        swept
    }

    // -- root directory and metadata --------------------------------------

    /// Looks up a root-directory entry.
    pub fn root_get(&self, key: u64) -> Option<*mut u8> {
        debug_assert_ne!(key, 0, "root keys are nonzero");
        for s in 0..ROOT_SLOTS {
            if self.word(W_ROOT0 + 2 * s).load(Acquire) == key {
                let off = self.word(W_ROOT0 + 2 * s + 1).load(Acquire) as usize;
                // SAFETY: offsets are validated at registration.
                return Some(unsafe { self.base.add(off) });
            }
        }
        None
    }

    /// Returns the root block for `key`, allocating (zeroed) and registering
    /// a committed block of `bytes` on first use. The `bool` is `true` iff
    /// the block was created by this call.
    pub fn root_alloc(&self, key: u64, bytes: usize) -> Result<(*mut u8, bool), MapError> {
        if let Some(p) = self.root_get(key) {
            return Ok((p, false));
        }
        let p = self.alloc(bytes)?;
        // Blocks recycled from the free list carry stale payloads.
        unsafe { std::ptr::write_bytes(p, 0, bytes.max(1).div_ceil(GRANULE) * GRANULE) };
        self.commit(p);
        let off = (p as usize - self.base as usize) as u64;
        for s in 0..ROOT_SLOTS {
            let kw = self.word(W_ROOT0 + 2 * s);
            if kw.load(Acquire) == 0 {
                // Offset first, key last: the key word is the valid flag.
                self.word(W_ROOT0 + 2 * s + 1).store(off, SeqCst);
                kw.store(key, SeqCst);
                return Ok((p, true));
            }
        }
        Err(MapError::BadSuperblock("root directory full"))
    }

    /// Structure kind recorded in the superblock (0 = none yet).
    pub fn kind(&self) -> u64 {
        self.word(W_KIND).load(Acquire)
    }

    /// Records the structure kind hosted by this heap.
    pub fn set_kind(&self, kind: u64) {
        self.word(W_KIND).store(kind, SeqCst);
    }

    /// Whether `addr` lies inside this heap's mapping.
    pub fn contains(&self, addr: usize) -> bool {
        addr >= self.base as usize && addr < self.base as usize + self.size
    }

    /// Whether the whole `len`-byte span starting at `addr` lies inside the
    /// mapping — the check attach-time pointer validation must use before
    /// dereferencing an object of that size (an object *starting* in the
    /// last bytes of the mapping would otherwise be read past its end).
    pub fn contains_span(&self, addr: usize, len: usize) -> bool {
        addr >= self.base as usize
            && addr.checked_add(len).is_some_and(|end| end <= self.base as usize + self.size)
    }

    /// Base address of the mapping.
    pub fn base(&self) -> *mut u8 {
        self.base
    }

    /// Mapped size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// What this attach found and did.
    pub fn report(&self) -> &AttachReport {
        &self.report
    }

    /// Granules currently allocated from the bump region (diagnostics).
    pub fn bump_granules(&self) -> usize {
        self.word(W_BUMP).load(Acquire) as usize
    }

    // -- named-structure catalog -------------------------------------------

    /// Returns (allocating on first use) the catalog block: a fixed array
    /// of [`CATALOG_SLOTS`] entries mapping *names* to
    /// `(kind, cfg, root block)` so one heap can host many structures
    /// (the store layer). The caller registers it under its own root key.
    pub fn catalog_root(&self, key: u64) -> Result<*mut u8, MapError> {
        let (p, _) = self.root_alloc(key, CATALOG_SLOTS * CATALOG_ENTRY_BYTES)?;
        Ok(p)
    }

    /// Entry slot `i` of the catalog block at `cat`.
    ///
    /// # Safety
    /// `cat` must be the committed catalog block of this heap.
    unsafe fn catalog_word(&self, cat: *mut u8, slot: usize, word: usize) -> &AtomicU64 {
        debug_assert!(slot < CATALOG_SLOTS && word < CATALOG_ENTRY_BYTES / 8);
        // SAFETY: in-bounds word of the committed catalog block.
        unsafe { &*(cat.add(slot * CATALOG_ENTRY_BYTES + word * 8) as *const AtomicU64) }
    }

    /// Decodes every valid catalog entry. Returns a typed
    /// [`MapError::CorruptCatalog`] for any slot whose kind word is set but
    /// whose fields are inconsistent (root offset out of bounds, oversized
    /// or non-UTF-8 name) — shapes no crash ordering can produce.
    ///
    /// # Safety
    /// `cat` must be the committed catalog block of this heap.
    pub unsafe fn catalog_entries(&self, cat: *mut u8) -> Result<Vec<CatalogEntry>, MapError> {
        let mut out = Vec::new();
        for slot in 0..CATALOG_SLOTS {
            // SAFETY: in-bounds catalog words.
            let e = unsafe { self.catalog_read(cat, slot) }?;
            if let Some(e) = e {
                out.push(e);
            }
        }
        Ok(out)
    }

    /// Decodes one catalog slot (`None` when empty).
    ///
    /// # Safety
    /// As [`MappedHeap::catalog_entries`].
    unsafe fn catalog_read(
        &self,
        cat: *mut u8,
        slot: usize,
    ) -> Result<Option<CatalogEntry>, MapError> {
        // SAFETY: in-bounds catalog words per CATALOG_SLOTS.
        let w = |i: usize| unsafe { self.catalog_word(cat, slot, i) }.load(Acquire);
        let kind = w(0);
        if kind == 0 {
            return Ok(None);
        }
        let cfg = w(1);
        let root_off = w(2) as usize;
        let name_len = w(3) as usize;
        if name_len == 0
            || name_len > CATALOG_NAME_BYTES
            || root_off < self.data_off
            || root_off >= self.size
        {
            return Err(MapError::CorruptCatalog { slot });
        }
        let mut raw = [0u8; CATALOG_NAME_BYTES];
        for (i, chunk) in raw.chunks_mut(8).enumerate() {
            chunk.copy_from_slice(&w(4 + i).to_le_bytes());
        }
        let Ok(name) = std::str::from_utf8(&raw[..name_len]) else {
            return Err(MapError::CorruptCatalog { slot });
        };
        Ok(Some(CatalogEntry {
            slot,
            name: name.to_string(),
            kind,
            cfg,
            // SAFETY: offset bounds-checked above.
            root: unsafe { self.base.add(root_off) },
        }))
    }

    /// Appends a named entry: allocates a zeroed, committed root block of
    /// `root_bytes`, writes the entry fields, and stamps the kind word
    /// **last** (the valid flag) — a creation cut short by a kill leaves
    /// the slot empty and the orphaned root block unreferenced, which the
    /// next attach sweeps. The caller must have checked the name is not
    /// already present.
    ///
    /// # Safety
    /// `cat` must be the committed catalog block of this heap; single
    /// attach-owner discipline (no concurrent catalog writers).
    pub unsafe fn catalog_append(
        &self,
        cat: *mut u8,
        name: &str,
        kind: u64,
        cfg: u64,
        root_bytes: usize,
    ) -> Result<*mut u8, MapError> {
        assert!(kind != 0, "kind 0 is the empty-slot marker");
        assert!(
            !name.is_empty() && name.len() <= CATALOG_NAME_BYTES,
            "catalog names must be 1..={CATALOG_NAME_BYTES} bytes, got {:?}",
            name
        );
        let slot = (0..CATALOG_SLOTS)
            // SAFETY: in-bounds catalog words.
            .find(|&s| unsafe { self.catalog_word(cat, s, 0) }.load(Acquire) == 0)
            .ok_or(MapError::CatalogFull)?;
        let root = self.alloc(root_bytes)?;
        // Blocks recycled from the free list carry stale payloads.
        // SAFETY: freshly allocated block of at least root_bytes.
        unsafe { std::ptr::write_bytes(root, 0, root_bytes.max(1).div_ceil(GRANULE) * GRANULE) };
        self.commit(root);
        let mut raw = [0u8; CATALOG_NAME_BYTES];
        raw[..name.len()].copy_from_slice(name.as_bytes());
        // SAFETY: in-bounds catalog words; fields first, kind (valid) last.
        unsafe {
            self.catalog_word(cat, slot, 1).store(cfg, SeqCst);
            self.catalog_word(cat, slot, 2)
                .store((root as usize - self.base as usize) as u64, SeqCst);
            self.catalog_word(cat, slot, 3).store(name.len() as u64, SeqCst);
            for (i, chunk) in raw.chunks(8).enumerate() {
                self.catalog_word(cat, slot, 4 + i)
                    .store(u64::from_le_bytes(chunk.try_into().unwrap()), SeqCst);
            }
            self.catalog_word(cat, slot, 0).store(kind, SeqCst);
        }
        Ok(root)
    }
}

/// Catalog geometry: entries per heap and bytes per entry / name.
pub const CATALOG_SLOTS: usize = 16;
/// Bytes of one catalog entry (one allocation granule).
pub const CATALOG_ENTRY_BYTES: usize = 64;
/// Maximum name length in bytes (UTF-8).
pub const CATALOG_NAME_BYTES: usize = 32;

/// One decoded catalog entry: a named structure hosted by the heap.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Catalog slot index (error reporting).
    pub slot: usize,
    /// The structure's name (unique per heap).
    pub name: String,
    /// Structure-kind tag (the store layer interprets it).
    pub kind: u64,
    /// Configuration word recorded at creation.
    pub cfg: u64,
    /// The structure's root block payload.
    pub root: *mut u8,
}

fn map_file(fd: i32, size: usize, preferred: Option<usize>) -> Result<*mut u8, MapError> {
    if let Some(hint) = preferred {
        if let Some(b) = map_file_fixed(fd, size, hint) {
            return Ok(b);
        }
    }
    let r = unsafe { sys_mmap(0, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd) };
    if is_sys_err(r) {
        return if r == -38 {
            Err(MapError::Unsupported)
        } else {
            Err(MapError::MapFailed(-r as i32))
        };
    }
    Ok(r as *mut u8)
}

/// Maps `fd` at exactly `addr` (without evicting an existing mapping), or
/// returns `None` when the range is unavailable.
fn map_file_fixed(fd: i32, size: usize, addr: usize) -> Option<*mut u8> {
    let r = unsafe {
        sys_mmap(addr, size, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_FIXED_NOREPLACE, fd)
    };
    if is_sys_err(r) || r as usize != addr {
        if !is_sys_err(r) {
            // Old kernels ignore NOREPLACE and map elsewhere: undo.
            unsafe { sys_munmap(r as usize, size) };
        }
        return None;
    }
    Some(r as *mut u8)
}

// ---------------------------------------------------------------------------
// The persistency model
// ---------------------------------------------------------------------------

/// Shared-cache persistency model over a [`MappedHeap`]: same instruction
/// behaviour as [`crate::RealNvm`] (`pwb` = `clflush`, `psync` = `mfence`,
/// all counted), but the persistent words live in a file-backed mapping, so
/// the structure state survives the process. See the module docs for what
/// `SIGKILL`-durability does and does not require.
pub struct MappedNvm;

impl Persist for MappedNvm {
    const NAME: &'static str = "mapped";
    const MAPPED: bool = true;
    type Meta = ();

    #[inline]
    fn load(w: &PWord<Self>) -> u64 {
        raw_load(w)
    }
    #[inline]
    fn store(w: &PWord<Self>, v: u64) {
        raw_store(w, v)
    }
    #[inline]
    fn cas(w: &PWord<Self>, old: u64, new: u64) -> u64 {
        raw_cas(w, old, new)
    }

    #[inline]
    fn pwb(w: &PWord<Self>) {
        crate::coalesce::lint::note_pwb(w.addr());
        // SAFETY: `w.addr()` points into the live `PWord` behind `w`.
        unsafe { flush::clflush(w.addr()) };
        stats::count_pwb(1);
    }
    #[inline]
    fn pfence() {
        // Pending coalesced lines must be written back before post-fence
        // flushes (same TSO argument as RealNvm).
        Self::coal_drain();
        crate::coalesce::lint::fence();
        stats::count_pfence();
    }
    #[inline]
    fn psync() {
        Self::coal_drain();
        crate::coalesce::lint::fence();
        flush::mfence();
        stats::count_psync();
    }
    #[inline]
    fn pbarrier(w: &PWord<Self>) {
        Self::coal_drain();
        crate::coalesce::lint::fence();
        // SAFETY: as in `pwb`.
        unsafe { flush::clflush(w.addr()) };
        flush::mfence();
        stats::count_pbarrier(1);
    }
    #[inline]
    fn pwb_obj<T: PersistWords<Self> + ?Sized>(obj: &T) {
        let (p, len) = obj.used_range();
        // SAFETY: `used_range` is a sub-range of the live object behind `obj`.
        let n = unsafe { flush::clflush_range(p, len) };
        stats::count_pwb(n);
    }
    #[inline]
    fn pbarrier_obj<T: PersistWords<Self> + ?Sized>(obj: &T) {
        Self::coal_drain();
        crate::coalesce::lint::fence();
        let (p, len) = obj.used_range();
        // SAFETY: as in `pwb_obj`.
        let n = unsafe { flush::clflush_range(p, len) };
        flush::mfence();
        stats::count_pbarrier(n);
    }

    #[inline]
    fn pwb_coal(w: &PWord<Self>) {
        match crate::coalesce::note(w.addr()) {
            crate::coalesce::Note::New => stats::count_pwb(1),
            crate::coalesce::Note::Dup => stats::count_pwb_elided(1),
            crate::coalesce::Note::Full => {
                // SAFETY: live `PWord` behind `w`.
                unsafe { flush::clflush(w.addr()) };
                stats::count_pwb(1);
            }
        }
    }
    #[inline]
    fn pwb_obj_coal<T: PersistWords<Self> + ?Sized>(obj: &T) {
        let (p, len) = obj.used_range();
        let mut line = crate::coalesce::line_of(p);
        let end = p as u64 + len as u64;
        while line < end {
            match crate::coalesce::note(line as *const u8) {
                crate::coalesce::Note::New => stats::count_pwb(1),
                crate::coalesce::Note::Dup => stats::count_pwb_elided(1),
                crate::coalesce::Note::Full => {
                    // SAFETY: the line lies inside the live object.
                    unsafe { flush::clflush(line as *const u8) };
                    stats::count_pwb(1);
                }
            }
            line += crate::CACHE_LINE as u64;
        }
    }
    #[inline]
    fn coal_drain() {
        // SAFETY: pending lines were noted from objects still live at the
        // draining fence (`pwb_coal` contract); mapped-heap objects are
        // additionally never unmapped while the structure is attached.
        let n = crate::coalesce::drain(|line| unsafe { flush::clflush(line as *const u8) });
        if n > 0 {
            stats::count_lines_coalesced(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "isb_mapped_{}_{}_{name}.heap",
            std::process::id(),
            rand_suffix()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn rand_suffix() -> u64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now().duration_since(UNIX_EPOCH).unwrap().subsec_nanos() as u64
    }

    #[test]
    fn create_alloc_commit_reattach_roundtrip() {
        let path = tmp("roundtrip");
        let vals: Vec<u64> = (0..100).map(|i| 0x1234_5678 + i).collect();
        let offs: Vec<usize> = {
            let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
            assert!(heap.report().created);
            vals.iter()
                .map(|&v| {
                    let p = heap.alloc(24).unwrap();
                    unsafe { (p as *mut u64).write(v) };
                    heap.commit(p);
                    p as usize - heap.base() as usize
                })
                .collect()
        }; // heap dropped: unmapped, file persists
        let heap = MappedHeap::attach(&path).unwrap();
        assert!(!heap.report().created);
        assert_eq!(heap.report().committed, 100);
        assert_eq!(heap.report().poisoned, 0);
        for (off, &v) in offs.iter().zip(&vals) {
            let p = unsafe { heap.base().add(*off) } as *const u64;
            assert_eq!(unsafe { p.read() }, v);
        }
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_allocation_is_poisoned_and_recycled() {
        let path = tmp("torn");
        {
            let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
            let p = heap.alloc(64).unwrap();
            unsafe { (p as *mut u64).write(7) };
            heap.commit(p);
            let torn = heap.alloc(64).unwrap();
            unsafe { (torn as *mut u64).write(0xAAAA) };
            // no commit: simulates a crash mid-allocation
        }
        let heap = MappedHeap::attach(&path).unwrap();
        assert_eq!(heap.report().poisoned, 1);
        assert_eq!(heap.report().committed, 1);
        // The torn block was recycled: the next same-size alloc reuses it,
        // and its payload was poisoned in between.
        let p = heap.alloc(64).unwrap();
        assert_eq!(unsafe { (p as *const u64).read() }, POISON);
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn free_and_reuse_across_attach() {
        let path = tmp("freelist");
        let (off_kept, off_freed) = {
            let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
            let a = heap.alloc(16).unwrap();
            heap.commit(a);
            let b = heap.alloc(16).unwrap();
            heap.commit(b);
            unsafe { heap.free(b) };
            (a as usize - heap.base() as usize, b as usize - heap.base() as usize)
        };
        let heap = MappedHeap::attach(&path).unwrap();
        assert_eq!(heap.report().committed, 1);
        assert_eq!(heap.report().free_blocks, 1);
        // The freed block feeds the next allocation of its size class.
        let c = heap.alloc(16).unwrap();
        assert_eq!(c as usize - heap.base() as usize, off_freed);
        let _ = off_kept;
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn root_directory_persists() {
        let path = tmp("roots");
        {
            let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
            let (p, fresh) = heap.root_alloc(42, 128).unwrap();
            assert!(fresh);
            unsafe { (p as *mut u64).write(0xC0FFEE) };
            heap.set_kind(7);
        }
        let heap = MappedHeap::attach(&path).unwrap();
        assert_eq!(heap.kind(), 7);
        let (p, fresh) = heap.root_alloc(42, 128).unwrap();
        assert!(!fresh);
        assert_eq!(unsafe { (p as *const u64).read() }, 0xC0FFEE);
        assert!(heap.root_get(99).is_none());
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exhaustion_is_a_typed_error() {
        let path = tmp("exhaust");
        let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
        let mut n = 0;
        loop {
            match heap.alloc(4096) {
                Ok(p) => {
                    heap.commit(p);
                    n += 1;
                }
                Err(MapError::Exhausted) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(n > 5, "only {n} blocks fit");
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn forced_relocation_rebases_in_arena_pointers() {
        let path = tmp("reloc");
        let (old_base, off_cell, off_target) = {
            let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
            let target = heap.alloc(8).unwrap();
            unsafe { (target as *mut u64).write(4242) };
            heap.commit(target);
            let cell = heap.alloc(16).unwrap();
            // word 0: tagged in-arena pointer; word 1: user data that must
            // NOT be rebased.
            unsafe {
                (cell as *mut u64).write(target as u64 | 1);
                (cell as *mut u64).add(1).write(555);
            }
            heap.commit(cell);
            (
                heap.base() as usize,
                cell as usize - heap.base() as usize,
                target as usize - heap.base() as usize,
            )
        };
        let heap = MappedHeap::attach_opts(&path, true).unwrap();
        assert!(heap.report().relocated || heap.base() as usize == old_base);
        let cell = unsafe { heap.base().add(off_cell) } as *const u64;
        let want = (heap.base() as usize + off_target) as u64 | 1;
        assert_eq!(unsafe { cell.read() }, want, "tagged pointer rebased, tag preserved");
        assert_eq!(unsafe { cell.add(1).read() }, 555, "non-pointer word untouched");
        // The rebased pointer dereferences to the original value.
        let t = (unsafe { cell.read() } & !1) as *const u64;
        assert_eq!(unsafe { t.read() }, 4242);
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sweep_frees_unmarked_blocks() {
        let path = tmp("sweep");
        let heap = MappedHeap::create(&path, MIN_HEAP_BYTES).unwrap();
        let keep = heap.alloc(32).unwrap();
        heap.commit(keep);
        let lost = heap.alloc(32).unwrap();
        heap.commit(lost);
        let mut live = HashSet::new();
        live.insert(keep as usize);
        assert_eq!(unsafe { heap.sweep_except(&live) }, 1);
        // The swept block is reusable.
        let again = heap.alloc(32).unwrap();
        assert_eq!(again, lost);
        drop(heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapped_nvm_counts_like_real() {
        crate::tid::set_tid(0);
        let before = stats::snapshot();
        let w: PWord<MappedNvm> = PWord::new(9);
        MappedNvm::pwb(&w);
        MappedNvm::pbarrier(&w);
        MappedNvm::psync();
        assert_eq!(w.load(), 9);
        let d = stats::snapshot().since(&before);
        assert_eq!(d.pwb, 1);
        assert_eq!(d.pbarrier, 1);
        assert_eq!(d.psync, 1);
    }
}
