//! Per-operation cache-line flush coalescing (the "flush diet").
//!
//! Batched persist phases (the tag loops and cleanup loops of the ISB engine,
//! multi-word object flushes) frequently target words that share a cache
//! line: `next`/`info` fields of the same 24-byte node, the `RD_q`/`CP_q`
//! pair of one process record, two pool-adjacent fresh nodes. A real machine
//! write-back works at line granularity, so issuing one `clflush` per *word*
//! is pure overhead. This module provides the per-thread **`LineSet`**: a
//! tiny fixed-capacity dedupe set of pending line addresses that the
//! coalescing [`crate::Persist::pwb_coal`] entry points write into, with the
//! actual `clflush`es issued once per unique line when the phase-ending fence
//! ([`crate::Persist::pfence`]/[`crate::Persist::psync`]/`pbarrier*`) drains
//! the set.
//!
//! Semantics (see `DESIGN.md` §12):
//!
//! * A coalesced `pwb` is **outstanding until the next fence** — exactly the
//!   durability the explicit-epoch model already grants an un-fenced `pwb`,
//!   and exactly how the crash simulator ([`crate::SimNvm`]) models every
//!   `pwb`. Deferring the write-back to the fence therefore leaves the set of
//!   reachable crash images unchanged.
//! * The set is **thread-local and capacity-bounded** ([`LINESET_CAP`]
//!   lines). On overflow the line is flushed through immediately
//!   ([`Note::Full`]) — correctness never depends on capacity, only the
//!   dedupe rate does.
//! * Statistics discipline is *count at issue*: a newly-noted line counts as
//!   one `pwb`, a duplicate counts as one elision
//!   ([`crate::stats::count_pwb_elided`]), and the drain itself adds nothing
//!   to `pwb` (it bumps [`crate::stats::count_lines_coalesced`] with the
//!   number of lines it wrote back). `pwb - pwb_elided`-style arithmetic is
//!   not needed: `pwb` already *is* the number of lines physically written
//!   back.
//!
//! The module only manages addresses; the caller decides what "flush" means
//! (real `clflush` for `RealNvm`/`MappedNvm`, nothing for `CountingNvm`).

use crate::CACHE_LINE;
use std::cell::RefCell;

/// Capacity of the per-thread pending-line set. One ISB operation touches
/// well under 16 distinct lines per persist phase (descriptor ≤ 2, a handful
/// of node/record lines), so overflow is a contended-helping corner case,
/// not the common path.
pub const LINESET_CAP: usize = 16;

/// Outcome of noting a line in the pending set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Note {
    /// First time this line is seen since the last drain: count a `pwb`,
    /// defer the flush.
    New,
    /// Line already pending: the flush (and its count) is elided.
    Dup,
    /// Set at capacity: caller must flush through immediately.
    Full,
}

struct LineSet {
    lines: [u64; LINESET_CAP],
    len: usize,
}

impl LineSet {
    const fn new() -> Self {
        Self { lines: [0; LINESET_CAP], len: 0 }
    }
}

thread_local! {
    static PENDING: RefCell<LineSet> = const { RefCell::new(LineSet::new()) };
}

/// Base address of the cache line containing `addr`.
#[inline]
pub fn line_of(addr: *const u8) -> u64 {
    addr as u64 & !(CACHE_LINE as u64 - 1)
}

/// Note the line containing `addr` as pending. Linear scan: the set is tiny
/// and lives in one or two cache lines of its own.
#[inline]
pub fn note(addr: *const u8) -> Note {
    let line = line_of(addr);
    PENDING.with(|p| {
        let mut p = p.borrow_mut();
        if p.lines[..p.len].contains(&line) {
            return Note::Dup;
        }
        if p.len == LINESET_CAP {
            return Note::Full;
        }
        let at = p.len;
        p.lines[at] = line;
        p.len += 1;
        Note::New
    })
}

/// Drain the pending set, invoking `f` with each unique line base address,
/// and return how many lines were drained. Callers follow with (or embed
/// this in) the fence that makes the write-backs durable.
#[inline]
pub fn drain(mut f: impl FnMut(u64)) -> u64 {
    PENDING.with(|p| {
        let mut p = p.borrow_mut();
        let n = p.len;
        for &line in &p.lines[..n] {
            f(line);
        }
        p.len = 0;
        n as u64
    })
}

/// Number of lines currently pending (diagnostics/tests).
pub fn pending() -> usize {
    PENDING.with(|p| p.borrow().len)
}

/// Feature-gated "flush-diet lint": detects two *stand-alone* (non-coalesced)
/// `pwb`s to the same cache line with no intervening fence — a wasted flush
/// the coalescing layer exists to remove. The golden counts in
/// `persist_placement.rs` would only show such a regression as an opaque
/// count diff; the lint turns it into a panic naming the duplicated line.
///
/// The lint is armed per-thread by the core layer only for coalescing arms
/// (the paper/TUNED placements legitimately re-flush lines whose sharing is
/// allocator-dependent). With the `flush-lint` feature disabled every entry
/// point is an empty `#[inline]` function.
pub mod lint {
    /// Arm or disarm the lint for the current thread.
    #[cfg(feature = "flush-lint")]
    pub fn set_armed(on: bool) {
        S.with(|s| {
            let mut s = s.borrow_mut();
            s.armed = on;
            s.lines.clear();
        });
    }

    /// Arm or disarm the lint for the current thread (no-op: feature off).
    #[cfg(not(feature = "flush-lint"))]
    #[inline]
    pub fn set_armed(_on: bool) {}

    /// Record a stand-alone flush of the line containing `addr`.
    #[cfg(feature = "flush-lint")]
    pub fn note_pwb(addr: *const u8) {
        let line = super::line_of(addr);
        S.with(|s| {
            let mut s = s.borrow_mut();
            if !s.armed {
                return;
            }
            if s.lines.contains(&line) {
                panic!(
                    "flush-diet lint: stand-alone pwb to line {line:#x} twice \
                     without an intervening fence (coalescing arm should route \
                     this through pwb_coal)"
                );
            }
            s.lines.push(line);
        });
    }

    /// Record a stand-alone flush (no-op: feature off).
    #[cfg(not(feature = "flush-lint"))]
    #[inline]
    pub fn note_pwb(_addr: *const u8) {}

    /// A fence ran: all earlier flushes are complete, clear the window.
    #[cfg(feature = "flush-lint")]
    pub fn fence() {
        S.with(|s| s.borrow_mut().lines.clear());
    }

    /// A fence ran (no-op: feature off).
    #[cfg(not(feature = "flush-lint"))]
    #[inline]
    pub fn fence() {}

    #[cfg(feature = "flush-lint")]
    struct LintState {
        armed: bool,
        lines: Vec<u64>,
    }

    #[cfg(feature = "flush-lint")]
    thread_local! {
        static S: std::cell::RefCell<LintState> =
            std::cell::RefCell::new(LintState { armed: false, lines: Vec::new() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedupes_within_a_line_and_drains_once() {
        // Start from a clean set (other unit tests share the thread).
        drain(|_| {});
        let buf = [0u8; 256];
        let base = line_of(&buf[64] as *const u8) as *const u8; // line-aligned, inside buf
        assert_eq!(note(base), Note::New);
        // Same line, different word.
        assert_eq!(note(unsafe { base.add(8) }), Note::Dup);
        // Next line.
        assert_eq!(note(unsafe { base.add(CACHE_LINE) }), Note::New);
        assert_eq!(pending(), 2);
        let mut seen = Vec::new();
        assert_eq!(drain(|l| seen.push(l)), 2);
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], line_of(base));
        assert_eq!(pending(), 0);
        // After a drain the same line is New again.
        assert_eq!(note(base), Note::New);
        drain(|_| {});
    }

    #[test]
    fn overflow_reports_full() {
        drain(|_| {});
        let buf = vec![0u8; CACHE_LINE * (LINESET_CAP + 2)];
        let base = line_of(&buf[CACHE_LINE] as *const u8) as *const u8;
        for i in 0..LINESET_CAP {
            assert_eq!(note(unsafe { base.add(i * CACHE_LINE) }), Note::New);
        }
        assert_eq!(note(unsafe { base.add(LINESET_CAP * CACHE_LINE) }), Note::Full);
        // A pending line still dedupes at capacity.
        assert_eq!(note(base), Note::Dup);
        assert_eq!(drain(|_| {}), LINESET_CAP as u64);
    }
}
