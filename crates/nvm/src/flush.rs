//! Raw cache-line write-back and fence primitives.
//!
//! With the `real-flush` feature (default) on x86_64 these map to the exact
//! instructions the paper's evaluation uses (`clflush` for `pwb`, `mfence`
//! for `psync`). On other architectures — or with the feature disabled — we
//! fall back to a calibrated spin delay so that benchmark *shapes* (which are
//! driven by the relative number of persistency instructions) are preserved.

use crate::CACHE_LINE;

/// True when the real x86_64 flush/fence intrinsics are compiled in.
pub const HAS_REAL_FLUSH: bool = cfg!(all(target_arch = "x86_64", feature = "real-flush"));

/// Write back (and invalidate) the cache line containing `p`.
///
/// `clflush` is unprivileged and operates on ordinary DRAM, which is exactly
/// how the paper simulates `pwb` in the absence of NVRAM.
///
/// # Safety
/// `p` must point into a live allocation (the instruction touches the whole
/// cache line containing it).
#[inline]
pub unsafe fn clflush(p: *const u8) {
    #[cfg(all(target_arch = "x86_64", feature = "real-flush"))]
    unsafe {
        core::arch::x86_64::_mm_clflush(p)
    }
    #[cfg(not(all(target_arch = "x86_64", feature = "real-flush")))]
    {
        let _ = p;
        spin_delay(FALLBACK_FLUSH_SPINS);
    }
}

/// Full memory fence ordering loads, stores and flushes (`mfence`).
#[inline]
pub fn mfence() {
    #[cfg(all(target_arch = "x86_64", feature = "real-flush"))]
    unsafe {
        core::arch::x86_64::_mm_mfence()
    }
    #[cfg(not(all(target_arch = "x86_64", feature = "real-flush")))]
    {
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
        spin_delay(FALLBACK_FENCE_SPINS);
    }
}

/// Store fence (`sfence`); sufficient to order flushes on TSO.
#[inline]
pub fn sfence() {
    #[cfg(all(target_arch = "x86_64", feature = "real-flush"))]
    unsafe {
        core::arch::x86_64::_mm_sfence()
    }
    #[cfg(not(all(target_arch = "x86_64", feature = "real-flush")))]
    std::sync::atomic::fence(std::sync::atomic::Ordering::Release);
}

#[cfg(not(all(target_arch = "x86_64", feature = "real-flush")))]
const FALLBACK_FLUSH_SPINS: u32 = 60;
#[cfg(not(all(target_arch = "x86_64", feature = "real-flush")))]
const FALLBACK_FENCE_SPINS: u32 = 30;

/// Busy-wait used to emulate flush latency on targets without `clflush`.
#[cfg(not(all(target_arch = "x86_64", feature = "real-flush")))]
#[inline]
fn spin_delay(iters: u32) {
    for _ in 0..iters {
        std::hint::spin_loop();
    }
}

/// Flush every cache line overlapping `[start, start + len)`.
///
/// Returns the number of lines flushed (used by statistics).
///
/// # Safety
/// `[start, start + len)` must lie within a live allocation.
#[inline]
pub unsafe fn clflush_range(start: *const u8, len: usize) -> u64 {
    if len == 0 {
        return 0;
    }
    let first = start as usize & !(CACHE_LINE - 1);
    let last = (start as usize + len - 1) & !(CACHE_LINE - 1);
    let mut line = first;
    let mut n = 0u64;
    loop {
        // SAFETY: every flushed line overlaps the caller-guaranteed range.
        unsafe { clflush(line as *const u8) };
        n += 1;
        if line == last {
            break;
        }
        line += CACHE_LINE;
    }
    n
}

/// Number of cache lines overlapping `[start, start+len)` without flushing.
#[inline]
pub fn lines_in_range(start: *const u8, len: usize) -> u64 {
    if len == 0 {
        return 0;
    }
    let first = start as usize & !(CACHE_LINE - 1);
    let last = (start as usize + len - 1) & !(CACHE_LINE - 1);
    ((last - first) / CACHE_LINE) as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_range_counts_lines() {
        let buf = vec![0u8; 4096];
        unsafe {
            // A single byte is one line.
            assert_eq!(clflush_range(buf.as_ptr(), 1), 1);
            // Exactly one aligned line.
            let aligned = ((buf.as_ptr() as usize + 63) & !63) as *const u8;
            assert_eq!(clflush_range(aligned, 64), 1);
            assert_eq!(clflush_range(aligned, 65), 2);
            // Straddling: 2 bytes crossing a boundary span two lines.
            assert_eq!(clflush_range(aligned.add(63), 2), 2);
            assert_eq!(clflush_range(buf.as_ptr(), 0), 0);
        }
    }

    #[test]
    fn lines_in_range_matches_flush_count() {
        let buf = vec![0u8; 1024];
        for off in [0usize, 1, 31, 63] {
            for len in [1usize, 2, 64, 65, 128, 200] {
                unsafe {
                    let p = buf.as_ptr().add(off);
                    assert_eq!(lines_in_range(p, len), clflush_range(p, len));
                }
            }
        }
    }

    #[test]
    fn fences_do_not_crash() {
        mfence();
        sfence();
        let x = 42u64;
        unsafe { clflush(&x as *const u64 as *const u8) };
    }
}
