//! The [`Persist`] trait and its real-machine implementations.

use crate::flush;
use crate::pword::{PWord, PersistWords};
use crate::stats;
use std::sync::atomic::Ordering::{Acquire, Release, SeqCst};

/// A persistency model (see crate docs). Monomorphised into every data
/// structure; the real modes compile to plain atomics plus (optionally)
/// `clflush`/`mfence` and counter bumps.
pub trait Persist: Sized + Send + Sync + 'static {
    /// Human-readable mode name (reported by the benchmark harness).
    const NAME: &'static str;
    /// True for the crash simulator (enables extra bookkeeping in callers).
    const SIMULATED: bool = false;
    /// True for the mapped (file-backed) backend: callers gate their
    /// attach-time-only bookkeeping (e.g. release suspension during the
    /// recovery replay) on this so every other model compiles it away.
    const MAPPED: bool = false;
    /// Per-word metadata (empty except for the simulator).
    type Meta: Default + Send + Sync;

    /// Atomic load (Acquire).
    fn load(w: &PWord<Self>) -> u64;
    /// Atomic store (Release).
    fn store(w: &PWord<Self>, v: u64);
    /// Atomic CAS returning the value read.
    fn cas(w: &PWord<Self>, old: u64, new: u64) -> u64;

    /// `pwb`: initiate write-back of the line containing `w` (stand-alone).
    fn pwb(w: &PWord<Self>);
    /// `pfence`: order preceding `pwb`s before subsequent ones.
    fn pfence();
    /// `psync`: wait for all preceding `pwb`s to complete.
    fn psync();

    /// `pbarrier(w)` = `pwb(w); pfence()`, counted as one barrier.
    fn pbarrier(w: &PWord<Self>);

    /// Flush every line of `obj` (stand-alone flushes).
    fn pwb_obj<T: PersistWords<Self> + ?Sized>(obj: &T);
    /// Flush every line of `obj` then fence — the paper's multi-argument
    /// `pbarrier(*opInfo, NewSet)`; counted as one barrier event.
    fn pbarrier_obj<T: PersistWords<Self> + ?Sized>(obj: &T);

    /// Crash-injection hook; no-op outside the simulator.
    #[inline]
    fn check_crash() {}
}

#[inline]
pub(crate) fn raw_load<M: Persist>(w: &PWord<M>) -> u64 {
    w.v.load(Acquire)
}
#[inline]
pub(crate) fn raw_store<M: Persist>(w: &PWord<M>, v: u64) {
    w.v.store(v, Release)
}
#[inline]
pub(crate) fn raw_cas<M: Persist>(w: &PWord<M>, old: u64, new: u64) -> u64 {
    match w.v.compare_exchange(old, new, SeqCst, SeqCst) {
        Ok(prev) => prev,
        Err(prev) => prev,
    }
}

/// Shared-cache model on real hardware: `pwb` = `clflush`, `psync` =
/// `mfence`, `pfence` = no-op under TSO (as in the paper's evaluation).
/// All persistency instructions are counted.
pub struct RealNvm;

impl Persist for RealNvm {
    const NAME: &'static str = "real";
    type Meta = ();

    #[inline]
    fn load(w: &PWord<Self>) -> u64 {
        raw_load(w)
    }
    #[inline]
    fn store(w: &PWord<Self>, v: u64) {
        raw_store(w, v)
    }
    #[inline]
    fn cas(w: &PWord<Self>, old: u64, new: u64) -> u64 {
        raw_cas(w, old, new)
    }

    #[inline]
    fn pwb(w: &PWord<Self>) {
        // SAFETY: `w.addr()` points into the live `PWord` behind `w`.
        unsafe { flush::clflush(w.addr()) };
        stats::count_pwb(1);
    }
    #[inline]
    fn pfence() {
        // TSO: flushes of this implementation are already ordered; counted only.
        stats::count_pfence();
    }
    #[inline]
    fn psync() {
        flush::mfence();
        stats::count_psync();
    }
    #[inline]
    fn pbarrier(w: &PWord<Self>) {
        // SAFETY: `w.addr()` points into the live `PWord` behind `w`.
        unsafe { flush::clflush(w.addr()) };
        flush::mfence();
        stats::count_pbarrier(1);
    }
    #[inline]
    fn pwb_obj<T: PersistWords<Self> + ?Sized>(obj: &T) {
        let (p, len) = obj.used_range();
        // SAFETY: `used_range` is a sub-range of the live object behind `obj`
        // (PersistWords safety contract).
        let n = unsafe { flush::clflush_range(p, len) };
        stats::count_pwb(n);
    }
    #[inline]
    fn pbarrier_obj<T: PersistWords<Self> + ?Sized>(obj: &T) {
        let (p, len) = obj.used_range();
        // SAFETY: as in `pwb_obj`.
        let n = unsafe { flush::clflush_range(p, len) };
        flush::mfence();
        stats::count_pbarrier(n);
    }
}

/// Shared-cache model with *counted but not executed* flushes. Portable,
/// used by CI and by counting-only experiments where flush latency is not
/// itself under study.
pub struct CountingNvm;

impl Persist for CountingNvm {
    const NAME: &'static str = "counting";
    type Meta = ();

    #[inline]
    fn load(w: &PWord<Self>) -> u64 {
        raw_load(w)
    }
    #[inline]
    fn store(w: &PWord<Self>, v: u64) {
        raw_store(w, v)
    }
    #[inline]
    fn cas(w: &PWord<Self>, old: u64, new: u64) -> u64 {
        raw_cas(w, old, new)
    }

    #[inline]
    fn pwb(_w: &PWord<Self>) {
        stats::count_pwb(1);
    }
    #[inline]
    fn pfence() {
        stats::count_pfence();
    }
    #[inline]
    fn psync() {
        stats::count_psync();
    }
    #[inline]
    fn pbarrier(_w: &PWord<Self>) {
        stats::count_pbarrier(1);
    }
    #[inline]
    fn pwb_obj<T: PersistWords<Self> + ?Sized>(obj: &T) {
        let (p, len) = obj.used_range();
        stats::count_pwb(flush::lines_in_range(p, len));
    }
    #[inline]
    fn pbarrier_obj<T: PersistWords<Self> + ?Sized>(obj: &T) {
        let (p, len) = obj.used_range();
        stats::count_pbarrier(flush::lines_in_range(p, len));
    }
}

/// Private-cache model: shared variables are always persistent, so every
/// persistency instruction is free (and uncounted). Used for Figure 4 and
/// Figure 7 (middle/right).
pub struct NoPersist;

impl Persist for NoPersist {
    const NAME: &'static str = "private-cache";
    type Meta = ();

    #[inline]
    fn load(w: &PWord<Self>) -> u64 {
        raw_load(w)
    }
    #[inline]
    fn store(w: &PWord<Self>, v: u64) {
        raw_store(w, v)
    }
    #[inline]
    fn cas(w: &PWord<Self>, old: u64, new: u64) -> u64 {
        raw_cas(w, old, new)
    }

    #[inline]
    fn pwb(_w: &PWord<Self>) {}
    #[inline]
    fn pfence() {}
    #[inline]
    fn psync() {}
    #[inline]
    fn pbarrier(_w: &PWord<Self>) {}
    #[inline]
    fn pwb_obj<T: PersistWords<Self> + ?Sized>(_obj: &T) {}
    #[inline]
    fn pbarrier_obj<T: PersistWords<Self> + ?Sized>(_obj: &T) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tid;

    #[test]
    fn counting_mode_counts() {
        tid::set_tid(0);
        let before = stats::snapshot();
        let w: PWord<CountingNvm> = PWord::new(0);
        CountingNvm::pwb(&w);
        CountingNvm::pbarrier(&w);
        CountingNvm::psync();
        let d = stats::snapshot().since(&before);
        assert_eq!(d.pwb, 1);
        assert_eq!(d.pbarrier, 1);
        assert_eq!(d.psync, 1);
    }

    #[test]
    fn no_persist_counts_nothing() {
        tid::set_tid(0);
        let before = stats::snapshot();
        let w: PWord<NoPersist> = PWord::new(0);
        NoPersist::pwb(&w);
        NoPersist::pbarrier(&w);
        NoPersist::psync();
        let d = stats::snapshot().since(&before);
        assert_eq!(d, stats::Snapshot::default());
    }

    #[test]
    fn real_mode_flushes_and_counts() {
        tid::set_tid(0);
        let before = stats::snapshot();
        let w: PWord<RealNvm> = PWord::new(7);
        RealNvm::pwb(&w);
        RealNvm::psync();
        assert_eq!(w.load(), 7, "flushing must not corrupt the value");
        let d = stats::snapshot().since(&before);
        assert_eq!(d.pwb, 1);
        assert_eq!(d.psync, 1);
    }

    #[test]
    fn cas_returns_read_value_in_all_modes() {
        fn check<M: Persist>() {
            let w: PWord<M> = PWord::new(1);
            assert_eq!(M::cas(&w, 1, 2), 1);
            assert_eq!(M::cas(&w, 1, 3), 2);
            assert_eq!(M::load(&w), 2);
        }
        check::<RealNvm>();
        check::<CountingNvm>();
        check::<NoPersist>();
    }
}
