//! The [`Persist`] trait and its real-machine implementations.

use crate::coalesce;
use crate::coalesce::lint;
use crate::flush;
use crate::pword::{PWord, PersistWords};
use crate::stats;
use crate::CACHE_LINE;
use std::sync::atomic::Ordering::{Acquire, Release, SeqCst};

/// A persistency model (see crate docs). Monomorphised into every data
/// structure; the real modes compile to plain atomics plus (optionally)
/// `clflush`/`mfence` and counter bumps.
pub trait Persist: Sized + Send + Sync + 'static {
    /// Human-readable mode name (reported by the benchmark harness).
    const NAME: &'static str;
    /// True for the crash simulator (enables extra bookkeeping in callers).
    const SIMULATED: bool = false;
    /// True for the mapped (file-backed) backend: callers gate their
    /// attach-time-only bookkeeping (e.g. release suspension during the
    /// recovery replay) on this so every other model compiles it away.
    const MAPPED: bool = false;
    /// Per-word metadata (empty except for the simulator).
    type Meta: Default + Send + Sync;

    /// Atomic load (Acquire).
    fn load(w: &PWord<Self>) -> u64;
    /// Atomic store (Release).
    fn store(w: &PWord<Self>, v: u64);
    /// Atomic CAS returning the value read.
    fn cas(w: &PWord<Self>, old: u64, new: u64) -> u64;

    /// `pwb`: initiate write-back of the line containing `w` (stand-alone).
    fn pwb(w: &PWord<Self>);
    /// `pfence`: order preceding `pwb`s before subsequent ones.
    fn pfence();
    /// `psync`: wait for all preceding `pwb`s to complete.
    fn psync();

    /// `pbarrier(w)` = `pwb(w); pfence()`, counted as one barrier.
    fn pbarrier(w: &PWord<Self>);

    /// Flush every line of `obj` (stand-alone flushes).
    fn pwb_obj<T: PersistWords<Self> + ?Sized>(obj: &T);
    /// Flush every line of `obj` then fence — the paper's multi-argument
    /// `pbarrier(*opInfo, NewSet)`; counted as one barrier event.
    fn pbarrier_obj<T: PersistWords<Self> + ?Sized>(obj: &T);

    /// Coalescing `pwb`: durability-equivalent to [`Persist::pwb`] (the
    /// write-back is outstanding until the next fence either way), but modes
    /// with a physical flush may defer it into the per-thread
    /// [`crate::coalesce`] line set and write each unique line back once when
    /// the phase-ending fence drains the set. Callers must ensure a drain
    /// (any fence, or [`Persist::coal_drain`]) runs before a noted object can
    /// be freed. Defaults to plain `pwb` for modes without deferral
    /// (simulator, private-cache).
    #[inline]
    fn pwb_coal(w: &PWord<Self>) {
        Self::pwb(w);
    }
    /// Coalescing variant of [`Persist::pwb_obj`]: every line of `obj` is
    /// noted in (or elided against) the pending set instead of being flushed
    /// immediately.
    #[inline]
    fn pwb_obj_coal<T: PersistWords<Self> + ?Sized>(obj: &T) {
        Self::pwb_obj(obj);
    }
    /// Write back all pending coalesced lines *without* fencing. For phases
    /// that end without a fence (the engine's deferred cleanup) but whose
    /// noted objects may be recycled after the operation returns.
    #[inline]
    fn coal_drain() {}

    /// Crash-injection hook; no-op outside the simulator.
    #[inline]
    fn check_crash() {}
}

#[inline]
pub(crate) fn raw_load<M: Persist>(w: &PWord<M>) -> u64 {
    w.v.load(Acquire)
}
#[inline]
pub(crate) fn raw_store<M: Persist>(w: &PWord<M>, v: u64) {
    w.v.store(v, Release)
}
#[inline]
pub(crate) fn raw_cas<M: Persist>(w: &PWord<M>, old: u64, new: u64) -> u64 {
    match w.v.compare_exchange(old, new, SeqCst, SeqCst) {
        Ok(prev) => prev,
        Err(prev) => prev,
    }
}

/// Note every cache line of `[p, p+len)` in the coalescing set, counting New
/// lines as issued `pwb`s and duplicates as elisions; `flush_through` handles
/// capacity overflow (immediate write-back).
#[inline]
fn coal_note_range(p: *const u8, len: usize, mut flush_through: impl FnMut(u64)) {
    let mut line = coalesce::line_of(p);
    let end = p as u64 + len as u64;
    while line < end {
        match coalesce::note(line as *const u8) {
            coalesce::Note::New => stats::count_pwb(1),
            coalesce::Note::Dup => stats::count_pwb_elided(1),
            coalesce::Note::Full => {
                flush_through(line);
                stats::count_pwb(1);
            }
        }
        line += CACHE_LINE as u64;
    }
}

/// Shared-cache model on real hardware: `pwb` = `clflush`, `psync` =
/// `mfence`, `pfence` = no-op under TSO (as in the paper's evaluation).
/// All persistency instructions are counted.
pub struct RealNvm;

impl Persist for RealNvm {
    const NAME: &'static str = "real";
    type Meta = ();

    #[inline]
    fn load(w: &PWord<Self>) -> u64 {
        raw_load(w)
    }
    #[inline]
    fn store(w: &PWord<Self>, v: u64) {
        raw_store(w, v)
    }
    #[inline]
    fn cas(w: &PWord<Self>, old: u64, new: u64) -> u64 {
        raw_cas(w, old, new)
    }

    #[inline]
    fn pwb(w: &PWord<Self>) {
        lint::note_pwb(w.addr());
        // SAFETY: `w.addr()` points into the live `PWord` behind `w`.
        unsafe { flush::clflush(w.addr()) };
        stats::count_pwb(1);
    }
    #[inline]
    fn pfence() {
        // TSO: flushes of this implementation are already ordered; counted
        // only. Pending coalesced lines must still be written back here so
        // they are ordered before post-fence flushes.
        Self::coal_drain();
        lint::fence();
        stats::count_pfence();
    }
    #[inline]
    fn psync() {
        Self::coal_drain();
        lint::fence();
        flush::mfence();
        stats::count_psync();
    }
    #[inline]
    fn pbarrier(w: &PWord<Self>) {
        Self::coal_drain();
        lint::fence();
        // SAFETY: `w.addr()` points into the live `PWord` behind `w`.
        unsafe { flush::clflush(w.addr()) };
        flush::mfence();
        stats::count_pbarrier(1);
    }
    #[inline]
    fn pwb_obj<T: PersistWords<Self> + ?Sized>(obj: &T) {
        let (p, len) = obj.used_range();
        // SAFETY: `used_range` is a sub-range of the live object behind `obj`
        // (PersistWords safety contract).
        let n = unsafe { flush::clflush_range(p, len) };
        stats::count_pwb(n);
    }
    #[inline]
    fn pbarrier_obj<T: PersistWords<Self> + ?Sized>(obj: &T) {
        Self::coal_drain();
        lint::fence();
        let (p, len) = obj.used_range();
        // SAFETY: as in `pwb_obj`.
        let n = unsafe { flush::clflush_range(p, len) };
        flush::mfence();
        stats::count_pbarrier(n);
    }

    #[inline]
    fn pwb_coal(w: &PWord<Self>) {
        match coalesce::note(w.addr()) {
            coalesce::Note::New => stats::count_pwb(1),
            coalesce::Note::Dup => stats::count_pwb_elided(1),
            coalesce::Note::Full => {
                // SAFETY: live `PWord` behind `w`.
                unsafe { flush::clflush(w.addr()) };
                stats::count_pwb(1);
            }
        }
    }
    #[inline]
    fn pwb_obj_coal<T: PersistWords<Self> + ?Sized>(obj: &T) {
        let (p, len) = obj.used_range();
        // SAFETY: overflow lines lie inside the live object (PersistWords
        // safety contract).
        coal_note_range(p, len, |line| unsafe { flush::clflush(line as *const u8) });
    }
    #[inline]
    fn coal_drain() {
        // SAFETY: every pending line was noted from an object that is, per
        // the `pwb_coal` contract, still live at the draining fence.
        let n = coalesce::drain(|line| unsafe { flush::clflush(line as *const u8) });
        if n > 0 {
            stats::count_lines_coalesced(n);
        }
    }
}

/// Shared-cache model with *counted but not executed* flushes. Portable,
/// used by CI and by counting-only experiments where flush latency is not
/// itself under study.
pub struct CountingNvm;

impl Persist for CountingNvm {
    const NAME: &'static str = "counting";
    type Meta = ();

    #[inline]
    fn load(w: &PWord<Self>) -> u64 {
        raw_load(w)
    }
    #[inline]
    fn store(w: &PWord<Self>, v: u64) {
        raw_store(w, v)
    }
    #[inline]
    fn cas(w: &PWord<Self>, old: u64, new: u64) -> u64 {
        raw_cas(w, old, new)
    }

    #[inline]
    fn pwb(w: &PWord<Self>) {
        lint::note_pwb(w.addr());
        stats::count_pwb(1);
    }
    #[inline]
    fn pfence() {
        Self::coal_drain();
        lint::fence();
        stats::count_pfence();
    }
    #[inline]
    fn psync() {
        Self::coal_drain();
        lint::fence();
        stats::count_psync();
    }
    #[inline]
    fn pbarrier(_w: &PWord<Self>) {
        Self::coal_drain();
        lint::fence();
        stats::count_pbarrier(1);
    }
    #[inline]
    fn pwb_obj<T: PersistWords<Self> + ?Sized>(obj: &T) {
        let (p, len) = obj.used_range();
        stats::count_pwb(flush::lines_in_range(p, len));
    }
    #[inline]
    fn pbarrier_obj<T: PersistWords<Self> + ?Sized>(obj: &T) {
        Self::coal_drain();
        lint::fence();
        let (p, len) = obj.used_range();
        stats::count_pbarrier(flush::lines_in_range(p, len));
    }

    #[inline]
    fn pwb_coal(w: &PWord<Self>) {
        match coalesce::note(w.addr()) {
            coalesce::Note::New | coalesce::Note::Full => stats::count_pwb(1),
            coalesce::Note::Dup => stats::count_pwb_elided(1),
        }
    }
    #[inline]
    fn pwb_obj_coal<T: PersistWords<Self> + ?Sized>(obj: &T) {
        let (p, len) = obj.used_range();
        coal_note_range(p, len, |_| {});
    }
    #[inline]
    fn coal_drain() {
        let n = coalesce::drain(|_| {});
        if n > 0 {
            stats::count_lines_coalesced(n);
        }
    }
}

/// Private-cache model: shared variables are always persistent, so every
/// persistency instruction is free (and uncounted). Used for Figure 4 and
/// Figure 7 (middle/right).
pub struct NoPersist;

impl Persist for NoPersist {
    const NAME: &'static str = "private-cache";
    type Meta = ();

    #[inline]
    fn load(w: &PWord<Self>) -> u64 {
        raw_load(w)
    }
    #[inline]
    fn store(w: &PWord<Self>, v: u64) {
        raw_store(w, v)
    }
    #[inline]
    fn cas(w: &PWord<Self>, old: u64, new: u64) -> u64 {
        raw_cas(w, old, new)
    }

    #[inline]
    fn pwb(_w: &PWord<Self>) {}
    #[inline]
    fn pfence() {}
    #[inline]
    fn psync() {}
    #[inline]
    fn pbarrier(_w: &PWord<Self>) {}
    #[inline]
    fn pwb_obj<T: PersistWords<Self> + ?Sized>(_obj: &T) {}
    #[inline]
    fn pbarrier_obj<T: PersistWords<Self> + ?Sized>(_obj: &T) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tid;

    #[test]
    fn counting_mode_counts() {
        tid::set_tid(0);
        let before = stats::snapshot();
        let w: PWord<CountingNvm> = PWord::new(0);
        CountingNvm::pwb(&w);
        CountingNvm::pbarrier(&w);
        CountingNvm::psync();
        let d = stats::snapshot().since(&before);
        assert_eq!(d.pwb, 1);
        assert_eq!(d.pbarrier, 1);
        assert_eq!(d.psync, 1);
    }

    #[test]
    fn no_persist_counts_nothing() {
        tid::set_tid(0);
        let before = stats::snapshot();
        let w: PWord<NoPersist> = PWord::new(0);
        NoPersist::pwb(&w);
        NoPersist::pbarrier(&w);
        NoPersist::psync();
        let d = stats::snapshot().since(&before);
        assert_eq!(d, stats::Snapshot::default());
    }

    #[test]
    fn real_mode_flushes_and_counts() {
        tid::set_tid(0);
        let before = stats::snapshot();
        let w: PWord<RealNvm> = PWord::new(7);
        RealNvm::pwb(&w);
        RealNvm::psync();
        assert_eq!(w.load(), 7, "flushing must not corrupt the value");
        let d = stats::snapshot().since(&before);
        assert_eq!(d.pwb, 1);
        assert_eq!(d.psync, 1);
    }

    #[test]
    fn coalesced_pwb_counts_at_issue_and_drains_at_fence() {
        tid::set_tid(0);
        for_real_and_counting();

        fn one<M: Persist>() {
            // Two words in the same line (ProcRec-style layout).
            #[repr(C, align(64))]
            struct Pair<M: Persist>(PWord<M>, PWord<M>);
            let pair: Pair<M> = Pair(PWord::new(1), PWord::new(2));

            let before = stats::snapshot();
            M::pwb_coal(&pair.0);
            M::pwb_coal(&pair.1); // same line: elided
            let d = stats::snapshot().since(&before);
            assert_eq!(d.pwb, 1, "{}: first note counts as a pwb", M::NAME);
            assert_eq!(d.pwb_elided, 1, "{}: duplicate line elided", M::NAME);
            assert_eq!(d.lines_coalesced, 0, "{}: nothing drained yet", M::NAME);

            M::psync();
            let d = stats::snapshot().since(&before);
            assert_eq!(d.pwb, 1, "{}: drain adds no pwb", M::NAME);
            assert_eq!(d.lines_coalesced, 1, "{}: one line drained", M::NAME);
            assert_eq!(d.psync, 1);
            assert_eq!(pair.0.load(), 1, "flush must not corrupt");
            assert_eq!(pair.1.load(), 2);

            // After the drain the same line counts fresh again, and a pfence
            // also drains (ordering would be lost otherwise).
            let before = stats::snapshot();
            M::pwb_coal(&pair.0);
            M::pfence();
            let d = stats::snapshot().since(&before);
            assert_eq!(d.pwb, 1, "{}", M::NAME);
            assert_eq!(d.lines_coalesced, 1, "{}: pfence drains too", M::NAME);
        }
        fn for_real_and_counting() {
            one::<RealNvm>();
            one::<CountingNvm>();
        }
    }

    #[test]
    fn cas_returns_read_value_in_all_modes() {
        fn check<M: Persist>() {
            let w: PWord<M> = PWord::new(1);
            assert_eq!(M::cas(&w, 1, 2), 1);
            assert_eq!(M::cas(&w, 1, 3), 2);
            assert_eq!(M::load(&w), 2);
        }
        check::<RealNvm>();
        check::<CountingNvm>();
        check::<NoPersist>();
    }
}
