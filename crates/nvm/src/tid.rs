//! Process (thread) identifiers.
//!
//! The paper's model is a fixed set of asynchronous crash-prone processes
//! `q ∈ {0..N-1}`; per-process persistent variables (`RD_q`, `CP_q`),
//! statistics slots and reclamation slots are indexed by this id. A crashed
//! process is *resurrected* with the same id, which the test harness models
//! by spawning a fresh OS thread and assigning it the dead thread's id.

use crate::MAX_PROCS;
use std::cell::Cell;

thread_local! {
    static TID: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Registers the calling OS thread as process `t`.
///
/// # Panics
/// If `t >= MAX_PROCS`.
pub fn set_tid(t: usize) {
    assert!(t < MAX_PROCS, "process id {t} out of range (< {MAX_PROCS})");
    TID.with(|c| c.set(t));
}

/// The calling thread's process id.
///
/// # Panics
/// If the thread was never registered with [`set_tid`].
#[inline]
pub fn tid() -> usize {
    let t = TID.with(|c| c.get());
    debug_assert!(t != usize::MAX, "thread not registered: call nvm::tid::set_tid first");
    if t == usize::MAX {
        panic!("thread not registered: call nvm::tid::set_tid first");
    }
    t
}

/// The calling thread's process id, if registered.
#[inline]
pub fn try_tid() -> Option<usize> {
    let t = TID.with(|c| c.get());
    (t != usize::MAX).then_some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_read() {
        set_tid(3);
        assert_eq!(tid(), 3);
        assert_eq!(try_tid(), Some(3));
        set_tid(5);
        assert_eq!(tid(), 5);
    }

    #[test]
    fn unregistered_thread_has_no_tid() {
        std::thread::spawn(|| {
            assert_eq!(try_tid(), None);
        })
        .join()
        .unwrap();
    }

    #[test]
    #[should_panic]
    fn out_of_range_tid_panics() {
        set_tid(MAX_PROCS);
    }
}
