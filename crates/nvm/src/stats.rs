//! Persistency-instruction statistics.
//!
//! Figures 1b, 1c, 5 and 6 of the paper plot, per operation, the number of
//! **pbarriers** (a `pwb` immediately followed by a fence — in the paper's
//! measured code a `clflush; mfence` pair) and the number of **stand-alone
//! flushes** (`pwb`s not part of a barrier). We keep per-process counters on
//! padded slots (no cross-thread contention) and sum them on demand.

use crate::pad::CachePadded;
use crate::tid;
use crate::MAX_PROCS;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// One process's counters.
#[derive(Debug, Default)]
pub struct Slot {
    /// Stand-alone `pwb` calls (one per word/line flushed outside barriers).
    pub pwb: AtomicU64,
    /// `pbarrier` calls (each = flush(es) + fence).
    pub pbarrier: AtomicU64,
    /// Cache lines flushed *inside* barriers (≥ pbarrier when flushing multi-line objects).
    pub pbarrier_lines: AtomicU64,
    /// `pfence` calls.
    pub pfence: AtomicU64,
    /// `psync` calls.
    pub psync: AtomicU64,
    /// Coalesced `pwb`s elided as duplicates of an already-pending line
    /// (see [`crate::coalesce`]); these issued no write-back and are *not*
    /// included in `pwb`.
    pub pwb_elided: AtomicU64,
    /// Lines written back by fence-time drains of the coalescing set. Each
    /// was already counted in `pwb` when noted; this tracks how much traffic
    /// went through the deferred path.
    pub lines_coalesced: AtomicU64,
    /// Persistent-heap block allocations ([`crate::MappedHeap::alloc`]).
    pub heap_allocs: AtomicU64,
    /// Heap allocations served from a free list (per-thread cache, global
    /// stack, or cold map) rather than the bump cursor.
    pub free_list_hits: AtomicU64,
    /// Slab refills: bump-cursor reservations that carved a batch of blocks
    /// for a per-thread cache.
    pub slab_refills: AtomicU64,
    /// Heap segments added by growth past the initial mapping.
    pub segments_grown: AtomicU64,
    /// Milliseconds spent in the parallel phases of attach (validate walk,
    /// census, sweep). Wall-clock, summed across attaches.
    pub attach_par_ms: AtomicU64,
    /// Dead participants of a shared heap recovered online by this process
    /// (per-pid replay completed and the registry slot reclaimed).
    pub peers_recovered: AtomicU64,
    /// Recovery leases taken over from a recoverer that itself died
    /// mid-recovery (lease CAS supersession).
    pub leases_stolen: AtomicU64,
    /// Pinned epoch announcements of dead participants released by the
    /// recovery path — each one was wedging cross-process reclamation.
    pub epoch_stalls: AtomicU64,
    /// KV-service requests applied to a structure (excludes dedup replays).
    pub kv_requests: AtomicU64,
    /// KV-service retries answered from the durable response table without
    /// re-applying the operation (the client-visible exactly-once path).
    pub kv_dedup_hits: AtomicU64,
    /// KV-service in-flight intents resolved by attach or peer recovery
    /// (each was a request interrupted by a crash and decided
    /// Completed-with-response or Restart).
    pub kv_intents_resolved: AtomicU64,
}

struct Table {
    slots: Vec<CachePadded<Slot>>,
}

impl Table {
    fn new() -> Self {
        Self { slots: (0..MAX_PROCS).map(|_| CachePadded::new(Slot::default())).collect() }
    }
}

fn table() -> &'static Table {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Table> = OnceLock::new();
    TABLE.get_or_init(Table::new)
}

#[inline]
fn my_slot() -> &'static Slot {
    &table().slots[tid::try_tid().unwrap_or(0)]
}

/// Record one stand-alone flush.
#[inline]
pub fn count_pwb(n: u64) {
    my_slot().pwb.fetch_add(n, Relaxed);
}

/// Record one barrier flushing `lines` cache lines.
#[inline]
pub fn count_pbarrier(lines: u64) {
    let s = my_slot();
    s.pbarrier.fetch_add(1, Relaxed);
    s.pbarrier_lines.fetch_add(lines, Relaxed);
}

/// Record one `pfence`.
#[inline]
pub fn count_pfence() {
    my_slot().pfence.fetch_add(1, Relaxed);
}

/// Record one `psync`.
#[inline]
pub fn count_psync() {
    my_slot().psync.fetch_add(1, Relaxed);
}

/// Record `n` coalesced-away (duplicate-line) `pwb`s.
#[inline]
pub fn count_pwb_elided(n: u64) {
    my_slot().pwb_elided.fetch_add(n, Relaxed);
}

/// Record `n` lines drained from the coalescing set at a fence.
#[inline]
pub fn count_lines_coalesced(n: u64) {
    my_slot().lines_coalesced.fetch_add(n, Relaxed);
}

/// Record `n` persistent-heap allocations.
#[inline]
pub fn count_heap_allocs(n: u64) {
    my_slot().heap_allocs.fetch_add(n, Relaxed);
}

/// Record `n` allocations served from a free list.
#[inline]
pub fn count_free_list_hits(n: u64) {
    my_slot().free_list_hits.fetch_add(n, Relaxed);
}

/// Record `n` per-thread slab refills from the bump cursor.
#[inline]
pub fn count_slab_refills(n: u64) {
    my_slot().slab_refills.fetch_add(n, Relaxed);
}

/// Record `n` heap segments added by growth.
#[inline]
pub fn count_segments_grown(n: u64) {
    my_slot().segments_grown.fetch_add(n, Relaxed);
}

/// Record `ms` milliseconds spent in parallel attach phases.
#[inline]
pub fn count_attach_par_ms(ms: u64) {
    my_slot().attach_par_ms.fetch_add(ms, Relaxed);
}

/// Record `n` dead peers recovered online.
#[inline]
pub fn count_peers_recovered(n: u64) {
    my_slot().peers_recovered.fetch_add(n, Relaxed);
}

/// Record `n` recovery leases stolen from a dead recoverer.
#[inline]
pub fn count_leases_stolen(n: u64) {
    my_slot().leases_stolen.fetch_add(n, Relaxed);
}

/// Record `n` dead-peer pinned epochs released (reclamation stalls cleared).
#[inline]
pub fn count_epoch_stalls(n: u64) {
    my_slot().epoch_stalls.fetch_add(n, Relaxed);
}

/// Record `n` KV-service requests applied to a structure.
#[inline]
pub fn count_kv_requests(n: u64) {
    my_slot().kv_requests.fetch_add(n, Relaxed);
}

/// Record `n` KV-service dedup replays (responses served from the table).
#[inline]
pub fn count_kv_dedup_hits(n: u64) {
    my_slot().kv_dedup_hits.fetch_add(n, Relaxed);
}

/// Record `n` KV in-flight intents resolved by attach or peer recovery.
#[inline]
pub fn count_kv_intents_resolved(n: u64) {
    my_slot().kv_intents_resolved.fetch_add(n, Relaxed);
}

/// Aggregated snapshot of all per-process counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Stand-alone flushes.
    pub pwb: u64,
    /// Barrier events.
    pub pbarrier: u64,
    /// Lines flushed inside barriers.
    pub pbarrier_lines: u64,
    /// Fences.
    pub pfence: u64,
    /// Syncs.
    pub psync: u64,
    /// Duplicate-line `pwb`s elided by coalescing.
    pub pwb_elided: u64,
    /// Lines drained from the coalescing set at fences.
    pub lines_coalesced: u64,
    /// Persistent-heap allocations.
    pub heap_allocs: u64,
    /// Allocations served from a free list.
    pub free_list_hits: u64,
    /// Per-thread slab refills from the bump cursor.
    pub slab_refills: u64,
    /// Heap segments added by growth.
    pub segments_grown: u64,
    /// Milliseconds spent in parallel attach phases.
    pub attach_par_ms: u64,
    /// Dead peers recovered online.
    pub peers_recovered: u64,
    /// Recovery leases stolen from dead recoverers.
    pub leases_stolen: u64,
    /// Dead-peer pinned epochs released by recovery.
    pub epoch_stalls: u64,
    /// KV-service requests applied to a structure.
    pub kv_requests: u64,
    /// KV-service dedup replays served from the response table.
    pub kv_dedup_hits: u64,
    /// KV in-flight intents resolved by attach or peer recovery.
    pub kv_intents_resolved: u64,
}

impl Snapshot {
    /// Component-wise difference (`self - earlier`), saturating at zero.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            pwb: self.pwb.saturating_sub(earlier.pwb),
            pbarrier: self.pbarrier.saturating_sub(earlier.pbarrier),
            pbarrier_lines: self.pbarrier_lines.saturating_sub(earlier.pbarrier_lines),
            pfence: self.pfence.saturating_sub(earlier.pfence),
            psync: self.psync.saturating_sub(earlier.psync),
            pwb_elided: self.pwb_elided.saturating_sub(earlier.pwb_elided),
            lines_coalesced: self.lines_coalesced.saturating_sub(earlier.lines_coalesced),
            heap_allocs: self.heap_allocs.saturating_sub(earlier.heap_allocs),
            free_list_hits: self.free_list_hits.saturating_sub(earlier.free_list_hits),
            slab_refills: self.slab_refills.saturating_sub(earlier.slab_refills),
            segments_grown: self.segments_grown.saturating_sub(earlier.segments_grown),
            attach_par_ms: self.attach_par_ms.saturating_sub(earlier.attach_par_ms),
            peers_recovered: self.peers_recovered.saturating_sub(earlier.peers_recovered),
            leases_stolen: self.leases_stolen.saturating_sub(earlier.leases_stolen),
            epoch_stalls: self.epoch_stalls.saturating_sub(earlier.epoch_stalls),
            kv_requests: self.kv_requests.saturating_sub(earlier.kv_requests),
            kv_dedup_hits: self.kv_dedup_hits.saturating_sub(earlier.kv_dedup_hits),
            kv_intents_resolved: self
                .kv_intents_resolved
                .saturating_sub(earlier.kv_intents_resolved),
        }
    }
}

/// Sums every process's counters.
pub fn snapshot() -> Snapshot {
    let mut s = Snapshot::default();
    for slot in &table().slots {
        s.pwb += slot.pwb.load(Relaxed);
        s.pbarrier += slot.pbarrier.load(Relaxed);
        s.pbarrier_lines += slot.pbarrier_lines.load(Relaxed);
        s.pfence += slot.pfence.load(Relaxed);
        s.psync += slot.psync.load(Relaxed);
        s.pwb_elided += slot.pwb_elided.load(Relaxed);
        s.lines_coalesced += slot.lines_coalesced.load(Relaxed);
        s.heap_allocs += slot.heap_allocs.load(Relaxed);
        s.free_list_hits += slot.free_list_hits.load(Relaxed);
        s.slab_refills += slot.slab_refills.load(Relaxed);
        s.segments_grown += slot.segments_grown.load(Relaxed);
        s.attach_par_ms += slot.attach_par_ms.load(Relaxed);
        s.peers_recovered += slot.peers_recovered.load(Relaxed);
        s.leases_stolen += slot.leases_stolen.load(Relaxed);
        s.epoch_stalls += slot.epoch_stalls.load(Relaxed);
        s.kv_requests += slot.kv_requests.load(Relaxed);
        s.kv_dedup_hits += slot.kv_dedup_hits.load(Relaxed);
        s.kv_intents_resolved += slot.kv_intents_resolved.load(Relaxed);
    }
    s
}

/// Resets every counter to zero. Only call while no instrumented threads run.
pub fn reset() {
    for slot in &table().slots {
        slot.pwb.store(0, Relaxed);
        slot.pbarrier.store(0, Relaxed);
        slot.pbarrier_lines.store(0, Relaxed);
        slot.pfence.store(0, Relaxed);
        slot.psync.store(0, Relaxed);
        slot.pwb_elided.store(0, Relaxed);
        slot.lines_coalesced.store(0, Relaxed);
        slot.heap_allocs.store(0, Relaxed);
        slot.free_list_hits.store(0, Relaxed);
        slot.slab_refills.store(0, Relaxed);
        slot.segments_grown.store(0, Relaxed);
        slot.attach_par_ms.store(0, Relaxed);
        slot.peers_recovered.store(0, Relaxed);
        slot.leases_stolen.store(0, Relaxed);
        slot.epoch_stalls.store(0, Relaxed);
        slot.kv_requests.store(0, Relaxed);
        slot.kv_dedup_hits.store(0, Relaxed);
        slot.kv_intents_resolved.store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        tid::set_tid(0);
        let before = snapshot();
        count_pwb(2);
        count_pbarrier(3);
        count_pfence();
        count_psync();
        count_psync();
        let d = snapshot().since(&before);
        assert_eq!(d.pwb, 2);
        assert_eq!(d.pbarrier, 1);
        assert_eq!(d.pbarrier_lines, 3);
        assert_eq!(d.pfence, 1);
        assert_eq!(d.psync, 2);
    }

    #[test]
    fn counters_sum_across_threads() {
        let before = snapshot();
        let hs: Vec<_> = (1..4)
            .map(|i| {
                std::thread::spawn(move || {
                    tid::set_tid(i);
                    count_pwb(1);
                    count_pbarrier(1);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let d = snapshot().since(&before);
        assert_eq!(d.pwb, 3);
        assert_eq!(d.pbarrier, 3);
    }
}
