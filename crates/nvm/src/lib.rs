//! # `nvm` — persistency substrate for ISB-tracking
//!
//! This crate models the memory system of Attiya et al., *"Tracking in Order
//! to Recover"* (SPAA 2020), Section 2:
//!
//! * **Shared cache model** (explicit epoch persistency): main memory is
//!   non-volatile, caches are volatile. A [`Persist::pwb`] (persistent
//!   write-back) initiates a write-back of the cache line, [`Persist::pfence`]
//!   orders preceding `pwb`s before subsequent ones, and [`Persist::psync`]
//!   waits until all previous `pwb`s complete. `pbarrier = pwb; pfence`.
//! * **Private cache model**: shared variables are always persistent; all
//!   persistency instructions are free.
//!
//! Like the paper's own evaluation (no NVRAM machine was available to the
//! authors either), the *real* mode simulates `pwb` with `clflush` and
//! `psync` with `mfence` on x86_64. Under TSO `pfence` needs no simulation.
//!
//! The substrate is exposed through the [`Persist`] trait, which is threaded
//! through every data structure as a type parameter and monomorphised away:
//!
//! | impl            | `pwb`            | `psync`   | use                          |
//! |-----------------|------------------|-----------|------------------------------|
//! | [`RealNvm`]     | `clflush` + stats| `mfence`  | shared-cache benchmarks      |
//! | [`CountingNvm`] | stats only       | stats only| portable counting runs / CI  |
//! | [`NoPersist`]   | nothing          | nothing   | private-cache model          |
//! | [`SimNvm`]      | shadow tracking  | commit    | crash-injection testing      |
//! | [`MappedNvm`]   | `clflush` + stats| `mfence`  | file-backed heap, restart    |
//!
//! The first four keep all persistent words on the process heap: a "crash"
//! is simulated inside one address space. [`MappedNvm`] pairs the same
//! instruction model with [`mapped::MappedHeap`], a file-backed `mmap` arena
//! whose contents survive the death of the process — the backend real
//! restart-recovery runs on (see [`mapped`]).
//!
//! ## Safety contracts worth knowing
//!
//! * [`PWord::peek`] / [`PWord::poke`] bypass the instrumented [`Persist`]
//!   path. They are **only** for the crash simulator's image builder and for
//!   quiescent teardown/diagnostics — using them on a live structure skips
//!   shadow tracking and can invalidate a crash scenario.
//! * [`flush::clflush`] / [`flush::clflush_range`] are `unsafe`: the caller
//!   must pass addresses inside a live allocation (flushing an unmapped line
//!   faults).
//!
//! Every word of persistent state is a [`PWord`]: an `AtomicU64` plus
//! per-mode metadata (empty except under [`SimNvm`]). Pointers are stored in
//! `PWord`s with a 1-bit tag in the LSB (all nodes are at least 8-aligned).
//!
//! [`SimNvm`] additionally supports *system-wide crash* injection: a global
//! flag makes every instrumented memory operation terminate its thread, and
//! [`sim::build_crash_image`] reconstructs an adversarial NVM image (per
//! word: last guaranteed-persisted value or latest volatile value) before
//! recovery code runs. See `DESIGN.md` §3 for semantics and limitations.
//!
//! ## Flush coalescing
//!
//! [`Persist::pwb_coal`] / [`Persist::pwb_obj_coal`] are coalescing entry
//! points used by the batched persist phases of the data-structure layer:
//! instead of flushing immediately they note the target cache line in a
//! per-thread dedupe set ([`coalesce`]), and the phase-ending fence writes
//! each unique line back once. Durability is unchanged — an un-fenced `pwb`
//! is outstanding until the next fence in every model, which is also exactly
//! how [`SimNvm`] shadows it — so coalescing alters flush *counts*, never
//! the set of reachable crash images. See `DESIGN.md` §12.

#![warn(missing_docs)]

pub mod coalesce;
pub mod flush;
pub mod liveness;
pub mod mapped;
pub mod pad;
pub mod persist;
pub mod pword;
pub mod sim;
pub mod stats;
pub mod tid;

pub use liveness::{die_sigkill, PidLiveness, ProcProbe};
pub use mapped::{MapError, MappedHeap, MappedNvm};
pub use pad::CachePadded;
pub use persist::{CountingNvm, NoPersist, Persist, RealNvm};
pub use pword::{PWord, PersistWords};
pub use sim::SimNvm;

/// Maximum number of registered processes (threads). Process ids are used to
/// index per-process recovery data (`RD_q`, `CP_q`), persistency-statistics
/// slots and reclamation slots, and are packed into 6 bits by some baselines.
pub const MAX_PROCS: usize = 64;

/// Cache-line size assumed for flushing and padding.
pub const CACHE_LINE: usize = 64;
