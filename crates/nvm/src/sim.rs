//! [`SimNvm`]: shadow-tracked persistent memory with system-wide crash
//! injection.
//!
//! Semantics (DESIGN.md §3): every [`PWord`] has, besides its volatile value,
//! a *guaranteed-persisted* value. A `pwb` snapshots the volatile value with
//! a global sequence number into the issuing thread's outstanding set; a
//! `psync` (or `pfence`, which we conservatively treat as completing the
//! write-backs it orders — see DESIGN.md) commits the outstanding snapshots,
//! newest-sequence-wins per word. A **crash** arms a global flag; every
//! instrumented operation then terminates its thread by panicking with
//! [`CrashSignal`] (caught by [`run_crashable`]). Once all participant
//! threads are dead, [`build_crash_image`] rewrites each registered word to
//! either its guaranteed-persisted value or its latest volatile value
//! (seeded, per-word), modelling both lost write-backs and spontaneous cache
//! evictions. Recovery code then runs on the surviving image.
//!
//! Words that were never covered by a completed persist have the
//! [`POISON`] value as their persisted side; a correct algorithm never
//! publishes a reference to unpersisted state, so observing `POISON` through
//! a reachable pointer after a crash indicates a missing-flush bug.
//!
//! # Registry contract
//! Words register themselves (address only) on first instrumented mutation.
//! The registry holds raw addresses, so the caller must (1) keep every
//! simulated structure alive until [`reset`] is called, and (2) call
//! [`reset`] after dropping them and before building new ones. The helpers
//! in the test harness (`isb-bench::crash`) enforce this discipline.
//!
//! **The registry is process-global**: at most ONE crash-simulation session
//! (structure lifetime + crash + [`build_crash_image`] + [`reset`]) may be
//! active per process at a time. Two overlapping sessions would interleave
//! their registered words, and `build_crash_image` would poke addresses the
//! other session may already have freed — heap corruption, not a typed
//! failure. Wrap every session in a [`begin_session`] guard: a second
//! concurrent session then panics cleanly instead.

use crate::persist::Persist;
use crate::pword::{PWord, PersistWords};
use crate::stats;
use std::cell::{Cell, RefCell};
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::Mutex;

/// Value of the persisted shadow of a word that was never persisted.
pub const POISON: u64 = 0xDEAD_BEEF_DEAD_BEEF;

/// Per-word shadow metadata.
#[derive(Debug)]
pub struct SimMeta {
    registered: AtomicBool,
    /// Sequence number of the last committed write-back.
    pseq: AtomicU64,
    /// Last guaranteed-persisted value ([`POISON`] if none).
    persisted: AtomicU64,
}

impl Default for SimMeta {
    fn default() -> Self {
        Self {
            registered: AtomicBool::new(false),
            pseq: AtomicU64::new(0),
            persisted: AtomicU64::new(POISON),
        }
    }
}

struct Globals {
    registry: Mutex<Vec<usize>>,
    seq: AtomicU64,
    crash_armed: AtomicBool,
    commit_locks: Vec<Mutex<()>>,
    session_active: AtomicBool,
}

fn globals() -> &'static Globals {
    use std::sync::OnceLock;
    static G: OnceLock<Globals> = OnceLock::new();
    G.get_or_init(|| Globals {
        registry: Mutex::new(Vec::new()),
        seq: AtomicU64::new(1),
        crash_armed: AtomicBool::new(false),
        commit_locks: (0..64).map(|_| Mutex::new(())).collect(),
        session_active: AtomicBool::new(false),
    })
}

/// RAII token for one exclusive crash-simulation session (see the module
/// docs' registry contract). Dropping it resets the simulator.
pub struct SimSession {
    _private: (),
}

/// Claims the process-wide crash-simulation session. Panics — cleanly,
/// before any registry state can interleave — if another session is already
/// active: the registry is a process-global singleton, and two concurrent
/// sessions would hand [`build_crash_image`] a mix of live and freed word
/// addresses (silent heap corruption). The crash harness acquires this
/// around every scenario; direct users of [`SimNvm`] structures should too.
pub fn begin_session() -> SimSession {
    let was_active = globals().session_active.swap(true, SeqCst);
    assert!(
        !was_active,
        "a SimNvm crash-simulation session is already active in this process: \
         the simulator registry is process-global, so concurrent sessions would \
         corrupt build_crash_image (see nvm::sim's registry contract)"
    );
    SimSession { _private: () }
}

impl Drop for SimSession {
    fn drop(&mut self) {
        reset();
        globals().session_active.store(false, SeqCst);
    }
}

thread_local! {
    /// (word address, snapshot, sequence) of this thread's outstanding pwbs.
    static OUTSTANDING: RefCell<Vec<(usize, u64, u64)>> = const { RefCell::new(Vec::new()) };
    /// Whether this thread dies when the crash flag is armed.
    static CRASHABLE: Cell<bool> = const { Cell::new(false) };
}

/// Panic payload used to kill threads on a simulated crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSignal;

/// Error returned by [`run_crashable`] when the closure died in a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crashed;

#[inline]
fn maybe_crash() {
    if globals().crash_armed.load(Relaxed) && CRASHABLE.with(|c| c.get()) {
        std::panic::panic_any(CrashSignal);
    }
}

#[inline]
fn register(w: &PWord<SimNvm>) {
    if !w.meta.registered.swap(true, Relaxed) {
        globals().registry.lock().unwrap().push(w as *const _ as usize);
    }
}

fn commit(addr: usize, snap: u64, seq: u64) {
    let g = globals();
    let _lk = g.commit_locks[(addr >> 3) % g.commit_locks.len()].lock().unwrap();
    // SAFETY: registry contract — the word outlives the simulation session.
    let w = unsafe { &*(addr as *const PWord<SimNvm>) };
    if w.meta.pseq.load(Acquire) < seq {
        w.meta.persisted.store(snap, Release);
        w.meta.pseq.store(seq, Release);
    }
}

fn commit_outstanding(check: bool) {
    OUTSTANDING.with(|o| {
        let mut o = o.borrow_mut();
        // Drain front-to-back so a mid-psync crash leaves a realistic prefix
        // of the write-backs committed.
        for (addr, snap, seq) in o.drain(..) {
            if check {
                maybe_crash();
            }
            commit(addr, snap, seq);
        }
    });
}

/// The crash-simulation persistency model.
pub struct SimNvm;

impl Persist for SimNvm {
    const NAME: &'static str = "sim";
    const SIMULATED: bool = true;
    type Meta = SimMeta;

    #[inline]
    fn load(w: &PWord<Self>) -> u64 {
        maybe_crash();
        w.v.load(Acquire)
    }
    #[inline]
    fn store(w: &PWord<Self>, v: u64) {
        maybe_crash();
        register(w);
        w.v.store(v, Release);
    }
    #[inline]
    fn cas(w: &PWord<Self>, old: u64, new: u64) -> u64 {
        maybe_crash();
        register(w);
        match w.v.compare_exchange(old, new, SeqCst, SeqCst) {
            Ok(p) => p,
            Err(p) => p,
        }
    }

    fn pwb(w: &PWord<Self>) {
        maybe_crash();
        register(w);
        let seq = globals().seq.fetch_add(1, Relaxed);
        let snap = w.v.load(SeqCst);
        OUTSTANDING.with(|o| o.borrow_mut().push((w as *const _ as usize, snap, seq)));
        stats::count_pwb(1);
    }
    fn pfence() {
        // Conservative: treat ordered write-backs as completed (DESIGN.md §3).
        maybe_crash();
        commit_outstanding(true);
        stats::count_pfence();
    }
    fn psync() {
        maybe_crash();
        commit_outstanding(true);
        stats::count_psync();
    }
    fn pbarrier(w: &PWord<Self>) {
        maybe_crash();
        register(w);
        let seq = globals().seq.fetch_add(1, Relaxed);
        let snap = w.v.load(SeqCst);
        OUTSTANDING.with(|o| o.borrow_mut().push((w as *const _ as usize, snap, seq)));
        // The fence half of a pbarrier completes the write-backs it orders —
        // including every *preceding* outstanding pwb (DESIGN.md §3; on real
        // hardware the mfence drains all prior clflushes, not just this
        // one). Draining front-to-back keeps the realistic mid-crash prefix.
        commit_outstanding(true);
        stats::count_pbarrier(1);
    }
    fn pwb_obj<T: PersistWords<Self> + ?Sized>(obj: &T) {
        let mut n = 0;
        obj.each_word(&mut |w| {
            Self::pwb(w);
            n += 1;
        });
        let _ = n;
    }
    fn pbarrier_obj<T: PersistWords<Self> + ?Sized>(obj: &T) {
        maybe_crash();
        let mut lines = 0;
        obj.each_word(&mut |w| {
            register(w);
            let seq = globals().seq.fetch_add(1, Relaxed);
            let snap = w.v.load(SeqCst);
            OUTSTANDING.with(|o| o.borrow_mut().push((w as *const _ as usize, snap, seq)));
            lines += 1;
        });
        // Fence half: completes this object's write-backs AND every
        // preceding outstanding pwb (see `pbarrier`) — the paper's
        // `pbarrier(newcurr, newnd, *opInfo)` makes the *whole* attempt
        // durable, not just the descriptor.
        commit_outstanding(true);
        stats::count_pbarrier(lines);
    }

    #[inline]
    fn check_crash() {
        maybe_crash();
    }
}

/// Runs `f` with crash injection suspended on this thread. Models actions of
/// the *system* (e.g., setting `CP_q := 0` before an operation starts),
/// which the paper's model does not subject to crashes.
pub fn suspended<R>(f: impl FnOnce() -> R) -> R {
    CRASHABLE.with(|c| {
        let old = c.get();
        c.set(false);
        let r = f();
        c.set(old);
        r
    })
}

/// Marks the calling thread as a crash participant and runs `f`, converting
/// a simulated crash into `Err(Crashed)`. Other panics propagate.
pub fn run_crashable<R>(f: impl FnOnce() -> R) -> Result<R, Crashed> {
    CRASHABLE.with(|c| c.set(true));
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    CRASHABLE.with(|c| c.set(false));
    OUTSTANDING.with(|o| o.borrow_mut().clear());
    match r {
        Ok(v) => Ok(v),
        Err(payload) => {
            if payload.downcast_ref::<CrashSignal>().is_some() {
                Err(Crashed)
            } else {
                std::panic::resume_unwind(payload)
            }
        }
    }
}

/// Arms the system-wide crash: every participant thread dies at its next
/// instrumented memory operation.
pub fn trigger_crash() {
    globals().crash_armed.store(true, SeqCst);
}

/// True while a crash is armed.
pub fn crash_armed() -> bool {
    globals().crash_armed.load(Relaxed)
}

/// Installs a panic hook that silences [`CrashSignal`] unwinds (idempotent).
pub fn quiet_crash_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashSignal>().is_none() {
                default(info);
            }
        }));
    });
}

/// SplitMix64 — tiny deterministic PRNG for per-word image choices.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Statistics from [`build_crash_image`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImageReport {
    /// Registered words examined.
    pub words: usize,
    /// Words rolled back to their guaranteed-persisted value.
    pub rolled_back: usize,
    /// Words that kept their latest volatile value ("evicted in time").
    pub kept_latest: usize,
    /// Words whose persisted side was still [`POISON`] and which rolled back
    /// to it (never-persisted state an algorithm must not depend on).
    pub poisoned: usize,
}

/// Reconstructs the post-crash NVM image and disarms the crash flag.
///
/// Per registered word, chooses (seeded by `seed`) between the guaranteed-
/// persisted value and the latest volatile value, then overwrites the
/// volatile value with the choice so recovery code observes the NVM state.
///
/// # Safety contract
/// Must only be called when **no participant thread is running**, and every
/// structure whose words are registered must still be alive.
pub fn build_crash_image(seed: u64) -> ImageReport {
    let g = globals();
    assert!(g.crash_armed.load(SeqCst), "build_crash_image without a triggered crash");
    let mut rng = seed ^ 0xA076_1D64_78BD_642F;
    let mut rep = ImageReport::default();
    let reg = g.registry.lock().unwrap();
    for &addr in reg.iter() {
        // SAFETY: registry contract.
        let w = unsafe { &*(addr as *const PWord<SimNvm>) };
        let latest = w.v.load(SeqCst);
        let persisted = w.meta.persisted.load(Acquire);
        rep.words += 1;
        let choice = if persisted == latest || splitmix(&mut rng) & 1 == 0 {
            rep.kept_latest += 1;
            latest
        } else {
            rep.rolled_back += 1;
            if persisted == POISON {
                rep.poisoned += 1;
            }
            persisted
        };
        w.v.store(choice, SeqCst);
        // The surviving image *is* the durable state now.
        w.meta.persisted.store(choice, Release);
        w.meta.pseq.store(g.seq.fetch_add(1, Relaxed), Release);
    }
    drop(reg);
    g.crash_armed.store(false, SeqCst);
    rep
}

/// Marks every registered word as persisted at its current volatile value.
/// Call after building initial structures, modelling a clean start.
pub fn persist_all() {
    let g = globals();
    let reg = g.registry.lock().unwrap();
    for &addr in reg.iter() {
        // SAFETY: registry contract.
        let w = unsafe { &*(addr as *const PWord<SimNvm>) };
        w.meta.persisted.store(w.v.load(SeqCst), Release);
        w.meta.pseq.store(g.seq.fetch_add(1, Relaxed), Release);
    }
}

/// Number of registered words (diagnostics).
pub fn registered_words() -> usize {
    globals().registry.lock().unwrap().len()
}

/// Clears the registry and disarms crashes. Call after dropping all
/// simulated structures and before building new ones.
///
/// # Single-session invariant
/// `reset` assumes it tears down **the** process-wide session: it clears
/// the whole global registry, so calling it while another thread's
/// simulated structures are still live would unregister their words
/// mid-scenario and desynchronize `build_crash_image`. Serialize sessions
/// with [`begin_session`], which panics on overlap and resets on drop.
pub fn reset() {
    let g = globals();
    g.registry.lock().unwrap().clear();
    g.crash_armed.store(false, SeqCst);
    OUTSTANDING.with(|o| o.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tid;

    // The sim registry is global; serialize tests touching it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn unsynced_pwb_is_not_guaranteed() {
        let _l = LOCK.lock().unwrap();
        reset();
        tid::set_tid(0);
        let w: Box<PWord<SimNvm>> = Box::new(PWord::new(0));
        w.store(1);
        SimNvm::pwb(&w);
        // No psync yet: persisted side must still be POISON.
        assert_eq!(w.meta.persisted.load(Acquire), POISON);
        SimNvm::psync();
        assert_eq!(w.meta.persisted.load(Acquire), 1);
        reset();
    }

    #[test]
    fn psync_commits_snapshot_not_latest() {
        let _l = LOCK.lock().unwrap();
        reset();
        tid::set_tid(0);
        let w: Box<PWord<SimNvm>> = Box::new(PWord::new(0));
        w.store(1);
        SimNvm::pwb(&w); // snapshot = 1
        w.store(2); // dirtied again after the write-back
        SimNvm::psync();
        assert_eq!(w.meta.persisted.load(Acquire), 1);
        assert_eq!(w.load(), 2);
        reset();
    }

    #[test]
    fn newer_writeback_wins() {
        let _l = LOCK.lock().unwrap();
        reset();
        tid::set_tid(0);
        let w: Box<PWord<SimNvm>> = Box::new(PWord::new(0));
        w.store(1);
        SimNvm::pwb(&w);
        w.store(2);
        SimNvm::pwb(&w);
        SimNvm::psync();
        assert_eq!(w.meta.persisted.load(Acquire), 2);
        reset();
    }

    #[test]
    fn pbarrier_commits_immediately() {
        let _l = LOCK.lock().unwrap();
        reset();
        tid::set_tid(0);
        let w: Box<PWord<SimNvm>> = Box::new(PWord::new(0));
        w.store(7);
        SimNvm::pbarrier(&w);
        assert_eq!(w.meta.persisted.load(Acquire), 7);
        reset();
    }

    #[test]
    fn crash_kills_participants_and_image_restores() {
        let _l = LOCK.lock().unwrap();
        reset();
        quiet_crash_panics();
        tid::set_tid(0);
        let w: Box<PWord<SimNvm>> = Box::new(PWord::new(0));
        w.store(1);
        SimNvm::pwb(&w);
        SimNvm::psync(); // guaranteed: 1
        w.store(2); // volatile only
        trigger_crash();
        let r = run_crashable(|| {
            w.load(); // dies here
            unreachable!()
        });
        assert_eq!(r, Err(Crashed));
        // Build many images: with 2 as latest and 1 persisted, both values
        // must be observed across seeds.
        let mut saw = [false, false];
        for seed in 0..32 {
            w.poke(2); // restore "volatile" side for a fresh choice
            globals().crash_armed.store(true, SeqCst);
            build_crash_image(seed);
            match w.peek() {
                1 => saw[0] = true,
                2 => saw[1] = true,
                x => panic!("unexpected image value {x}"),
            }
            w.meta.persisted.store(1, Release); // re-arm the scenario
        }
        assert!(saw[0] && saw[1], "image must explore both persisted and latest values");
        reset();
    }

    #[test]
    fn non_participants_survive_crash() {
        let _l = LOCK.lock().unwrap();
        reset();
        tid::set_tid(0);
        let w: Box<PWord<SimNvm>> = Box::new(PWord::new(0));
        trigger_crash();
        // Not inside run_crashable: operations proceed.
        w.store(3);
        assert_eq!(w.load(), 3);
        reset();
    }

    #[test]
    fn concurrent_sessions_panic_cleanly() {
        let _l = LOCK.lock().unwrap();
        let s1 = begin_session();
        let second = std::panic::catch_unwind(|| drop(begin_session()));
        assert!(second.is_err(), "a second concurrent session must panic, not corrupt");
        drop(s1);
        // After the first session ends, a fresh one is fine again.
        drop(begin_session());
    }

    #[test]
    fn persist_all_marks_everything() {
        let _l = LOCK.lock().unwrap();
        reset();
        tid::set_tid(0);
        let a: Box<PWord<SimNvm>> = Box::new(PWord::new(0));
        let b: Box<PWord<SimNvm>> = Box::new(PWord::new(0));
        a.store(10);
        b.store(20);
        persist_all();
        assert_eq!(a.meta.persisted.load(Acquire), 10);
        assert_eq!(b.meta.persisted.load(Acquire), 20);
        reset();
    }
}
