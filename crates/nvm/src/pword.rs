//! [`PWord`]: one 64-bit word of persistent state.
//!
//! All shared, persistent fields of every data structure in this workspace
//! (node keys, `next` pointers, `info` pointers, recovery data `RD_q`,
//! check-points `CP_q`, operation results, …) are `PWord`s. Pointers are
//! stored as `u64` with an optional tag in bit 0 (everything is ≥8-aligned).
//!
//! A `PWord` is an `AtomicU64` plus mode-specific metadata: empty for the
//! real modes, shadow-tracking state for the crash simulator ([`crate::SimNvm`]).
//! All accesses go through the [`crate::Persist`] trait so the simulator can
//! observe them; the real modes compile down to plain atomics.

use crate::persist::Persist;
use std::sync::atomic::AtomicU64;

/// A persistent 64-bit word (see module docs).
#[derive(Debug)]
#[repr(C)]
pub struct PWord<M: Persist> {
    pub(crate) v: AtomicU64,
    pub(crate) meta: M::Meta,
}

impl<M: Persist> Default for PWord<M> {
    fn default() -> Self {
        Self::new(0)
    }
}

impl<M: Persist> PWord<M> {
    /// Creates a word holding `v`.
    ///
    /// Note: creation writes the *volatile* value only. Under the crash
    /// simulator a word becomes durable the first time it is covered by a
    /// `pwb` + `psync`/`pfence` (or [`crate::sim::persist_all`]).
    pub fn new(v: u64) -> Self {
        Self { v: AtomicU64::new(v), meta: M::Meta::default() }
    }

    /// Atomic load (Acquire).
    #[inline]
    pub fn load(&self) -> u64 {
        M::load(self)
    }

    /// Atomic store (Release).
    #[inline]
    pub fn store(&self, v: u64) {
        M::store(self, v)
    }

    /// Atomic compare-and-swap. Returns **the value read** (the paper's CAS
    /// convention): equal to `old` iff the swap happened.
    #[inline]
    pub fn cas(&self, old: u64, new: u64) -> u64 {
        M::cas(self, old, new)
    }

    /// Address of the word (for range flushes).
    #[inline]
    pub fn addr(&self) -> *const u8 {
        &self.v as *const AtomicU64 as *const u8
    }

    /// Direct volatile read bypassing instrumentation. Only for the crash
    /// simulator's image builder and `Drop` impls.
    #[inline]
    pub fn peek(&self) -> u64 {
        self.v.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Direct volatile write bypassing instrumentation. Only for the crash
    /// simulator's image builder (single-threaded contexts).
    #[inline]
    pub fn poke(&self, v: u64) {
        self.v.store(v, std::sync::atomic::Ordering::Release)
    }
}

/// Objects whose persistent words can be enumerated, so whole-object flushes
/// (`pbarrier(*opInfo, NewSet)` in the paper's pseudocode) work in every
/// mode: the real modes flush the object's cache-line range; the simulator
/// visits each word.
///
/// # Safety
/// `each_word` must visit **every** `PWord` in the object whose durability
/// matters, and the object must be `#[repr(C)]`-stable for the address-range
/// flush to cover it.
pub unsafe trait PersistWords<M: Persist> {
    /// Visit every persistent word.
    fn each_word(&self, f: &mut dyn FnMut(&PWord<M>));

    /// Byte range of the object, flushed line-by-line in real modes.
    fn addr_range(&self) -> (*const u8, usize) {
        (self as *const Self as *const u8, core::mem::size_of_val(self))
    }

    /// Byte range that actually needs persisting (defaults to the whole
    /// object). Descriptors with fixed-capacity arrays override this so a
    /// whole-object barrier flushes only the used prefix — the paper's
    /// "a single pwb flushes all fields fitting in a cache line".
    fn used_range(&self) -> (*const u8, usize) {
        self.addr_range()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::RealNvm;

    #[test]
    fn load_store_cas_roundtrip() {
        let w: PWord<RealNvm> = PWord::new(10);
        assert_eq!(w.load(), 10);
        w.store(11);
        assert_eq!(w.load(), 11);
        // Successful CAS returns the old value it read.
        assert_eq!(w.cas(11, 12), 11);
        assert_eq!(w.load(), 12);
        // Failed CAS returns the differing value and leaves the word alone.
        assert_eq!(w.cas(11, 99), 12);
        assert_eq!(w.load(), 12);
    }

    #[test]
    fn peek_poke_bypass() {
        let w: PWord<RealNvm> = PWord::new(1);
        w.poke(5);
        assert_eq!(w.peek(), 5);
        assert_eq!(w.load(), 5);
    }

    #[test]
    fn real_pword_is_just_an_atomic() {
        assert_eq!(core::mem::size_of::<PWord<RealNvm>>(), 8);
    }
}
