//! Detectably recoverable sorted linked list (paper Section 4,
//! Algorithms 3–5), obtained by applying ROpt-ISB (Algorithm 2).
//!
//! The list is sorted by strictly increasing `u64` keys with two sentinels
//! (`0 = −∞`, `u64::MAX = +∞`); user keys must lie strictly between. Each
//! node carries an `info` field (tagged pointer, see [`crate::tag`]).
//!
//! * A node tagged **for update** has its `next` field about to change; it
//!   is untagged when the update completes.
//! * A node tagged **for deletion** stays tagged forever (the Harris mark
//!   bit) — this includes the successor that a successful *Insert*
//!   **copy-replaces**: `Insert(k)` links `pred → newnd(k) → newcurr(copy of
//!   curr)` and retires `curr`. The copy guarantees **pointer freshness**: a
//!   node only ever leaves a `next` field by being retired, so no `next` or
//!   `info` field ever holds the same value twice and stale helper CASes
//!   fail harmlessly (DESIGN.md §4).
//!
//! Read-only outcomes (`Find`, `Insert` of a present key, `Delete` of an
//! absent key) take the ROpt fast path: a single-element AffectSet, the
//! response computed from immutable fields *before* the descriptor is
//! persisted, and no call to `Help`.
//!
//! ### Deviation from the paper's pseudocode
//! Algorithm 1 reuses the same Info structure after an attempt that failed
//! without installing anything. We allocate a fresh Info for every attempt
//! that follows a *published* one: refilling a descriptor that `RD_q`
//! already points to is not crash-atomic on real hardware (a torn descriptor
//! could be helped during recovery). The single-attempt fast path is
//! unchanged.

use crate::counters;
use crate::engine::{help, HelpOutcome, Info, InfoFill, RES_FALSE, RES_TRUE};
use crate::optype;
use crate::recovery::{op_recover, RecArea, Recovered};
use crate::tag;
use nvm::{PWord, Persist, PersistWords};
use reclaim::{Collector, Guard};

/// Sentinel key of the head (−∞).
pub const KEY_MIN: u64 = 0;
/// Sentinel key of the tail (+∞).
pub const KEY_MAX: u64 = u64::MAX;

/// A list node: `key` (immutable once published), `next`, `info`.
#[repr(C)]
pub struct Node<M: Persist> {
    key: PWord<M>,
    next: PWord<M>,
    info: PWord<M>,
}

unsafe impl<M: Persist> PersistWords<M> for Node<M> {
    fn each_word(&self, f: &mut dyn FnMut(&PWord<M>)) {
        f(&self.key);
        f(&self.next);
        f(&self.info);
    }
}

impl<M: Persist> Node<M> {
    fn alloc(key: u64, next: u64, info: u64) -> *mut Node<M> {
        counters::node_alloc();
        Box::into_raw(Box::new(Node {
            key: PWord::new(key),
            next: PWord::new(next),
            info: PWord::new(info),
        }))
    }
}

impl<M: Persist> Drop for Node<M> {
    fn drop(&mut self) {
        counters::node_free();
    }
}

struct SearchRes<M: Persist> {
    pred: *mut Node<M>,
    curr: *mut Node<M>,
    pred_info: u64,
    curr_info: u64,
}

/// Detectably recoverable sorted linked list. `TUNED = false` is the paper's
/// general persistency placement ("Isb"); `TUNED = true` is the hand-tuned
/// one ("Isb-Opt").
pub struct RList<M: Persist, const TUNED: bool = false> {
    head: *mut Node<M>,
    rec: RecArea<M>,
    collector: Collector,
}

unsafe impl<M: Persist, const TUNED: bool> Send for RList<M, TUNED> {}
unsafe impl<M: Persist, const TUNED: bool> Sync for RList<M, TUNED> {}

impl<M: Persist, const TUNED: bool> Default for RList<M, TUNED> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Persist, const TUNED: bool> RList<M, TUNED> {
    /// New empty list with a reclaiming collector.
    pub fn new() -> Self {
        Self::with_collector(Collector::new())
    }

    /// New empty list with the given collector. Crash-simulation runs pass
    /// [`Collector::disabled`] (a crash must not free memory).
    pub fn with_collector(collector: Collector) -> Self {
        let tail: *mut Node<M> = Node::alloc(KEY_MAX, 0, 0);
        let head = Node::alloc(KEY_MIN, tail as u64, 0);
        Self { head, rec: RecArea::new(), collector }
    }

    /// The list's collector (for diagnostics).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    fn assert_key(key: u64) {
        assert!(key > KEY_MIN && key < KEY_MAX, "key must be in (0, u64::MAX)");
    }

    /// Algorithm 5 `Search`: returns the first node with `node.key >= key`
    /// as `curr`, its predecessor, and their info values — each info value
    /// read on first access to its node (before the node's `next`).
    ///
    /// # Safety
    /// Caller must hold an EBR pin.
    unsafe fn search(&self, key: u64) -> SearchRes<M> {
        unsafe {
            let mut curr = self.head;
            let mut curr_info = (*curr).info.load();
            let mut pred = curr;
            let mut pred_info = curr_info;
            while (*curr).key.load() < key {
                pred = curr;
                pred_info = curr_info;
                curr = (*curr).next.load() as *mut Node<M>;
                curr_info = (*curr).info.load();
            }
            SearchRes { pred, curr, pred_info, curr_info }
        }
    }

    /// Persist the attempt's new nodes and descriptor before publication
    /// (paper line 106 `pbarrier(newcurr, newnd, *opInfo)`).
    unsafe fn persist_attempt(
        &self,
        info: *mut Info<M>,
        newnd: *mut Node<M>,
        newcurr: *mut Node<M>,
    ) {
        unsafe {
            if !newnd.is_null() {
                M::pwb_obj(&*newnd);
            }
            if !newcurr.is_null() {
                M::pwb_obj(&*newcurr);
            }
            if TUNED {
                M::pwb_obj(&*info);
                M::pfence(); // order descriptor write-backs before RD_q's
            } else {
                M::pbarrier_obj(&*info);
            }
        }
    }

    /// Publish `info` in `RD_q`, releasing the hold on the previously
    /// published descriptor.
    fn publish(&self, pid: usize, info: *mut Info<M>, published: &mut u64, g: &Guard<'_>) {
        self.rec.publish(pid, info as u64);
        if *published != 0 && *published != info as u64 {
            unsafe { Info::<M>::release(tag::ptr_of(*published), 1, g) };
        }
        *published = info as u64;
    }

    /// Retire a node that left the structure, releasing its info reference.
    unsafe fn retire_node(&self, node: *mut Node<M>, g: &Guard<'_>) {
        unsafe {
            let iv = (*node).info.load();
            Info::<M>::release(tag::ptr_of(iv), 1, g);
            g.retire_box(node);
        }
    }

    /// Drop never-published new nodes (and their info-cell references).
    unsafe fn drop_pending(
        &self,
        newnd: *mut Node<M>,
        newcurr: *mut Node<M>,
        filled: u64,
        g: &Guard<'_>,
    ) {
        unsafe {
            if filled != 0 {
                Info::<M>::release(tag::ptr_of(filled), 2, g);
            }
            drop(Box::from_raw(newnd));
            drop(Box::from_raw(newcurr));
        }
    }

    /// Inserts `key`; returns `false` iff it was already present.
    /// (Algorithm 3, `Insert`.)
    pub fn insert(&self, pid: usize, key: u64) -> bool {
        Self::assert_key(key);
        // newnd → newcurr; newcurr refreshed per attempt as a copy of curr.
        let newcurr = Node::alloc(0, 0, 0);
        let newnd = Node::alloc(key, newcurr as u64, 0);
        let mut info = Info::<M>::alloc();
        let mut filled: u64 = 0; // tagged-info value currently in the new nodes' cells
        let mut published: u64 = 0;
        let prev = self.rec.begin::<TUNED>(pid);
        {
            let g = self.collector.pin();
            unsafe { Info::<M>::release(tag::ptr_of(prev), 1, &g) };
        }
        loop {
            let g = self.collector.pin();
            let s = unsafe { self.search(key) };
            // Helping phase.
            if tag::is_tagged(s.pred_info) {
                unsafe { help::<M, TUNED>(tag::ptr_of(s.pred_info), false, &g) };
                continue;
            }
            if tag::is_tagged(s.curr_info) {
                unsafe { help::<M, TUNED>(tag::ptr_of(s.curr_info), false, &g) };
                continue;
            }
            let curr_key = unsafe { (*s.curr).key.load() };
            if curr_key == key {
                // ROpt read-only path: key already present.
                unsafe {
                    Info::fill(
                        info,
                        &InfoFill {
                            optype: optype::INSERT,
                            affect: &[(cell_addr(&(*s.curr).info), s.curr_info)],
                            write: &[],
                            newset: &[],
                            del_mask: 0,
                            presult: RES_FALSE,
                        },
                    );
                    // Response computed early so one barrier persists it with
                    // the descriptor (Algorithm 2, lines 73–77).
                    M::store(&(*info).result, RES_FALSE);
                    self.persist_attempt(info, std::ptr::null_mut(), std::ptr::null_mut());
                }
                self.publish(pid, info, &mut published, &g);
                unsafe {
                    Info::release(info, 1, &g); // the never-installed affect slot
                    self.drop_pending(newnd, newcurr, filled, &g);
                }
                return false;
            }
            // Update path: refresh the copy of curr and the new nodes' tags.
            unsafe {
                (*newcurr).key.store(curr_key);
                (*newcurr).next.store((*s.curr).next.load());
                let t = tag::tagged(info as u64);
                if filled != t {
                    if filled != 0 {
                        Info::<M>::release(tag::ptr_of(filled), 2, &g);
                    }
                    (*newnd).info.store(t);
                    (*newcurr).info.store(t);
                    filled = t;
                }
                Info::fill(
                    info,
                    &InfoFill {
                        optype: optype::INSERT,
                        affect: &[
                            (cell_addr(&(*s.pred).info), s.pred_info),
                            (cell_addr(&(*s.curr).info), s.curr_info),
                        ],
                        write: &[(cell_addr(&(*s.pred).next), s.curr as u64, newnd as u64)],
                        newset: &[cell_addr(&(*newnd).info), cell_addr(&(*newcurr).info)],
                        del_mask: 0b10, // curr is deletion-tagged (copy-replaced)
                        presult: RES_TRUE,
                    },
                );
                self.persist_attempt(info, newnd, newcurr);
            }
            self.publish(pid, info, &mut published, &g);
            match unsafe { help::<M, TUNED>(info, true, &g) } {
                HelpOutcome::Done => {
                    unsafe { self.retire_node(s.curr, &g) };
                    return true;
                }
                HelpOutcome::FailedAt(i) => {
                    // Abandon: release never-installed affect slots; fresh
                    // descriptor for the next attempt (pointer freshness).
                    unsafe { Info::release(info, (2 - i) as u32, &g) };
                    info = Info::alloc();
                }
            }
        }
    }

    /// Deletes `key`; returns `false` iff it was absent. (Algorithm 5.)
    pub fn delete(&self, pid: usize, key: u64) -> bool {
        Self::assert_key(key);
        let mut info = Info::<M>::alloc();
        let mut published: u64 = 0;
        let prev = self.rec.begin::<TUNED>(pid);
        {
            let g = self.collector.pin();
            unsafe { Info::<M>::release(tag::ptr_of(prev), 1, &g) };
        }
        loop {
            let g = self.collector.pin();
            let s = unsafe { self.search(key) };
            if tag::is_tagged(s.pred_info) {
                unsafe { help::<M, TUNED>(tag::ptr_of(s.pred_info), false, &g) };
                continue;
            }
            if tag::is_tagged(s.curr_info) {
                unsafe { help::<M, TUNED>(tag::ptr_of(s.curr_info), false, &g) };
                continue;
            }
            let curr_key = unsafe { (*s.curr).key.load() };
            if curr_key != key {
                // ROpt read-only path: key not present.
                unsafe {
                    Info::fill(
                        info,
                        &InfoFill {
                            optype: optype::DELETE,
                            affect: &[(cell_addr(&(*s.curr).info), s.curr_info)],
                            write: &[],
                            newset: &[],
                            del_mask: 0,
                            presult: RES_FALSE,
                        },
                    );
                    M::store(&(*info).result, RES_FALSE);
                    self.persist_attempt(info, std::ptr::null_mut(), std::ptr::null_mut());
                }
                self.publish(pid, info, &mut published, &g);
                unsafe { Info::release(info, 1, &g) };
                return false;
            }
            // succ read after the helping phase; stable once both tags hold.
            let succ = unsafe { (*s.curr).next.load() };
            unsafe {
                Info::fill(
                    info,
                    &InfoFill {
                        optype: optype::DELETE,
                        affect: &[
                            (cell_addr(&(*s.pred).info), s.pred_info),
                            (cell_addr(&(*s.curr).info), s.curr_info),
                        ],
                        write: &[(cell_addr(&(*s.pred).next), s.curr as u64, succ)],
                        newset: &[],
                        del_mask: 0b10, // curr stays deletion-tagged forever
                        presult: RES_TRUE,
                    },
                );
                self.persist_attempt(info, std::ptr::null_mut(), std::ptr::null_mut());
            }
            self.publish(pid, info, &mut published, &g);
            match unsafe { help::<M, TUNED>(info, true, &g) } {
                HelpOutcome::Done => {
                    unsafe { self.retire_node(s.curr, &g) };
                    return true;
                }
                HelpOutcome::FailedAt(i) => {
                    unsafe { Info::release(info, (2 - i) as u32, &g) };
                    info = Info::alloc();
                }
            }
        }
    }

    /// Whether `key` is present. (Algorithm 3, `Find` — fully read-only,
    /// skips the `RD_q := Null / CP_q := 1` prologue: restarting a find is
    /// always safe, but its response is still persisted for strict
    /// recoverability / nesting.)
    pub fn find(&self, pid: usize, key: u64) -> bool {
        Self::assert_key(key);
        let info = Info::<M>::alloc();
        let prev = self.rec.begin_readonly(pid);
        let mut published = prev;
        loop {
            let g = self.collector.pin();
            let s = unsafe { self.search(key) };
            if tag::is_tagged(s.curr_info) {
                unsafe { help::<M, TUNED>(tag::ptr_of(s.curr_info), false, &g) };
                continue;
            }
            let res = unsafe { (*s.curr).key.load() } == key;
            let enc = if res { RES_TRUE } else { RES_FALSE };
            unsafe {
                Info::fill(
                    info,
                    &InfoFill {
                        optype: optype::FIND,
                        affect: &[(cell_addr(&(*s.curr).info), s.curr_info)],
                        write: &[],
                        newset: &[],
                        del_mask: 0,
                        presult: enc,
                    },
                );
                M::store(&(*info).result, enc);
                self.persist_attempt(info, std::ptr::null_mut(), std::ptr::null_mut());
            }
            self.publish(pid, info, &mut published, &g);
            unsafe { Info::release(info, 1, &g) };
            return res;
        }
    }

    /// `Insert.Recover` (Op-Recover with the insert's arguments).
    pub fn recover_insert(&self, pid: usize, key: u64) -> bool {
        let r = {
            let g = self.collector.pin();
            unsafe { op_recover::<M, TUNED>(&self.rec, pid, &g) }
        };
        match r {
            Recovered::Completed(v) => v == RES_TRUE,
            Recovered::Restart => self.insert(pid, key),
        }
    }

    /// `Delete.Recover`.
    pub fn recover_delete(&self, pid: usize, key: u64) -> bool {
        let r = {
            let g = self.collector.pin();
            unsafe { op_recover::<M, TUNED>(&self.rec, pid, &g) }
        };
        match r {
            Recovered::Completed(v) => v == RES_TRUE,
            Recovered::Restart => self.delete(pid, key),
        }
    }

    /// `Find.Recover`: finds never set `CP_q = 1`, so recovery always
    /// restarts them (restart-safe by read-onlyness).
    pub fn recover_find(&self, pid: usize, key: u64) -> bool {
        let r = {
            let g = self.collector.pin();
            unsafe { op_recover::<M, TUNED>(&self.rec, pid, &g) }
        };
        match r {
            Recovered::Completed(v) => v == RES_TRUE,
            Recovered::Restart => self.find(pid, key),
        }
    }

    /// Snapshot of the user keys (requires exclusive access ⇒ quiescence).
    pub fn snapshot_keys(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        unsafe {
            let mut n = (*self.head).next.load() as *mut Node<M>;
            while (*n).key.load() != KEY_MAX {
                out.push((*n).key.load());
                n = (*n).next.load() as *mut Node<M>;
            }
        }
        out
    }

    /// Structural invariants: strictly sorted keys, intact sentinels, no
    /// reachable node is tagged (quiescent list). Panics on violation.
    pub fn check_invariants(&mut self) {
        unsafe {
            assert_eq!((*self.head).key.load(), KEY_MIN);
            let mut prev_key = KEY_MIN;
            let mut n = (*self.head).next.load() as *mut Node<M>;
            loop {
                let k = (*n).key.load();
                assert!(k > prev_key, "keys must be strictly increasing: {prev_key} !< {k}");
                assert!(
                    !tag::is_tagged((*n).info.load()),
                    "reachable node (key {k}) is tagged in a quiescent list"
                );
                if k == KEY_MAX {
                    break;
                }
                prev_key = k;
                n = (*n).next.load() as *mut Node<M>;
            }
        }
    }
}

#[inline]
fn cell_addr<M: Persist>(w: &PWord<M>) -> u64 {
    w as *const PWord<M> as u64
}

unsafe fn drop_node_raw<M: Persist>(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut Node<M>) });
}

unsafe fn drop_info_raw<M: Persist>(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut Info<M>) });
}

impl<M: Persist, const TUNED: bool> Drop for RList<M, TUNED> {
    fn drop(&mut self) {
        // Quiescent teardown. After a simulated crash the NVM image may have
        // rolled pointers back, making *retired* (parked) nodes reachable
        // again — so the reachable scan and the collector's parked bag can
        // overlap. Free the union exactly once, deduplicated by address.
        let mut grave: std::collections::HashMap<usize, unsafe fn(*mut u8)> =
            self.collector.take_parked().into_iter().map(|(p, f)| (p as usize, f)).collect();
        self.rec.each_published(|rd| {
            if tag::untagged(rd) != 0 {
                grave.insert(tag::untagged(rd) as usize, drop_info_raw::<M>);
            }
        });
        unsafe {
            let mut n = self.head;
            while !n.is_null() {
                let next = (*n).next.load() as *mut Node<M>;
                let iv = tag::untagged((*n).info.load());
                if iv != 0 {
                    grave.insert(iv as usize, drop_info_raw::<M>);
                }
                let is_tail = (*n).key.load() == KEY_MAX;
                grave.insert(n as usize, drop_node_raw::<M>);
                n = if is_tail { std::ptr::null_mut() } else { next };
            }
            for (p, f) in grave {
                f(p as *mut u8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::CountingNvm;
    use std::sync::Arc;

    type L = RList<CountingNvm, false>;
    type LOpt = RList<CountingNvm, true>;

    #[test]
    fn sequential_set_semantics() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let list = L::new();
        assert!(!list.find(0, 5));
        assert!(list.insert(0, 5));
        assert!(list.find(0, 5));
        assert!(!list.insert(0, 5), "duplicate insert");
        assert!(list.insert(0, 3));
        assert!(list.insert(0, 9));
        assert!(list.delete(0, 5));
        assert!(!list.delete(0, 5), "double delete");
        assert!(!list.find(0, 5));
        assert!(list.find(0, 3) && list.find(0, 9));
    }

    #[test]
    fn snapshot_is_sorted() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let mut list = L::new();
        for k in [7u64, 3, 11, 1, 5] {
            assert!(list.insert(0, k));
        }
        assert_eq!(list.snapshot_keys(), vec![1, 3, 5, 7, 11]);
        list.check_invariants();
    }

    #[test]
    fn tuned_variant_same_semantics() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let mut list = LOpt::new();
        for k in 1..=50u64 {
            assert!(list.insert(0, k));
        }
        for k in (1..=50u64).step_by(2) {
            assert!(list.delete(0, k));
        }
        for k in 1..=50u64 {
            assert_eq!(list.find(0, k), k % 2 == 0);
        }
        list.check_invariants();
        assert_eq!(list.snapshot_keys().len(), 25);
    }

    #[test]
    fn insert_before_tail_copy_replaces_sentinel() {
        // Ascending inserts always hit curr = the +∞ node, exercising the
        // copy-replacement of the tail sentinel on every operation.
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let mut list = L::new();
        for k in 1..=100u64 {
            assert!(list.insert(0, k));
        }
        assert_eq!(list.snapshot_keys(), (1..=100).collect::<Vec<_>>());
        list.check_invariants();
    }

    #[test]
    fn mixed_random_ops_match_btreeset() {
        use rand::{Rng, SeedableRng};
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut list = L::new();
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..3000 {
            let k = rng.gen_range(1..64u64);
            match rng.gen_range(0..3) {
                0 => assert_eq!(list.insert(0, k), model.insert(k), "insert {k}"),
                1 => assert_eq!(list.delete(0, k), model.remove(&k), "delete {k}"),
                _ => assert_eq!(list.find(0, k), model.contains(&k), "find {k}"),
            }
        }
        assert_eq!(list.snapshot_keys(), model.iter().copied().collect::<Vec<_>>());
        list.check_invariants();
    }

    #[test]
    fn no_leaks_after_drop() {
        let _gate = crate::counters::gate_exclusive();
        nvm::tid::set_tid(0);
        let nodes0 = crate::counters::live_nodes();
        let infos0 = crate::counters::live_infos();
        {
            let mut list = L::new();
            for k in 1..=200u64 {
                list.insert(0, k);
            }
            for k in 1..=200u64 {
                list.delete(0, k);
            }
            for k in 1..=50u64 {
                list.insert(0, k);
                list.find(0, k);
            }
            list.check_invariants();
        }
        assert_eq!(crate::counters::live_nodes(), nodes0, "node leak/double-free");
        assert_eq!(crate::counters::live_infos(), infos0, "info leak/double-free");
    }

    #[test]
    fn concurrent_disjoint_inserts_all_succeed() {
        let _gate = crate::counters::gate_shared();
        let list = Arc::new(L::new());
        let nthreads = 4u64;
        let per = 200u64;
        let hs: Vec<_> = (0..nthreads)
            .map(|t| {
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    nvm::tid::set_tid(t as usize);
                    for i in 0..per {
                        assert!(list.insert(t as usize, 1 + t + i * nthreads));
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let mut list = Arc::into_inner(list).unwrap();
        assert_eq!(list.snapshot_keys().len(), (nthreads * per) as usize);
        list.check_invariants();
    }

    #[test]
    fn concurrent_same_key_contention_one_winner() {
        // All threads fight over each key; exactly one insert wins per key.
        let _gate = crate::counters::gate_shared();
        let list = Arc::new(L::new());
        let rounds = 100u64;
        let nthreads = 4;
        use std::sync::atomic::{AtomicU64, Ordering};
        let wins = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..nthreads)
            .map(|t| {
                let list = Arc::clone(&list);
                let wins = Arc::clone(&wins);
                std::thread::spawn(move || {
                    nvm::tid::set_tid(t);
                    for r in 0..rounds {
                        if list.insert(t, 1 + r) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::Relaxed), rounds, "exactly one winner per key");
        let mut list = Arc::into_inner(list).unwrap();
        assert_eq!(list.snapshot_keys().len(), rounds as usize);
        list.check_invariants();
    }

    #[test]
    fn concurrent_insert_delete_churn_keeps_invariants() {
        use rand::{Rng, SeedableRng};
        let _gate = crate::counters::gate_shared();
        let list = Arc::new(L::new());
        let hs: Vec<_> = (0..4)
            .map(|t| {
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    nvm::tid::set_tid(t);
                    let mut rng = rand::rngs::StdRng::seed_from_u64(t as u64);
                    for _ in 0..2000 {
                        let k = rng.gen_range(1..32u64);
                        match rng.gen_range(0..3) {
                            0 => {
                                list.insert(t, k);
                            }
                            1 => {
                                list.delete(t, k);
                            }
                            _ => {
                                list.find(t, k);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let mut list = Arc::into_inner(list).unwrap();
        list.check_invariants();
    }

    #[test]
    fn concurrent_churn_no_leaks() {
        let _gate = crate::counters::gate_exclusive();
        nvm::tid::set_tid(0);
        let nodes0 = crate::counters::live_nodes();
        let infos0 = crate::counters::live_infos();
        {
            let list = Arc::new(L::new());
            let hs: Vec<_> = (0..4)
                .map(|t| {
                    let list = Arc::clone(&list);
                    std::thread::spawn(move || {
                        use rand::{Rng, SeedableRng};
                        nvm::tid::set_tid(t);
                        let mut rng = rand::rngs::StdRng::seed_from_u64(100 + t as u64);
                        for _ in 0..1500 {
                            let k = rng.gen_range(1..24u64);
                            if rng.gen_bool(0.5) {
                                list.insert(t, k);
                            } else {
                                list.delete(t, k);
                            }
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            drop(Arc::into_inner(list).unwrap());
        }
        assert_eq!(crate::counters::live_nodes(), nodes0, "node leak/double-free");
        assert_eq!(crate::counters::live_infos(), infos0, "info leak/double-free");
    }

    #[test]
    fn recovery_without_crash_restarts_cleanly() {
        // recover_* on a fresh process id behaves like a plain invocation.
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let list = L::new();
        assert!(list.recover_insert(0, 10));
        assert!(list.find(0, 10));
        assert!(list.recover_delete(0, 10));
        assert!(!list.find(0, 10));
        assert!(!list.recover_find(0, 10));
    }
}
