//! Detectably recoverable sorted linked list (paper Section 4,
//! Algorithms 3–5), obtained by applying ROpt-ISB (Algorithm 2).
//!
//! `RList` is the one-bucket instantiation of the head-parameterized
//! ordered-set core in [`crate::set_core`]: it owns a single bucket head,
//! its recovery area and its collector, and delegates every operation to
//! [`SetCore`] with exactly the same persistency placement the pre-extraction
//! list had (asserted bit-for-bit by the `persist_placement` regression
//! test). The algorithm documentation lives in [`crate::set_core`]; the
//! sharded multi-bucket instantiation is [`crate::hashmap::RHashMap`].

use crate::engine::RES_TRUE;
use crate::pool::PoolCfg;
use crate::recovery::{
    attach_standalone, AttachEnv, AttachError, AttachSummary, MappedLayout, RecArea, Recovered,
    SlotOps,
};
use crate::set_core::{self, SetCore, SetPools};
use nvm::mapped::{MapError, MappedHeap, MappedNvm, DEFAULT_HEAP_BYTES};
use nvm::Persist;
use reclaim::Collector;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

pub use crate::set_core::{Node, KEY_MAX, KEY_MIN};

/// Superblock structure-kind tag of a mapped `RList`.
pub const KIND_LIST: u64 = 3;

/// Detectably recoverable sorted linked list. `ARM = false` is the paper's
/// general persistency placement ("Isb"); `ARM = true` is the hand-tuned
/// one ("Isb-Opt").
///
/// # Example: the detectable recovery flow
///
/// After a crash, `recover_*` answers "did my interrupted operation take
/// effect?" from the per-process recovery data — returning the operation's
/// original response without re-applying it:
///
/// ```
/// use isb::list::RList;
/// use nvm::CountingNvm;
///
/// nvm::tid::set_tid(0); // register this thread as process 0
/// let list: RList<CountingNvm> = RList::new();
/// assert!(list.insert(0, 7));
///
/// // Suppose the crash hit after the insert took effect but before the
/// // caller saw the response. Recovery returns the SAME response...
/// assert!(list.recover_insert(0, 7));
/// // ...and did not apply the insert twice:
/// assert!(list.delete(0, 7));
/// // The completed delete's response is likewise recoverable, exactly once:
/// assert!(list.recover_delete(0, 7));
/// assert!(!list.find(0, 7));
/// ```
pub struct RList<M: Persist, const ARM: u8 = 0> {
    head: *mut Node<M>,
    rec: RecArea<M>,
    // `collector` must drop before `pools`: pending garbage recycles into
    // the pools' free lists when the collector drains on drop.
    collector: Collector,
    pools: SetPools<M>,
    /// Mapped mode: the persistent heap everything lives in (`Some`
    /// suppresses drop-time teardown — the arena is the durable state).
    mapped: Option<Arc<MappedHeap>>,
}

unsafe impl<M: Persist, const ARM: u8> Send for RList<M, ARM> {}
unsafe impl<M: Persist, const ARM: u8> Sync for RList<M, ARM> {}

impl<M: Persist, const ARM: u8> Default for RList<M, ARM> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Persist, const ARM: u8> RList<M, ARM> {
    /// New empty list with a reclaiming collector and pooled allocation.
    pub fn new() -> Self {
        Self::with_collector(Collector::new())
    }

    /// New empty list with pooling off: every descriptor/node is a fresh
    /// heap allocation, as pre-pool builds behaved. The fig9 ablation and
    /// the persist-placement goldens run this side by side with [`RList::new`].
    pub fn boxed() -> Self {
        Self::with_config(Collector::new(), PoolCfg::boxed())
    }

    /// New empty list with the given collector. Crash-simulation runs pass
    /// [`Collector::disabled`] (a crash must not free memory; pooling
    /// drops to passthrough mode automatically).
    pub fn with_collector(collector: Collector) -> Self {
        Self::with_config(collector, PoolCfg::default())
    }

    /// New empty list with the given collector and pool configuration.
    pub fn with_config(collector: Collector, pool: PoolCfg) -> Self {
        let pools = SetPools::new(pool, &collector);
        Self { head: set_core::new_bucket(), rec: RecArea::new(), collector, pools, mapped: None }
    }

    /// The list's collector (for diagnostics).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The core view over the list's single bucket.
    #[inline]
    fn core(&self) -> SetCore<'_, M, ARM> {
        // SAFETY: `head` is this list's live bucket; `rec`/`collector`/
        // `pools` are the area, collector and pools every operation on it
        // goes through (pools declared after the collector, so they outlive
        // its drop-time drain).
        unsafe { SetCore::new(self.head, &self.rec, &self.collector, &self.pools) }
    }

    /// Inserts `key`; returns `false` iff it was already present.
    /// (Algorithm 3, `Insert`.)
    pub fn insert(&self, pid: usize, key: u64) -> bool {
        self.core().insert(pid, key)
    }

    /// Deletes `key`; returns `false` iff it was absent. (Algorithm 5.)
    pub fn delete(&self, pid: usize, key: u64) -> bool {
        self.core().delete(pid, key)
    }

    /// Whether `key` is present. (Algorithm 3, `Find`.)
    pub fn find(&self, pid: usize, key: u64) -> bool {
        self.core().find(pid, key)
    }

    /// `Insert.Recover` (Op-Recover with the insert's arguments).
    pub fn recover_insert(&self, pid: usize, key: u64) -> bool {
        match self.core().op_recover(pid) {
            Recovered::Completed(v) => v == RES_TRUE,
            Recovered::Restart => self.insert(pid, key),
        }
    }

    /// `Delete.Recover`.
    pub fn recover_delete(&self, pid: usize, key: u64) -> bool {
        match self.core().op_recover(pid) {
            Recovered::Completed(v) => v == RES_TRUE,
            Recovered::Restart => self.delete(pid, key),
        }
    }

    /// `Find.Recover`: finds never set `CP_q = 1`, so recovery always
    /// restarts them (restart-safe by read-onlyness).
    pub fn recover_find(&self, pid: usize, key: u64) -> bool {
        match self.core().op_recover(pid) {
            Recovered::Completed(v) => v == RES_TRUE,
            Recovered::Restart => self.find(pid, key),
        }
    }

    /// Completes helping obligations left visible by a crash (resurrected
    /// tags of completed operations under the tuned placement); call after
    /// every process ran its `recover_*`. See [`SetCore::scrub`].
    pub fn scrub(&self) {
        self.core().scrub();
    }

    /// [`RList::scrub`] with the pass budget surfaced as a typed
    /// [`AttachError`] instead of a panic (the mapped attach path).
    pub fn try_scrub(&self) -> Result<(), AttachError> {
        self.core().try_scrub()
    }

    /// Snapshot of the user keys (requires exclusive access ⇒ quiescence).
    pub fn snapshot_keys(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        self.core().snapshot_keys_into(&mut out);
        out
    }

    /// Structural invariants: strictly sorted keys, intact sentinels, no
    /// reachable node is tagged (quiescent list). Panics on violation.
    pub fn check_invariants(&mut self) {
        self.core().check_invariants();
    }
}

impl<const ARM: u8> RList<MappedNvm, ARM> {
    /// Attaches (or creates) a detectably recoverable sorted list backed by
    /// the file-backed persistent heap at `path`, running the generic
    /// restart driver ([`crate::recovery::attach_standalone`]) on an
    /// existing heap. The calling thread must be registered
    /// (`nvm::tid::set_tid`).
    pub fn attach(path: impl AsRef<Path>) -> Result<(Self, AttachSummary), AttachError> {
        Self::attach_sized(path, DEFAULT_HEAP_BYTES)
    }

    /// [`RList::attach`] with an explicit heap size for creation.
    pub fn attach_sized(
        path: impl AsRef<Path>,
        heap_bytes: usize,
    ) -> Result<(Self, AttachSummary), AttachError> {
        attach_standalone::<Self>(path.as_ref(), (), heap_bytes)
    }

    /// The persistent heap backing this list.
    pub fn heap(&self) -> &Arc<MappedHeap> {
        self.mapped.as_ref().expect("mapped-mode list")
    }

    /// Whole-node span check against the backing heap.
    fn in_node(&self, a: u64) -> bool {
        let heap = self.heap();
        a & 7 == 0 && heap.contains_span(a as usize, std::mem::size_of::<Node<MappedNvm>>())
    }
}

impl<const ARM: u8> MappedLayout for RList<MappedNvm, ARM> {
    const KIND: u64 = KIND_LIST;
    const KIND_NAME: &'static str = "list";
    type Cfg = ();

    fn cfg_word(_cfg: ()) -> u64 {
        0x4C | (ARM as u64) << 32
    }

    fn root_bytes(_cfg: ()) -> usize {
        8 // the bucket head's address
    }

    fn open(env: &AttachEnv, _cfg: (), root_blk: *mut u8) -> Result<Self, AttachError> {
        let collector = env.collector();
        let pools = SetPools::with_shared_info(env.info_pool(), env.pool_cfg(), &collector);
        let root_w = root_blk as *mut u64;
        // SAFETY: committed 8-byte root block, single-threaded attach.
        let head = unsafe {
            if root_w.read() == 0 {
                let b = set_core::new_bucket_in(&pools);
                root_w.write(b as u64);
                nvm::mapped::MappedNvm::pbarrier(&*(root_w as *const nvm::PWord<MappedNvm>));
                b
            } else {
                root_w.read() as *mut Node<MappedNvm>
            }
        };
        Ok(Self {
            head,
            rec: env.rec_area(),
            collector,
            pools,
            mapped: Some(Arc::clone(&env.heap)),
        })
    }
}

impl<const ARM: u8> SlotOps for RList<MappedNvm, ARM> {
    fn validate_image(&self, infos: &mut HashSet<u64>) -> Result<(), MapError> {
        let max_nodes = self.heap().bump_granules() + 4;
        // SAFETY: `in_node` guarantees whole-node spans inside the mapping
        // for every dereference.
        unsafe { set_core::validate_bucket(self.head, &|a| self.in_node(a), max_nodes, infos) }
            .map_err(|addr| MapError::CorruptPointer { addr })
    }

    fn valid_install(&self, addr: u64) -> bool {
        self.in_node(addr)
    }

    fn try_scrub(&self) -> Result<(), AttachError> {
        RList::try_scrub(self)
    }

    unsafe fn census(&self, live: &mut HashSet<usize>, info_refs: &mut HashMap<usize, u32>) {
        // SAFETY: quiescent exclusive access post-scrub (caller).
        unsafe { set_core::census_bucket(self.head, live, info_refs) };
    }

    fn each_cached(&mut self, f: &mut dyn FnMut(usize)) {
        self.pools.node.each_idle(|p| f(p as usize));
        self.pools.info.each_idle(|p| f(p as usize));
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send + Sync> {
        self
    }
}

impl<M: Persist, const ARM: u8> Drop for RList<M, ARM> {
    fn drop(&mut self) {
        if self.mapped.is_some() {
            // Mapped mode: the arena is the durable state; pools return
            // their caches to the persistent free list on drop.
            return;
        }
        // Quiescent teardown. After a simulated crash the NVM image may have
        // rolled pointers back, making *retired* (parked) nodes reachable
        // again — so the reachable scan and the collector's parked bag can
        // overlap. Free the union exactly once, deduplicated by address.
        let mut grave: set_core::Grave =
            self.collector.take_parked().into_iter().map(|(p, f)| (p as usize, f)).collect();
        self.rec.each_published(|rd| set_core::grave_published_info::<M>(&mut grave, rd));
        unsafe {
            set_core::grave_scan_bucket(self.head, &mut grave);
            set_core::free_grave(grave);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::CountingNvm;
    use std::sync::Arc;

    type L = RList<CountingNvm, 0>;
    type LOpt = RList<CountingNvm, 1>;

    #[test]
    fn sequential_set_semantics() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let list = L::new();
        assert!(!list.find(0, 5));
        assert!(list.insert(0, 5));
        assert!(list.find(0, 5));
        assert!(!list.insert(0, 5), "duplicate insert");
        assert!(list.insert(0, 3));
        assert!(list.insert(0, 9));
        assert!(list.delete(0, 5));
        assert!(!list.delete(0, 5), "double delete");
        assert!(!list.find(0, 5));
        assert!(list.find(0, 3) && list.find(0, 9));
    }

    #[test]
    fn snapshot_is_sorted() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let mut list = L::new();
        for k in [7u64, 3, 11, 1, 5] {
            assert!(list.insert(0, k));
        }
        assert_eq!(list.snapshot_keys(), vec![1, 3, 5, 7, 11]);
        list.check_invariants();
    }

    #[test]
    fn tuned_variant_same_semantics() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let mut list = LOpt::new();
        for k in 1..=50u64 {
            assert!(list.insert(0, k));
        }
        for k in (1..=50u64).step_by(2) {
            assert!(list.delete(0, k));
        }
        for k in 1..=50u64 {
            assert_eq!(list.find(0, k), k % 2 == 0);
        }
        list.check_invariants();
        assert_eq!(list.snapshot_keys().len(), 25);
    }

    #[test]
    fn insert_before_tail_copy_replaces_sentinel() {
        // Ascending inserts always hit curr = the +∞ node, exercising the
        // copy-replacement of the tail sentinel on every operation.
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let mut list = L::new();
        for k in 1..=100u64 {
            assert!(list.insert(0, k));
        }
        assert_eq!(list.snapshot_keys(), (1..=100).collect::<Vec<_>>());
        list.check_invariants();
    }

    #[test]
    fn mixed_random_ops_match_btreeset() {
        use rand::{Rng, SeedableRng};
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut list = L::new();
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..3000 {
            let k = rng.gen_range(1..64u64);
            match rng.gen_range(0..3) {
                0 => assert_eq!(list.insert(0, k), model.insert(k), "insert {k}"),
                1 => assert_eq!(list.delete(0, k), model.remove(&k), "delete {k}"),
                _ => assert_eq!(list.find(0, k), model.contains(&k), "find {k}"),
            }
        }
        assert_eq!(list.snapshot_keys(), model.iter().copied().collect::<Vec<_>>());
        list.check_invariants();
    }

    #[test]
    fn no_leaks_after_drop() {
        let _gate = crate::counters::gate_exclusive();
        nvm::tid::set_tid(0);
        let nodes0 = crate::counters::live_nodes();
        let infos0 = crate::counters::live_infos();
        {
            let mut list = L::new();
            for k in 1..=200u64 {
                list.insert(0, k);
            }
            for k in 1..=200u64 {
                list.delete(0, k);
            }
            for k in 1..=50u64 {
                list.insert(0, k);
                list.find(0, k);
            }
            list.check_invariants();
        }
        assert_eq!(crate::counters::live_nodes(), nodes0, "node leak/double-free");
        assert_eq!(crate::counters::live_infos(), infos0, "info leak/double-free");
    }

    #[test]
    fn concurrent_disjoint_inserts_all_succeed() {
        let _gate = crate::counters::gate_shared();
        let list = Arc::new(L::new());
        let nthreads = 4u64;
        let per = 200u64;
        let hs: Vec<_> = (0..nthreads)
            .map(|t| {
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    nvm::tid::set_tid(t as usize);
                    for i in 0..per {
                        assert!(list.insert(t as usize, 1 + t + i * nthreads));
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let mut list = Arc::into_inner(list).unwrap();
        assert_eq!(list.snapshot_keys().len(), (nthreads * per) as usize);
        list.check_invariants();
    }

    #[test]
    fn concurrent_same_key_contention_one_winner() {
        // All threads fight over each key; exactly one insert wins per key.
        let _gate = crate::counters::gate_shared();
        let list = Arc::new(L::new());
        let rounds = 100u64;
        let nthreads = 4;
        use std::sync::atomic::{AtomicU64, Ordering};
        let wins = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..nthreads)
            .map(|t| {
                let list = Arc::clone(&list);
                let wins = Arc::clone(&wins);
                std::thread::spawn(move || {
                    nvm::tid::set_tid(t);
                    for r in 0..rounds {
                        if list.insert(t, 1 + r) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::Relaxed), rounds, "exactly one winner per key");
        let mut list = Arc::into_inner(list).unwrap();
        assert_eq!(list.snapshot_keys().len(), rounds as usize);
        list.check_invariants();
    }

    #[test]
    fn concurrent_insert_delete_churn_keeps_invariants() {
        use rand::{Rng, SeedableRng};
        let _gate = crate::counters::gate_shared();
        let list = Arc::new(L::new());
        let hs: Vec<_> = (0..4)
            .map(|t| {
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    nvm::tid::set_tid(t);
                    let mut rng = rand::rngs::StdRng::seed_from_u64(t as u64);
                    for _ in 0..2000 {
                        let k = rng.gen_range(1..32u64);
                        match rng.gen_range(0..3) {
                            0 => {
                                list.insert(t, k);
                            }
                            1 => {
                                list.delete(t, k);
                            }
                            _ => {
                                list.find(t, k);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let mut list = Arc::into_inner(list).unwrap();
        list.check_invariants();
    }

    #[test]
    fn concurrent_churn_no_leaks() {
        let _gate = crate::counters::gate_exclusive();
        nvm::tid::set_tid(0);
        let nodes0 = crate::counters::live_nodes();
        let infos0 = crate::counters::live_infos();
        {
            let list = Arc::new(L::new());
            let hs: Vec<_> = (0..4)
                .map(|t| {
                    let list = Arc::clone(&list);
                    std::thread::spawn(move || {
                        use rand::{Rng, SeedableRng};
                        nvm::tid::set_tid(t);
                        let mut rng = rand::rngs::StdRng::seed_from_u64(100 + t as u64);
                        for _ in 0..1500 {
                            let k = rng.gen_range(1..24u64);
                            if rng.gen_bool(0.5) {
                                list.insert(t, k);
                            } else {
                                list.delete(t, k);
                            }
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            drop(Arc::into_inner(list).unwrap());
        }
        assert_eq!(crate::counters::live_nodes(), nodes0, "node leak/double-free");
        assert_eq!(crate::counters::live_infos(), infos0, "info leak/double-free");
    }

    #[test]
    fn recovery_without_crash_restarts_cleanly() {
        // recover_* on a fresh process id behaves like a plain invocation.
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let list = L::new();
        assert!(list.recover_insert(0, 10));
        assert!(list.find(0, 10));
        assert!(list.recover_delete(0, 10));
        assert!(!list.find(0, 10));
        assert!(!list.recover_find(0, 10));
    }

    #[test]
    fn mapped_attach_list_preserves_contents_across_detach() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let path = std::env::temp_dir().join(format!(
            "isb_list_{}_{}.heap",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let (list, s) = RList::<nvm::MappedNvm, 0>::attach_sized(&path, 1 << 21).unwrap();
            assert!(s.heap.created);
            for k in 1..=120u64 {
                assert!(list.insert(0, k));
            }
            for k in (1..=120u64).step_by(3) {
                assert!(list.delete(0, k));
            }
        }
        {
            let (mut list, s) = RList::<nvm::MappedNvm, 0>::attach_sized(&path, 1 << 21).unwrap();
            assert!(!s.heap.created);
            assert_eq!(s.heap.poisoned, 0, "clean detach leaves no torn blocks");
            for k in 1..=120u64 {
                assert_eq!(list.find(0, k), k % 3 != 1, "key {k} after re-attach");
            }
            list.check_invariants();
            assert!(list.insert(0, 1000));
            assert!(list.delete(0, 2));
        }
        {
            let (mut list, _) = RList::<nvm::MappedNvm, 0>::attach_sized(&path, 1 << 21).unwrap();
            assert!(list.find(0, 1000));
            assert!(!list.find(0, 2));
            list.check_invariants();
        }
        let _ = std::fs::remove_file(&path);
    }
}
