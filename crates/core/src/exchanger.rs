//! Detectably recoverable exchanger (paper Section 6).
//!
//! An exchanger pairs up two operations so they can swap values. Processes
//! exchange **ExInfo structures** rather than raw values: the first arrival
//! captures the slot with a CAS to its ExInfo and waits; the second installs
//! its own ExInfo into the waiter's `partner` field (one CAS — the
//! collision), after which both sides read each other's `value`.
//!
//! Detectability: `RD_q` names the operation's ExInfo; its `result` is
//! persisted before returning. On recovery, a set `result` is returned
//! directly; a set `partner` lets the response be recomputed; an ExInfo
//! still alone in the slot can be withdrawn (the operation did not take
//! effect) — the paper's "tracked progress" distilled to three fields.

use crate::engine::{res_val, val_of, RES_BOT, RES_EMPTY};
use crate::pool::{Pool, PoolCfg, PoolItem};
use crate::recovery::RecArea;
use crate::tag;
use nvm::{PWord, Persist, PersistWords};
use reclaim::Collector;

/// The per-operation descriptor exchanged between processes.
#[repr(C)]
pub struct ExInfo<M: Persist> {
    value: PWord<M>,
    partner: PWord<M>,
    result: PWord<M>,
}

unsafe impl<M: Persist> PersistWords<M> for ExInfo<M> {
    fn each_word(&self, f: &mut dyn FnMut(&PWord<M>)) {
        f(&self.value);
        f(&self.partner);
        f(&self.result);
    }
}

impl<M: Persist> ExInfo<M> {
    /// Re-initialize a pool-recycled descriptor.
    fn init(&self, v: u64) {
        self.value.store(v);
        self.partner.store(0);
        self.result.store(RES_BOT);
    }
}

impl<M: Persist> PoolItem for ExInfo<M> {
    fn fresh() -> Self {
        crate::counters::info_alloc();
        ExInfo { value: PWord::new(0), partner: PWord::new(0), result: PWord::new(RES_BOT) }
    }

    fn count_reuse() {
        crate::counters::info_reuse();
    }
}

/// Outcome of [`RExchanger::exchange`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeResult {
    /// Paired: the partner's value.
    Exchanged(u64),
    /// Nobody arrived within the spin budget; the offer was withdrawn.
    TimedOut,
}

/// A detectably recoverable exchanger.
pub struct RExchanger<M: Persist> {
    slot: PWord<M>,
    rec: RecArea<M>,
    // `collector` must drop before `pool` (drop-time drain recycles).
    collector: Collector,
    pool: Pool<ExInfo<M>>,
}

unsafe impl<M: Persist> Send for RExchanger<M> {}
unsafe impl<M: Persist> Sync for RExchanger<M> {}

impl<M: Persist> Default for RExchanger<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Persist> RExchanger<M> {
    /// New exchanger.
    pub fn new() -> Self {
        Self::with_collector(Collector::new())
    }

    /// New exchanger with the given collector.
    pub fn with_collector(collector: Collector) -> Self {
        Self::with_config(collector, PoolCfg::default())
    }

    /// New exchanger with the given collector and pool configuration.
    pub fn with_config(collector: Collector, pool: PoolCfg) -> Self {
        let pool = Pool::new_for::<M>(pool, &collector);
        Self { slot: PWord::new(0), rec: RecArea::new(), collector, pool }
    }

    fn alloc_info(&self, v: u64) -> *mut ExInfo<M> {
        match self.pool.take() {
            Some(p) => {
                unsafe { (*p).init(v) };
                p
            }
            None => {
                crate::counters::info_alloc();
                Box::into_raw(Box::new(ExInfo {
                    value: PWord::new(v),
                    partner: PWord::new(0),
                    result: PWord::new(RES_BOT),
                }))
            }
        }
    }

    /// Complete with `partner`'s value: persist the response, then return it.
    unsafe fn finish(&self, info: *mut ExInfo<M>, partner: u64) -> u64 {
        unsafe {
            let p = partner as *const ExInfo<M>;
            let v = (*p).value.load();
            M::store(&(*info).result, res_val(v));
            M::pwb(&(*info).result);
            M::psync();
            v
        }
    }

    /// Attempt to exchange `v` with another process, spinning for at most
    /// `budget` iterations while waiting.
    pub fn exchange(&self, pid: usize, v: u64, budget: usize) -> ExchangeResult {
        // ONE pin covers the retirement of the previous descriptor and the
        // whole collision loop.
        let g = self.collector.pin();
        let prev = self.rec.begin::<1>(pid);
        if tag::untagged(prev) != 0 {
            // Published in RD_q and possibly seen by a past partner: the
            // pool's epoch delay applies.
            unsafe { self.pool.retire(tag::untagged(prev) as *mut ExInfo<M>, &g) };
        }
        let info = self.alloc_info(v);
        unsafe {
            M::pwb_obj(&*info);
            M::pfence();
        }
        self.rec.publish(pid, info as u64);
        let mut spins = 0;
        loop {
            let cur = self.slot.load();
            if cur == 0 {
                // Try to capture the slot and wait for a partner.
                if self.slot.cas(0, info as u64) == 0 {
                    M::pwb(&self.slot);
                    loop {
                        let p = unsafe { (*info).partner.load() };
                        if p != 0 {
                            let v = unsafe { self.finish(info, p) };
                            let _ = self.slot.cas(info as u64, 0);
                            return ExchangeResult::Exchanged(v);
                        }
                        spins += 1;
                        if spins > budget {
                            // Withdraw; if that fails, a partner just arrived.
                            if self.slot.cas(info as u64, 0) == info as u64 {
                                unsafe {
                                    M::store(&(*info).result, RES_EMPTY);
                                    M::pwb(&(*info).result);
                                    M::psync();
                                }
                                return ExchangeResult::TimedOut;
                            }
                        }
                        std::hint::spin_loop();
                    }
                }
            } else {
                // Collide with the waiter.
                let waiter = cur as *mut ExInfo<M>;
                if unsafe { (*waiter).partner.cas(0, info as u64) } == 0 {
                    unsafe { M::pwb(&(*waiter).partner) };
                    let v = unsafe { self.finish(info, cur) };
                    let _ = self.slot.cas(cur, 0); // release for the next pair
                    return ExchangeResult::Exchanged(v);
                }
                // Already matched: help clear the slot and retry.
                let _ = self.slot.cas(cur, 0);
            }
            spins += 1;
            if spins > budget {
                unsafe {
                    M::store(&(*info).result, RES_EMPTY);
                    M::pwb(&(*info).result);
                    M::psync();
                }
                drop(g);
                return ExchangeResult::TimedOut;
            }
        }
    }

    /// `Exchange.Recover`: decide from the tracked ExInfo whether the
    /// crashed exchange took effect.
    pub fn recover_exchange(&self, pid: usize, v: u64, budget: usize) -> ExchangeResult {
        let (cp, rd) = self.rec.read(pid);
        if cp != 1 || rd == 0 {
            return self.exchange(pid, v, budget);
        }
        let info = rd as *mut ExInfo<M>;
        unsafe {
            let r = (*info).result.load();
            if r == RES_EMPTY {
                return ExchangeResult::TimedOut;
            }
            if r != RES_BOT {
                return ExchangeResult::Exchanged(val_of(r));
            }
            // Result not persisted: did a partner collide before the crash?
            let p = (*info).partner.load();
            if p != 0 {
                return ExchangeResult::Exchanged(self.finish(info, p));
            }
            // Still alone: withdraw if we're in the slot, then re-invoke.
            let _ = self.slot.cas(info as u64, 0);
            // Unless a partner snuck in during the withdraw:
            let p = (*info).partner.load();
            if p != 0 {
                return ExchangeResult::Exchanged(self.finish(info, p));
            }
        }
        self.exchange(pid, v, budget)
    }
}

impl<M: Persist> Drop for RExchanger<M> {
    fn drop(&mut self) {
        let mut grave = std::collections::HashSet::new();
        self.rec.each_published(|rd| {
            if tag::untagged(rd) != 0 {
                grave.insert(tag::untagged(rd));
            }
        });
        for (p, _) in self.collector.take_parked() {
            grave.remove(&(p as u64)); // parked ExInfos freed below once
            unsafe { drop(Box::from_raw(p as *mut ExInfo<M>)) };
        }
        for p in grave {
            unsafe { drop(Box::from_raw(p as *mut ExInfo<M>)) };
        }
    }
}

impl<M: Persist> Drop for ExInfo<M> {
    fn drop(&mut self) {
        crate::counters::info_free();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::CountingNvm;
    use std::sync::Arc;

    type X = RExchanger<CountingNvm>;

    #[test]
    fn lone_exchange_times_out() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let x = X::new();
        assert_eq!(x.exchange(0, 7, 100), ExchangeResult::TimedOut);
    }

    #[test]
    fn two_threads_swap_values() {
        let _gate = crate::counters::gate_shared();
        let x = Arc::new(X::new());
        let x2 = Arc::clone(&x);
        let h = std::thread::spawn(move || {
            nvm::tid::set_tid(1);
            loop {
                if let ExchangeResult::Exchanged(v) = x2.exchange(1, 111, 1_000_000) {
                    return v;
                }
            }
        });
        nvm::tid::set_tid(0);
        let mine = loop {
            if let ExchangeResult::Exchanged(v) = x.exchange(0, 222, 1_000_000) {
                break v;
            }
        };
        let theirs = h.join().unwrap();
        assert_eq!((mine, theirs), (111, 222));
    }

    #[test]
    fn many_pairs_all_match() {
        let _gate = crate::counters::gate_shared();
        let x = Arc::new(X::new());
        let n = 100u64;
        let x2 = Arc::clone(&x);
        let h = std::thread::spawn(move || {
            nvm::tid::set_tid(1);
            let mut got = Vec::new();
            for i in 0..n {
                loop {
                    if let ExchangeResult::Exchanged(v) = x2.exchange(1, 1000 + i, 10_000_000) {
                        got.push(v);
                        break;
                    }
                }
            }
            got
        });
        nvm::tid::set_tid(0);
        let mut got = Vec::new();
        for i in 0..n {
            loop {
                if let ExchangeResult::Exchanged(v) = x.exchange(0, 2000 + i, 10_000_000) {
                    got.push(v);
                    break;
                }
            }
        }
        let other = h.join().unwrap();
        // Each side received exactly the other's values, in order.
        assert_eq!(got, (0..n).map(|i| 1000 + i).collect::<Vec<_>>());
        assert_eq!(other, (0..n).map(|i| 2000 + i).collect::<Vec<_>>());
    }

    #[test]
    fn recovery_of_completed_exchange_returns_same_value() {
        let _gate = crate::counters::gate_shared();
        let x = Arc::new(X::new());
        let x2 = Arc::clone(&x);
        let h = std::thread::spawn(move || {
            nvm::tid::set_tid(1);
            x2.exchange(1, 5, 50_000_000)
        });
        nvm::tid::set_tid(0);
        let r = x.exchange(0, 6, 50_000_000);
        assert_eq!(r, ExchangeResult::Exchanged(5));
        // "Crash" right after return: recovery must reproduce the response.
        assert_eq!(x.recover_exchange(0, 6, 100), ExchangeResult::Exchanged(5));
        assert_eq!(h.join().unwrap(), ExchangeResult::Exchanged(6));
    }

    #[test]
    fn recovery_of_lonely_offer_withdraws_and_retries() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let x = X::new();
        // Simulate a crash while waiting alone: capture the slot manually.
        let r = x.exchange(0, 9, 10);
        assert_eq!(r, ExchangeResult::TimedOut);
        // Recovery with nothing pending times out again (re-invoked).
        assert_eq!(x.recover_exchange(0, 9, 10), ExchangeResult::TimedOut);
    }
}
