//! The ISB-tracking engine: the [`Info`] descriptor and the generic,
//! idempotent [`help`] procedure (Algorithm 1 of the paper).
//!
//! An operation's execution goes through phases:
//!
//! 1. **Gather** (data-structure specific): collect the *AffectSet* — the
//!    nodes the operation will lock/update/delete, as `(info cell, expected
//!    info value)` pairs — plus the *WriteSet* (CAS triples) and *NewSet*
//!    (freshly allocated nodes, pre-tagged with the operation's Info).
//! 2. **Helping**: if any gathered info value is tagged, complete that
//!    operation first and retry.
//! 3. The Info is filled, persisted, published in `RD_q`, and [`help`] runs:
//!    * **Tagging**: CAS each affect cell from its expected value to the
//!      tagged Info pointer, in AffectSet order (the invoker starts at the
//!      first element, helpers at the second). On failure, **backtrack**
//!      untags the already-tagged prefix (to `untagged(info)` — a fresh
//!      value, preserving pointer freshness) and the attempt fails.
//!    * **Update**: execute the WriteSet CASes (idempotent: re-execution
//!      fails silently), then persist the precomputed response into
//!      `result`.
//!    * **Cleanup**: untag every affect/new node still in the structure;
//!      deletion-tagged positions (mask bit set) stay tagged forever,
//!      doubling as Harris mark bits.
//!
//! ### Reference counting (`installs`)
//!
//! The paper assumes a garbage collector; we instead count, per Info, the
//! number of places that reference it: one for the owner's `RD_q` plus one
//! per affect/new cell that holds (or is destined to hold) the pointer.
//! Decrements happen when a tag-CAS overwrites an older info value (the CAS
//! winner releases it), when a node holding the info is retired, when the
//! invoker abandons never-installed slots, and when `RD_q` moves on. At
//! zero, the Info is retired through EBR, which prevents info-pointer ABA
//! through address reuse (see DESIGN.md §5).

use crate::arm;
use crate::pool::PoolItem;
use crate::tag;
use nvm::{PWord, Persist, PersistWords};
use reclaim::Guard;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, Ordering};

/// Maximum AffectSet size (BST delete uses 4: grandparent, parent, leaf, sibling).
pub const MAX_AFFECT: usize = 4;
/// Maximum WriteSet size.
pub const MAX_WRITE: usize = 2;
/// Maximum NewSet size (BST insert uses 3).
pub const MAX_NEW: usize = 3;

/// `result` encodings. The response of an operation is stored in a single
/// persistent word so that one `pwb` makes it durable.
pub const RES_BOT: u64 = 0;
/// Boolean `false` response.
pub const RES_FALSE: u64 = 1;
/// Boolean `true` response.
pub const RES_TRUE: u64 = 2;
/// Unit ("ack") response.
pub const RES_UNIT: u64 = 3;
/// "Empty" response (queue dequeue on an empty queue).
pub const RES_EMPTY: u64 = 4;
/// Values `v` are encoded as `v + RES_VAL_BASE`; callers must keep payloads
/// below `u64::MAX - RES_VAL_BASE`.
pub const RES_VAL_BASE: u64 = 16;

/// Encode a payload value as a result word.
///
/// Panics (also in release builds) when `v` is within [`RES_VAL_BASE`] of
/// `u64::MAX`: the wrapped sum would collide with the reserved encodings
/// (`RES_EMPTY`, `RES_TRUE`, …) and recovery would decode a wrong response.
#[inline]
pub fn res_val(v: u64) -> u64 {
    assert!(
        v <= u64::MAX - RES_VAL_BASE,
        "payload {v:#x} exceeds the encodable range (collides with reserved result encodings)"
    );
    v + RES_VAL_BASE
}

/// Decode a payload value from a result word.
///
/// Panics (also in release builds) when `res` is one of the reserved
/// encodings below [`RES_VAL_BASE`]: silently decoding `RES_EMPTY`/`RES_TRUE`
/// /… as a payload would hand recovery a wrong response. The twin guard of
/// [`res_val`].
#[inline]
pub fn val_of(res: u64) -> u64 {
    assert!(
        res >= RES_VAL_BASE,
        "result word {res:#x} is a reserved encoding, not a payload value"
    );
    res - RES_VAL_BASE
}

/// The Info structure: everything a helper (or the owner's recovery code)
/// needs to run the operation to completion, plus its `result`.
///
/// All descriptor fields are persistent words; the operation persists the
/// whole Info (`pbarrier(*opInfo, NewSet)`) before publishing it. The field
/// order packs the common shapes into few cache lines — a read-only
/// descriptor (one affect entry) fits entirely in the first line, and
/// two-affect/one-write/two-new descriptors (list insert/delete, queue ops)
/// in two — so the pre-publication barrier flushes 1–2 lines, matching the
/// paper's remark that "a single pwb flushes all fields fitting in a cache
/// line". [`PersistWords::used_range`] exposes exactly the used prefix.
#[repr(C, align(64))]
pub struct Info<M: Persist> {
    /// Packed `optype | naffect<<8 | nwrite<<16 | nnew<<24 | del_mask<<32`.
    pub meta: PWord<M>,
    /// Precomputed response, written before publication so every helper
    /// stores the same value into `result`.
    pub presult: PWord<M>,
    /// The operation's response; [`RES_BOT`] until the update phase ends.
    pub result: PWord<M>,
    /// AffectSet entry 0: (info-cell address, expected value).
    a0: [PWord<M>; 2],
    /// WriteSet entry 0: (cell address, old, new).
    w0: [PWord<M>; 3],
    // --- end of cache line 1 (8 words) ---
    /// AffectSet entry 1.
    a1: [PWord<M>; 2],
    /// NewSet: info-cell addresses of the new nodes.
    newset: [PWord<M>; MAX_NEW],
    /// AffectSet entry 2.
    a2: [PWord<M>; 2],
    /// AffectSet entry 3.
    a3: [PWord<M>; 2],
    /// WriteSet entry 1.
    w1: [PWord<M>; 3],
    /// Volatile reference count (see module docs). Not persistent state.
    installs: AtomicU32,
    /// Volatile: handle of the owning [`crate::pool::Pool`] (null ⇒ plain
    /// heap allocation). Written once at pool refill, read at retirement.
    owner: AtomicPtr<()>,
    /// Volatile: participant slot + 1 of the process whose pool owns this
    /// descriptor (0 ⇒ exclusive heap / plain allocation — no cross-process
    /// ambiguity). In a *shared* mapped heap the `owner` pointer above is
    /// only meaningful inside the owning process's address space: a peer
    /// performing the final release must not dereference it. Written at
    /// pool refill, read at retirement.
    owner_slot: AtomicU32,
    /// Volatile: set by [`help`] before its first tag CAS. While false the
    /// descriptor is provably private — its address was never installed in
    /// a shared cell, so at refcount zero it can re-enter the pool without
    /// the EBR round-trip (read-only fast-path descriptors, which never call
    /// `help`, hit this on every operation).
    shared: AtomicBool,
}

unsafe impl<M: Persist> Send for Info<M> {}
unsafe impl<M: Persist> Sync for Info<M> {}

impl<M: Persist> PoolItem for Info<M> {
    fn fresh() -> Self {
        crate::counters::info_alloc();
        Info {
            meta: PWord::new(0),
            presult: PWord::new(RES_BOT),
            result: PWord::new(RES_BOT),
            a0: Default::default(),
            w0: Default::default(),
            a1: Default::default(),
            newset: Default::default(),
            a2: Default::default(),
            a3: Default::default(),
            w1: Default::default(),
            installs: AtomicU32::new(0),
            owner: AtomicPtr::new(std::ptr::null_mut()),
            owner_slot: AtomicU32::new(0),
            shared: AtomicBool::new(false),
        }
    }

    fn attach(&mut self, pool: *const ()) {
        *self.owner.get_mut() = pool as *mut ();
    }

    fn attach_slot(&mut self, slot: u32) {
        *self.owner_slot.get_mut() = slot;
    }

    fn count_reuse() {
        crate::counters::info_reuse();
    }
}

impl<M: Persist> Drop for Info<M> {
    fn drop(&mut self) {
        crate::counters::info_free();
    }
}

unsafe impl<M: Persist> PersistWords<M> for Info<M> {
    fn each_word(&self, f: &mut dyn FnMut(&PWord<M>)) {
        f(&self.meta);
        f(&self.presult);
        f(&self.result);
        let (na, nw, nn, _) = self.counts();
        for k in 0..na.max(1) {
            let a = self.affect_slot(k);
            f(&a[0]);
            f(&a[1]);
        }
        for k in 0..nw {
            let w = self.write_slot(k);
            f(&w[0]);
            f(&w[1]);
            f(&w[2]);
        }
        for k in 0..nn {
            f(&self.newset[k]);
        }
    }

    fn used_range(&self) -> (*const u8, usize) {
        let (na, nw, nn, _) = self.counts();
        // Word offsets of the last used field per the #[repr(C)] layout.
        let mut end = 5usize; // header + a0
        if nw >= 1 {
            end = end.max(8);
        }
        if na >= 2 {
            end = end.max(10);
        }
        if nn >= 1 {
            end = end.max(10 + nn);
        }
        if na >= 3 {
            end = end.max(15);
        }
        if na >= 4 {
            end = end.max(17);
        }
        if nw >= 2 {
            end = end.max(20);
        }
        (self as *const Self as *const u8, end * 8)
    }
}

/// Parameters for [`Info::fill`].
pub struct InfoFill<'a> {
    /// Operation type tag (diagnostics only; the engine does not interpret it).
    pub optype: u8,
    /// `(info cell address, expected value)` per affected node, in tagging order.
    pub affect: &'a [(u64, u64)],
    /// `(cell address, old, new)` CAS triples.
    pub write: &'a [(u64, u64, u64)],
    /// Info-cell addresses of newly allocated nodes (pre-tagged by the caller).
    pub newset: &'a [u64],
    /// Bit `i` set ⇒ `affect[i]` is tagged **for deletion** (skip at cleanup).
    pub del_mask: u8,
    /// Precomputed response (encoded).
    pub presult: u64,
}

impl<M: Persist> Info<M> {
    /// Allocates an empty Info with `installs = 0`; [`Info::fill`] sets the
    /// real count. Returned pointer is owned by the ISB reference-count
    /// protocol. Pooled callers draw from [`crate::pool::Pool::take`]
    /// instead and fall back here in passthrough mode.
    pub fn alloc() -> *mut Info<M> {
        Box::into_raw(Box::new(Self::fresh()))
    }

    /// AffectSet slot `k` (layout is packed; see struct docs).
    #[inline]
    fn affect_slot(&self, k: usize) -> &[PWord<M>; 2] {
        match k {
            0 => &self.a0,
            1 => &self.a1,
            2 => &self.a2,
            _ => &self.a3,
        }
    }

    /// WriteSet slot `k`.
    #[inline]
    fn write_slot(&self, k: usize) -> &[PWord<M>; 3] {
        match k {
            0 => &self.w0,
            _ => &self.w1,
        }
    }

    /// Fills the descriptor for one attempt. Only legal while the Info is
    /// unreachable to other threads (never installed / fresh).
    ///
    /// Sets `installs = 1 (RD_q) + |affect| + |newset|`.
    ///
    /// # Safety
    /// `info` must be a live allocation from [`Info::alloc`] that no other
    /// thread can currently reach.
    pub unsafe fn fill(info: *mut Info<M>, f: &InfoFill<'_>) {
        let i = unsafe { &*info };
        debug_assert!(f.affect.len() <= MAX_AFFECT && !f.affect.is_empty());
        debug_assert!(f.write.len() <= MAX_WRITE);
        debug_assert!(f.newset.len() <= MAX_NEW);
        let meta = (f.optype as u64)
            | (f.affect.len() as u64) << 8
            | (f.write.len() as u64) << 16
            | (f.newset.len() as u64) << 24
            | (f.del_mask as u64) << 32;
        M::store(&i.meta, meta);
        M::store(&i.presult, f.presult);
        M::store(&i.result, RES_BOT);
        for (k, &(cell, exp)) in f.affect.iter().enumerate() {
            let slot = i.affect_slot(k);
            M::store(&slot[0], cell);
            M::store(&slot[1], exp);
        }
        for (k, &(cell, old, new)) in f.write.iter().enumerate() {
            let slot = i.write_slot(k);
            M::store(&slot[0], cell);
            M::store(&slot[1], old);
            M::store(&slot[2], new);
        }
        for (k, &cell) in f.newset.iter().enumerate() {
            M::store(&i.newset[k], cell);
        }
        // A freshly filled descriptor is private until `help` runs on it
        // (recycled descriptors may carry a stale true).
        i.shared.store(false, Ordering::Relaxed);
        i.installs.store(1 + f.affect.len() as u32 + f.newset.len() as u32, Ordering::Release);
    }

    #[inline]
    fn counts(&self) -> (usize, usize, usize, u8) {
        let m = M::load(&self.meta);
        (
            ((m >> 8) & 0xff) as usize,
            ((m >> 16) & 0xff) as usize,
            ((m >> 24) & 0xff) as usize,
            ((m >> 32) & 0xff) as u8,
        )
    }

    /// Number of AffectSet entries.
    pub fn naffect(&self) -> usize {
        self.counts().0
    }

    /// `(cell, expected)` of affect entry `k`.
    ///
    /// # Safety
    /// The stored cell address must still be live (EBR pin or quiescence).
    #[inline]
    unsafe fn affect_at(&self, k: usize) -> (&PWord<M>, u64) {
        let slot = self.affect_slot(k);
        let cell = M::load(&slot[0]) as *const PWord<M>;
        let exp = M::load(&slot[1]);
        (unsafe { &*cell }, exp)
    }

    /// Releases `n` references; retires the Info through `guard` at zero.
    ///
    /// # Safety
    /// The caller must actually own `n` references per the protocol in the
    /// module docs; `info` must be live.
    pub unsafe fn release(info: *mut Info<M>, n: u32, guard: &Guard<'_>) {
        if info.is_null() || n == 0 {
            return;
        }
        if M::MAPPED && RELEASE_SUSPENDED.with(|c| c.get()) {
            // Mapped-backend attach replay: the counts a killed process left
            // behind are not trustworthy mid-recovery; the post-scrub census
            // recomputes every live descriptor's count from scratch. The
            // `M::MAPPED` guard compiles the TLS access out of every other
            // model's hot path.
            return;
        }
        if M::SIMULATED {
            // Crash mode: the adversarial image can roll an info cell back to
            // a value whose reference was already released before the crash,
            // so exactly-once accounting cannot hold across crashes. Nothing
            // is reclaimed during a crash run anyway (disabled collector);
            // teardown frees through the deduplicated grave scan.
            return;
        }
        let i = unsafe { &*info };
        let prev = i.installs.fetch_sub(n, Ordering::AcqRel);
        debug_assert!(prev >= n, "info reference-count underflow ({prev} - {n})");
        if prev == n {
            let oslot = i.owner_slot.load(Ordering::Relaxed);
            if oslot != 0 && oslot != my_participant_slot() {
                // Shared heap, and the descriptor's pool belongs to ANOTHER
                // process (a peer, possibly dead): its `owner` pointer is an
                // address in that process's heap — dereferencing it here
                // would be arbitrary-memory corruption. Leak the descriptor
                // instead; the block stays allocated in the arena and the
                // next full (exclusive) attach sweeps it. Bounded: final
                // releases of foreign descriptors only happen when a peer
                // died mid-operation or handed off helping.
                return;
            }
            let owner = i.owner.load(Ordering::Relaxed) as *const ();
            if !owner.is_null() && !i.shared.load(Ordering::Acquire) {
                // Never passed through `help` ⇒ never installed in a shared
                // cell ⇒ only this thread can hold the address: back to the
                // pool without the EBR round-trip. Read-only descriptors
                // (70% of a read-heavy mix) take this path every operation.
                unsafe { crate::pool::give_to::<Info<M>>(owner, info, guard) };
            } else {
                // Shared (or unpooled): epoch-delayed, exactly like a free.
                unsafe { crate::pool::retire_to::<Info<M>>(owner, info, guard) };
            }
        }
    }

    /// Current reference count (tests/diagnostics).
    pub fn installs(&self) -> u32 {
        self.installs.load(Ordering::Acquire)
    }

    /// Attach-time bounds validation of a descriptor read from an
    /// **untrusted** mapped image, before `help` may dereference any of its
    /// cell addresses: the set sizes must be within the engine's capacities,
    /// every used affect/write/newset cell address must satisfy `valid_cell`
    /// (an in-arena 8-byte-span check — helping reads/CASes one word
    /// there), and every write `new` value must satisfy `valid_install`
    /// (callers pass a whole-node span check: `help` installs the value
    /// into a cell the later census walk dereferences as a node). Returns
    /// `false` on any violation.
    pub fn validate_bounds(
        &self,
        valid_cell: impl Fn(u64) -> bool,
        valid_install: impl Fn(u64) -> bool,
    ) -> bool {
        let (na, nw, nn, _) = self.counts();
        if na == 0 || na > MAX_AFFECT || nw > MAX_WRITE || nn > MAX_NEW {
            return false;
        }
        for k in 0..na {
            if !valid_cell(M::load(&self.affect_slot(k)[0])) {
                return false;
            }
        }
        for k in 0..nw {
            let w = self.write_slot(k);
            if !valid_cell(M::load(&w[0])) || !valid_install(M::load(&w[2])) {
                return false;
            }
        }
        for k in 0..nn {
            if !valid_cell(M::load(&self.newset[k])) {
                return false;
            }
        }
        true
    }

    /// Attach-time census fix-up for a descriptor that survived a process
    /// restart in a mapped arena: overwrites the volatile bookkeeping — the
    /// reference count (recomputed from the quiescent structure), the owner
    /// pool handle (the dead process's pool is gone), and the shared flag
    /// (a surviving descriptor was published, so it must take the EBR path
    /// when it is eventually released).
    ///
    /// # Safety
    /// Quiescent exclusive access (attach-time recovery only); `count` must
    /// equal the number of places that reference this descriptor (info
    /// cells holding its address plus `RD_q` slots naming it), `owner`
    /// must be the new structure's Info-pool handle (or null), and
    /// `owner_slot` the attaching process's participant slot + 1 (0 for an
    /// exclusive attach).
    pub unsafe fn reset_after_attach(&self, count: u32, owner: *const (), owner_slot: u32) {
        self.installs.store(count, Ordering::Release);
        self.owner.store(owner as *mut (), Ordering::Release);
        self.owner_slot.store(owner_slot, Ordering::Release);
        self.shared.store(true, Ordering::Release);
    }
}

/// The calling thread's participant slot + 1, derived from the tid-banding
/// convention of shared heaps: participant slot `s` owns tids
/// `s * PART_TIDS .. (s + 1) * PART_TIDS` (see
/// [`nvm::mapped::MappedHeap::tid_band`]). Exclusive-mode descriptors carry
/// `owner_slot == 0` and never reach the comparison, so the convention only
/// binds processes that joined a shared heap.
#[inline]
fn my_participant_slot() -> u32 {
    (nvm::tid::tid() / nvm::mapped::PART_TIDS) as u32 + 1
}

thread_local! {
    /// See [`with_release_suspended`].
    static RELEASE_SUSPENDED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f` with [`Info::release`] turned into a no-op on this thread.
///
/// Used by the mapped backend's attach-time recovery replay: `help` releases
/// references as a side effect (overwritten installs), but the counts a
/// `SIGKILL`ed process persisted may already be partially decremented, so
/// honouring them could double-release a descriptor into the arena free
/// list. Attach instead suspends the bookkeeping, brings the structure to
/// quiescence, and rebuilds every live descriptor's count with
/// [`Info::reset_after_attach`].
pub fn with_release_suspended<R>(f: impl FnOnce() -> R) -> R {
    RELEASE_SUSPENDED.with(|c| {
        let old = c.replace(true);
        let r = f();
        c.set(old);
        r
    })
}

/// Outcome of [`help`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelpOutcome {
    /// The operation took effect (its `result` is set) and cleanup ran.
    Done,
    /// Tagging failed at AffectSet position `i`; positions `< i` were
    /// untagged (backtracked). If `i > 0` the invoker must allocate a fresh
    /// Info for its next attempt (pointer-freshness of info fields).
    FailedAt(usize),
}

/// The idempotent helping procedure (Algorithm 1, `Help`).
///
/// `invoker` selects the tagging start position: the invoker tags from the
/// first AffectSet element; helpers — who discovered the Info through an
/// already-tagged node — start from the second.
///
/// # Safety
/// `info` must point to a filled, live `Info` reachable per the protocol;
/// the caller must hold an EBR pin (`guard`) covering every node in the
/// descriptor.
pub unsafe fn help<M: Persist, const ARM: u8>(
    info: *mut Info<M>,
    invoker: bool,
    guard: &Guard<'_>,
) -> HelpOutcome {
    let r = unsafe { &*info };
    // From here on the descriptor's address may enter shared cells (tagged
    // or as a backtrack/cleanup placeholder): it must never skip the EBR
    // delay on reuse. Release-ordered so the flag travels with the tag CAS.
    r.shared.store(true, Ordering::Release);
    let tagged_val = tag::tagged(info as u64);
    let untagged_val = tag::untagged(info as u64);
    let (naffect, nwrite, nnew, del_mask) = r.counts();
    let start = if invoker { 0 } else { 1 };

    // ---- Tagging phase -------------------------------------------------
    let mut k = start;
    while k < naffect {
        let (cell, expected) = unsafe { r.affect_at(k) };
        debug_assert!(!tag::is_tagged(expected), "expected info values are untagged");
        let res = cell.cas(expected, tagged_val);
        if !arm::is_tuned(ARM) {
            M::pwb(cell);
        }
        if res != expected && res != tagged_val {
            // A foreign value. Two cases, discriminated by `result`
            // (Algorithm 1's completion check):
            //
            // 1. `result` set ⇒ the operation ALREADY COMPLETED through a
            //    helper: the helper finished tagging, ran the update, stored
            //    the response, and its cleanup released this cell — which a
            //    later operation then re-tagged. Pointer freshness makes the
            //    discrimination sound: cell values never repeat, so a
            //    genuine pre-completion conflict can never be followed by
            //    the cell holding `expected`/our tag again, and the helper's
            //    result store happens-before the cleanup release we are
            //    reading through. Declaring failure here is the one
            //    mistake an invoker must not make — it would re-initialize
            //    its "never-published" nodes while they are reachable.
            //    Re-run the idempotent cleanup (heals crash-resurrected
            //    partial tags during scrub) and report completion.
            // 2. `result` unset ⇒ the attempt genuinely failed: backtrack.
            if M::load(&r.result) != RES_BOT {
                cleanup::<M, ARM>(r, tagged_val, untagged_val, naffect, nnew, del_mask);
                if !arm::is_tuned(ARM) {
                    M::psync();
                } else if arm::coalesces(ARM) && !arm::is_lp(ARM) {
                    M::coal_drain();
                }
                return HelpOutcome::Done;
            }
            // ---- Backtrack phase: untag the prefix, in reverse order ----
            let mut j = k;
            while j > 0 {
                j -= 1;
                let (c, _) = unsafe { r.affect_at(j) };
                let _ = c.cas(tagged_val, untagged_val);
                arm::pwb_arm::<M, ARM>(c);
            }
            M::psync();
            return HelpOutcome::FailedAt(k);
        }
        if res == expected {
            // We won the install: release the overwritten info value.
            let old = tag::ptr_of::<Info<M>>(expected);
            if !old.is_null() {
                unsafe { Info::release(old, 1, guard) };
            }
        }
        k += 1;
    }
    if arm::is_tuned(ARM) {
        // Batched write-backs of all tags before the phase-ending psync.
        for k in 0..naffect {
            let (cell, _) = unsafe { r.affect_at(k) };
            arm::pwb_arm::<M, ARM>(cell);
        }
    } else {
        // Hardening beyond the paper's pseudocode: positions this caller did
        // not visit (position 0 for helpers) may carry a tag whose write-back
        // the crashed invoker never completed. Re-flush them so no update is
        // ever durable while a tag it depends on is not (DESIGN.md §4).
        for k in 0..start {
            let (cell, _) = unsafe { r.affect_at(k) };
            M::pwb(cell);
        }
    }
    // Link-persist: for a single-affect operation (the queue's enqueue) the
    // tag-phase psync is merged into the update-phase psync below — the tag
    // line stays in the coalescing set and is written back together with the
    // link and the result. Sound because the descriptor and RD_q are already
    // durable (publish psync'd before help), so a crash image holding any
    // subset of {tag, link, result} re-runs this idempotent help from
    // op_recover; see DESIGN.md §12. Multi-affect ops keep the barrier: their
    // updates must never be durable before the full tag prefix is.
    if !(arm::is_lp(ARM) && naffect == 1) {
        M::psync();
    }

    // ---- Update phase ---------------------------------------------------
    for w in 0..nwrite {
        let slot = r.write_slot(w);
        let cell = M::load(&slot[0]) as *const PWord<M>;
        let old = M::load(&slot[1]);
        let new = M::load(&slot[2]);
        let cell = unsafe { &*cell };
        let _ = cell.cas(old, new); // idempotent: fails silently on re-execution
        arm::pwb_arm::<M, ARM>(cell);
    }
    let presult = M::load(&r.presult);
    debug_assert_ne!(presult, RES_BOT, "presult must be precomputed before publication");
    M::store(&r.result, presult);
    arm::pwb_arm::<M, ARM>(&r.result);
    M::psync();

    // ---- Cleanup phase --------------------------------------------------
    cleanup::<M, ARM>(r, tagged_val, untagged_val, naffect, nnew, del_mask);
    if !arm::is_tuned(ARM) {
        M::psync();
    } else if arm::coalesces(ARM) && !arm::is_lp(ARM) {
        // The coalesced cleanup lines must be written back before the op
        // returns: the untag CAS released the descriptor's cells, so the
        // noted nodes may be retired/recycled once we return. No fence —
        // cleanup durability stays opportunistic exactly as in TUNED.
        M::coal_drain();
    }
    HelpOutcome::Done
}

/// The idempotent cleanup phase of [`help`]: untag every affect/new cell
/// still holding this operation's tag (deletion-tagged positions stay
/// tagged forever, doubling as Harris mark bits). Shared by the normal
/// epilogue and the completion-detected failure branch.
///
/// Under the `LP` arm the untag write-backs are elided entirely: they run
/// after the update-phase psync with no fence of their own, so no arm ever
/// *guarantees* their durability — a crash may resurrect the tag either way,
/// and the same re-sweep (scrub / lazy helping on encounter) heals it. The
/// elision only widens the window, never the set of recovery behaviours
/// (DESIGN.md §12).
fn cleanup<M: Persist, const ARM: u8>(
    r: &Info<M>,
    tagged_val: u64,
    untagged_val: u64,
    naffect: usize,
    nnew: usize,
    del_mask: u8,
) {
    for k in 0..naffect {
        if del_mask & (1 << k) != 0 {
            continue; // deletion-tagged: stays tagged forever (mark bit)
        }
        // SAFETY: descriptor cells stay live per the help() contract.
        let (cell, _) = unsafe { r.affect_at(k) };
        let _ = cell.cas(tagged_val, untagged_val);
        if !arm::is_lp(ARM) {
            arm::pwb_arm::<M, ARM>(cell);
        }
    }
    for n in 0..nnew {
        let cell = M::load(&r.newset[n]) as *const PWord<M>;
        // SAFETY: as above.
        let cell = unsafe { &*cell };
        let _ = cell.cas(tagged_val, untagged_val);
        if !arm::is_lp(ARM) {
            arm::pwb_arm::<M, ARM>(cell);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::CountingNvm;
    use reclaim::Collector;

    type M = CountingNvm;

    fn cellv(v: u64) -> Box<PWord<M>> {
        Box::new(PWord::new(v))
    }

    struct Ctx {
        c: Collector,
    }
    impl Ctx {
        fn new() -> Self {
            nvm::tid::set_tid(0);
            Self { c: Collector::new() }
        }
    }

    /// Build a one-write, two-affect info over the given cells.
    #[allow(clippy::too_many_arguments)] // mirrors InfoFill's shape, test-only
    unsafe fn mk_info(
        a0: &PWord<M>,
        a0exp: u64,
        a1: &PWord<M>,
        a1exp: u64,
        w: &PWord<M>,
        old: u64,
        new: u64,
        del_mask: u8,
    ) -> *mut Info<M> {
        let info = Info::<M>::alloc();
        unsafe {
            Info::fill(
                info,
                &InfoFill {
                    optype: 1,
                    affect: &[(a0 as *const _ as u64, a0exp), (a1 as *const _ as u64, a1exp)],
                    write: &[(w as *const _ as u64, old, new)],
                    newset: &[],
                    del_mask,
                    presult: RES_TRUE,
                },
            )
        };
        info
    }

    #[test]
    fn invoker_completes_clean_run() {
        let _gate = crate::counters::gate_shared();
        let ctx = Ctx::new();
        let g = ctx.c.pin();
        let a0 = cellv(0);
        let a1 = cellv(0);
        let w = cellv(100);
        let info = unsafe { mk_info(&a0, 0, &a1, 0, &w, 100, 200, 0b10) };
        let out = unsafe { help::<M, 0>(info, true, &g) };
        assert_eq!(out, HelpOutcome::Done);
        assert_eq!(w.load(), 200, "write applied");
        assert_eq!(unsafe { &*info }.result.load(), RES_TRUE);
        // Cleanup untagged a0, a1 stays deletion-tagged.
        assert_eq!(a0.load(), tag::untagged(info as u64));
        assert_eq!(a1.load(), tag::tagged(info as u64));
        // installs: 1(RD) + 2(affect) — nothing released yet.
        assert_eq!(unsafe { &*info }.installs(), 3);
        unsafe { Info::release(info, 3, &g) };
    }

    #[test]
    fn help_is_idempotent() {
        let _gate = crate::counters::gate_shared();
        let ctx = Ctx::new();
        let g = ctx.c.pin();
        let a0 = cellv(0);
        let a1 = cellv(0);
        let w = cellv(100);
        let info = unsafe { mk_info(&a0, 0, &a1, 0, &w, 100, 200, 0b10) };
        assert_eq!(unsafe { help::<M, 0>(info, true, &g) }, HelpOutcome::Done);
        w.store(777); // someone else moved the world on

        // Re-execution (recovery): the tag CAS on a0 fails (the cell now
        // holds untagged(info) ≠ 0), and the completion check sees `result`
        // set — the operation already took effect, so help reports Done
        // WITHOUT re-running the write (Algorithm 1's completion check; an
        // invoker that mistook this for failure would re-initialize nodes
        // that are reachable).
        let out = unsafe { help::<M, 0>(info, true, &g) };
        assert_eq!(out, HelpOutcome::Done);
        assert_eq!(w.load(), 777, "idempotence: update not re-applied");
        assert_eq!(unsafe { &*info }.result.load(), RES_TRUE, "result survives");
        unsafe { Info::release(info, 3, &g) };
    }

    /// The completion check discriminates on `result`, not the cell value:
    /// a *foreign* value (a later operation's tag over our released cell)
    /// with `result` set is completion, with `result` unset it is failure.
    #[test]
    fn foreign_cell_value_is_completion_iff_result_set() {
        let _gate = crate::counters::gate_shared();
        let ctx = Ctx::new();
        let g = ctx.c.pin();
        // Completed op whose a0 was re-tagged by a later operation.
        let a0 = cellv(0);
        let a1 = cellv(0);
        let w = cellv(100);
        let info = unsafe { mk_info(&a0, 0, &a1, 0, &w, 100, 200, 0b10) };
        assert_eq!(unsafe { help::<M, 0>(info, true, &g) }, HelpOutcome::Done);
        a0.store(0xF0F0); // later op's value in the released cell
        w.store(777);
        assert_eq!(
            unsafe { help::<M, 0>(info, true, &g) },
            HelpOutcome::Done,
            "foreign value + result set = the operation completed"
        );
        assert_eq!(w.load(), 777, "update not re-applied");
        unsafe { Info::release(info, 3, &g) };

        // Fresh op whose a0 changed before any tag landed: genuine failure.
        let b0 = cellv(0xBAD0);
        let b1 = cellv(0);
        let w2 = cellv(100);
        let info2 = unsafe { mk_info(&b0, 0, &b1, 0, &w2, 100, 200, 0) };
        assert_eq!(
            unsafe { help::<M, 0>(info2, true, &g) },
            HelpOutcome::FailedAt(0),
            "foreign value + result unset = genuine failure"
        );
        assert_eq!(w2.load(), 100, "failed attempt applies nothing");
        unsafe { Info::release(info2, 3, &g) };
    }

    #[test]
    fn recovery_reexecution_mid_operation_completes() {
        let _gate = crate::counters::gate_shared();
        let ctx = Ctx::new();
        let g = ctx.c.pin();
        let a0 = cellv(0);
        let a1 = cellv(0);
        let w = cellv(100);
        let info = unsafe { mk_info(&a0, 0, &a1, 0, &w, 100, 200, 0b10) };
        // Simulate a crash after tagging both nodes but before the update:
        a0.store(tag::tagged(info as u64));
        a1.store(tag::tagged(info as u64));
        let out = unsafe { help::<M, 0>(info, true, &g) };
        assert_eq!(out, HelpOutcome::Done, "re-tagging treats tagged(info) as success");
        assert_eq!(w.load(), 200);
        // Releases happened for... no prior values (tag CAS saw res == tagged).
        assert_eq!(unsafe { &*info }.installs(), 3);
        unsafe { Info::release(info, 3, &g) };
    }

    #[test]
    fn failed_tag_backtracks_prefix() {
        let _gate = crate::counters::gate_shared();
        let ctx = Ctx::new();
        let g = ctx.c.pin();
        let a0 = cellv(0);
        let a1 = cellv(0xdead0); // does not match expected 0
        let w = cellv(100);
        let info = unsafe { mk_info(&a0, 0, &a1, 0, &w, 100, 200, 0b10) };
        let out = unsafe { help::<M, 0>(info, true, &g) };
        assert_eq!(out, HelpOutcome::FailedAt(1));
        assert_eq!(a0.load(), tag::untagged(info as u64), "prefix untagged");
        assert_eq!(a1.load(), 0xdead0, "conflicting cell untouched");
        assert_eq!(w.load(), 100, "update not performed");
        assert_eq!(unsafe { &*info }.result.load(), RES_BOT);
        unsafe { Info::release(info, 3, &g) };
    }

    #[test]
    fn helper_starts_at_second_element() {
        let _gate = crate::counters::gate_shared();
        let ctx = Ctx::new();
        let g = ctx.c.pin();
        let a0 = cellv(0);
        let a1 = cellv(0);
        let w = cellv(100);
        let info = unsafe { mk_info(&a0, 0, &a1, 0, &w, 100, 200, 0b10) };
        // Invoker tagged a0, then stalled; a helper picks it up.
        a0.store(tag::tagged(info as u64));
        let out = unsafe { help::<M, 0>(info, false, &g) };
        assert_eq!(out, HelpOutcome::Done);
        assert_eq!(w.load(), 200);
        assert_eq!(a0.load(), tag::untagged(info as u64), "helper's cleanup untags position 0");
        unsafe { Info::release(info, 3, &g) };
    }

    #[test]
    fn helper_failure_untags_position_zero() {
        let _gate = crate::counters::gate_shared();
        let ctx = Ctx::new();
        let g = ctx.c.pin();
        let a0 = cellv(0);
        let a1 = cellv(0xbeef0);
        let w = cellv(100);
        let info = unsafe { mk_info(&a0, 0, &a1, 0, &w, 100, 200, 0b10) };
        a0.store(tag::tagged(info as u64)); // invoker got this far, then died
        let out = unsafe { help::<M, 0>(info, false, &g) };
        assert_eq!(out, HelpOutcome::FailedAt(1));
        assert_eq!(a0.load(), tag::untagged(info as u64), "helper backtracks the invoker's tag");
        unsafe { Info::release(info, 3, &g) };
    }

    #[test]
    fn overwrite_install_releases_previous_info() {
        let _gate = crate::counters::gate_shared();
        let ctx = Ctx::new();
        let g = ctx.c.pin();
        // Old info sits untagged in a cell with one remaining reference.
        let old = Info::<M>::alloc();
        unsafe {
            Info::fill(
                old,
                &InfoFill {
                    optype: 1,
                    affect: &[(0x8, 0)], // dummy cell address, never dereferenced
                    write: &[],
                    newset: &[],
                    del_mask: 0,
                    presult: RES_TRUE,
                },
            )
        };
        // Manually model: 2 of its refs were already released; 1 cell ref + 1 RD... take 2.
        unsafe { Info::release(old, 1, &g) }; // now installs = 1: the cell below
        let a0 = cellv(tag::untagged(old as u64));
        let a1 = cellv(0);
        let w = cellv(1);
        let info = unsafe { mk_info(&a0, tag::untagged(old as u64), &a1, 0, &w, 1, 2, 0b10) };
        assert_eq!(unsafe { help::<M, 0>(info, true, &g) }, HelpOutcome::Done);
        // The winning tag CAS over `old`'s value released its last reference:
        // old has been retired (freed when the collector drains) — we can't
        // touch it; absence of double-free is checked by the collector drop.
        unsafe { Info::release(info, 3, &g) };
    }

    #[test]
    fn result_value_encoding_roundtrip() {
        let _gate = crate::counters::gate_shared();
        assert_eq!(val_of(res_val(0)), 0);
        assert_eq!(val_of(res_val(12345)), 12345);
        assert!(res_val(0) >= RES_VAL_BASE);
        assert_ne!(res_val(0), RES_BOT);
        assert_ne!(res_val(0), RES_EMPTY);
        // The largest encodable payload maps to u64::MAX without wrapping.
        assert_eq!(val_of(res_val(u64::MAX - RES_VAL_BASE)), u64::MAX - RES_VAL_BASE);
    }

    #[test]
    #[should_panic(expected = "exceeds the encodable range")]
    fn result_value_encoding_rejects_huge_payloads() {
        // Must panic in release builds too: a wrapped encoding would collide
        // with RES_EMPTY/RES_TRUE and recovery would report a wrong response.
        let _ = res_val(u64::MAX - RES_VAL_BASE + 1);
    }

    #[test]
    #[should_panic(expected = "reserved encoding")]
    fn result_value_decoding_rejects_reserved_words() {
        // The decoder guard is unconditional too: silently decoding
        // RES_EMPTY as payload 4-16 would hand recovery a wrong response.
        let _ = val_of(RES_EMPTY);
    }

    #[test]
    fn tuned_help_produces_fewer_syncs() {
        let _gate = crate::counters::gate_shared();
        let ctx = Ctx::new();
        let mk = |a0: &PWord<M>, a1: &PWord<M>, w: &PWord<M>| unsafe {
            mk_info(a0, 0, a1, 0, w, 100, 200, 0b10)
        };
        let (a0, a1, w) = (cellv(0), cellv(0), cellv(100));
        let info = mk(&a0, &a1, &w);
        let before = nvm::stats::snapshot();
        {
            let g = ctx.c.pin();
            unsafe { help::<M, 0>(info, true, &g) };
        }
        let paper = nvm::stats::snapshot().since(&before);

        let (b0, b1, v) = (cellv(0), cellv(0), cellv(100));
        let info2 = mk(&b0, &b1, &v);
        let before = nvm::stats::snapshot();
        {
            let g = ctx.c.pin();
            unsafe { help::<M, 1>(info2, true, &g) };
        }
        let tuned = nvm::stats::snapshot().since(&before);
        assert!(tuned.psync < paper.psync, "tuned {tuned:?} vs paper {paper:?}");
        let g = ctx.c.pin();
        unsafe { Info::release(info, 3, &g) };
        unsafe { Info::release(info2, 3, &g) };
    }
}
