//! Recoverable elimination stack: **direct tracking** on a Treiber stack,
//! combined with the recoverable exchanger for elimination (paper Sections 1
//! and 5: "the approach can be combined with a technique we call
//! direct-tracking … to get an elimination stack").
//!
//! Direct tracking (no descriptors):
//! * A push announces its node in `RD_q`, flushes it, links it with one CAS
//!   and persists the link before returning. Post-crash detection: the node
//!   is reachable, or its `popped_by` stamp is set (pushed then popped).
//! * A pop **claims** the top node by CASing its `popped_by` word from 0 to
//!   `pid+1` — the arbitration deciding which popper owns the removal across
//!   a crash — persists the claim, then unlinks (helping poppers unlink
//!   claimed nodes they encounter).
//!
//! Under contention on `top`, colliding pushes and pops first try to
//! **eliminate** through an [`RExchanger`]: a push offers `PUSH|v`, a pop
//! offers `POP`; a (push, pop) match transfers the value without touching
//! the stack; a mismatched pair simply retries.

use crate::counters;
use crate::exchanger::{ExchangeResult, RExchanger};
use crate::pool::{Pool, PoolCfg, PoolItem};
use nvm::{PWord, Persist, PersistWords};
use reclaim::Collector;

/// A stack node.
#[repr(C)]
pub struct Node<M: Persist> {
    val: PWord<M>,
    next: PWord<M>,
    /// 0 = live; `pid+1` = claimed by that popper.
    popped_by: PWord<M>,
}

unsafe impl<M: Persist> PersistWords<M> for Node<M> {
    fn each_word(&self, f: &mut dyn FnMut(&PWord<M>)) {
        f(&self.val);
        f(&self.next);
        f(&self.popped_by);
    }
}

impl<M: Persist> Node<M> {
    fn alloc(val: u64, next: u64) -> *mut Node<M> {
        counters::node_alloc();
        Box::into_raw(Box::new(Node {
            val: PWord::new(val),
            next: PWord::new(next),
            popped_by: PWord::new(0),
        }))
    }

    /// Re-initialize a pool-recycled node (clears the claim stamp).
    fn init(&self, val: u64, next: u64) {
        self.val.store(val);
        self.next.store(next);
        self.popped_by.store(0);
    }
}

impl<M: Persist> PoolItem for Node<M> {
    fn fresh() -> Self {
        counters::node_alloc();
        Node { val: PWord::new(0), next: PWord::new(0), popped_by: PWord::new(0) }
    }

    fn count_reuse() {
        counters::node_reuse();
    }
}

impl<M: Persist> Drop for Node<M> {
    fn drop(&mut self) {
        counters::node_free();
    }
}

const ELIM_PUSH: u64 = 1 << 62;
const ELIM_POP: u64 = 1 << 61;

/// Recoverable elimination stack (see module docs). Values must stay below
/// `2^61 - 16`.
pub struct RStack<M: Persist> {
    top: PWord<M>,
    exch: RExchanger<M>,
    // `collector` must drop before `node_pool` (drop-time drain recycles).
    collector: Collector,
    node_pool: Pool<Node<M>>,
    /// Spin budget offered to the elimination layer.
    elim_budget: usize,
}

unsafe impl<M: Persist> Send for RStack<M> {}
unsafe impl<M: Persist> Sync for RStack<M> {}

impl<M: Persist> Default for RStack<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Persist> RStack<M> {
    /// New empty stack.
    pub fn new() -> Self {
        Self::with_config(PoolCfg::default())
    }

    /// New empty stack with the given pool configuration (shared by the
    /// node pool and the elimination exchanger's descriptor pool).
    pub fn with_config(pool: PoolCfg) -> Self {
        let collector = Collector::new();
        let node_pool = Pool::new_for::<M>(pool.clone(), &collector);
        Self {
            top: PWord::new(0),
            exch: RExchanger::with_config(Collector::new(), pool),
            collector,
            node_pool,
            elim_budget: 200,
        }
    }

    /// Draw a node: pool hit (re-initialized), or heap in passthrough mode.
    #[inline]
    fn alloc_node(&self, val: u64, next: u64) -> *mut Node<M> {
        match self.node_pool.take() {
            Some(p) => {
                unsafe { (*p).init(val, next) };
                p
            }
            None => Node::alloc(val, next),
        }
    }

    /// Pushes `v`.
    pub fn push(&self, pid: usize, v: u64) {
        assert!(v < ELIM_POP - 16, "value too large");
        let g = self.collector.pin();
        let node = self.alloc_node(v, 0);
        unsafe {
            M::pwb_obj(&*node);
        }
        loop {
            let t = self.top.load();
            unsafe { (*node).next.store(t) };
            M::pwb(unsafe { &(*node).next });
            M::pfence();
            if self.top.cas(t, node as u64) == t {
                M::pwb(&self.top);
                M::psync();
                return;
            }
            // Contention: try to eliminate against a pop.
            if let ExchangeResult::Exchanged(other) =
                self.exch.exchange(pid, ELIM_PUSH | v, self.elim_budget)
            {
                if other & ELIM_POP != 0 {
                    // A pop took our value directly; the node was never
                    // published — straight back to the pool.
                    unsafe { self.node_pool.give(node, &g) };
                    drop(g);
                    return;
                }
                // push/push collision: no transfer happened for us — retry.
            }
        }
    }

    /// Pops; `None` when empty.
    pub fn pop(&self, pid: usize) -> Option<u64> {
        let g = self.collector.pin();
        loop {
            let t = self.top.load() as *mut Node<M>;
            if t.is_null() {
                return None;
            }
            let claimed = unsafe { (*t).popped_by.load() };
            if claimed != 0 {
                // Help unlink the claimed node, then retry.
                unsafe {
                    M::pbarrier(&(*t).popped_by);
                    let _ = self.top.cas(t as u64, (*t).next.load());
                }
                continue;
            }
            // Arbitration: claim before unlinking (exactly-once across crash).
            if unsafe { (*t).popped_by.cas(0, pid as u64 + 1) } == 0 {
                unsafe {
                    M::pbarrier(&(*t).popped_by);
                    let v = (*t).val.load();
                    if self.top.cas(t as u64, (*t).next.load()) == t as u64 {
                        M::pwb(&self.top);
                        self.node_pool.retire(t, &g);
                    }
                    M::psync();
                    return Some(v);
                }
            }
            // Lost the claim: try elimination against a push.
            if let ExchangeResult::Exchanged(other) =
                self.exch.exchange(pid, ELIM_POP, self.elim_budget)
            {
                if other & ELIM_PUSH != 0 {
                    return Some(other & !(ELIM_PUSH | ELIM_POP));
                }
            }
        }
    }

    /// Quiescent snapshot, top first.
    pub fn snapshot_vals(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        unsafe {
            let mut n = self.top.load() as *mut Node<M>;
            while !n.is_null() {
                if (*n).popped_by.load() == 0 {
                    out.push((*n).val.load());
                }
                n = (*n).next.load() as *mut Node<M>;
            }
        }
        out
    }
}

impl<M: Persist> Drop for RStack<M> {
    fn drop(&mut self) {
        let parked: std::collections::HashMap<usize, unsafe fn(*mut u8)> =
            self.collector.take_parked().into_iter().map(|(p, f)| (p as usize, f)).collect();
        unsafe {
            let mut n = self.top.load() as *mut Node<M>;
            while !n.is_null() {
                let next = (*n).next.load() as *mut Node<M>;
                if !parked.contains_key(&(n as usize)) {
                    drop(Box::from_raw(n));
                }
                n = next;
            }
            for (p, f) in parked {
                f(p as *mut u8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::CountingNvm;
    use std::sync::Arc;

    type S = RStack<CountingNvm>;

    #[test]
    fn lifo_semantics() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let s = S::new();
        assert_eq!(s.pop(0), None);
        s.push(0, 1);
        s.push(0, 2);
        s.push(0, 3);
        assert_eq!(s.pop(0), Some(3));
        assert_eq!(s.pop(0), Some(2));
        s.push(0, 4);
        assert_eq!(s.pop(0), Some(4));
        assert_eq!(s.pop(0), Some(1));
        assert_eq!(s.pop(0), None);
    }

    #[test]
    fn concurrent_push_pop_conserves_values() {
        let _gate = crate::counters::gate_shared();
        let s = Arc::new(S::new());
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = Arc::new(AtomicU64::new(0));
        let per = 500u64;
        let mut hs = Vec::new();
        for p in 0..2u64 {
            let s = Arc::clone(&s);
            hs.push(std::thread::spawn(move || {
                nvm::tid::set_tid(p as usize);
                for i in 0..per {
                    s.push(p as usize, 1 + p * per + i);
                }
            }));
        }
        for c in 0..2usize {
            let s = Arc::clone(&s);
            let sum = Arc::clone(&sum);
            hs.push(std::thread::spawn(move || {
                nvm::tid::set_tid(10 + c);
                let mut got = 0;
                let mut acc = 0u64;
                while got < per {
                    if let Some(v) = s.pop(10 + c) {
                        got += 1;
                        acc += v;
                    }
                }
                sum.fetch_add(acc, Ordering::Relaxed);
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), (1..=2 * per).sum::<u64>());
        let mut s = Arc::into_inner(s).unwrap();
        assert_eq!(s.snapshot_vals(), vec![]);
    }

    #[test]
    fn snapshot_order_is_lifo() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let mut s = S::new();
        for v in 1..=5u64 {
            s.push(0, v);
        }
        assert_eq!(s.snapshot_vals(), vec![5, 4, 3, 2, 1]);
    }
}
