//! Recoverable elimination stack: **direct tracking** on a Treiber stack,
//! combined with the recoverable exchanger for elimination (paper Sections 1
//! and 5: "the approach can be combined with a technique we call
//! direct-tracking … to get an elimination stack").
//!
//! Direct tracking (no descriptors): the per-process recovery word `RD_q`
//! names a **node** instead of an Info structure, annotated with
//! [`crate::tag::DIRECT`] so shared-recovery-area neighbours
//! ([`crate::store::Store`]) never misread it as a descriptor.
//!
//! * A **push** announces its node in `RD_q` (durably), links it with one
//!   CAS and persists the link before returning. Post-crash detection: the
//!   push took effect iff the node is reachable, or its `popped_by` stamp
//!   is set (pushed, then popped).
//! * A **pop** announces the observed top in `RD_q` (claim announcement,
//!   [`crate::tag::TAG`] set), then **claims** it by CASing its `popped_by`
//!   word from 0 to `pid+1` — the arbitration deciding which popper owns
//!   the removal across a crash — persists the claim, then unlinks
//!   (helping poppers unlink claimed nodes they encounter).
//!
//! The paper assumes garbage collection, under which a node named by some
//! `RD_q` is never reused. We emulate that root: a claimed node is retired
//! only on its claimant's *next* operation (when its `RD_q` has moved on),
//! and the retirement first scans the recovery area — a node still
//! announced by another process parks in a limbo list instead of
//! re-entering the pool, so no crash can observe a recycled announcement.
//! (Mapped mode: limbo blocks stay committed and the next attach sweeps
//! them.)
//!
//! Under contention on `top`, colliding pushes and pops first try to
//! **eliminate** through an [`RExchanger`]: a push offers `PUSH|v`, a pop
//! offers `POP`; a (push, pop) match transfers the value without touching
//! the stack; a mismatched pair simply retries. Elimination is *volatile*
//! (the exchanger lives on the process heap), so an eliminated transfer is
//! not detectable across a crash — the mapped backend disables elimination
//! ([`RStack::attach`] sets the budget to zero), and a push withdraws its
//! announcement before taking the elimination result.

use crate::counters;
use crate::engine::{res_val, val_of, RES_UNIT};
use crate::exchanger::{ExchangeResult, RExchanger};
use crate::pool::{Pool, PoolCfg, PoolItem};
use crate::recovery::{
    attach_standalone, release_prev, AttachEnv, AttachError, AttachSummary, MappedLayout, RecArea,
    Recovered, SlotOps,
};
use crate::tag;
use nvm::mapped::{MapError, MappedHeap, MappedNvm, DEFAULT_HEAP_BYTES};
use nvm::pad::CachePadded;
use nvm::{PWord, Persist, PersistWords, MAX_PROCS};
use reclaim::{Collector, Guard};
use std::cell::UnsafeCell;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Superblock structure-kind tag of a mapped `RStack`.
pub const KIND_STACK: u64 = 5;

/// A stack node.
#[repr(C)]
pub struct Node<M: Persist> {
    val: PWord<M>,
    next: PWord<M>,
    /// 0 = live; `pid+1` = claimed by that popper.
    popped_by: PWord<M>,
}

unsafe impl<M: Persist> PersistWords<M> for Node<M> {
    fn each_word(&self, f: &mut dyn FnMut(&PWord<M>)) {
        f(&self.val);
        f(&self.next);
        f(&self.popped_by);
    }
}

impl<M: Persist> Node<M> {
    fn alloc(val: u64, next: u64) -> *mut Node<M> {
        counters::node_alloc();
        Box::into_raw(Box::new(Node {
            val: PWord::new(val),
            next: PWord::new(next),
            popped_by: PWord::new(0),
        }))
    }

    /// Re-initialize a pool-recycled node (clears the claim stamp).
    fn init(&self, val: u64, next: u64) {
        self.val.store(val);
        self.next.store(next);
        self.popped_by.store(0);
    }
}

impl<M: Persist> PoolItem for Node<M> {
    fn fresh() -> Self {
        counters::node_alloc();
        Node { val: PWord::new(0), next: PWord::new(0), popped_by: PWord::new(0) }
    }

    fn count_reuse() {
        counters::node_reuse();
    }
}

impl<M: Persist> Drop for Node<M> {
    fn drop(&mut self) {
        counters::node_free();
    }
}

/// Reads the claim stamp (`popped_by`) of the direct-tracked node at `node`
/// — the word the recovery decision arbitrates on.
///
/// # Safety
/// `node` must be a whole-node span inside live memory (attach-time callers
/// span-validate it against the mapping first).
pub(crate) unsafe fn direct_stamp<M: Persist>(node: u64) -> u64 {
    unsafe { (*(node as *const Node<M>)).popped_by.peek() }
}

/// Reads the payload value of the direct-tracked node at `node`.
///
/// # Safety
/// As [`direct_stamp`].
pub(crate) unsafe fn direct_val<M: Persist>(node: u64) -> u64 {
    unsafe { (*(node as *const Node<M>)).val.peek() }
}

const ELIM_PUSH: u64 = 1 << 62;
const ELIM_POP: u64 = 1 << 61;

/// Where the stack's `top` cell lives: owned on the process heap, or
/// borrowed from the mapped backend's persistent arena (a root block that
/// must survive the process).
enum TopStore<M: Persist> {
    Owned(Box<PWord<M>>),
    Arena(*const PWord<M>),
}

impl<M: Persist> std::ops::Deref for TopStore<M> {
    type Target = PWord<M>;
    #[inline]
    fn deref(&self) -> &PWord<M> {
        match self {
            TopStore::Owned(b) => b,
            // SAFETY: the arena root block outlives the stack (which keeps
            // its MappedHeap alive).
            TopStore::Arena(p) => unsafe { &**p },
        }
    }
}

/// Recoverable elimination stack (see module docs). Values must stay below
/// `2^61 - 16`.
pub struct RStack<M: Persist> {
    top: TopStore<M>,
    /// Per-process recovery words (`RD_q`/`CP_q`) used for direct tracking.
    rec: RecArea<M>,
    exch: RExchanger<M>,
    // `collector` must drop before `node_pool` (drop-time drain recycles).
    collector: Collector,
    node_pool: Pool<Node<M>>,
    /// Deferred retirement: the node each process claimed with its *last*
    /// pop, retired on that process's next operation (once `RD_q` no longer
    /// names it). Each slot is touched only by its owning process.
    pending: Vec<CachePadded<UnsafeCell<*mut Node<M>>>>,
    /// Unlinked nodes that could not be recycled because some `RD_q` still
    /// announces them (or because a helper unlinked them on the claimant's
    /// behalf). Freed at drop; in mapped mode the next attach sweeps them.
    limbo: Mutex<Vec<*mut Node<M>>>,
    /// Spin budget offered to the elimination layer (0 disables it — the
    /// mapped backend, where elimination would not be detectable).
    elim_budget: usize,
    /// Mapped mode: the persistent heap everything lives in (`Some`
    /// suppresses drop-time teardown).
    mapped: Option<Arc<MappedHeap>>,
}

unsafe impl<M: Persist> Send for RStack<M> {}
unsafe impl<M: Persist> Sync for RStack<M> {}

impl<M: Persist> Default for RStack<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Persist> RStack<M> {
    /// New empty stack.
    pub fn new() -> Self {
        Self::with_config(PoolCfg::default())
    }

    /// New empty stack with the given pool configuration (shared by the
    /// node pool and the elimination exchanger's descriptor pool).
    pub fn with_config(pool: PoolCfg) -> Self {
        let collector = Collector::new();
        // The exchanger is volatile machinery: its descriptors never live
        // in a persistent arena even when the nodes do.
        let exch_pool = if pool.arena.is_some() { PoolCfg::default() } else { pool.clone() };
        let node_pool = Pool::new_for::<M>(pool, &collector);
        Self {
            top: TopStore::Owned(Box::new(PWord::new(0))),
            rec: RecArea::new(),
            exch: RExchanger::with_config(Collector::new(), exch_pool),
            collector,
            node_pool,
            pending: (0..MAX_PROCS)
                .map(|_| CachePadded::new(UnsafeCell::new(std::ptr::null_mut())))
                .collect(),
            limbo: Mutex::new(Vec::new()),
            elim_budget: 200,
            mapped: None,
        }
    }

    /// Draw a node: pool hit (re-initialized), or heap in passthrough mode.
    #[inline]
    fn alloc_node(&self, val: u64, next: u64) -> *mut Node<M> {
        match self.node_pool.take() {
            Some(p) => {
                unsafe { (*p).init(val, next) };
                p
            }
            None => Node::alloc(val, next),
        }
    }

    /// Whether any *other* process's `RD_q` still announces `n` (push or
    /// claim announcement). Such a node must not re-enter circulation: its
    /// claim stamp is what that process's recovery will read.
    fn announced_elsewhere(&self, pid: usize, n: *mut Node<M>) -> bool {
        let mut found = false;
        for q in 0..MAX_PROCS {
            if q == pid {
                continue;
            }
            let rd = self.rec.published(q);
            if tag::is_direct(rd) && tag::addr_of(rd) == n as u64 {
                found = true;
            }
        }
        found
    }

    /// Retires the node this process's previous pop claimed, now that its
    /// `RD_q` has moved on (deferred retirement — the GC-root emulation of
    /// the module docs).
    fn flush_pending(&self, pid: usize, g: &Guard<'_>) {
        // SAFETY: each pending slot is touched only by its owning process.
        let slot = unsafe { &mut *self.pending[pid].get() };
        let n = *slot;
        if n.is_null() {
            return;
        }
        *slot = std::ptr::null_mut();
        if self.announced_elsewhere(pid, n) {
            self.limbo.lock().unwrap().push(n);
        } else {
            // SAFETY: the node was claimed and unlinked by this process and
            // no RD_q names it any more; retired exactly once (the slot is
            // cleared above).
            unsafe { self.node_pool.retire(n, g) };
        }
    }

    /// Pushes `v`.
    pub fn push(&self, pid: usize, v: u64) {
        assert!(v < ELIM_POP - 16, "value too large");
        let g = self.collector.pin();
        let prev = self.rec.begin::<0>(pid);
        unsafe { release_prev::<M>(prev, &g) };
        self.flush_pending(pid, &g);
        let node = self.alloc_node(v, 0);
        unsafe {
            M::pwb_obj(&*node);
        }
        // Direct tracking: announce the node durably BEFORE it can become
        // reachable, so a crash after the link CAS finds RD_q naming it.
        self.rec.publish(pid, node as u64 | tag::DIRECT);
        loop {
            let t = (*self.top).load();
            unsafe { (*node).next.store(t) };
            M::pwb(unsafe { &(*node).next });
            M::pfence();
            if (*self.top).cas(t, node as u64) == t {
                M::pwb(&self.top);
                M::psync();
                return;
            }
            // Contention: try to eliminate against a pop.
            if self.elim_budget > 0 {
                if let ExchangeResult::Exchanged(other) =
                    self.exch.exchange(pid, ELIM_PUSH | v, self.elim_budget)
                {
                    if other & ELIM_POP != 0 {
                        // A pop took our value directly; the node was never
                        // published — withdraw the announcement, then
                        // straight back to the pool. (The elimination itself
                        // is volatile and not detectable; see module docs.)
                        self.rec.publish(pid, 0);
                        unsafe { self.node_pool.give(node, &g) };
                        return;
                    }
                    // push/push collision: no transfer happened — retry.
                }
            }
        }
    }

    /// Pops; `None` when empty.
    pub fn pop(&self, pid: usize) -> Option<u64> {
        let g = self.collector.pin();
        let prev = self.rec.begin::<0>(pid);
        unsafe { release_prev::<M>(prev, &g) };
        self.flush_pending(pid, &g);
        loop {
            let t = (*self.top).load() as *mut Node<M>;
            if t.is_null() {
                // The empty response is not tracked (RD_q stays Null):
                // restarting an empty pop is the weaker guarantee direct
                // tracking gives reads.
                return None;
            }
            let claimed = unsafe { (*t).popped_by.load() };
            if claimed != 0 {
                // Help unlink the claimed node, then retry. The claimant
                // (or the limbo list) owns its memory.
                unsafe {
                    M::pbarrier(&(*t).popped_by);
                    if (*self.top).cas(t as u64, (*t).next.load()) == t as u64 {
                        self.limbo.lock().unwrap().push(t);
                    }
                }
                continue;
            }
            // Announce the claim target durably BEFORE the claim CAS: the
            // stamp is the arbitration recovery reads through RD_q.
            self.rec.publish(pid, t as u64 | tag::DIRECT | tag::TAG);
            // Arbitration: claim before unlinking (exactly-once across crash).
            if unsafe { (*t).popped_by.cas(0, pid as u64 + 1) } == 0 {
                unsafe {
                    M::pbarrier(&(*t).popped_by);
                    let v = (*t).val.load();
                    if (*self.top).cas(t as u64, (*t).next.load()) == t as u64 {
                        M::pwb(&self.top);
                        // Deferred retirement: RD_q still names `t` (its
                        // stamp is this pop's durable receipt), so it parks
                        // in the pending slot until our next operation.
                        // SAFETY: slot owned by this process.
                        *self.pending[pid].get() = t;
                    }
                    // else: a helper unlinked it and parked it in limbo.
                    M::psync();
                    return Some(v);
                }
            }
            // Lost the claim: try elimination against a push.
            if self.elim_budget > 0 {
                if let ExchangeResult::Exchanged(other) =
                    self.exch.exchange(pid, ELIM_POP, self.elim_budget)
                {
                    if other & ELIM_PUSH != 0 {
                        return Some(other & !(ELIM_PUSH | ELIM_POP));
                    }
                }
            }
        }
    }

    /// Whether `node` is reachable from `top` (quiescent or EBR-protected).
    fn reachable(&self, node: u64) -> bool {
        unsafe {
            let mut n = (*self.top).load() as *mut Node<M>;
            while !n.is_null() {
                if n as u64 == node {
                    return true;
                }
                n = (*n).next.load() as *mut Node<M>;
            }
        }
        false
    }

    /// The direct-tracking recovery decision for `pid`'s last announced
    /// operation (see module docs): claims arbitrate on the stamp, push
    /// announcements on reachability-or-stamp.
    fn decide(&self, pid: usize) -> Recovered {
        let (cp, rd) = self.rec.read(pid);
        if cp != 1 || !tag::is_direct(rd) || tag::addr_of(rd) == 0 {
            return Recovered::Restart;
        }
        let node = tag::addr_of(rd);
        // SAFETY: announced nodes are kept alive by the RD_q root (deferred
        // retirement / limbo / attach-time census).
        let stamp = unsafe { direct_stamp::<M>(node) };
        if tag::is_tagged(rd) {
            if stamp == pid as u64 + 1 {
                Recovered::Completed(res_val(unsafe { direct_val::<M>(node) }))
            } else {
                Recovered::Restart
            }
        } else if stamp != 0 || self.reachable(node) {
            Recovered::Completed(RES_UNIT)
        } else {
            Recovered::Restart
        }
    }

    /// `Push.Recover`: no-op when the announced node provably entered the
    /// stack (reachable, or already popped), re-invokes otherwise.
    pub fn recover_push(&self, pid: usize, v: u64) {
        match self.decide(pid) {
            Recovered::Completed(_) => {}
            Recovered::Restart => self.push(pid, v),
        }
    }

    /// `Pop.Recover`: returns the claimed node's value when the claim stamp
    /// proves this process's pop took effect, re-invokes otherwise. (An
    /// *empty* pop is not tracked and always restarts — the read-only
    /// caveat of direct tracking.)
    pub fn recover_pop(&self, pid: usize) -> Option<u64> {
        match self.decide(pid) {
            Recovered::Completed(enc) if enc != RES_UNIT => Some(val_of(enc)),
            _ => self.pop(pid),
        }
    }

    /// Quiescent splice of every claimed node out of the chain (the
    /// stack-side scrub: a crash can leave claimed-but-not-unlinked nodes
    /// that normal pops would heal lazily). Spliced nodes park in limbo —
    /// a claimant's recovery may still read their stamp through `RD_q`.
    pub fn scrub(&self) {
        unsafe {
            // Claimed prefix.
            loop {
                let t = (*self.top).load() as *mut Node<M>;
                if t.is_null() || (*t).popped_by.load() == 0 {
                    break;
                }
                (*self.top).store((*t).next.load());
                self.limbo.lock().unwrap().push(t);
            }
            M::pwb(&self.top);
            // Interior claimed nodes.
            let mut prev = (*self.top).load() as *mut Node<M>;
            while !prev.is_null() {
                let n = (*prev).next.load() as *mut Node<M>;
                if n.is_null() {
                    break;
                }
                if (*n).popped_by.load() != 0 {
                    (*prev).next.store((*n).next.load());
                    M::pwb(&(*prev).next);
                    self.limbo.lock().unwrap().push(n);
                } else {
                    prev = n;
                }
            }
            M::psync();
        }
    }

    /// Quiescent snapshot, top first.
    pub fn snapshot_vals(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        unsafe {
            let mut n = (*self.top).load() as *mut Node<M>;
            while !n.is_null() {
                if (*n).popped_by.load() == 0 {
                    out.push((*n).val.load());
                }
                n = (*n).next.load() as *mut Node<M>;
            }
        }
        out
    }
}

impl RStack<MappedNvm> {
    /// Attaches (or creates) a detectably recoverable stack backed by the
    /// file-backed persistent heap at `path`, running the generic restart
    /// driver ([`crate::recovery::attach_standalone`]) on an existing heap.
    /// Elimination is disabled in mapped mode (volatile, not detectable).
    /// The calling thread must be registered (`nvm::tid::set_tid`).
    pub fn attach(path: impl AsRef<Path>) -> Result<(Self, AttachSummary), AttachError> {
        Self::attach_sized(path, DEFAULT_HEAP_BYTES)
    }

    /// [`RStack::attach`] with an explicit heap size for creation.
    pub fn attach_sized(
        path: impl AsRef<Path>,
        heap_bytes: usize,
    ) -> Result<(Self, AttachSummary), AttachError> {
        attach_standalone::<Self>(path.as_ref(), (), heap_bytes)
    }

    /// The persistent heap backing this stack.
    pub fn heap(&self) -> &Arc<MappedHeap> {
        self.mapped.as_ref().expect("mapped-mode stack")
    }

    /// Whole-node span check against the backing heap.
    fn in_node(&self, a: u64) -> bool {
        let heap = self.heap();
        a & 7 == 0 && heap.contains_span(a as usize, std::mem::size_of::<Node<MappedNvm>>())
    }
}

impl MappedLayout for RStack<MappedNvm> {
    const KIND: u64 = KIND_STACK;
    const KIND_NAME: &'static str = "stack";
    type Cfg = ();

    fn cfg_word(_cfg: ()) -> u64 {
        0x53
    }

    fn root_bytes(_cfg: ()) -> usize {
        8 // the top cell
    }

    fn open(env: &AttachEnv, _cfg: (), root: *mut u8) -> Result<Self, AttachError> {
        let collector = env.collector();
        let node_pool = Pool::new_for::<MappedNvm>(env.pool_cfg(), &collector);
        Ok(Self {
            top: TopStore::Arena(root as *const PWord<MappedNvm>),
            rec: env.rec_area(),
            exch: RExchanger::with_config(Collector::new(), PoolCfg::default()),
            collector,
            node_pool,
            pending: (0..MAX_PROCS)
                .map(|_| CachePadded::new(UnsafeCell::new(std::ptr::null_mut())))
                .collect(),
            limbo: Mutex::new(Vec::new()),
            elim_budget: 0, // elimination is volatile: not detectable
            mapped: Some(Arc::clone(&env.heap)),
        })
    }
}

impl SlotOps for RStack<MappedNvm> {
    fn validate_image(&self, _infos: &mut HashSet<u64>) -> Result<(), MapError> {
        // Direct tracking references no descriptors; validate the chain.
        let mut budget = self.heap().bump_granules() + 4;
        let mut n = (*self.top).peek();
        while n != 0 {
            if !self.in_node(n) {
                return Err(MapError::CorruptPointer { addr: n });
            }
            if budget == 0 {
                return Err(MapError::CorruptPointer { addr: n });
            }
            budget -= 1;
            // SAFETY: whole-node span just validated.
            n = unsafe { (*(n as *const Node<MappedNvm>)).next.peek() };
        }
        Ok(())
    }

    fn valid_install(&self, addr: u64) -> bool {
        self.in_node(addr)
    }

    fn try_scrub(&self) -> Result<(), AttachError> {
        self.scrub();
        Ok(())
    }

    unsafe fn census(&self, live: &mut HashSet<usize>, _info_refs: &mut HashMap<usize, u32>) {
        // SAFETY: quiescent exclusive access post-scrub (caller).
        unsafe {
            let mut n = (*self.top).peek() as *mut Node<MappedNvm>;
            while !n.is_null() {
                live.insert(n as usize);
                n = (*n).next.peek() as *mut Node<MappedNvm>;
            }
        }
        // Limbo blocks (claimed nodes the scrub spliced out) stay live only
        // if some RD_q names them — the driver adds those; the rest are
        // swept here by omission.
    }

    fn each_cached(&mut self, f: &mut dyn FnMut(usize)) {
        self.node_pool.each_idle(|p| f(p as usize));
    }

    fn direct_reachable(&self, addr: u64) -> bool {
        self.reachable(addr)
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send + Sync> {
        self
    }
}

impl<M: Persist> Drop for RStack<M> {
    fn drop(&mut self) {
        if self.mapped.is_some() {
            // Mapped mode: the arena is the durable state; the pool returns
            // its cache to the persistent free list on drop.
            return;
        }
        let parked: std::collections::HashMap<usize, unsafe fn(*mut u8)> =
            self.collector.take_parked().into_iter().map(|(p, f)| (p as usize, f)).collect();
        unsafe {
            let mut n = (*self.top).load() as *mut Node<M>;
            while !n.is_null() {
                let next = (*n).next.load() as *mut Node<M>;
                if !parked.contains_key(&(n as usize)) {
                    drop(Box::from_raw(n));
                }
                n = next;
            }
            // Unlinked nodes waiting in pending slots / limbo are disjoint
            // from the chain and from each other; free each exactly once.
            for slot in &self.pending {
                let p = *slot.get();
                if !p.is_null() && !parked.contains_key(&(p as usize)) {
                    drop(Box::from_raw(p));
                }
            }
            for p in self.limbo.lock().unwrap().drain(..) {
                if !parked.contains_key(&(p as usize)) {
                    drop(Box::from_raw(p));
                }
            }
            for (p, f) in parked {
                f(p as *mut u8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::CountingNvm;
    use std::sync::Arc;

    type S = RStack<CountingNvm>;

    #[test]
    fn lifo_semantics() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let s = S::new();
        assert_eq!(s.pop(0), None);
        s.push(0, 1);
        s.push(0, 2);
        s.push(0, 3);
        assert_eq!(s.pop(0), Some(3));
        assert_eq!(s.pop(0), Some(2));
        s.push(0, 4);
        assert_eq!(s.pop(0), Some(4));
        assert_eq!(s.pop(0), Some(1));
        assert_eq!(s.pop(0), None);
    }

    #[test]
    fn concurrent_push_pop_conserves_values() {
        let _gate = crate::counters::gate_shared();
        let s = Arc::new(S::new());
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = Arc::new(AtomicU64::new(0));
        let per = 500u64;
        let mut hs = Vec::new();
        for p in 0..2u64 {
            let s = Arc::clone(&s);
            hs.push(std::thread::spawn(move || {
                nvm::tid::set_tid(p as usize);
                for i in 0..per {
                    s.push(p as usize, 1 + p * per + i);
                }
            }));
        }
        for c in 0..2usize {
            let s = Arc::clone(&s);
            let sum = Arc::clone(&sum);
            hs.push(std::thread::spawn(move || {
                nvm::tid::set_tid(10 + c);
                let mut got = 0;
                let mut acc = 0u64;
                while got < per {
                    if let Some(v) = s.pop(10 + c) {
                        got += 1;
                        acc += v;
                    }
                }
                sum.fetch_add(acc, Ordering::Relaxed);
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), (1..=2 * per).sum::<u64>());
        let mut s = Arc::into_inner(s).unwrap();
        assert_eq!(s.snapshot_vals(), vec![]);
    }

    #[test]
    fn snapshot_order_is_lifo() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let mut s = S::new();
        for v in 1..=5u64 {
            s.push(0, v);
        }
        assert_eq!(s.snapshot_vals(), vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn recovery_without_crash_behaves_like_invocation() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let mut s = S::new();
        // Nothing announced: recovery re-invokes.
        s.recover_push(0, 7);
        assert_eq!(s.snapshot_vals(), vec![7]);
        // Crash "just after" the completed push: the node is reachable, so
        // recovery must NOT push again.
        s.recover_push(0, 7);
        assert_eq!(s.snapshot_vals(), vec![7], "completed push must not re-apply");
        // Crash "just after" a completed pop: the claim stamp names us, so
        // recovery returns the same value without popping twice.
        s.push(0, 9);
        assert_eq!(s.pop(0), Some(9));
        assert_eq!(s.recover_pop(0), Some(9));
        assert_eq!(s.snapshot_vals(), vec![7], "completed pop must not re-apply");
        // A pushed-then-popped announced node: stamp set ⇒ push completed.
        // (pid 1 pushes, pid 0 pops it, pid 1 recovers its push.)
        s.push(1, 11);
        assert_eq!(s.pop(0), Some(11));
        s.recover_push(1, 11);
        assert_eq!(s.snapshot_vals(), vec![7], "popped push must not re-apply");
    }

    #[test]
    fn mapped_attach_stack_preserves_contents_across_detach() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let path = std::env::temp_dir().join(format!(
            "isb_stack_{}_{}.heap",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let (s, r) = RStack::<nvm::MappedNvm>::attach_sized(&path, 1 << 21).unwrap();
            assert!(r.heap.created);
            for v in 1..=40u64 {
                s.push(0, v);
            }
            assert_eq!(s.pop(0), Some(40));
        }
        {
            let (mut s, r) = RStack::<nvm::MappedNvm>::attach_sized(&path, 1 << 21).unwrap();
            assert!(!r.heap.created);
            assert_eq!(s.snapshot_vals(), (1..=39).rev().collect::<Vec<_>>());
            assert_eq!(s.pop(0), Some(39));
            s.push(0, 99);
        }
        {
            let (mut s, _) = RStack::<nvm::MappedNvm>::attach_sized(&path, 1 << 21).unwrap();
            let mut want: Vec<u64> = (1..=38).rev().collect();
            want.insert(0, 99);
            assert_eq!(s.snapshot_vals(), want);
        }
        let _ = std::fs::remove_file(&path);
    }
}
