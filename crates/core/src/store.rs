//! Multi-structure persistent store: one [`MappedHeap`], many **named**
//! detectably recoverable structures.
//!
//! The mapped backend's per-structure `attach(path)` dedicates a whole heap
//! file to one structure. Real persistent-memory pools (memento's typed
//! pool roots, PAPERS.md) host *several* root objects per pool; this module
//! is that shape for the ISB stack:
//!
//! * a **catalog** root block maps names to `(kind, cfg, root block)`
//!   entries ([`nvm::mapped::CatalogEntry`]; entry creation stamps the kind
//!   word last, so a torn creation leaves an empty slot plus an orphaned —
//!   and swept — root block, never a half-valid entry);
//! * **one shared recovery area** serves every structure: the tracking
//!   model allows a single pending operation per process, regardless of
//!   which structure it touches, so `RD_q`/`CP_q` are per-*process*, not
//!   per-structure (descriptor hand-over across structures routes through
//!   one shared Info pool);
//! * attach-time recovery is the same generic driver the standalone path
//!   uses ([`crate::recovery::finish_attach`]): validation, one Op-Recover
//!   replay over the shared area (descriptor entries and the stack's
//!   [`crate::tag::DIRECT`] entries alike), per-structure scrub, and a
//!   census/sweep computed over the **union** of every entry's live set.
//!
//! ```no_run
//! use isb::store::Store;
//!
//! nvm::tid::set_tid(0);
//! let store = Store::open("/tmp/app.heap").unwrap();
//! let users = store.hashmap::<0>("users", 8).unwrap();
//! let jobs = store.queue::<0>("jobs").unwrap();
//! users.insert(0, 42);
//! jobs.enqueue(0, 7);
//! // After a kill, Store::open replays recovery for every structure and
//! // store.summary().decision(pid) resolves the in-flight operation.
//! ```

use crate::bst::RBst;
use crate::engine::Info;
use crate::hashmap::RHashMap;
use crate::list::RList;
use crate::queue::RQueue;
use crate::recovery::{
    finish_attach, recover_dead_pid_with, rootkeys, AttachEnv, AttachError, AttachSummary,
    MappedLayout, RecArea, SlotOps,
};
use crate::resptable::ResponseTable;
use crate::stack::RStack;
use nvm::mapped::{
    CatalogEntry, LeaseOutcome, MapError, MappedHeap, MappedNvm, DEFAULT_HEAP_BYTES,
};
use reclaim::Collector;
use std::any::Any;
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Superblock structure-kind tag of a multi-structure store heap.
pub const KIND_STORE: u64 = 6;

/// A constructed, type-erased catalog entry.
struct Entry {
    kind: u64,
    cfg: u64,
    handle: Arc<dyn Any + Send + Sync>,
}

/// One mapped heap hosting many named recoverable structures (see module
/// docs). Handles returned by the typed accessors are `Arc`s that keep the
/// heap alive independently of the `Store`.
pub struct Store {
    heap: Arc<MappedHeap>,
    rec_base: *const u8,
    info_pool: crate::pool::Pool<Info<MappedNvm>>,
    catalog: *mut u8,
    /// Shared cross-process epoch region (null on an exclusive heap): every
    /// structure's collector attaches here, forming one epoch domain across
    /// processes.
    epochs: *mut u8,
    entries: Mutex<HashMap<String, Entry>>,
    summary: AttachSummary,
    /// The KV-service response table hosted by this heap (always present;
    /// ~20 KiB). Validated/healed by the single-owner attach, left
    /// untouched by joiners.
    resptab: ResponseTable,
}

// SAFETY: the raw pointers are into the heap mapping, which `heap` keeps
// alive; all mutation goes through the entries mutex or the (internally
// synchronized) catalog/allocator.
unsafe impl Send for Store {}
unsafe impl Sync for Store {}

impl Store {
    /// Opens (or creates, at [`DEFAULT_HEAP_BYTES`]) the store heap at
    /// `path`, constructing every cataloged structure and running the full
    /// generic restart-recovery sequence over the union of them. The
    /// calling thread must be registered ([`nvm::tid::set_tid`]); one
    /// process attaches a heap at a time.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, AttachError> {
        Self::open_sized(path, DEFAULT_HEAP_BYTES)
    }

    /// [`Store::open`] with an explicit heap size for creation (ignored
    /// when the heap already exists).
    pub fn open_sized(path: impl AsRef<Path>, heap_bytes: usize) -> Result<Self, AttachError> {
        let heap = MappedHeap::open(path.as_ref(), heap_bytes)?;
        Self::attach_heap(heap)
    }

    /// Opens the store heap at `path` for **shared multi-process** use
    /// (at [`DEFAULT_HEAP_BYTES`] on creation): up to
    /// [`nvm::mapped::PART_SLOTS`] processes attach the same heap
    /// concurrently. The *initial* attacher (file absent, or no live
    /// participant registered) runs the full restart-recovery sequence
    /// under the heap file's attach lock before admitting joiners; a
    /// *joiner* adopts the already-recovered image without replaying.
    ///
    /// Every thread of a shared-mode process must register a tid inside the
    /// process's participant band ([`MappedHeap::tid_band`] of
    /// [`MappedHeap::my_participant`]) so recovery slots, epoch announce
    /// words and allocator caches stay per-process disjoint.
    pub fn open_shared(path: impl AsRef<Path>) -> Result<Self, AttachError> {
        Self::open_shared_sized(path, DEFAULT_HEAP_BYTES)
    }

    /// [`Store::open_shared`] with an explicit creation size.
    pub fn open_shared_sized(
        path: impl AsRef<Path>,
        heap_bytes: usize,
    ) -> Result<Self, AttachError> {
        Self::open_shared_with(path, heap_bytes, nvm::liveness::default_probe())
    }

    /// [`Store::open_shared`] with an injected pid-liveness probe (tests
    /// drive "falsely dead" / pid-reuse verdicts through this).
    pub fn open_shared_with(
        path: impl AsRef<Path>,
        heap_bytes: usize,
        live: Arc<dyn nvm::liveness::PidLiveness>,
    ) -> Result<Self, AttachError> {
        let heap = MappedHeap::open_shared_with(path.as_ref(), heap_bytes, live)?;
        if heap.report().joined {
            return Self::join_shared(heap);
        }
        // Initial attacher: full recovery runs while the attach flock is
        // still held, so joiners only ever see a recovered, serviceable
        // image. Release it even when recovery fails — a wedged lock would
        // otherwise block every future open until this process exits.
        let store = Self::attach_heap(Arc::clone(&heap));
        heap.release_attach_lock();
        store
    }

    /// The common single-owner attach body: construct every cataloged
    /// entry, then (unless fresh) run the full recovery sequence. Works for
    /// exclusive heaps and for the shared-mode *initial* attacher (which at
    /// this point is the sole live participant, serialized by the attach
    /// flock).
    fn attach_heap(heap: Arc<MappedHeap>) -> Result<Self, AttachError> {
        let fresh = heap.kind() == 0;
        if !fresh && heap.kind() != KIND_STORE {
            return Err(AttachError::WrongKind {
                name: String::new(),
                expected: KIND_STORE,
                found: heap.kind(),
            });
        }
        let (rec_base, _) =
            heap.root_alloc(rootkeys::RECAREA, RecArea::<MappedNvm>::slots_bytes())?;
        heap.validate_rec_geometry(
            nvm::MAX_PROCS as u64,
            crate::recovery::ARENA_SLOT_STRIDE as u64,
        )?;
        let catalog = heap.catalog_root(rootkeys::CATALOG)?;
        let mut env = AttachEnv::new(Arc::clone(&heap), rec_base);
        let epochs = if heap.is_shared() {
            let (e, _) = heap.root_alloc(rootkeys::EPOCHS, reclaim::shared_region_bytes())?;
            // SAFETY: committed root block of the required size; we are the
            // sole live participant (attach flock held), so re-initialising
            // over a prior run's stale pins is safe — and required, since a
            // SIGKILLed fleet leaves announce words pinned forever.
            unsafe { Collector::init_shared_region(e) };
            env.set_epochs(e);
            e
        } else {
            std::ptr::null_mut()
        };
        // The KV response table rides every store heap: allocate (or
        // re-open) and validate/heal it here, where access is exclusive
        // (attach flock held / exclusive heap). In-flight op-ID intents are
        // resolved below, once the replay decisions exist.
        let (resptab, _heal) = ResponseTable::attach_excl(&heap)?;
        let resptab_base =
            heap.root_get(rootkeys::RESPTAB).expect("attach_excl registered the root") as usize;
        // SAFETY: `catalog` is this heap's committed catalog block.
        let cataloged = unsafe { heap.catalog_entries(catalog) }?;
        // Construct every existing entry (kind-dispatched) so recovery can
        // run over the complete structure set.
        let mut metas: Vec<CatalogEntry> = Vec::new();
        let mut slots: Vec<Box<dyn SlotOps>> = Vec::new();
        for e in cataloged {
            slots.push(construct_entry(&env, &e)?);
            metas.push(e);
        }
        let summary = if fresh {
            heap.set_kind(KIND_STORE);
            AttachSummary { heap: *heap.report(), recovered: Vec::new(), swept: 0 }
        } else {
            let rec = env.rec_area();
            let mut extra_live = vec![rec_base as usize, catalog as usize, resptab_base];
            if !epochs.is_null() {
                extra_live.push(epochs as usize);
            }
            extra_live.extend(metas.iter().map(|e| e.root as usize));
            // SAFETY: quiescent attach (no structure operation runs); the
            // driver may fan validation/census out over attach-scoped worker
            // threads per structure work unit. `slots` covers every
            // structure in the heap (the complete catalog), `extra_live`
            // every root/metadata block.
            let (recovered, swept) = unsafe {
                finish_attach(&heap, &rec, &mut slots, &extra_live, env.info_pool().handle())?
            };
            AttachSummary { heap: *heap.report(), recovered, swept }
        };
        // Resolve every in-flight op-ID against the replay's per-pid
        // decisions: Completed finalizes the response into the client's
        // dedup slot, Restart clears the intent so the retry re-applies.
        // Idempotent — a crash mid-resolution leaves the rec slots intact
        // (the attach replay never clears them), so the next attach
        // recomputes the same decisions and resumes.
        let mut resolved = 0u64;
        for pid in 0..nvm::MAX_PROCS {
            if resptab.resolve(pid, summary.decision(pid)).is_some() {
                resolved += 1;
            }
        }
        if resolved > 0 {
            nvm::stats::count_kv_intents_resolved(resolved);
        }
        let entries = metas
            .into_iter()
            .zip(slots)
            .map(|(e, s)| {
                (e.name, Entry { kind: e.kind, cfg: e.cfg, handle: Arc::from(s.into_any()) })
            })
            .collect();
        Ok(Self {
            heap,
            rec_base,
            info_pool: env.info_pool(),
            catalog,
            epochs,
            entries: Mutex::new(entries),
            summary,
            resptab,
        })
    }

    /// A joiner's attach: the heap is live and already recovered (the
    /// initial attacher held the attach lock through recovery), so this
    /// builds per-process volatile state only — no replay, no scrub, no
    /// sweep — and adopts every cataloged structure.
    fn join_shared(heap: Arc<MappedHeap>) -> Result<Self, AttachError> {
        if heap.kind() != KIND_STORE {
            return Err(AttachError::WrongKind {
                name: String::new(),
                expected: KIND_STORE,
                found: heap.kind(),
            });
        }
        let (rec_base, _) =
            heap.root_alloc(rootkeys::RECAREA, RecArea::<MappedNvm>::slots_bytes())?;
        heap.validate_rec_geometry(
            nvm::MAX_PROCS as u64,
            crate::recovery::ARENA_SLOT_STRIDE as u64,
        )?;
        let catalog = heap.catalog_root(rootkeys::CATALOG)?;
        let (epochs, epochs_fresh) =
            heap.root_alloc(rootkeys::EPOCHS, reclaim::shared_region_bytes())?;
        if epochs_fresh {
            // A live store heap always carries the epoch region (the initial
            // attacher installs it before releasing the lock); its absence
            // means the image predates shared mode.
            return Err(MapError::BadSuperblock("shared store without an epoch region").into());
        }
        let mut env = AttachEnv::new(Arc::clone(&heap), rec_base);
        env.set_epochs(epochs);
        // Joiners adopt the response table as-is: the initial attacher
        // validated/healed it, and live peers are mid-write in their slots.
        let resptab = ResponseTable::open(&heap)?;
        // Peers may have grown the heap past what join mapped; make every
        // published segment visible before following catalog pointers.
        heap.refresh_segments()?;
        // SAFETY: `catalog` is this heap's committed catalog block.
        let cataloged = unsafe { heap.catalog_entries(catalog) }?;
        let mut entries = HashMap::new();
        for e in cataloged {
            let s = construct_entry(&env, &e)?;
            entries.insert(
                e.name,
                Entry { kind: e.kind, cfg: e.cfg, handle: Arc::from(s.into_any()) },
            );
        }
        let summary = AttachSummary { heap: *heap.report(), recovered: Vec::new(), swept: 0 };
        Ok(Self {
            heap,
            rec_base,
            info_pool: env.info_pool(),
            catalog,
            epochs,
            entries: Mutex::new(entries),
            summary,
            resptab,
        })
    }

    /// What this attach found and did: the heap-level report, the per-pid
    /// recovery decisions of the shared replay (spanning every structure),
    /// and the union sweep count.
    pub fn summary(&self) -> &AttachSummary {
        &self.summary
    }

    /// The persistent heap backing this store.
    pub fn heap(&self) -> &Arc<MappedHeap> {
        &self.heap
    }

    /// The KV-service response table hosted by this heap. By the time the
    /// constructor returns, every in-flight op-ID left by a crash has been
    /// resolved against the replay decisions (single-owner attach) or was
    /// resolved by the initial attacher before this joiner could see the
    /// heap — the handle is ready for request traffic.
    pub fn response_table(&self) -> ResponseTable {
        self.resptab.clone()
    }

    /// Names, kinds and configuration words of every cataloged structure.
    pub fn entries(&self) -> Vec<(String, u64, u64)> {
        self.entries.lock().unwrap().iter().map(|(n, e)| (n.clone(), e.kind, e.cfg)).collect()
    }

    /// Opens (or creates) the named structure with layout `L`. Typed
    /// errors: [`AttachError::WrongKind`] when the name exists with a
    /// different kind, [`AttachError::CfgMismatch`] when it exists with a
    /// different configuration (shards/tuning).
    pub fn get<L: MappedLayout + Send + Sync>(
        &self,
        name: &str,
        cfg: L::Cfg,
    ) -> Result<Arc<L>, AttachError> {
        // Reject unusable arguments BEFORE anything durable happens: a bad
        // name/config must never reach the catalog, where it would be
        // permanent (and fail every future Store::open of this heap).
        if name.is_empty() || name.len() > nvm::mapped::CATALOG_NAME_BYTES {
            return Err(AttachError::InvalidName { name: name.to_string() });
        }
        L::validate_cfg(cfg)?;
        let mut entries = self.entries.lock().unwrap();
        let cfg_word = L::cfg_word(cfg);
        if let Some(e) = entries.get(name) {
            if e.kind != L::KIND {
                return Err(AttachError::WrongKind {
                    name: name.to_string(),
                    expected: L::KIND,
                    found: e.kind,
                });
            }
            if e.cfg != cfg_word {
                return Err(AttachError::CfgMismatch {
                    name: name.to_string(),
                    expected: cfg_word,
                    found: e.cfg,
                });
            }
            return Ok(Arc::clone(&e.handle).downcast::<L>().expect("kind/cfg imply the type"));
        }
        let env = self.env();
        let s = if self.heap.is_shared() {
            // Shared heaps: a peer may have created this entry since our
            // attach. Creation (catalog append + root install) is serialized
            // under the cross-process file lock, and the catalog is
            // re-scanned under it — so two processes racing on one name
            // produce exactly one entry, and the loser adopts it fully
            // installed.
            self.heap.with_file_lock(|| -> Result<Arc<L>, AttachError> {
                self.heap.refresh_segments()?;
                // SAFETY: committed catalog block.
                let cataloged = unsafe { self.heap.catalog_entries(self.catalog) }?;
                if let Some(e) = cataloged.into_iter().find(|e| e.name == name) {
                    if e.kind != L::KIND {
                        return Err(AttachError::WrongKind {
                            name: name.to_string(),
                            expected: L::KIND,
                            found: e.kind,
                        });
                    }
                    if e.cfg != cfg_word {
                        return Err(AttachError::CfgMismatch {
                            name: name.to_string(),
                            expected: cfg_word,
                            found: e.cfg,
                        });
                    }
                    return Ok(Arc::new(L::open(&env, cfg, e.root)?));
                }
                // SAFETY: committed catalog block; mutation serialized by
                // the file lock we hold.
                let root = unsafe {
                    self.heap.catalog_append(
                        self.catalog,
                        name,
                        L::KIND,
                        cfg_word,
                        L::root_bytes(cfg),
                    )
                }?;
                Ok(Arc::new(L::open(&env, cfg, root)?))
            })??
        } else {
            // New entry: root block + catalog record (kind word last), then
            // the structure's own idempotent root install. No recovery
            // needed — the entry cannot predate this attach.
            // SAFETY: committed catalog block; single attach-owner
            // discipline.
            let root = unsafe {
                self.heap.catalog_append(self.catalog, name, L::KIND, cfg_word, L::root_bytes(cfg))
            }?;
            Arc::new(L::open(&env, cfg, root)?)
        };
        entries.insert(
            name.to_string(),
            Entry {
                kind: L::KIND,
                cfg: cfg_word,
                handle: Arc::clone(&s) as Arc<dyn Any + Send + Sync>,
            },
        );
        Ok(s)
    }

    /// Typed handle: sharded hash map (`shards` must match on re-open).
    pub fn hashmap<const ARM: u8>(
        &self,
        name: &str,
        shards: usize,
    ) -> Result<Arc<RHashMap<MappedNvm, ARM>>, AttachError> {
        self.get(name, shards)
    }

    /// Typed handle: FIFO queue.
    pub fn queue<const ARM: u8>(
        &self,
        name: &str,
    ) -> Result<Arc<RQueue<MappedNvm, ARM>>, AttachError> {
        self.get(name, ())
    }

    /// Typed handle: sorted list.
    pub fn list<const ARM: u8>(
        &self,
        name: &str,
    ) -> Result<Arc<RList<MappedNvm, ARM>>, AttachError> {
        self.get(name, ())
    }

    /// Typed handle: external BST.
    pub fn bst<const ARM: u8>(&self, name: &str) -> Result<Arc<RBst<MappedNvm, ARM>>, AttachError> {
        self.get(name, ())
    }

    /// Typed handle: direct-tracked stack (elimination disabled — mapped).
    pub fn stack(&self, name: &str) -> Result<Arc<RStack<MappedNvm>>, AttachError> {
        self.get(name, ())
    }

    fn env(&self) -> AttachEnv {
        let mut env =
            AttachEnv::with_pool(Arc::clone(&self.heap), self.rec_base, self.info_pool.clone());
        if !self.epochs.is_null() {
            env.set_epochs(self.epochs);
        }
        env
    }

    // -- online peer recovery (shared heaps) --------------------------------

    /// Participant slots whose process is dead (SIGKILLed, pid recycled,
    /// zombie, or a claim torn mid-flight). Empty on an exclusive heap.
    pub fn dead_peers(&self) -> Vec<usize> {
        if !self.heap.is_shared() {
            return Vec::new();
        }
        self.heap.dead_participants()
    }

    /// Tries to take the recovery lease on dead participant `slot` without
    /// recovering yet (test harnesses use the split to widen the window in
    /// which the recoverer itself can be killed; production code calls
    /// [`Store::recover_peer`]). Re-entrant for the current holder. Returns
    /// `false` when another *live* survivor holds the lease, the slot is
    /// already reclaimed, its participant turns out to be alive (stale
    /// dead-list), or the slot is torn mid-claim (no state to recover;
    /// [`Store::recover_peer`] reclaims those under the attach flock).
    pub fn claim_recovery(&self, slot: usize) -> bool {
        matches!(self.heap.lease_try_claim(slot), LeaseOutcome::Won { .. })
    }

    /// Recovers dead participant `slot` under a CAS-claimed recovery lease,
    /// **while this process keeps serving**: replays Op-Recover for every
    /// recovery slot in the dead process's tid band, releases its pinned
    /// epochs (un-wedging reclamation), and reclaims its registry slot.
    /// Returns the per-tid recovery decisions on success (empty for a slot
    /// that was merely torn mid-claim — nothing ran under it, so there is
    /// nothing to replay), or `None` when another live survivor holds the
    /// lease (it will finish the job — a recoverer that dies mid-lease is
    /// detected and superseded by the next caller), the slot is already
    /// reclaimed, or its participant turns out to be **alive** — a live
    /// peer's slot is never recovered, however stale the caller's dead-list.
    pub fn recover_peer(
        &self,
        slot: usize,
    ) -> Result<Option<Vec<(usize, crate::recovery::Recovered)>>, AttachError> {
        match self.heap.lease_try_claim(slot) {
            LeaseOutcome::Won { .. } => {}
            // A claim torn mid-flight holds no recoverable state and may be
            // a live joiner mid-stamp: reclaim it under the attach flock
            // (which serializes all claims) instead of leasing it.
            LeaseOutcome::Torn => {
                return Ok(if self.heap.reclaim_torn_claim(slot)? {
                    nvm::stats::count_peers_recovered(1);
                    Some(Vec::new())
                } else {
                    None
                });
            }
            LeaseOutcome::Held { .. } | LeaseOutcome::Gone | LeaseOutcome::Live { .. } => {
                return Ok(None);
            }
        }
        // Replay the dead process's (at most one per thread) pending
        // operations. Help is the ordinary lock-free helping path, so this
        // runs against live traffic from every survivor.
        let rec = self.rec_area();
        let col = self.env().collector();
        let mut decisions = Vec::new();
        let mut resolved = 0u64;
        for pid in MappedHeap::tid_band(slot) {
            let g = col.pin();
            // SAFETY: `slot` is liveness-probed dead and we hold its
            // recovery lease; published descriptors are valid per the
            // tracking protocol (persisted before publication, never freed
            // while published).
            decisions.push((pid, unsafe {
                // The on-decision hook mirrors the verdict into the KV
                // response table *before* the rec slot is cleared: if this
                // recoverer dies inside the hook, a successor recomputes
                // the same decision and re-resolves (idempotent); after the
                // clear, the dead peer's client can be served again.
                recover_dead_pid_with(&rec, pid, &g, |d| {
                    if self.resptab.resolve(pid, d).is_some() {
                        resolved += 1;
                    }
                })
            }));
        }
        if resolved > 0 {
            nvm::stats::count_kv_intents_resolved(resolved);
        }
        // The dead process can no longer be inside a read-side critical
        // section: drop its pinned epochs so reclamation advances again.
        if !self.epochs.is_null() {
            // SAFETY: the band's announce words belong exclusively to the
            // dead process's threads.
            let stalls =
                unsafe { Collector::release_shared_band(self.epochs, MappedHeap::tid_band(slot)) };
            nvm::stats::count_epoch_stalls(stalls as u64);
        }
        // Registry slot last: clearing it retires the lease with it, and
        // only a fully-resolved slot may be re-claimed by a new process.
        self.heap.clear_participant(slot);
        nvm::stats::count_peers_recovered(1);
        Ok(Some(decisions))
    }

    /// Probes for dead peers and recovers each under a lease (the
    /// "survivor notices a SIGKILLed neighbour" entry point — call it
    /// periodically, or when an operation observes suspicious stalls).
    /// Returns the slots this process recovered.
    pub fn heal_peers(&self) -> Result<Vec<usize>, AttachError> {
        let mut healed = Vec::new();
        for slot in self.dead_peers() {
            if self.recover_peer(slot)?.is_some() {
                healed.push(slot);
            }
        }
        Ok(healed)
    }

    /// This process's view of the shared recovery area (per-tid slots).
    fn rec_area(&self) -> RecArea<MappedNvm> {
        // SAFETY: `rec_base` is the heap's committed recovery-area root
        // block, geometry-validated at attach; the heap Arc outlives the
        // returned area's use inside this call graph.
        unsafe { RecArea::attach_raw(self.rec_base) }
    }
}

/// Kind-dispatched construction of an existing catalog entry (the tuning
/// bit lives in the configuration word).
fn construct_entry(env: &AttachEnv, e: &CatalogEntry) -> Result<Box<dyn SlotOps>, AttachError> {
    fn open_as<L: MappedLayout>(
        env: &AttachEnv,
        cfg: L::Cfg,
        root: *mut u8,
    ) -> Result<Box<dyn SlotOps>, AttachError> {
        Ok(Box::new(L::open(env, cfg, root)?))
    }
    // The tuning arm rides in bits 32..40 of the configuration word; a value
    // outside the known ladder means the catalog record was written by an
    // incompatible (newer) build — reject rather than guess a placement.
    let arm = (e.cfg >> 32) & 0xFF;
    macro_rules! open_armed {
        ($ty:ident, $cfg:expr) => {
            match arm {
                0 => open_as::<$ty<MappedNvm, 0>>(env, $cfg, e.root),
                1 => open_as::<$ty<MappedNvm, 1>>(env, $cfg, e.root),
                2 => open_as::<$ty<MappedNvm, 2>>(env, $cfg, e.root),
                3 => open_as::<$ty<MappedNvm, 3>>(env, $cfg, e.root),
                _ => Err(MapError::CorruptCatalog { slot: e.slot }.into()),
            }
        };
    }
    match e.kind {
        crate::hashmap::KIND_MAP => {
            let shards = (e.cfg & 0xFFFF_FFFF) as usize;
            if !shards.is_power_of_two() {
                return Err(MapError::CorruptCatalog { slot: e.slot }.into());
            }
            open_armed!(RHashMap, shards)
        }
        crate::queue::KIND_QUEUE => open_armed!(RQueue, ()),
        crate::list::KIND_LIST => open_armed!(RList, ()),
        crate::bst::KIND_BST => open_armed!(RBst, ()),
        crate::stack::KIND_STACK => open_as::<RStack<MappedNvm>>(env, (), e.root),
        _ => Err(MapError::CorruptCatalog { slot: e.slot }.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::Recovered;

    fn tmp(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!(
            "isb_store_{}_{}_{name}.heap",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn five_kinds_roundtrip_one_heap() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let path = tmp("five");
        {
            let store = Store::open_sized(&path, 8 << 20).unwrap();
            let m = store.hashmap::<0>("users", 4).unwrap();
            let q = store.queue::<0>("jobs").unwrap();
            let l = store.list::<1>("index").unwrap();
            let t = store.bst::<0>("tree").unwrap();
            let s = store.stack("undo").unwrap();
            for k in 1..=100u64 {
                assert!(m.insert(0, k));
            }
            for v in 1..=50u64 {
                q.enqueue(0, v);
            }
            assert_eq!(q.dequeue(0), Some(1));
            for k in (1..=40u64).step_by(2) {
                assert!(l.insert(0, k));
            }
            for k in [9u64, 3, 12, 7] {
                assert!(t.insert(0, k));
            }
            s.push(0, 11);
            s.push(0, 22);
            assert_eq!(s.pop(0), Some(22));
        }
        {
            let store = Store::open_sized(&path, 8 << 20).unwrap();
            assert_eq!(store.entries().len(), 5);
            let m = store.hashmap::<0>("users", 4).unwrap();
            let q = store.queue::<0>("jobs").unwrap();
            let l = store.list::<1>("index").unwrap();
            let t = store.bst::<0>("tree").unwrap();
            let s = store.stack("undo").unwrap();
            for k in 1..=100u64 {
                assert!(m.find(0, k), "map key {k} lost");
            }
            for v in 2..=50u64 {
                assert_eq!(q.dequeue(0), Some(v), "queue order after re-attach");
            }
            assert_eq!(q.dequeue(0), None);
            for k in 1..=40u64 {
                assert_eq!(l.find(0, k), k % 2 == 1, "list key {k}");
            }
            for k in [9u64, 3, 12, 7] {
                assert!(t.find(0, k), "bst key {k} lost");
            }
            assert_eq!(s.pop(0), Some(11));
            assert_eq!(s.pop(0), None);
            // The recovered store keeps serving.
            assert!(m.insert(0, 1000));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_kind_and_cfg_mismatch_are_typed() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let path = tmp("typed");
        let store = Store::open_sized(&path, 4 << 20).unwrap();
        store.hashmap::<0>("users", 4).unwrap();
        match store.queue::<0>("users") {
            Err(AttachError::WrongKind { name, expected, found }) => {
                assert_eq!(name, "users");
                assert_eq!(expected, crate::queue::KIND_QUEUE);
                assert_eq!(found, crate::hashmap::KIND_MAP);
            }
            other => panic!("expected WrongKind, got {other:?}", other = other.err()),
        }
        match store.hashmap::<0>("users", 8) {
            Err(AttachError::CfgMismatch { name, .. }) => assert_eq!(name, "users"),
            other => panic!("expected CfgMismatch, got {other:?}", other = other.err()),
        }
        match store.hashmap::<1>("users", 4) {
            Err(AttachError::CfgMismatch { .. }) => {}
            other => panic!("expected CfgMismatch (tuning), got {other:?}", other = other.err()),
        }
        // The matching handle still opens, and is the same object.
        let a = store.hashmap::<0>("users", 4).unwrap();
        let b = store.hashmap::<0>("users", 4).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        drop((a, b, store));
        let _ = std::fs::remove_file(&path);
    }

    /// Unusable arguments are rejected BEFORE anything durable happens: no
    /// catalog entry is stamped, and the heap stays fully usable.
    #[test]
    fn invalid_cfg_and_name_are_rejected_before_the_catalog() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let path = tmp("precheck");
        {
            let store = Store::open_sized(&path, 4 << 20).unwrap();
            match store.hashmap::<0>("m", 3) {
                Err(AttachError::InvalidCfg { kind, .. }) => assert_eq!(kind, "hashmap"),
                other => panic!("expected InvalidCfg, got {:?}", other.err()),
            }
            let long = "x".repeat(nvm::mapped::CATALOG_NAME_BYTES + 1);
            match store.queue::<0>(&long) {
                Err(AttachError::InvalidName { .. }) => {}
                other => panic!("expected InvalidName, got {:?}", other.err()),
            }
            match store.queue::<0>("") {
                Err(AttachError::InvalidName { .. }) => {}
                other => panic!("expected InvalidName, got {:?}", other.err()),
            }
            assert!(store.entries().is_empty(), "nothing durable was written");
            // A valid handle still works after the rejections.
            store.hashmap::<0>("m", 4).unwrap().insert(0, 7);
        }
        // ...and the heap re-opens cleanly (a durable bad entry would brick
        // every future open with CorruptCatalog).
        let store = Store::open_sized(&path, 4 << 20).unwrap();
        assert!(store.hashmap::<0>("m", 4).unwrap().find(0, 7));
        // Standalone attach pre-checks too, before even touching the file.
        match RHashMap::<MappedNvm, 0>::attach_sized(tmp("precheck2"), 6, 4 << 20) {
            Err(AttachError::InvalidCfg { .. }) => {}
            other => panic!("expected InvalidCfg, got {:?}", other.err()),
        }
        drop(store);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn store_heap_rejects_standalone_attach_and_vice_versa() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let path = tmp("crosskind");
        drop(Store::open_sized(&path, 4 << 20).unwrap());
        match RHashMap::<MappedNvm, 0>::attach_sized(&path, 4, 4 << 20) {
            Err(AttachError::WrongKind { expected, found, .. }) => {
                assert_eq!(expected, crate::hashmap::KIND_MAP);
                assert_eq!(found, KIND_STORE);
            }
            other => panic!("expected WrongKind, got {:?}", other.err()),
        }
        let _ = std::fs::remove_file(&path);
        drop(RQueue::<MappedNvm, 0>::attach_sized(&path, 4 << 20).unwrap());
        match Store::open_sized(&path, 4 << 20) {
            Err(AttachError::WrongKind { expected, found, .. }) => {
                assert_eq!(expected, KIND_STORE);
                assert_eq!(found, crate::queue::KIND_QUEUE);
            }
            other => panic!("expected WrongKind, got {:?}", other.err()),
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Shared open → fake dead peer with a published pending operation →
    /// a survivor's `heal_peers` resolves it online (service never stops)
    /// and reclaims the registry slot; the data survives a full reopen.
    #[test]
    fn shared_heal_recovers_fake_dead_peer_online() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let path = tmp("sharedheal");
        let before = nvm::stats::snapshot();
        {
            let store = Store::open_shared_sized(&path, 8 << 20).unwrap();
            assert!(store.heap().is_shared());
            let slot = store.heap().my_participant().expect("registered");
            nvm::tid::set_tid(MappedHeap::tid_band(slot).start);
            let m = store.hashmap::<0>("m", 2).unwrap();
            let q = store.queue::<0>("q").unwrap();
            for i in 1..=20u64 {
                assert!(m.insert(nvm::tid::tid(), i));
                q.enqueue(nvm::tid::tid(), i);
            }
            // A "peer" that died with a pending operation: claim a second
            // registry slot for a dead pid and publish an operation under a
            // tid in ITS band (the completed dequeue leaves RD_q holding the
            // descriptor reference a real SIGKILLed peer would leave).
            let dead_slot = store.heap().debug_register_peer(u32::MAX as u64 - 7, 1).unwrap();
            let dead_tid = MappedHeap::tid_band(dead_slot).start;
            nvm::tid::set_tid(dead_tid);
            assert_eq!(q.dequeue(dead_tid), Some(1));
            nvm::tid::set_tid(MappedHeap::tid_band(slot).start);
            assert_eq!(store.dead_peers(), vec![dead_slot]);
            let healed = store.heal_peers().unwrap();
            assert_eq!(healed, vec![dead_slot], "survivor recovered the dead peer");
            assert!(store.dead_peers().is_empty(), "registry slot reclaimed");
            assert!(
                !store.heap().participants().iter().any(|&(s, _, _)| s == dead_slot),
                "dead peer's slot is free again"
            );
            // Service continued throughout: the survivor keeps mutating.
            assert!(m.insert(nvm::tid::tid(), 1000));
            // Recovering an already-reclaimed slot is a no-op, not an error.
            assert!(store.recover_peer(dead_slot).unwrap().is_none());
        }
        let after = nvm::stats::snapshot();
        assert!(after.since(&before).peers_recovered >= 1, "counter surfaced the recovery");
        {
            // Full reopen (initial attacher again: no live participants).
            let store = Store::open_shared_sized(&path, 8 << 20).unwrap();
            assert!(!store.summary().heap.joined, "no live peers: full attach");
            let slot = store.heap().my_participant().unwrap();
            let t = MappedHeap::tid_band(slot).start;
            nvm::tid::set_tid(t);
            let m = store.hashmap::<0>("m", 2).unwrap();
            let q = store.queue::<0>("q").unwrap();
            for i in 1..=20u64 {
                assert!(m.find(t, i), "map key {i} lost");
            }
            assert!(m.find(t, 1000));
            // Queue: 1 was dequeued by the dead peer (resolved); 2.. remain.
            for i in 2..=20u64 {
                assert_eq!(q.dequeue(t), Some(i), "queue order after heal + reopen");
            }
            assert_eq!(q.dequeue(t), None);
        }
        let _ = std::fs::remove_file(&path);
    }

    /// The lease split: `claim_recovery` is re-entrant for its holder, and
    /// `recover_peer` finishes under an already-held lease.
    #[test]
    fn claim_then_recover_is_reentrant() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let path = tmp("lease");
        let store = Store::open_shared_sized(&path, 4 << 20).unwrap();
        let slot = store.heap().my_participant().unwrap();
        nvm::tid::set_tid(MappedHeap::tid_band(slot).start);
        let dead = store.heap().debug_register_peer(u32::MAX as u64 - 9, 1).unwrap();
        assert!(store.claim_recovery(dead));
        assert!(store.claim_recovery(dead), "re-entrant for the holder");
        let decisions = store.recover_peer(dead).unwrap().expect("recovery under the held lease");
        assert_eq!(decisions.len(), nvm::mapped::PART_TIDS, "one decision per band tid");
        assert!(!store.claim_recovery(dead), "slot reclaimed: lease is gone");
        drop(store);
        let _ = std::fs::remove_file(&path);
    }

    /// A live peer's slot is never recovered (a stale dead-list must not
    /// erase a live registration), and a claim torn mid-flight is reclaimed
    /// under the attach flock — reported as a recovery with nothing to
    /// replay — instead of being leased.
    #[test]
    fn recover_refuses_live_peers_and_reclaims_torn_claims() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let path = tmp("tornlive");
        let store = Store::open_shared_sized(&path, 4 << 20).unwrap();
        let slot = store.heap().my_participant().unwrap();
        nvm::tid::set_tid(MappedHeap::tid_band(slot).start);
        // A registration that probes as *alive* (our own pid and birth):
        // never in the dead list, and recovery must refuse it even when
        // named directly.
        let live = store
            .heap()
            .debug_register_peer(std::process::id() as u64, nvm::liveness::self_birth())
            .unwrap();
        assert!(store.dead_peers().is_empty());
        assert!(store.recover_peer(live).unwrap().is_none(), "live peer refused");
        assert!(!store.claim_recovery(live));
        assert!(
            store.heap().participants().iter().any(|&(s, _, _)| s == live),
            "live registration untouched"
        );
        store.heap().clear_participant(live);
        // A claim torn mid-flight: listed dead, reclaimed with an empty
        // replay (no tid of its band ever ran).
        let torn = store.heap().debug_register_peer(u32::MAX as u64 - 11, 1).unwrap();
        store.heap().debug_tear_claim(torn);
        assert_eq!(store.dead_peers(), vec![torn]);
        let decisions = store.recover_peer(torn).unwrap().expect("torn claim reclaimed");
        assert!(decisions.is_empty(), "nothing ran under a torn claim");
        assert!(!store.heap().participants().iter().any(|&(s, _, _)| s == torn));
        assert!(store.recover_peer(torn).unwrap().is_none(), "second reclaim is a no-op");
        drop(store);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shared_recovery_area_spans_structures() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let path = tmp("sharedrec");
        {
            let store = Store::open_sized(&path, 4 << 20).unwrap();
            let m = store.hashmap::<0>("m", 2).unwrap();
            let q = store.queue::<0>("q").unwrap();
            // Alternating ops hand the shared RD_q across structures.
            for i in 1..=50u64 {
                assert!(m.insert(0, i));
                q.enqueue(0, i);
                assert_eq!(q.dequeue(0), Some(i));
            }
            // Last mutating op was a dequeue: its response is recoverable.
            assert_eq!(q.recover_dequeue(0), Some(50));
        }
        {
            // Across a restart, the shared replay resolves the last op too.
            let store = Store::open_sized(&path, 4 << 20).unwrap();
            match store.summary().decision(0) {
                Recovered::Completed(_) | Recovered::Restart => {}
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
