//! Detectably recoverable external binary search tree: ISB-tracking applied
//! to the lock-free BST of Ellen, Fatourou, Ruppert, van Breugel (paper
//! Section 6).
//!
//! The tree is leaf-oriented: internal nodes hold routing keys, leaves hold
//! the set's keys. Search goes left on `k < node.key`. Two permanent dummy
//! internals (`∞₂` root, `∞₁` below it) guarantee every real leaf has a
//! non-null parent *and* grandparent.
//!
//! ISB mapping (paper Section 6):
//! * **Insert(k)** replaces leaf `l` with a three-node subtree (new internal
//!   with the new leaf and a *copy* of `l`). AffectSet = `{p (update),
//!   l (deletion)}`, WriteSet = `{⟨p.child, l, newInternal⟩}`, NewSet =
//!   `{newInternal, newLeaf, lCopy}`.
//! * **Delete(k)** swings `gp.child` from `p` to a *copy* of `l`'s sibling.
//!   AffectSet = `{gp (update), p, l, sibling (all deletion)}` — tagged in
//!   root-ward-first order, so conflicting operations always collide on a
//!   common ancestor before any leaf. WriteSet = `{⟨gp.child, p, sibCopy⟩}`,
//!   NewSet = `{sibCopy}`.
//! * **Find(k)**: ROpt read-only path on `{l}`.
//!
//! The copies preserve pointer freshness exactly as in the list: a node
//! leaves a child pointer only by being retired.

use crate::arm;
use crate::counters;
use crate::engine::{help, HelpOutcome, Info, InfoFill, RES_FALSE, RES_TRUE};
use crate::optype;
use crate::pool::{Pool, PoolCfg, PoolItem};
use crate::recovery::{
    attach_standalone, op_recover, release_prev, AttachEnv, AttachError, AttachSummary,
    MappedLayout, RecArea, Recovered, SlotOps,
};
use crate::tag;
use nvm::mapped::{MapError, MappedHeap, MappedNvm, DEFAULT_HEAP_BYTES};
use nvm::{PWord, Persist, PersistWords};
use reclaim::{Collector, Guard};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

/// Superblock structure-kind tag of a mapped `RBst`.
pub const KIND_BST: u64 = 4;

/// `∞₁`: larger than every user key.
pub const KEY_INF1: u64 = u64::MAX - 1;
/// `∞₂`: larger than `∞₁`.
pub const KEY_INF2: u64 = u64::MAX;

/// A tree node; leaves have null children.
#[repr(C)]
pub struct Node<M: Persist> {
    key: PWord<M>,
    left: PWord<M>,
    right: PWord<M>,
    info: PWord<M>,
}

unsafe impl<M: Persist> PersistWords<M> for Node<M> {
    fn each_word(&self, f: &mut dyn FnMut(&PWord<M>)) {
        f(&self.key);
        f(&self.left);
        f(&self.right);
        f(&self.info);
    }
}

impl<M: Persist> Node<M> {
    fn alloc(key: u64, left: u64, right: u64, info: u64) -> *mut Node<M> {
        counters::node_alloc();
        Box::into_raw(Box::new(Node {
            key: PWord::new(key),
            left: PWord::new(left),
            right: PWord::new(right),
            info: PWord::new(info),
        }))
    }

    fn is_leaf(&self) -> bool {
        self.left.load() == 0
    }

    /// Re-initialize a pool-recycled node.
    fn init(&self, key: u64, left: u64, right: u64, info: u64) {
        self.key.store(key);
        self.left.store(left);
        self.right.store(right);
        self.info.store(info);
    }
}

impl<M: Persist> PoolItem for Node<M> {
    fn fresh() -> Self {
        counters::node_alloc();
        Node { key: PWord::new(0), left: PWord::new(0), right: PWord::new(0), info: PWord::new(0) }
    }

    fn count_reuse() {
        counters::node_reuse();
    }
}

impl<M: Persist> Drop for Node<M> {
    fn drop(&mut self) {
        counters::node_free();
    }
}

struct SearchRes<M: Persist> {
    gp: *mut Node<M>,
    p: *mut Node<M>,
    l: *mut Node<M>,
    gp_info: u64,
    p_info: u64,
    l_info: u64,
    /// Child cell of `gp` pointing to `p`.
    gp_cell: *const PWord<M>,
    /// Child cell of `p` pointing to `l`.
    p_cell: *const PWord<M>,
}

/// Detectably recoverable external BST (see module docs).
pub struct RBst<M: Persist, const ARM: u8 = 0> {
    root: *mut Node<M>,
    rec: RecArea<M>,
    // `collector` must drop before the pools (drop-time drain recycles).
    collector: Collector,
    info_pool: Pool<Info<M>>,
    node_pool: Pool<Node<M>>,
    /// Mapped mode: the persistent heap everything lives in (`Some`
    /// suppresses drop-time teardown — the arena is the durable state).
    mapped: Option<Arc<MappedHeap>>,
}

unsafe impl<M: Persist, const ARM: u8> Send for RBst<M, ARM> {}
unsafe impl<M: Persist, const ARM: u8> Sync for RBst<M, ARM> {}

impl<M: Persist, const ARM: u8> Default for RBst<M, ARM> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Persist, const ARM: u8> RBst<M, ARM> {
    /// New empty tree.
    pub fn new() -> Self {
        Self::with_collector(Collector::new())
    }

    /// New empty tree with pooling off (the boxed ablation arm).
    pub fn boxed() -> Self {
        Self::with_config(Collector::new(), PoolCfg::boxed())
    }

    /// New empty tree with the given collector (crash-sim runs pass
    /// [`Collector::disabled`]; pooling drops to passthrough mode).
    pub fn with_collector(collector: Collector) -> Self {
        Self::with_config(collector, PoolCfg::default())
    }

    /// New empty tree with the given collector and pool configuration.
    pub fn with_config(collector: Collector, pool: PoolCfg) -> Self {
        // Routing: k < node.key goes left. Dummy leaves: key 0 (below every
        // user key) on the far left, ∞ leaves on the right spine; user keys
        // always land in inner's left subtree with gp ≠ null.
        let l0: *mut Node<M> = Node::alloc(0, 0, 0, 0);
        let l1: *mut Node<M> = Node::alloc(KEY_INF1, 0, 0, 0);
        let inner: *mut Node<M> = Node::alloc(KEY_INF1, l0 as u64, l1 as u64, 0);
        let r2: *mut Node<M> = Node::alloc(KEY_INF2, 0, 0, 0);
        let root = Node::alloc(KEY_INF2, inner as u64, r2 as u64, 0);
        let info_pool = Pool::new_for::<M>(pool.clone(), &collector);
        let node_pool = Pool::new_for::<M>(pool, &collector);
        Self { root, rec: RecArea::new(), collector, info_pool, node_pool, mapped: None }
    }

    /// Draw a descriptor: pool hit, or heap in passthrough mode.
    #[inline]
    fn alloc_info(&self) -> *mut Info<M> {
        self.info_pool.take().unwrap_or_else(Info::alloc)
    }

    /// Draw a node: pool hit (re-initialized), or heap in passthrough mode.
    #[inline]
    fn alloc_node(&self, key: u64, left: u64, right: u64, info: u64) -> *mut Node<M> {
        match self.node_pool.take() {
            Some(p) => {
                unsafe { (*p).init(key, left, right, info) };
                p
            }
            None => Node::alloc(key, left, right, info),
        }
    }

    fn assert_key(key: u64) {
        assert!(key > 0 && key < KEY_INF1, "key must be in (0, u64::MAX-1)");
    }

    /// Search for `key`: returns grandparent, parent, leaf, their info
    /// values (each read on first access to its node, before its children)
    /// and the two child cells on the path.
    ///
    /// # Safety
    /// Caller must hold an EBR pin.
    unsafe fn search(&self, key: u64) -> SearchRes<M> {
        unsafe {
            let mut gp = std::ptr::null_mut();
            let mut gp_info = 0;
            let mut gp_cell: *const PWord<M> = std::ptr::null();
            let mut p = self.root;
            let mut p_info = (*p).info.load();
            let mut p_cell: *const PWord<M> =
                if key < (*p).key.load() { &(*p).left } else { &(*p).right };
            let mut l = (*p_cell).load() as *mut Node<M>;
            let mut l_info = (*l).info.load();
            while !(*l).is_leaf() {
                gp = p;
                gp_info = p_info;
                gp_cell = p_cell;
                p = l;
                p_info = l_info;
                p_cell = if key < (*p).key.load() { &(*p).left } else { &(*p).right };
                l = (*p_cell).load() as *mut Node<M>;
                l_info = (*l).info.load();
            }
            SearchRes { gp, p, l, gp_info, p_info, l_info, gp_cell, p_cell }
        }
    }

    fn publish(&self, pid: usize, info: *mut Info<M>, published: &mut u64, g: &Guard<'_>) {
        self.rec.publish_arm::<ARM>(pid, info as u64);
        if *published != 0 && *published != info as u64 {
            unsafe { Info::<M>::release(tag::ptr_of(*published), 1, g) };
        }
        *published = info as u64;
    }

    /// Publish for the read-only `find` path: never touches `CP_q` (see
    /// `SetCore::publish_ro`).
    fn publish_ro(&self, pid: usize, info: *mut Info<M>, published: &mut u64, g: &Guard<'_>) {
        self.rec.publish(pid, info as u64);
        if *published != 0 && *published != info as u64 {
            unsafe { Info::<M>::release(tag::ptr_of(*published), 1, g) };
        }
        *published = info as u64;
    }

    unsafe fn retire_node(&self, node: *mut Node<M>, g: &Guard<'_>) {
        unsafe {
            let iv = (*node).info.load();
            Info::<M>::release(tag::ptr_of(iv), 1, g);
            self.node_pool.retire(node, g);
        }
    }

    unsafe fn persist_attempt(&self, info: *mut Info<M>, news: &[*mut Node<M>]) {
        unsafe {
            for &n in news {
                arm::pwb_obj_arm::<M, _, ARM>(&*n);
            }
            if arm::is_tuned(ARM) {
                arm::pwb_obj_arm::<M, _, ARM>(&*info);
                M::pfence();
            } else {
                M::pbarrier_obj(&*info);
            }
        }
    }

    /// Inserts `key`; `false` if present.
    pub fn insert(&self, pid: usize, key: u64) -> bool {
        Self::assert_key(key);
        // ONE pin covers the whole operation (see set_core::insert).
        let g = self.collector.pin();
        let prev = self.rec.begin::<ARM>(pid);
        unsafe { release_prev::<M>(prev, &g) };
        let mut info = self.alloc_info();
        let mut published: u64 = 0;
        loop {
            let s = unsafe { self.search(key) };
            if tag::is_tagged(s.p_info) {
                unsafe { help::<M, ARM>(tag::ptr_of(s.p_info), false, &g) };
                continue;
            }
            if tag::is_tagged(s.l_info) {
                unsafe { help::<M, ARM>(tag::ptr_of(s.l_info), false, &g) };
                continue;
            }
            let l_key = unsafe { (*s.l).key.load() };
            if l_key == key {
                // ROpt read-only path.
                unsafe {
                    Info::fill(
                        info,
                        &InfoFill {
                            optype: optype::INSERT,
                            affect: &[(cell_addr(&(*s.l).info), s.l_info)],
                            write: &[],
                            newset: &[],
                            del_mask: 0,
                            presult: RES_FALSE,
                        },
                    );
                    M::store(&(*info).result, RES_FALSE);
                    self.persist_attempt(info, &[]);
                }
                self.publish(pid, info, &mut published, &g);
                unsafe { Info::<M>::release(info, 1, &g) };
                return false;
            }
            // Build the replacement subtree: internal(max) / {leaf(k), copy(l)}.
            let t = tag::tagged(info as u64);
            let new_leaf: *mut Node<M> = self.alloc_node(key, 0, 0, t);
            let l_copy: *mut Node<M> = self.alloc_node(l_key, 0, 0, t);
            let (lc, rc, ik) =
                if key < l_key { (new_leaf, l_copy, l_key) } else { (l_copy, new_leaf, key) };
            let internal: *mut Node<M> = self.alloc_node(ik, lc as u64, rc as u64, t);
            unsafe {
                Info::fill(
                    info,
                    &InfoFill {
                        optype: optype::INSERT,
                        affect: &[
                            (cell_addr(&(*s.p).info), s.p_info),
                            (cell_addr(&(*s.l).info), s.l_info),
                        ],
                        write: &[(s.p_cell as u64, s.l as u64, internal as u64)],
                        newset: &[
                            cell_addr(&(*internal).info),
                            cell_addr(&(*new_leaf).info),
                            cell_addr(&(*l_copy).info),
                        ],
                        del_mask: 0b10, // l is copy-replaced
                        presult: RES_TRUE,
                    },
                );
                self.persist_attempt(info, &[internal, new_leaf, l_copy]);
            }
            self.publish(pid, info, &mut published, &g);
            match unsafe { help::<M, ARM>(info, true, &g) } {
                HelpOutcome::Done => {
                    unsafe { self.retire_node(s.l, &g) };
                    return true;
                }
                HelpOutcome::FailedAt(i) => {
                    unsafe {
                        // Unpublished new nodes: straight back to the pool
                        // (private-failure fast path) + release their refs.
                        Info::<M>::release(info, 3, &g); // 3 new-node cells
                        self.node_pool.give(internal, &g);
                        self.node_pool.give(new_leaf, &g);
                        self.node_pool.give(l_copy, &g);
                        Info::<M>::release(info, (2 - i) as u32, &g);
                    }
                    info = self.alloc_info();
                }
            }
        }
    }

    /// Deletes `key`; `false` if absent.
    pub fn delete(&self, pid: usize, key: u64) -> bool {
        Self::assert_key(key);
        let g = self.collector.pin();
        let prev = self.rec.begin::<ARM>(pid);
        unsafe { release_prev::<M>(prev, &g) };
        let mut info = self.alloc_info();
        let mut published: u64 = 0;
        loop {
            let s = unsafe { self.search(key) };
            if tag::is_tagged(s.gp_info) {
                unsafe { help::<M, ARM>(tag::ptr_of(s.gp_info), false, &g) };
                continue;
            }
            if tag::is_tagged(s.p_info) {
                unsafe { help::<M, ARM>(tag::ptr_of(s.p_info), false, &g) };
                continue;
            }
            if tag::is_tagged(s.l_info) {
                unsafe { help::<M, ARM>(tag::ptr_of(s.l_info), false, &g) };
                continue;
            }
            let l_key = unsafe { (*s.l).key.load() };
            if l_key != key {
                unsafe {
                    Info::fill(
                        info,
                        &InfoFill {
                            optype: optype::DELETE,
                            affect: &[(cell_addr(&(*s.l).info), s.l_info)],
                            write: &[],
                            newset: &[],
                            del_mask: 0,
                            presult: RES_FALSE,
                        },
                    );
                    M::store(&(*info).result, RES_FALSE);
                    self.persist_attempt(info, &[]);
                }
                self.publish(pid, info, &mut published, &g);
                unsafe { Info::<M>::release(info, 1, &g) };
                return false;
            }
            // Sibling of l under p (its info gathered after p's, before its children).
            let (sib, sib_info, sib_key, sib_l, sib_r) = unsafe {
                let sib_cell: &PWord<M> =
                    if std::ptr::eq(s.p_cell, &(*s.p).left) { &(*s.p).right } else { &(*s.p).left };
                let sib = sib_cell.load() as *mut Node<M>;
                let si = (*sib).info.load();
                (sib, si, (*sib).key.load(), (*sib).left.load(), (*sib).right.load())
            };
            if tag::is_tagged(sib_info) {
                unsafe { help::<M, ARM>(tag::ptr_of(sib_info), false, &g) };
                continue;
            }
            let t = tag::tagged(info as u64);
            // Copy of the sibling replaces p (freshness); its children are
            // frozen once sib is successfully tagged.
            let sib_copy: *mut Node<M> = self.alloc_node(sib_key, sib_l, sib_r, t);
            unsafe {
                Info::fill(
                    info,
                    &InfoFill {
                        optype: optype::DELETE,
                        affect: &[
                            (cell_addr(&(*s.gp).info), s.gp_info),
                            (cell_addr(&(*s.p).info), s.p_info),
                            (cell_addr(&(*s.l).info), s.l_info),
                            (cell_addr(&(*sib).info), sib_info),
                        ],
                        write: &[(s.gp_cell as u64, s.p as u64, sib_copy as u64)],
                        newset: &[cell_addr(&(*sib_copy).info)],
                        del_mask: 0b1110, // p, l, sib all leave the tree
                        presult: RES_TRUE,
                    },
                );
                self.persist_attempt(info, &[sib_copy]);
            }
            self.publish(pid, info, &mut published, &g);
            match unsafe { help::<M, ARM>(info, true, &g) } {
                HelpOutcome::Done => {
                    unsafe {
                        self.retire_node(s.p, &g);
                        self.retire_node(s.l, &g);
                        self.retire_node(sib, &g);
                    }
                    return true;
                }
                HelpOutcome::FailedAt(i) => {
                    unsafe {
                        Info::<M>::release(info, 1, &g); // sib_copy's cell
                        self.node_pool.give(sib_copy, &g);
                        Info::<M>::release(info, (4 - i) as u32, &g);
                    }
                    info = self.alloc_info();
                }
            }
        }
    }

    /// Membership test (ROpt read-only; no `CP/RD=Null` prologue).
    pub fn find(&self, pid: usize, key: u64) -> bool {
        Self::assert_key(key);
        let g = self.collector.pin();
        let prev = self.rec.begin_readonly(pid);
        let info = self.alloc_info();
        // A DIRECT previous entry carries no descriptor reference to hand
        // over (see `recovery::release_prev`).
        let mut published = if tag::is_direct(prev) { 0 } else { prev };
        loop {
            let s = unsafe { self.search(key) };
            if tag::is_tagged(s.l_info) {
                unsafe { help::<M, ARM>(tag::ptr_of(s.l_info), false, &g) };
                continue;
            }
            let res = unsafe { (*s.l).key.load() } == key;
            let enc = if res { RES_TRUE } else { RES_FALSE };
            unsafe {
                Info::fill(
                    info,
                    &InfoFill {
                        optype: optype::FIND,
                        affect: &[(cell_addr(&(*s.l).info), s.l_info)],
                        write: &[],
                        newset: &[],
                        del_mask: 0,
                        presult: enc,
                    },
                );
                M::store(&(*info).result, enc);
                self.persist_attempt(info, &[]);
            }
            self.publish_ro(pid, info, &mut published, &g);
            unsafe { Info::<M>::release(info, 1, &g) };
            return res;
        }
    }

    /// `Insert.Recover`.
    pub fn recover_insert(&self, pid: usize, key: u64) -> bool {
        let r = {
            let g = self.collector.pin();
            unsafe { op_recover::<M, ARM>(&self.rec, pid, &g) }
        };
        match r {
            Recovered::Completed(v) => v == RES_TRUE,
            Recovered::Restart => self.insert(pid, key),
        }
    }

    /// `Delete.Recover`.
    pub fn recover_delete(&self, pid: usize, key: u64) -> bool {
        let r = {
            let g = self.collector.pin();
            unsafe { op_recover::<M, ARM>(&self.rec, pid, &g) }
        };
        match r {
            Recovered::Completed(v) => v == RES_TRUE,
            Recovered::Restart => self.delete(pid, key),
        }
    }

    /// `Find.Recover` (restart-safe).
    pub fn recover_find(&self, pid: usize, key: u64) -> bool {
        let r = {
            let g = self.collector.pin();
            unsafe { op_recover::<M, ARM>(&self.rec, pid, &g) }
        };
        match r {
            Recovered::Completed(v) => v == RES_TRUE,
            Recovered::Restart => self.find(pid, key),
        }
    }

    /// Completes helping obligations left *visible* in the tree by a crash:
    /// walks every reachable node and runs `Help` on every tagged info until
    /// a full pass finds none. Call after every process ran its `recover_*`.
    ///
    /// Mirrors [`crate::set_core::SetCore::scrub`]: the adversarial crash
    /// image can surface tags the normal run would have healed lazily — a
    /// partially-tagged failed attempt whose earlier cells rolled back past
    /// the gathered expected values leaves its later tags for helping to
    /// clean, and under the tuned placement even completed operations'
    /// untag write-backs can roll back. Helping is idempotent, so eager
    /// re-helping can only untag/complete, never re-apply an effect.
    pub fn scrub(&self) {
        self.try_scrub().unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`RBst::scrub`] with the pass budget surfaced as a typed
    /// [`AttachError::ScrubStalled`] instead of a panic (the mapped attach
    /// path).
    pub fn try_scrub(&self) -> Result<(), AttachError> {
        const PASSES: usize = 64;
        for _ in 0..PASSES {
            let g = self.collector.pin();
            let mut dirty = false;
            // Iterative DFS: recursion depth is attacker-controlled here
            // (crash images), while the walk itself needs no ordering.
            let mut stack = vec![self.root];
            while let Some(n) = stack.pop() {
                unsafe {
                    let iv = (*n).info.load();
                    if tag::is_tagged(iv) {
                        dirty = true;
                        help::<M, ARM>(tag::ptr_of(iv), false, &g);
                    }
                    if !(*n).is_leaf() {
                        stack.push((*n).left.load() as *mut Node<M>);
                        stack.push((*n).right.load() as *mut Node<M>);
                    }
                }
            }
            if !dirty {
                return Ok(());
            }
        }
        Err(AttachError::ScrubStalled { kind: "bst", passes: PASSES })
    }

    /// Quiescent in-order snapshot of the user keys.
    pub fn snapshot_keys(&mut self) -> Vec<u64> {
        unsafe fn walk<M: Persist>(n: *mut Node<M>, out: &mut Vec<u64>) {
            unsafe {
                if n.is_null() {
                    return;
                }
                if (*n).is_leaf() {
                    let k = (*n).key.load();
                    if k > 0 && k < KEY_INF1 {
                        out.push(k);
                    }
                    return;
                }
                walk((*n).left.load() as *mut Node<M>, out);
                walk((*n).right.load() as *mut Node<M>, out);
            }
        }
        let mut out = Vec::new();
        unsafe { walk(self.root, &mut out) };
        out
    }

    /// Structural invariants for a quiescent tree: leaf-orientation, BST
    /// routing, untagged reachable nodes.
    pub fn check_invariants(&mut self) {
        unsafe fn walk<M: Persist>(n: *mut Node<M>, lo: u64, hi: u64) {
            unsafe {
                assert!(!n.is_null(), "null child in external tree");
                let k = (*n).key.load();
                assert!(
                    !tag::is_tagged((*n).info.load()),
                    "reachable node (key {k}) tagged at quiescence"
                );
                if (*n).is_leaf() {
                    assert!(lo <= k && k <= hi, "leaf {k} outside routing range [{lo},{hi}]");
                    return;
                }
                assert!((*n).right.load() != 0, "internal with one child");
                walk((*n).left.load() as *mut Node<M>, lo, k.saturating_sub(1));
                walk((*n).right.load() as *mut Node<M>, k, hi);
            }
        }
        unsafe { walk(self.root, 0, u64::MAX) };
    }
}

#[inline]
fn cell_addr<M: Persist>(w: &PWord<M>) -> u64 {
    w as *const PWord<M> as u64
}

unsafe fn drop_node_raw<M: Persist>(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut Node<M>) });
}

unsafe fn drop_info_raw<M: Persist>(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut Info<M>) });
}

impl<const ARM: u8> RBst<MappedNvm, ARM> {
    /// Attaches (or creates) a detectably recoverable BST backed by the
    /// file-backed persistent heap at `path`, running the generic restart
    /// driver ([`crate::recovery::attach_standalone`]) on an existing heap.
    /// The calling thread must be registered (`nvm::tid::set_tid`).
    pub fn attach(path: impl AsRef<Path>) -> Result<(Self, AttachSummary), AttachError> {
        Self::attach_sized(path, DEFAULT_HEAP_BYTES)
    }

    /// [`RBst::attach`] with an explicit heap size for creation.
    pub fn attach_sized(
        path: impl AsRef<Path>,
        heap_bytes: usize,
    ) -> Result<(Self, AttachSummary), AttachError> {
        attach_standalone::<Self>(path.as_ref(), (), heap_bytes)
    }

    /// The persistent heap backing this tree.
    pub fn heap(&self) -> &Arc<MappedHeap> {
        self.mapped.as_ref().expect("mapped-mode tree")
    }

    /// Whole-node span check against the backing heap.
    fn in_node(&self, a: u64) -> bool {
        let heap = self.heap();
        a & 7 == 0 && heap.contains_span(a as usize, std::mem::size_of::<Node<MappedNvm>>())
    }
}

impl<const ARM: u8> MappedLayout for RBst<MappedNvm, ARM> {
    const KIND: u64 = KIND_BST;
    const KIND_NAME: &'static str = "bst";
    type Cfg = ();

    fn cfg_word(_cfg: ()) -> u64 {
        0x42 | (ARM as u64) << 32
    }

    fn root_bytes(_cfg: ()) -> usize {
        8 // the root node's address
    }

    fn open(env: &AttachEnv, _cfg: (), root_blk: *mut u8) -> Result<Self, AttachError> {
        let collector = env.collector();
        let info_pool = env.info_pool();
        let node_pool = Pool::new_for::<MappedNvm>(env.pool_cfg(), &collector);
        let root_w = root_blk as *mut u64;
        // SAFETY: committed 8-byte root block, single-threaded attach.
        let root = unsafe {
            if root_w.read() == 0 {
                // Fresh (or creation cut short — the root word is the last
                // store, so re-running rebuilds the dummies; the abandoned
                // blocks of a torn creation are swept once the heap attaches
                // non-fresh). Same dummy shape as `with_config`.
                let draw = |key: u64, left: u64, right: u64| {
                    let p: *mut Node<MappedNvm> =
                        node_pool.take().expect("arena pool always serves");
                    (*p).init(key, left, right, 0);
                    p
                };
                let l0 = draw(0, 0, 0);
                let l1 = draw(KEY_INF1, 0, 0);
                let inner = draw(KEY_INF1, l0 as u64, l1 as u64);
                let r2 = draw(KEY_INF2, 0, 0);
                let root = draw(KEY_INF2, inner as u64, r2 as u64);
                root_w.write(root as u64);
                MappedNvm::pbarrier(&*(root_w as *const nvm::PWord<MappedNvm>));
                root
            } else {
                root_w.read() as *mut Node<MappedNvm>
            }
        };
        Ok(Self {
            root,
            rec: env.rec_area(),
            collector,
            info_pool,
            node_pool,
            mapped: Some(Arc::clone(&env.heap)),
        })
    }
}

impl<const ARM: u8> SlotOps for RBst<MappedNvm, ARM> {
    fn validate_image(&self, infos: &mut HashSet<u64>) -> Result<(), MapError> {
        // Iterative DFS with a step budget (cycle guard); every node is
        // dereferenced only after its whole span passed `in_node`.
        let mut budget = self.heap().bump_granules() + 8;
        if !self.in_node(self.root as u64) {
            return Err(MapError::CorruptPointer { addr: self.root as u64 });
        }
        let mut stack = vec![self.root as u64];
        while let Some(n) = stack.pop() {
            if budget == 0 {
                return Err(MapError::CorruptPointer { addr: n });
            }
            budget -= 1;
            // SAFETY: span-validated before push.
            unsafe {
                let node = n as *mut Node<MappedNvm>;
                let iv = tag::untagged((*node).info.load());
                if iv != 0 {
                    infos.insert(iv);
                }
                if (*node).is_leaf() {
                    continue;
                }
                for child in [(*node).left.load(), (*node).right.load()] {
                    if !self.in_node(child) {
                        return Err(MapError::CorruptPointer { addr: child });
                    }
                    stack.push(child);
                }
            }
        }
        Ok(())
    }

    fn valid_install(&self, addr: u64) -> bool {
        self.in_node(addr)
    }

    fn try_scrub(&self) -> Result<(), AttachError> {
        RBst::try_scrub(self)
    }

    unsafe fn census(&self, live: &mut HashSet<usize>, info_refs: &mut HashMap<usize, u32>) {
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            // SAFETY: quiescent exclusive access post-scrub (caller).
            unsafe {
                live.insert(n as usize);
                let iv = tag::untagged((*n).info.load());
                if iv != 0 {
                    *info_refs.entry(iv as usize).or_insert(0) += 1;
                }
                if !(*n).is_leaf() {
                    stack.push((*n).left.load() as *mut Node<MappedNvm>);
                    stack.push((*n).right.load() as *mut Node<MappedNvm>);
                }
            }
        }
    }

    fn each_cached(&mut self, f: &mut dyn FnMut(usize)) {
        self.node_pool.each_idle(|p| f(p as usize));
        self.info_pool.each_idle(|p| f(p as usize));
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send + Sync> {
        self
    }
}

impl<M: Persist, const ARM: u8> Drop for RBst<M, ARM> {
    fn drop(&mut self) {
        if self.mapped.is_some() {
            // Mapped mode: the arena is the durable state; pools return
            // their caches to the persistent free list on drop.
            return;
        }
        // Same dedup-grave teardown as the list (crash images can resurrect
        // reachability of parked nodes).
        let mut grave: std::collections::HashMap<usize, unsafe fn(*mut u8)> =
            self.collector.take_parked().into_iter().map(|(p, f)| (p as usize, f)).collect();
        self.rec.each_published(|rd| {
            if !tag::is_direct(rd) && tag::untagged(rd) != 0 {
                grave.insert(tag::untagged(rd) as usize, drop_info_raw::<M>);
            }
        });
        unsafe fn scan<M: Persist>(
            n: *mut Node<M>,
            grave: &mut std::collections::HashMap<usize, unsafe fn(*mut u8)>,
        ) {
            unsafe {
                if n.is_null() || grave.contains_key(&(n as usize)) {
                    return;
                }
                grave.insert(n as usize, drop_node_raw::<M>);
                let iv = tag::untagged((*n).info.load());
                if iv != 0 {
                    grave.insert(iv as usize, drop_info_raw::<M>);
                }
                if !(*n).is_leaf() {
                    scan((*n).left.load() as *mut Node<M>, grave);
                    scan((*n).right.load() as *mut Node<M>, grave);
                }
            }
        }
        unsafe {
            scan(self.root, &mut grave);
            for (p, f) in grave {
                f(p as *mut u8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::CountingNvm;
    use std::sync::Arc;

    type T = RBst<CountingNvm, 0>;
    type TOpt = RBst<CountingNvm, 1>;

    #[test]
    fn sequential_set_semantics() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let t = T::new();
        assert!(!t.find(0, 5));
        assert!(t.insert(0, 5));
        assert!(t.find(0, 5));
        assert!(!t.insert(0, 5));
        assert!(t.insert(0, 3));
        assert!(t.insert(0, 9));
        assert!(t.delete(0, 5));
        assert!(!t.delete(0, 5));
        assert!(!t.find(0, 5));
        assert!(t.find(0, 3) && t.find(0, 9));
    }

    #[test]
    fn inorder_snapshot_is_sorted() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let mut t = TOpt::new();
        for k in [50u64, 20, 80, 10, 30, 70, 90, 25, 35] {
            assert!(t.insert(0, k));
        }
        assert_eq!(t.snapshot_keys(), vec![10, 20, 25, 30, 35, 50, 70, 80, 90]);
        t.check_invariants();
    }

    #[test]
    fn mixed_random_ops_match_btreeset() {
        use rand::{Rng, SeedableRng};
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut t = T::new();
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..3000 {
            let k = rng.gen_range(1..64u64);
            match rng.gen_range(0..3) {
                0 => assert_eq!(t.insert(0, k), model.insert(k), "insert {k}"),
                1 => assert_eq!(t.delete(0, k), model.remove(&k), "delete {k}"),
                _ => assert_eq!(t.find(0, k), model.contains(&k), "find {k}"),
            }
        }
        assert_eq!(t.snapshot_keys(), model.iter().copied().collect::<Vec<_>>());
        t.check_invariants();
    }

    #[test]
    fn no_leaks_after_drop() {
        let _gate = crate::counters::gate_exclusive();
        nvm::tid::set_tid(0);
        let nodes0 = crate::counters::live_nodes();
        let infos0 = crate::counters::live_infos();
        {
            let mut t = T::new();
            for k in 1..=100u64 {
                t.insert(0, k);
            }
            for k in (1..=100u64).step_by(2) {
                t.delete(0, k);
            }
            t.check_invariants();
        }
        assert_eq!(crate::counters::live_nodes(), nodes0, "node leak/double-free");
        assert_eq!(crate::counters::live_infos(), infos0, "info leak/double-free");
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let _gate = crate::counters::gate_shared();
        let t = Arc::new(T::new());
        let hs: Vec<_> = (0..4u64)
            .map(|p| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    nvm::tid::set_tid(p as usize);
                    for i in 0..150u64 {
                        assert!(t.insert(p as usize, 1 + p + i * 4));
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let mut t = Arc::into_inner(t).unwrap();
        assert_eq!(t.snapshot_keys().len(), 600);
        t.check_invariants();
    }

    #[test]
    fn concurrent_churn_keeps_invariants() {
        use rand::{Rng, SeedableRng};
        let _gate = crate::counters::gate_shared();
        let t = Arc::new(T::new());
        let hs: Vec<_> = (0..4)
            .map(|p| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    nvm::tid::set_tid(p);
                    let mut rng = rand::rngs::StdRng::seed_from_u64(p as u64 + 7);
                    for _ in 0..1500 {
                        let k = rng.gen_range(1..32u64);
                        match rng.gen_range(0..3) {
                            0 => {
                                t.insert(p, k);
                            }
                            1 => {
                                t.delete(p, k);
                            }
                            _ => {
                                t.find(p, k);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let mut t = Arc::into_inner(t).unwrap();
        t.check_invariants();
    }

    #[test]
    fn recovery_without_crash_restarts() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let t = T::new();
        assert!(t.recover_insert(0, 42));
        assert!(t.find(0, 42));
        assert!(t.recover_delete(0, 42));
        assert!(!t.find(0, 42));
    }

    #[test]
    fn mapped_attach_bst_preserves_contents_across_detach() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let path = std::env::temp_dir().join(format!(
            "isb_bst_{}_{}.heap",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let (t, s) = RBst::<nvm::MappedNvm, 0>::attach_sized(&path, 1 << 21).unwrap();
            assert!(s.heap.created);
            for k in [50u64, 20, 80, 10, 30, 70, 90, 25, 35] {
                assert!(t.insert(0, k));
            }
            assert!(t.delete(0, 20));
        }
        {
            let (mut t, s) = RBst::<nvm::MappedNvm, 0>::attach_sized(&path, 1 << 21).unwrap();
            assert!(!s.heap.created);
            assert_eq!(s.heap.poisoned, 0, "clean detach leaves no torn blocks");
            assert_eq!(t.snapshot_keys(), vec![10, 25, 30, 35, 50, 70, 80, 90]);
            t.check_invariants();
            assert!(t.insert(0, 60));
            assert!(t.delete(0, 90));
        }
        {
            let (mut t, _) = RBst::<nvm::MappedNvm, 0>::attach_sized(&path, 1 << 21).unwrap();
            assert_eq!(t.snapshot_keys(), vec![10, 25, 30, 35, 50, 60, 70, 80]);
            t.check_invariants();
        }
        let _ = std::fs::remove_file(&path);
    }
}
