//! Live-object and pool-reuse counters for leak/double-free detection and
//! allocation-ablation reporting.
//!
//! Every node/Info heap allocation increments, every deallocation decrements;
//! pool hits bump the reuse counters instead. After dropping a structure (and
//! its collector and pools), the live counts must return to their baseline —
//! the integration tests assert this.
//!
//! The counters are **compiled out of the hot path by default**: they are
//! active only under `cfg(test)` (this crate's own unit tests) or the
//! `count-allocs` feature (enabled by the `tests` and `bench_harness`
//! packages). Production users of `isb` pay nothing; the benchmark harness
//! opts in explicitly so the fig9 ablation can report reuse rates. When
//! disabled, every accessor reports zero.

#[cfg(any(test, feature = "count-allocs"))]
use std::sync::atomic::{AtomicIsize, AtomicU64, Ordering::Relaxed};

#[cfg(any(test, feature = "count-allocs"))]
static NODES: AtomicIsize = AtomicIsize::new(0);
#[cfg(any(test, feature = "count-allocs"))]
static INFOS: AtomicIsize = AtomicIsize::new(0);
#[cfg(any(test, feature = "count-allocs"))]
static NODE_REUSE: AtomicU64 = AtomicU64::new(0);
#[cfg(any(test, feature = "count-allocs"))]
static INFO_REUSE: AtomicU64 = AtomicU64::new(0);

pub(crate) fn node_alloc() {
    #[cfg(any(test, feature = "count-allocs"))]
    NODES.fetch_add(1, Relaxed);
}
pub(crate) fn node_free() {
    #[cfg(any(test, feature = "count-allocs"))]
    NODES.fetch_sub(1, Relaxed);
}
pub(crate) fn info_alloc() {
    #[cfg(any(test, feature = "count-allocs"))]
    INFOS.fetch_add(1, Relaxed);
}
pub(crate) fn info_free() {
    #[cfg(any(test, feature = "count-allocs"))]
    INFOS.fetch_sub(1, Relaxed);
}
pub(crate) fn node_reuse() {
    #[cfg(any(test, feature = "count-allocs"))]
    NODE_REUSE.fetch_add(1, Relaxed);
}
pub(crate) fn info_reuse() {
    #[cfg(any(test, feature = "count-allocs"))]
    INFO_REUSE.fetch_add(1, Relaxed);
}

/// Test coordination: the counters are process-global, so leak assertions
/// need exclusive use while ordinary allocating tests hold the shared side.
/// (Poisoning is ignored — a panicked test must not cascade.)
pub static TEST_GATE: std::sync::RwLock<()> = std::sync::RwLock::new(());

/// Shared gate guard for tests that allocate but don't assert on counters.
pub fn gate_shared() -> std::sync::RwLockReadGuard<'static, ()> {
    TEST_GATE.read().unwrap_or_else(|e| e.into_inner())
}

/// Exclusive gate guard for leak-assertion tests.
pub fn gate_exclusive() -> std::sync::RwLockWriteGuard<'static, ()> {
    TEST_GATE.write().unwrap_or_else(|e| e.into_inner())
}

/// Number of live nodes across all structures in this process (0 when the
/// counters are compiled out).
pub fn live_nodes() -> isize {
    #[cfg(any(test, feature = "count-allocs"))]
    return NODES.load(Relaxed);
    #[cfg(not(any(test, feature = "count-allocs")))]
    0
}

/// Number of live Info descriptors across all structures in this process
/// (0 when the counters are compiled out).
pub fn live_infos() -> isize {
    #[cfg(any(test, feature = "count-allocs"))]
    return INFOS.load(Relaxed);
    #[cfg(not(any(test, feature = "count-allocs")))]
    0
}

/// Total node allocations served from a pool free list instead of the heap
/// (monotonic; 0 when the counters are compiled out).
pub fn node_reuses() -> u64 {
    #[cfg(any(test, feature = "count-allocs"))]
    return NODE_REUSE.load(Relaxed);
    #[cfg(not(any(test, feature = "count-allocs")))]
    0
}

/// Total Info allocations served from a pool free list instead of the heap
/// (monotonic; 0 when the counters are compiled out).
pub fn info_reuses() -> u64 {
    #[cfg(any(test, feature = "count-allocs"))]
    return INFO_REUSE.load(Relaxed);
    #[cfg(not(any(test, feature = "count-allocs")))]
    0
}

/// Whether the allocation counters are compiled in (`cfg(test)` or the
/// `count-allocs` feature). Callers can skip count-based assertions when not.
pub const fn enabled() -> bool {
    cfg!(any(test, feature = "count-allocs"))
}
