//! Live-object counters for leak/double-free detection in tests.
//!
//! Every node/Info allocation increments, every deallocation decrements.
//! After dropping a structure (and its collector), both must return to their
//! baseline — the integration tests assert this. The counters are plain
//! relaxed atomics touched only on allocation paths; they are kept always-on
//! so cross-crate tests can use them too.

use std::sync::atomic::{AtomicIsize, Ordering::Relaxed};

static NODES: AtomicIsize = AtomicIsize::new(0);
static INFOS: AtomicIsize = AtomicIsize::new(0);

pub(crate) fn node_alloc() {
    NODES.fetch_add(1, Relaxed);
}
pub(crate) fn node_free() {
    NODES.fetch_sub(1, Relaxed);
}
pub(crate) fn info_alloc() {
    INFOS.fetch_add(1, Relaxed);
}
pub(crate) fn info_free() {
    INFOS.fetch_sub(1, Relaxed);
}

/// Test coordination: the counters are process-global, so leak assertions
/// need exclusive use while ordinary allocating tests hold the shared side.
/// (Poisoning is ignored — a panicked test must not cascade.)
pub static TEST_GATE: std::sync::RwLock<()> = std::sync::RwLock::new(());

/// Shared gate guard for tests that allocate but don't assert on counters.
pub fn gate_shared() -> std::sync::RwLockReadGuard<'static, ()> {
    TEST_GATE.read().unwrap_or_else(|e| e.into_inner())
}

/// Exclusive gate guard for leak-assertion tests.
pub fn gate_exclusive() -> std::sync::RwLockWriteGuard<'static, ()> {
    TEST_GATE.write().unwrap_or_else(|e| e.into_inner())
}

/// Number of live nodes across all structures in this process.
pub fn live_nodes() -> isize {
    NODES.load(Relaxed)
}

/// Number of live Info descriptors across all structures in this process.
pub fn live_infos() -> isize {
    INFOS.load(Relaxed)
}
