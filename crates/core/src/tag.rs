//! Tagged info pointers.
//!
//! Each node's `info` field holds a pointer to the [`crate::engine::Info`]
//! structure of the last operation that affected the node, with a **tag** in
//! bit 0 (all Info structures are ≥8-aligned). A *tagged* pointer acts as a
//! soft lock on the node ("tagging a node acts like locking it", Section 3);
//! nodes tagged **for deletion** stay tagged forever and double as Harris
//! mark bits.

/// Tag bit.
pub const TAG: u64 = 1;

/// Direct-tracking bit (bit 2) of a published `RD_q` value: set when the
/// word names a **node** announced by a direct-tracked structure
/// ([`crate::stack::RStack`]) instead of an [`crate::engine::Info`]
/// descriptor. Recovery and release sites must branch on it — treating a
/// direct entry as a descriptor (or vice versa) would misinterpret raw
/// memory. Within a direct entry, [`TAG`] (bit 0) distinguishes a pop's
/// *claim* announcement from a push's node announcement.
pub const DIRECT: u64 = 0b100;

/// Whether a published `RD_q` value is a direct-tracked node announcement.
#[inline]
pub const fn is_direct(p: u64) -> bool {
    p & DIRECT == DIRECT
}

/// The node/descriptor address of a published `RD_q` value with every
/// low-bit annotation ([`TAG`], [`DIRECT`]) stripped.
#[inline]
pub const fn addr_of(p: u64) -> u64 {
    p & !(TAG | DIRECT)
}

/// Returns a tagged version of `p` without changing the referent.
#[inline]
pub const fn tagged(p: u64) -> u64 {
    p | TAG
}

/// Returns an untagged version of `p` without changing the referent.
#[inline]
pub const fn untagged(p: u64) -> u64 {
    p & !TAG
}

/// Whether `p` is tagged (the node is soft-locked).
#[inline]
pub const fn is_tagged(p: u64) -> bool {
    p & TAG == TAG
}

/// The raw pointer part of a (possibly tagged) info word.
#[inline]
pub fn ptr_of<T>(p: u64) -> *mut T {
    untagged(p) as *mut T
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        let p = 0x1000u64;
        assert!(!is_tagged(p));
        let t = tagged(p);
        assert!(is_tagged(t));
        assert_eq!(untagged(t), p);
        assert_eq!(tagged(t), t, "tagging is idempotent");
        assert_eq!(untagged(untagged(t)), p);
    }

    #[test]
    fn null_is_untagged() {
        assert!(!is_tagged(0));
        assert!(ptr_of::<u8>(0).is_null());
        assert!(ptr_of::<u8>(tagged(0)).is_null(), "tagged null still points nowhere");
    }

    #[test]
    fn ptr_of_strips_tag_only() {
        let x = Box::into_raw(Box::new(7u64));
        let w = tagged(x as u64);
        assert_eq!(ptr_of::<u64>(w), x);
        assert_eq!(ptr_of::<u64>(x as u64), x);
        unsafe { drop(Box::from_raw(x)) };
    }
}
