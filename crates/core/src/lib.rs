//! # `isb` — ISB-tracking: detectably recoverable lock-free data structures
//!
//! Rust reproduction of Attiya, Ben-Baruch, Fatourou, Hendler, Kosmas,
//! *"Tracking in Order to Recover: Detectable Recovery of Lock-Free Data
//! Structures"* (SPAA 2020).
//!
//! **Detectable recovery** means: after a system-wide crash, every process
//! can determine whether its interrupted operation took effect and, if so,
//! obtain its response — without full-fledged logging. ISB-tracking piggy-
//! backs this on the *Info-structure-based helping* already present in many
//! lock-free designs: each update installs a descriptor ([`engine::Info`])
//! in the nodes it affects (tagging = soft-locking them), a per-process
//! persistent pointer `RD_q` names the descriptor of the attempt in flight,
//! and a `result` field inside the descriptor — persisted before the
//! operation unlocks anything — carries the response across the crash.
//!
//! ## Structures
//! * [`list::RList`] — detectably recoverable sorted linked list (paper §4),
//!   the one-bucket instantiation of the head-parameterized ordered-set core
//!   in [`set_core`].
//! * [`hashmap::RHashMap`] — sharded, detectably recoverable hash map: a
//!   power-of-two array of [`set_core`] buckets sharing one recovery area
//!   and one collector (DESIGN.md §8).
//! * [`queue::RQueue`] — ISB-tracked MS-queue (paper §5 / supplementary B.2).
//! * [`bst::RBst`] — detectably recoverable external BST (paper §6).
//! * [`exchanger::RExchanger`] — detectably recoverable exchanger (paper §6).
//! * [`stack::RStack`] — direct-tracked elimination stack (paper §1/§5):
//!   `RD_q` announces *nodes* instead of descriptors, claim stamps
//!   arbitrate pops across a crash.
//! * [`store::Store`] — one mapped heap hosting many named structures
//!   (catalog + shared recovery area + union census/sweep, DESIGN.md §11).
//!
//! ## Model parameters: `M` and `ARM`
//!
//! Every structure is generic over two parameters that are monomorphised
//! away:
//!
//! * `M:` [`nvm::Persist`] — the persistency model. [`nvm::RealNvm`]
//!   executes and counts real flushes, [`nvm::CountingNvm`] only counts,
//!   [`nvm::NoPersist`] is the private-cache model, [`nvm::SimNvm`] is the
//!   adversarial crash simulator, and [`nvm::MappedNvm`] pairs real flushes
//!   with a file-backed heap ([`nvm::mapped`]) so the structure survives an
//!   actual process death — **every** structure gains an `attach(path)`
//!   constructor through the generic [`recovery::MappedLayout`] driver
//!   (remap, Op-Recover replay per process, scrub, census + leak sweep),
//!   and [`store::Store`] hosts many *named* structures in one heap.
//! * `ARM: bool` — the persistency *placement*. `false` is the paper's
//!   general ROpt-ISB placement ("Isb"); `true` is the hand-tuned one
//!   ("Isb-Opt"), which defers the durability of `CP_q := 1` and batches
//!   tag write-backs, saving one `psync` per operation (see
//!   [`recovery`]'s module docs).
//!
//! ## Memory: pools and recycling
//!
//! Descriptors and nodes are drawn from per-thread, epoch-recycled pools
//! ([`pool`]): retirement routes through the EBR collector, so an address
//! re-enters circulation only after two global epoch advances — the same
//! delay that makes deallocation safe, preserving the info-pointer ABA
//! argument (DESIGN.md §5/§9). Never-published objects skip the EBR
//! round-trip. Under the mapped backend the same pools draw from the
//! persistent arena instead of the process heap.
//!
//! ## Quick start
//! ```
//! use isb::list::RList;
//! use nvm::CountingNvm;
//!
//! nvm::tid::set_tid(0); // register this thread as process 0
//! let list: RList<CountingNvm> = RList::new();
//! assert!(list.insert(0, 42));
//! assert!(list.find(0, 42));
//! assert!(!list.insert(0, 42)); // duplicate
//! assert!(list.delete(0, 42));
//! assert!(!list.find(0, 42));
//! ```

#![warn(missing_docs)]

pub mod arm;
pub mod bst;
pub mod counters;
pub mod engine;
pub mod exchanger;
pub mod hashmap;
pub mod list;
pub mod pool;
pub mod queue;
pub mod recovery;
pub mod resptable;
pub mod set_core;
pub mod stack;
pub mod store;
pub mod tag;

/// Operation type tags stored in Info descriptors (diagnostics only).
pub mod optype {
    /// List/BST insert.
    pub const INSERT: u8 = 1;
    /// List/BST delete.
    pub const DELETE: u8 = 2;
    /// List/BST find.
    pub const FIND: u8 = 3;
    /// Queue enqueue.
    pub const ENQ: u8 = 4;
    /// Queue dequeue.
    pub const DEQ: u8 = 5;
}
