//! Per-thread, epoch-recycled object pools for Info descriptors and nodes.
//!
//! The paper assumes a garbage collector, so its pseudocode allocates a fresh
//! Info per attempt and fresh nodes per operation. A faithful port pays
//! malloc/free on every hot-path operation — measurably more than the CASes
//! and pwbs the paper studies. This module removes that churn without
//! touching the persistency placement:
//!
//! * A [`Pool`] keeps one free list of recycled allocations per process
//!   (tid), padded like the reclamation slots; `take`/`give` touch only the
//!   calling thread's list.
//! * Objects are ordinary `Box` allocations, refilled a fixed-size slab
//!   (`SLAB`) at a time, so every teardown path (grave scan, parked-bag
//!   dedup, leak counters) keeps working on individual allocations.
//! * **Retirement routes through the EBR collector**: [`Pool::retire`] defers
//!   a *recycle* (via [`reclaim::Guard::retire_ctx`]) exactly like a free, so
//!   an address re-enters circulation only after two global epoch advances —
//!   the same delay that makes deallocation safe, preserving the
//!   info-pointer ABA argument of DESIGN.md §5 (see §9).
//! * Objects that were **never published** — read-only descriptors, new
//!   nodes of an attempt that failed privately — skip the EBR round-trip and
//!   go straight back to the free list ([`Pool::give`]): no other thread can
//!   hold their address, per the engine's `installs` accounting.
//!
//! Crash simulation (`M::SIMULATED`) and disabled collectors run with the
//! pool in **passthrough** mode: every take is a heap allocation and every
//! give/retire a real (or parked) free, so the adversarial harness and the
//! grave-scan dedup keep seeing stable, unique addresses.
//!
//! **Mapped mode** ([`PoolCfg::mapped`]): refills allocate blocks from a
//! persistent [`nvm::mapped::MappedHeap`] (committed only after full
//! initialization), overflow and teardown return blocks to the arena's
//! persistent free list, and the per-thread caches work unchanged on top.
//! The EBR retirement path is identical — the epoch delay is what makes
//! *address* reuse safe, regardless of which allocator owns the address.
//! Arena objects never run Rust destructors: persistent objects are plain
//! words with no owned resources.

use nvm::mapped::MappedHeap;
use nvm::pad::CachePadded;
use nvm::tid;
use nvm::MAX_PROCS;
use reclaim::Guard;
use std::cell::UnsafeCell;
use std::sync::Arc;

/// Objects a [`Pool`] can manage.
///
/// # Safety-adjacent contract
/// `fresh()` must produce a fully initialized object that is safe to hand to
/// any consumer after its in-place re-initialization; `attach` (if
/// overridden) stores the opaque pool handle for owner-routed retirement.
pub trait PoolItem: Send + Sized + 'static {
    /// Construct a blank object (heap-refill path). Implementations bump
    /// their heap-allocation counter here.
    fn fresh() -> Self;
    /// Called once per object with an opaque handle to its owning pool
    /// (structures whose retirement site cannot see the pool — the Info
    /// descriptor released inside the engine — store it; nodes ignore it).
    fn attach(&mut self, _pool: *const ()) {}
    /// Called once per object with the owning process's participant slot + 1
    /// (0 ⇒ exclusive heap). On *shared* mapped heaps the Info descriptor
    /// stores it so a peer performing the final release can recognise a
    /// foreign pool handle and leak instead of dereferencing it.
    fn attach_slot(&mut self, _slot: u32) {}
    /// Counter hook: the object was served from a free list.
    fn count_reuse() {}
}

/// How many objects a heap refill allocates at once.
const SLAB: usize = 16;

/// Default per-process free-list capacity (objects beyond it are freed for
/// real). Bounds live-but-idle memory per process and per object type.
pub const DEFAULT_CAPACITY: usize = 256;

/// Pool configuration, carried by the structures' `with_*` constructors.
#[derive(Debug, Clone)]
pub struct PoolCfg {
    /// Master switch; pooling is additionally forced off under crash
    /// simulation and disabled collectors (passthrough mode).
    pub enabled: bool,
    /// Per-process free-list capacity.
    pub capacity: usize,
    /// Route every allocation through this persistent arena instead of the
    /// process heap (the mapped backend). Arena-backed pools never run in
    /// passthrough mode: a `Box` fallback would hand out volatile memory
    /// that silently vanishes on restart.
    pub arena: Option<Arc<MappedHeap>>,
}

impl Default for PoolCfg {
    fn default() -> Self {
        Self { enabled: true, capacity: DEFAULT_CAPACITY, arena: None }
    }
}

impl PoolCfg {
    /// Pooling disabled: every allocation is boxed, as pre-pool builds did.
    /// The fig9 ablation and the persist-placement golden tests run this
    /// mode side by side with the default.
    pub fn boxed() -> Self {
        Self { enabled: false, ..Self::default() }
    }

    /// Pooling with a small per-process capacity (reuse-stress tests).
    pub fn tiny(capacity: usize) -> Self {
        Self { enabled: true, capacity, arena: None }
    }

    /// All allocations drawn from (and returned to) `heap`'s persistent
    /// bump/free-list allocator; the per-thread caches layer on top.
    pub fn mapped(heap: Arc<MappedHeap>) -> Self {
        Self { enabled: true, capacity: DEFAULT_CAPACITY, arena: Some(heap) }
    }
}

/// The shared pool state. Heap-allocated behind [`Pool`] (reference-counted,
/// so clones of one pool — e.g. the Info pool a [`crate::store::Store`]
/// shares across every structure in one heap — all feed the same free
/// lists) so its address is stable across moves of the owning structure
/// (retired garbage holds raw `PoolInner` pointers until the collector
/// frees it; each structure's collector drops before its own pool clone,
/// which keeps the inner alive through the drain).
pub struct PoolInner<T: PoolItem> {
    /// Per-process free lists; each is touched only by its owning thread
    /// (same discipline as the reclamation slots).
    lists: Vec<CachePadded<UnsafeCell<Vec<*mut T>>>>,
    capacity: usize,
    /// Mapped mode: refills allocate from (and overflow/teardown frees to)
    /// this persistent arena instead of the process heap.
    arena: Option<Arc<MappedHeap>>,
}

unsafe impl<T: PoolItem> Send for PoolInner<T> {}
unsafe impl<T: PoolItem> Sync for PoolInner<T> {}

impl<T: PoolItem> PoolInner<T> {
    /// The calling thread's free list. Threads without a registered tid
    /// (drop-time teardown) use slot 0 — teardown has exclusive access.
    #[allow(clippy::mut_from_ref)] // per-tid exclusivity, as in reclaim::Slot
    fn my_list(&self) -> &mut Vec<*mut T> {
        let t = tid::try_tid().unwrap_or(0);
        unsafe { &mut *self.lists[t].get() }
    }

    /// Push a reusable object, freeing it for real if the list is full.
    ///
    /// # Safety
    /// `p` must be a live allocation from this pool's backing allocator
    /// (heap `Box` or its arena) that no thread can reach.
    unsafe fn recycle(&self, p: *mut T) {
        let list = self.my_list();
        if list.len() < self.capacity {
            list.push(p);
        } else {
            unsafe { self.dealloc(p) };
        }
    }

    /// Return `p` to the backing allocator. Arena blocks run no destructor:
    /// persistent objects hold no owned resources (plain words), and their
    /// bookkeeping counters are process-local anyway.
    ///
    /// # Safety
    /// As [`PoolInner::recycle`].
    unsafe fn dealloc(&self, p: *mut T) {
        match &self.arena {
            Some(h) => unsafe { h.free(p as *mut u8) },
            None => drop(unsafe { Box::from_raw(p) }),
        }
    }
}

impl<T: PoolItem> Drop for PoolInner<T> {
    fn drop(&mut self) {
        for l in &self.lists {
            for p in unsafe { &mut *l.get() }.drain(..) {
                // Mapped mode returns the idle objects to the arena's
                // persistent free list (so the next attach sees them as
                // FREE blocks); heap mode frees the boxes.
                unsafe { self.dealloc(p) };
            }
        }
    }
}

/// The EBR recycle hook: `ctx` is the `PoolInner` the object came from.
unsafe fn recycle_thunk<T: PoolItem>(p: *mut u8, ctx: *mut u8) {
    unsafe { (*(ctx as *const PoolInner<T>)).recycle(p as *mut T) };
}

/// A per-thread, epoch-recycled object pool (see module docs). Clones share
/// the same free lists (the underlying state is reference-counted).
pub struct Pool<T: PoolItem> {
    /// `None` when pooling is off (passthrough mode).
    inner: Option<Arc<PoolInner<T>>>,
}

impl<T: PoolItem> Clone for Pool<T> {
    fn clone(&self) -> Self {
        Self { inner: self.inner.clone() }
    }
}

impl<T: PoolItem> Pool<T> {
    /// The canonical constructor: applies `cfg` gated on the structure's
    /// persistency model and collector — pooling drops to passthrough under
    /// crash simulation or a disabled collector (see module docs). Every
    /// structure builds its pools through this so the safety-critical gate
    /// lives in exactly one place.
    pub fn new_for<M: nvm::Persist>(cfg: PoolCfg, collector: &reclaim::Collector) -> Self {
        if let Some(heap) = cfg.arena {
            // An arena-backed pool must never fall back to `Box`: the
            // fallback would hand out volatile memory whose addresses get
            // persisted into the arena and dangle after a restart.
            assert!(
                cfg.enabled && collector.is_enabled() && !M::SIMULATED,
                "arena-backed pools require pooling on, an enabled collector, \
                 and a non-simulated persistency model"
            );
            return Self::with_arena(heap, cfg.capacity);
        }
        Self::new(cfg.enabled && collector.is_enabled() && !M::SIMULATED, cfg.capacity)
    }

    /// A pool; `enabled = false` yields passthrough mode (prefer
    /// [`Pool::new_for`], which derives the flag from the model/collector).
    pub fn new(enabled: bool, capacity: usize) -> Self {
        Self {
            inner: enabled.then(|| {
                Arc::new(PoolInner {
                    lists: (0..MAX_PROCS)
                        .map(|_| CachePadded::new(UnsafeCell::new(Vec::new())))
                        .collect(),
                    capacity,
                    arena: None,
                })
            }),
        }
    }

    /// A pool whose refills/overflows go through `heap` (the mapped
    /// backend). Prefer [`Pool::new_for`] with [`PoolCfg::mapped`].
    pub fn with_arena(heap: Arc<MappedHeap>, capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(PoolInner {
                lists: (0..MAX_PROCS)
                    .map(|_| CachePadded::new(UnsafeCell::new(Vec::new())))
                    .collect(),
                capacity,
                arena: Some(heap),
            })),
        }
    }

    /// Whether this pool actually recycles (false = passthrough).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opaque handle for owner-routed retirement ([`retire_to`]); null in
    /// passthrough mode.
    pub fn handle(&self) -> *const () {
        self.inner.as_deref().map_or(std::ptr::null(), |i| i as *const PoolInner<T> as *const ())
    }

    /// Pop a reusable object from the calling thread's free list, refilling
    /// a slab from the heap when empty. `None` in passthrough mode (the
    /// caller allocates exactly as pre-pool code did).
    ///
    /// The returned object is *dirty*: the caller must re-initialize every
    /// field it will publish.
    pub fn take(&self) -> Option<*mut T> {
        let inner = self.inner.as_deref()?;
        let list = inner.my_list();
        if let Some(p) = list.pop() {
            T::count_reuse();
            return Some(p);
        }
        let owner = inner as *const PoolInner<T> as *const ();
        let refill = SLAB.min(inner.capacity.max(1));
        if let Some(heap) = &inner.arena {
            // Mapped mode: draw blocks from the persistent arena. Each block
            // is committed only after `T::fresh()` fully initialized it, so
            // a kill mid-refill leaves torn blocks the next attach poisons.
            // The arena grows new segments on demand, so this panic now
            // means the VA reservation (or a `create_bounded` cap) is
            // genuinely exhausted, not that the initial size was guessed low.
            let oslot = if heap.is_shared() {
                heap.my_participant().map_or(0, |s| s as u32 + 1)
            } else {
                0
            };
            for _ in 0..refill {
                let raw = heap
                    .alloc(std::mem::size_of::<T>())
                    .unwrap_or_else(|e| panic!("persistent arena refill failed: {e}"))
                    as *mut T;
                // SAFETY: freshly allocated, exclusively owned block large
                // enough for a `T` (64-byte aligned payload).
                unsafe {
                    raw.write(T::fresh());
                    (*raw).attach(owner);
                    (*raw).attach_slot(oslot);
                }
                heap.commit(raw as *mut u8);
                list.push(raw);
            }
            return list.pop();
        }
        for _ in 0..refill - 1 {
            let mut b = Box::new(T::fresh());
            b.attach(owner);
            list.push(Box::into_raw(b));
        }
        let mut b = Box::new(T::fresh());
        b.attach(owner);
        Some(Box::into_raw(b))
    }

    /// Return a **never-published** object directly to the free list — the
    /// private-failure fast path, no EBR round-trip.
    ///
    /// Passthrough mode retires through `g` instead of freeing in place:
    /// under a disabled (crash-sim) collector that *parks* the object, which
    /// is load-bearing — the object's words are registered with the crash
    /// simulator, and freeing them mid-scenario would leave dangling
    /// addresses for `build_crash_image` to poke (heap corruption; the
    /// registry contract requires every registered word to stay alive until
    /// `sim::reset`).
    ///
    /// # Safety
    /// `p` must be a live `Box<T>` allocation whose address no other thread
    /// can hold (never installed in a shared cell, never passed to `help`).
    pub unsafe fn give(&self, p: *mut T, g: &Guard<'_>) {
        match self.inner.as_deref() {
            Some(inner) => unsafe { inner.recycle(p) },
            None => unsafe { g.retire_box(p) },
        }
    }

    /// Retire a **published** object: recycled only after two global epoch
    /// advances, via the collector (passthrough mode: plain EBR free).
    ///
    /// # Safety
    /// As [`reclaim::Guard::retire_box`]: `p` unreachable to any thread that
    /// pins after this call, retired exactly once.
    pub unsafe fn retire(&self, p: *mut T, g: &Guard<'_>) {
        match self.inner.as_deref() {
            Some(inner) => unsafe {
                g.retire_ctx(
                    p as *mut u8,
                    inner as *const PoolInner<T> as *mut u8,
                    recycle_thunk::<T>,
                )
            },
            None => unsafe { g.retire_box(p) },
        }
    }

    /// Objects currently waiting on free lists (diagnostics). `&mut self`
    /// because the per-thread lists are unsynchronized: reading them while
    /// other threads take/give would be a data race, so quiescent exclusive
    /// access (across every clone of this pool) is required, not merely
    /// recommended.
    pub fn idle(&mut self) -> usize {
        // SAFETY: quiescent exclusive access per the contract above.
        self.inner
            .as_deref()
            .map_or(0, |i| i.lists.iter().map(|l| unsafe { (*l.get()).len() }).sum())
    }

    /// Visits every object currently idle on the free lists (`&mut self`
    /// for the same reason as [`Pool::idle`]). The mapped backend's attach
    /// uses this to keep cache-resident blocks out of its arena sweep.
    pub fn each_idle(&mut self, mut f: impl FnMut(*mut T)) {
        if let Some(i) = self.inner.as_deref() {
            for l in i.lists.iter() {
                // SAFETY: quiescent exclusive access per the contract above.
                for &p in unsafe { &*l.get() }.iter() {
                    f(p);
                }
            }
        }
    }
}

/// Retire `p` into the pool identified by `owner` (a [`Pool::handle`]), or
/// through plain EBR when `owner` is null. Used by the engine, whose
/// release sites cannot see the owning structure.
///
/// # Safety
/// `owner` must be null or a handle of a live `Pool<T>` that outlives the
/// collector behind `g`; `p` as in [`Pool::retire`].
pub unsafe fn retire_to<T: PoolItem>(owner: *const (), p: *mut T, g: &Guard<'_>) {
    if owner.is_null() {
        unsafe { g.retire_box(p) };
    } else {
        unsafe { g.retire_ctx(p as *mut u8, owner as *mut u8, recycle_thunk::<T>) };
    }
}

/// Return a never-published `p` directly to the pool identified by `owner`,
/// or retire it through plain EBR when `owner` is null (the pre-pool
/// behaviour of a zero-refcount descriptor). Engine-side twin of
/// [`Pool::give`].
///
/// # Safety
/// As [`retire_to`] and [`Pool::give`] combined.
pub unsafe fn give_to<T: PoolItem>(owner: *const (), p: *mut T, g: &Guard<'_>) {
    if owner.is_null() {
        unsafe { g.retire_box(p) };
    } else {
        unsafe { (*(owner as *const PoolInner<T>)).recycle(p) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim::Collector;
    use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

    static LIVE: AtomicUsize = AtomicUsize::new(0);

    struct Obj(#[allow(dead_code)] u64);
    impl PoolItem for Obj {
        fn fresh() -> Self {
            LIVE.fetch_add(1, Relaxed);
            Obj(0)
        }
    }
    impl Drop for Obj {
        fn drop(&mut self) {
            LIVE.fetch_sub(1, Relaxed);
        }
    }

    #[test]
    fn take_give_reuses_addresses_immediately() {
        nvm::tid::set_tid(0);
        let c = Collector::new();
        let g = c.pin();
        let pool: Pool<Obj> = Pool::new(true, 64);
        let a = pool.take().unwrap();
        unsafe { pool.give(a, &g) };
        let b = pool.take().unwrap();
        assert_eq!(a, b, "give must feed the next take (LIFO)");
        unsafe { pool.give(b, &g) };
    }

    #[test]
    fn passthrough_give_retires_through_ebr() {
        nvm::tid::set_tid(0);
        let c = Collector::new();
        let pool: Pool<Obj> = Pool::new(false, 64);
        assert!(pool.take().is_none());
        assert!(pool.handle().is_null());
        let p = Box::into_raw(Box::new(Obj::fresh()));
        let live = LIVE.load(Relaxed);
        {
            let g = c.pin();
            unsafe { pool.give(p, &g) };
        }
        drop(c); // collector drop frees the retired object
        assert_eq!(LIVE.load(Relaxed), live - 1, "passthrough give frees via EBR");
    }

    #[test]
    fn passthrough_give_parks_under_disabled_collector() {
        // Crash-sim discipline: a disabled collector must PARK passthrough
        // gives (freeing registered words mid-scenario corrupts the crash
        // image builder).
        nvm::tid::set_tid(0);
        let mut c = Collector::disabled();
        let pool: Pool<Obj> = Pool::new(false, 64);
        let p = Box::into_raw(Box::new(Obj::fresh()));
        let live = LIVE.load(Relaxed);
        {
            let g = c.pin();
            unsafe { pool.give(p, &g) };
        }
        assert_eq!(LIVE.load(Relaxed), live, "parked, not freed");
        let parked = c.take_parked();
        assert_eq!(parked.len(), 1);
        assert_eq!(parked[0].0, p as *mut u8);
        for (ptr, f) in parked {
            unsafe { f(ptr) };
        }
        assert_eq!(LIVE.load(Relaxed), live - 1);
    }

    #[test]
    fn retire_recycles_only_after_epoch_advances() {
        nvm::tid::set_tid(0);
        let c = Collector::new();
        let mut pool: Pool<Obj> = Pool::new(true, 64);
        let p = pool.take().unwrap();
        let idle0 = pool.idle();
        {
            let g = c.pin();
            unsafe { pool.retire(p, &g) };
        }
        assert_eq!(pool.idle(), idle0, "retired object must not be reusable yet");
        for _ in 0..500 {
            drop(c.pin());
        }
        assert_eq!(pool.idle(), idle0 + 1, "recycled after the epochs advanced");
        drop(c);
        drop(pool);
    }

    #[test]
    fn capacity_bounds_the_free_list() {
        nvm::tid::set_tid(0);
        let c = Collector::new();
        let g = c.pin();
        let mut pool: Pool<Obj> = Pool::new(true, 4);
        let ps: Vec<_> = (0..12).map(|_| pool.take().unwrap()).collect();
        let live = LIVE.load(Relaxed);
        for p in ps {
            unsafe { pool.give(p, &g) };
        }
        assert_eq!(pool.idle(), 4, "free list capped at capacity");
        assert_eq!(LIVE.load(Relaxed), live - 8, "overflow freed for real");
    }

    #[test]
    fn pool_drop_frees_idle_objects() {
        nvm::tid::set_tid(0);
        let live0 = LIVE.load(Relaxed);
        {
            let c = Collector::new();
            let g = c.pin();
            let mut pool: Pool<Obj> = Pool::new(true, 1024);
            let ps: Vec<_> = (0..40).map(|_| pool.take().unwrap()).collect();
            for p in ps {
                unsafe { pool.give(p, &g) };
            }
            assert!(pool.idle() >= 40);
        }
        assert_eq!(LIVE.load(Relaxed), live0, "pool drop leaked");
    }
}
