//! Detectably recoverable FIFO queue: ISB-tracking applied to the
//! Michael–Scott queue (paper Section 5 and supplementary B.2; the paper
//! gives no pseudocode, so the construction — documented in DESIGN.md §6 —
//! is ours).
//!
//! Layout: a sentinel-headed singly-linked list. `Head` lives in an *anchor*
//! — a pseudo-node with `(ptr, info)` fields — so it can be tagged exactly
//! like a node. `Tail` is an uncounted hint, only ever advanced to nodes
//! whose linkage is already durable, so it can never point past the
//! persisted frontier after a crash (it may lag; walking `next` heals it).
//!
//! The tail hint lives **in the anchor**, shared by every thread *and every
//! process* attached to the heap — never cached per attachment. This is
//! load-bearing for reclamation: a dequeue heals the hint away from the old
//! sentinel *before* retiring it, so any walk that starts from the hint
//! either began inside an epoch pin that predates the retirement (EBR keeps
//! the node alive) or reads the healed value. A per-process copy of the
//! hint would break that argument — the hint is carried *across* pins, so a
//! peer's dequeue+retire+recycle can leave a private copy pointing at
//! recycled memory, and a walk starting there reads a node mid-reuse (in
//! the worst case the walker's *own* fresh allocation, whose `next == 0`
//! makes `find_last` return it as "last" and the enqueue link it to
//! itself).
//!
//! * **Enqueue(v)**: locate the last node `l` (tail hint + chase);
//!   AffectSet = `{l}` (update), WriteSet = `{⟨l.next, Null, newnd⟩}`,
//!   NewSet = `{newnd}`; response = ack. After `Help` completes, swing
//!   `Tail`.
//! * **Dequeue()**: read the anchor's info, then the sentinel `s = Head`,
//!   then `f = s.next` (that order — tag success then freezes each earlier
//!   read). Empty (`f = Null`): read-only fast path returning `Empty`,
//!   linearized at the `s.next` read (sound because `next` is monotonic:
//!   Null → node, never back). Otherwise AffectSet = `{anchor (update),
//!   s (deletion)}`, WriteSet = `{⟨Head.ptr, s, f⟩}`, response = `f.val`
//!   (precomputed, immutable). `s` is retired; `f` becomes the sentinel.
//!
//! Pointer freshness holds: `Head.ptr` and `next` fields only ever abandon a
//! value when the node holding/named by it is retired, so stale helper
//! CASes fail silently (same argument as the list).

use crate::arm;
use crate::counters;
use crate::engine::{
    help, res_val, val_of, HelpOutcome, Info, InfoFill, RES_EMPTY, RES_UNIT, RES_VAL_BASE,
};
use crate::optype;
use crate::pool::{Pool, PoolCfg, PoolItem};
use crate::recovery::{
    attach_standalone, op_recover, release_prev, AttachEnv, AttachError, AttachSummary,
    MappedLayout, RecArea, Recovered, SlotOps,
};
use crate::tag;
use nvm::mapped::{MapError, MappedHeap, MappedNvm, DEFAULT_HEAP_BYTES};
use nvm::{PWord, Persist, PersistWords};
use reclaim::{Collector, Guard};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

/// Superblock structure-kind tag of a mapped `RQueue`.
pub const KIND_QUEUE: u64 = 2;

/// A queue node.
#[repr(C)]
pub struct Node<M: Persist> {
    val: PWord<M>,
    next: PWord<M>,
    info: PWord<M>,
}

unsafe impl<M: Persist> PersistWords<M> for Node<M> {
    fn each_word(&self, f: &mut dyn FnMut(&PWord<M>)) {
        f(&self.val);
        f(&self.next);
        f(&self.info);
    }
}

impl<M: Persist> Node<M> {
    fn alloc(val: u64, next: u64, info: u64) -> *mut Node<M> {
        counters::node_alloc();
        Box::into_raw(Box::new(Node {
            val: PWord::new(val),
            next: PWord::new(next),
            info: PWord::new(info),
        }))
    }

    /// Re-initialize a pool-recycled node.
    fn init(&self, val: u64, next: u64, info: u64) {
        self.val.store(val);
        self.next.store(next);
        self.info.store(info);
    }
}

impl<M: Persist> PoolItem for Node<M> {
    fn fresh() -> Self {
        counters::node_alloc();
        Node { val: PWord::new(0), next: PWord::new(0), info: PWord::new(0) }
    }

    fn count_reuse() {
        counters::node_reuse();
    }
}

impl<M: Persist> Drop for Node<M> {
    fn drop(&mut self) {
        counters::node_free();
    }
}

/// The head anchor: a pseudo-node holding the sentinel pointer and an info
/// cell so dequeues can tag "the head position" like any node, plus the
/// shared tail hint (see module docs for why the hint must not be cached
/// per process).
#[repr(C)]
struct Anchor<M: Persist> {
    ptr: PWord<M>,
    info: PWord<M>,
    tail: PWord<M>,
}

unsafe impl<M: Persist> PersistWords<M> for Anchor<M> {
    fn each_word(&self, f: &mut dyn FnMut(&PWord<M>)) {
        f(&self.ptr);
        f(&self.info);
        f(&self.tail);
    }
}

/// Where the queue's anchor lives: owned on the process heap, or borrowed
/// from the mapped backend's persistent arena (a root block that must
/// survive the process).
enum AnchorStore<M: Persist> {
    Owned(Box<Anchor<M>>),
    Arena(*const Anchor<M>),
}

impl<M: Persist> std::ops::Deref for AnchorStore<M> {
    type Target = Anchor<M>;
    #[inline]
    fn deref(&self) -> &Anchor<M> {
        match self {
            AnchorStore::Owned(b) => b,
            // SAFETY: the arena root block outlives the queue (which keeps
            // its MappedHeap alive).
            AnchorStore::Arena(p) => unsafe { &**p },
        }
    }
}

/// Detectably recoverable MS-queue (see module docs). Values must be below
/// `u64::MAX - 16` (result-word encoding).
///
/// # Example: the detectable recovery flow
///
/// A dequeue's response is persisted inside its descriptor before the queue
/// is unlocked, so recovery can return it without dequeuing twice:
///
/// ```
/// use isb::queue::RQueue;
/// use nvm::CountingNvm;
///
/// nvm::tid::set_tid(0);
/// let mut q: RQueue<CountingNvm> = RQueue::new();
/// q.enqueue(0, 5);
/// assert_eq!(q.dequeue(0), Some(5));
///
/// // Crash "just after" the completed dequeue: same response, exactly once.
/// assert_eq!(q.recover_dequeue(0), Some(5));
/// assert_eq!(q.snapshot_vals(), vec![], "value was not dequeued twice");
///
/// // A process that never published anything (process 1) ⇒ recovery
/// // re-invokes the operation.
/// q.recover_enqueue(1, 9);
/// assert_eq!(q.snapshot_vals(), vec![9]);
/// ```
pub struct RQueue<M: Persist, const ARM: u8 = 0> {
    head: AnchorStore<M>,
    rec: RecArea<M>,
    // `collector` must drop before the pools (drop-time drain recycles).
    collector: Collector,
    info_pool: Pool<Info<M>>,
    node_pool: Pool<Node<M>>,
    /// Mapped mode: the persistent heap everything lives in (`Some`
    /// suppresses drop-time teardown).
    mapped: Option<Arc<MappedHeap>>,
}

unsafe impl<M: Persist, const ARM: u8> Send for RQueue<M, ARM> {}
unsafe impl<M: Persist, const ARM: u8> Sync for RQueue<M, ARM> {}

impl<M: Persist, const ARM: u8> Default for RQueue<M, ARM> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Persist, const ARM: u8> RQueue<M, ARM> {
    /// New empty queue with a reclaiming collector and pooled allocation.
    pub fn new() -> Self {
        Self::with_collector(Collector::new())
    }

    /// New empty queue with pooling off (the boxed ablation arm).
    pub fn boxed() -> Self {
        Self::with_config(Collector::new(), PoolCfg::boxed())
    }

    /// New empty queue with the given collector (crash-sim runs pass
    /// [`Collector::disabled`]; pooling drops to passthrough mode).
    pub fn with_collector(collector: Collector) -> Self {
        Self::with_config(collector, PoolCfg::default())
    }

    /// New empty queue with the given collector and pool configuration.
    pub fn with_config(collector: Collector, pool: PoolCfg) -> Self {
        let s0: *mut Node<M> = Node::alloc(0, 0, 0);
        let info_pool = Pool::new_for::<M>(pool.clone(), &collector);
        let node_pool = Pool::new_for::<M>(pool, &collector);
        Self {
            head: AnchorStore::Owned(Box::new(Anchor {
                ptr: PWord::new(s0 as u64),
                info: PWord::new(0),
                tail: PWord::new(s0 as u64),
            })),
            rec: RecArea::new(),
            collector,
            info_pool,
            node_pool,
            mapped: None,
        }
    }

    /// The queue's collector (diagnostics).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Draw a descriptor: pool hit, or heap in passthrough mode.
    #[inline]
    fn alloc_info(&self) -> *mut Info<M> {
        self.info_pool.take().unwrap_or_else(Info::alloc)
    }

    /// Draw a node: pool hit (re-initialized), or heap in passthrough mode.
    #[inline]
    fn alloc_node(&self, val: u64, next: u64, info: u64) -> *mut Node<M> {
        match self.node_pool.take() {
            Some(p) => {
                unsafe { (*p).init(val, next, info) };
                p
            }
            None => Node::alloc(val, next, info),
        }
    }

    fn publish(&self, pid: usize, info: *mut Info<M>, published: &mut u64, g: &Guard<'_>) {
        self.rec.publish_arm::<ARM>(pid, info as u64);
        if *published != 0 && *published != info as u64 {
            unsafe { Info::<M>::release(tag::ptr_of(*published), 1, g) };
        }
        *published = info as u64;
    }

    unsafe fn retire_node(&self, node: *mut Node<M>, g: &Guard<'_>) {
        unsafe {
            let iv = (*node).info.load();
            Info::<M>::release(tag::ptr_of(iv), 1, g);
            self.node_pool.retire(node, g);
        }
    }

    /// Locate the last node: start at the tail hint and chase `next`.
    /// Returns `(last, last_info)` with the info read before confirming
    /// `last.next == Null` (gather order matters for freshness).
    unsafe fn find_last(&self) -> (*mut Node<M>, u64, u64) {
        unsafe {
            let start = self.head.tail.load();
            let mut n = start as *mut Node<M>;
            loop {
                let info = (*n).info.load();
                let next = (*n).next.load();
                if next == 0 {
                    return (n, info, start);
                }
                n = next as *mut Node<M>;
            }
        }
    }

    /// Enqueues `v` (always succeeds).
    pub fn enqueue(&self, pid: usize, v: u64) {
        assert!(v < u64::MAX - RES_VAL_BASE, "value too large for result encoding");
        // ONE pin covers the whole operation (see set_core::insert).
        let g = self.collector.pin();
        let prev = self.rec.begin::<ARM>(pid);
        unsafe { release_prev::<M>(prev, &g) };
        let newnd = self.alloc_node(v, 0, 0);
        let mut info = self.alloc_info();
        let mut filled: u64 = 0;
        let mut published: u64 = 0;
        loop {
            let (last, last_info, walk_start) = unsafe { self.find_last() };
            if tag::is_tagged(last_info) {
                unsafe { help::<M, ARM>(tag::ptr_of(last_info), false, &g) };
                continue;
            }
            unsafe {
                let t = tag::tagged(info as u64);
                if filled != t {
                    if filled != 0 {
                        Info::<M>::release(tag::ptr_of(filled), 1, &g);
                    }
                    (*newnd).info.store(t);
                    filled = t;
                }
                Info::fill(
                    info,
                    &InfoFill {
                        optype: optype::ENQ,
                        affect: &[(cell_addr(&(*last).info), last_info)],
                        write: &[(cell_addr(&(*last).next), 0, newnd as u64)],
                        newset: &[cell_addr(&(*newnd).info)],
                        del_mask: 0,
                        presult: RES_UNIT,
                    },
                );
                arm::pwb_obj_arm::<M, _, ARM>(&*newnd);
                if arm::is_tuned(ARM) {
                    arm::pwb_obj_arm::<M, _, ARM>(&*info);
                    M::pfence();
                } else {
                    M::pbarrier_obj(&*info);
                }
            }
            self.publish(pid, info, &mut published, &g);
            match unsafe { help::<M, ARM>(info, true, &g) } {
                HelpOutcome::Done => {
                    // Swing the tail hint; newnd's linkage is durable by now.
                    // Using the walk's starting value also heals a hint left
                    // stale by a crash image (never moves the hint backward:
                    // success implies the hint still equals walk_start, and
                    // newnd is strictly ahead of it).
                    let t = if self.head.tail.cas(walk_start, newnd as u64) == walk_start {
                        walk_start
                    } else {
                        self.head.tail.cas(last as u64, newnd as u64)
                    };
                    let _ = t;
                    M::pwb(&self.head.tail);
                    return;
                }
                HelpOutcome::FailedAt(i) => {
                    unsafe { Info::<M>::release(info, (1 - i) as u32, &g) };
                    info = self.alloc_info();
                }
            }
        }
    }

    /// Dequeues; `None` iff the queue was observed empty.
    pub fn dequeue(&self, pid: usize) -> Option<u64> {
        let g = self.collector.pin();
        let prev = self.rec.begin::<ARM>(pid);
        unsafe { release_prev::<M>(prev, &g) };
        let mut info = self.alloc_info();
        let mut published: u64 = 0;
        loop {
            // Gather order: anchor info, then sentinel, then its info, then next.
            let h_info = self.head.info.load();
            let s = self.head.ptr.load() as *mut Node<M>;
            let s_info = unsafe { (*s).info.load() };
            let f = unsafe { (*s).next.load() };
            if tag::is_tagged(h_info) {
                unsafe { help::<M, ARM>(tag::ptr_of(h_info), false, &g) };
                continue;
            }
            if tag::is_tagged(s_info) {
                unsafe { help::<M, ARM>(tag::ptr_of(s_info), false, &g) };
                continue;
            }
            if f == 0 {
                // Empty: read-only fast path (linearized at the `s.next` read).
                unsafe {
                    Info::fill(
                        info,
                        &InfoFill {
                            optype: optype::DEQ,
                            affect: &[(cell_addr(&self.head.info), h_info)],
                            write: &[],
                            newset: &[],
                            del_mask: 0,
                            presult: RES_EMPTY,
                        },
                    );
                    M::store(&(*info).result, RES_EMPTY);
                    if arm::is_tuned(ARM) {
                        arm::pwb_obj_arm::<M, _, ARM>(&*info);
                        M::pfence();
                    } else {
                        M::pbarrier_obj(&*info);
                    }
                }
                self.publish(pid, info, &mut published, &g);
                unsafe { Info::<M>::release(info, 1, &g) };
                return None;
            }
            let fval = unsafe { (*(f as *mut Node<M>)).val.load() };
            unsafe {
                Info::fill(
                    info,
                    &InfoFill {
                        optype: optype::DEQ,
                        affect: &[
                            (cell_addr(&self.head.info), h_info),
                            (cell_addr(&(*s).info), s_info),
                        ],
                        write: &[(cell_addr(&self.head.ptr), s as u64, f)],
                        newset: &[],
                        del_mask: 0b10, // the old sentinel is deletion-tagged
                        presult: res_val(fval),
                    },
                );
                if arm::is_tuned(ARM) {
                    arm::pwb_obj_arm::<M, _, ARM>(&*info);
                    M::pfence();
                } else {
                    M::pbarrier_obj(&*info);
                }
            }
            self.publish(pid, info, &mut published, &g);
            match unsafe { help::<M, ARM>(info, true, &g) } {
                HelpOutcome::Done => {
                    // Never leave the tail hint pointing at the retired sentinel.
                    let _ = self.head.tail.cas(s as u64, f);
                    unsafe { self.retire_node(s, &g) };
                    return Some(fval);
                }
                HelpOutcome::FailedAt(i) => {
                    unsafe { Info::<M>::release(info, (2 - i) as u32, &g) };
                    info = self.alloc_info();
                }
            }
        }
    }

    /// `Enqueue.Recover`.
    pub fn recover_enqueue(&self, pid: usize, v: u64) {
        let r = {
            let g = self.collector.pin();
            unsafe { op_recover::<M, ARM>(&self.rec, pid, &g) }
        };
        match r {
            Recovered::Completed(_) => {}
            Recovered::Restart => self.enqueue(pid, v),
        }
    }

    /// `Dequeue.Recover`.
    pub fn recover_dequeue(&self, pid: usize) -> Option<u64> {
        let r = {
            let g = self.collector.pin();
            unsafe { op_recover::<M, ARM>(&self.rec, pid, &g) }
        };
        match r {
            Recovered::Completed(RES_EMPTY) => None,
            Recovered::Completed(v) => Some(val_of(v)),
            Recovered::Restart => self.dequeue(pid),
        }
    }

    /// Snapshot of queued values, front to back (requires quiescence).
    pub fn snapshot_vals(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        unsafe {
            let s = self.head.ptr.load() as *mut Node<M>;
            let mut n = (*s).next.load() as *mut Node<M>;
            while !n.is_null() {
                out.push((*n).val.load());
                n = (*n).next.load() as *mut Node<M>;
            }
        }
        out
    }

    /// Quiescent tail-hint repair: points the hint at the true last node.
    /// After a crash the image may have rolled the (uncounted) hint back to
    /// a node that was dequeued before the crash; any recovery pass or first
    /// enqueue performs exactly this repair lazily.
    pub fn heal_tail(&mut self) {
        unsafe {
            let mut n = self.head.ptr.load() as *mut Node<M>;
            loop {
                let next = (*n).next.load();
                if next == 0 {
                    break;
                }
                n = next as *mut Node<M>;
            }
            self.head.tail.store(n as u64);
            M::pwb(&self.head.tail);
        }
    }

    /// Completes helping obligations left visible by a crash: runs `Help`
    /// on every tagged info reachable from the anchor or the sentinel chain
    /// until a full pass finds none (the queue-side analogue of
    /// [`crate::set_core::SetCore::scrub`]). Call after every process ran
    /// its `recover_*` (the mapped backend's attach does, via
    /// [`RQueue::try_scrub`] so a non-quiescing image surfaces as a typed
    /// [`AttachError`] instead of killing the recovering process).
    pub fn scrub(&self) {
        self.try_scrub().unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`RQueue::scrub`] with the pass budget surfaced as a typed
    /// [`AttachError::ScrubStalled`] instead of a panic.
    pub fn try_scrub(&self) -> Result<(), AttachError> {
        const PASSES: usize = 64;
        for _ in 0..PASSES {
            let g = self.collector.pin();
            let mut dirty = false;
            unsafe {
                let hv = self.head.info.load();
                if tag::is_tagged(hv) {
                    dirty = true;
                    help::<M, ARM>(tag::ptr_of(hv), false, &g);
                }
                let mut n = self.head.ptr.load() as *mut Node<M>;
                while !n.is_null() {
                    let iv = (*n).info.load();
                    if tag::is_tagged(iv) {
                        dirty = true;
                        help::<M, ARM>(tag::ptr_of(iv), false, &g);
                    }
                    n = (*n).next.load() as *mut Node<M>;
                }
            }
            if !dirty {
                return Ok(());
            }
        }
        Err(AttachError::ScrubStalled { kind: "queue", passes: PASSES })
    }

    /// The *system* half of an invocation (`CP_q := 0`, persisted) — see
    /// [`RecArea::mark_invoked`]: write-ahead-logging callers must run this
    /// before writing their intent record.
    pub fn note_invocation(&self, pid: usize) {
        self.rec.mark_invoked(pid);
    }

    /// Structural invariants for a quiescent queue.
    pub fn check_invariants(&mut self) {
        unsafe {
            let s = self.head.ptr.load() as *mut Node<M>;
            assert!(!s.is_null(), "sentinel must exist");
            assert!(!tag::is_tagged((*s).info.load()), "sentinel tagged at quiescence");
            // The tail hint must point to a node on the sentinel chain.
            let t = self.head.tail.load();
            let mut n = s;
            let mut on_chain = false;
            while !n.is_null() {
                if n as u64 == t {
                    on_chain = true;
                }
                n = (*n).next.load() as *mut Node<M>;
            }
            assert!(on_chain, "tail hint left the chain");
        }
    }
}

#[inline]
fn cell_addr<M: Persist>(w: &PWord<M>) -> u64 {
    w as *const PWord<M> as u64
}

unsafe fn drop_node_raw<M: Persist>(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut Node<M>) });
}

unsafe fn drop_info_raw<M: Persist>(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut Info<M>) });
}

impl<const ARM: u8> RQueue<MappedNvm, ARM> {
    /// Attaches (or creates) a detectably recoverable queue backed by the
    /// file-backed persistent heap at `path`. Same recovery sequence as
    /// [`crate::hashmap::RHashMap::attach`] — the generic driver
    /// ([`crate::recovery::attach_standalone`]) runs remap, per-pid
    /// Op-Recover replay, [`RQueue::try_scrub`], tail-hint heal, census +
    /// sweep. The calling thread must be registered (`nvm::tid::set_tid`).
    pub fn attach(path: impl AsRef<Path>) -> Result<(Self, AttachSummary), AttachError> {
        Self::attach_sized(path, DEFAULT_HEAP_BYTES)
    }

    /// [`RQueue::attach`] with an explicit heap size for creation.
    pub fn attach_sized(
        path: impl AsRef<Path>,
        heap_bytes: usize,
    ) -> Result<(Self, AttachSummary), AttachError> {
        attach_standalone::<Self>(path.as_ref(), (), heap_bytes)
    }

    /// The persistent heap backing this queue.
    pub fn heap(&self) -> &Arc<MappedHeap> {
        self.mapped.as_ref().expect("mapped-mode queue")
    }

    /// Whole-node span check against the backing heap.
    fn in_node(&self, a: u64) -> bool {
        let heap = self.heap();
        a & 7 == 0 && heap.contains_span(a as usize, std::mem::size_of::<Node<MappedNvm>>())
    }
}

impl<const ARM: u8> MappedLayout for RQueue<MappedNvm, ARM> {
    const KIND: u64 = KIND_QUEUE;
    const KIND_NAME: &'static str = "queue";
    type Cfg = ();

    fn cfg_word(_cfg: ()) -> u64 {
        0x51 | (ARM as u64) << 32
    }

    fn root_bytes(_cfg: ()) -> usize {
        std::mem::size_of::<Anchor<MappedNvm>>()
    }

    fn open(env: &AttachEnv, _cfg: (), root: *mut u8) -> Result<Self, AttachError> {
        let collector = env.collector();
        let info_pool = env.info_pool();
        let node_pool = Pool::new_for::<MappedNvm>(env.pool_cfg(), &collector);
        let anchor = root as *const Anchor<MappedNvm>;
        // SAFETY: zeroed-on-creation committed root block of Anchor size.
        unsafe {
            if (*anchor).ptr.peek() == 0 {
                // Fresh (or creation cut short): allocate the first sentinel.
                let s0: *mut Node<MappedNvm> = node_pool.take().expect("arena pool always serves");
                (*s0).init(0, 0, 0);
                (*anchor).ptr.store(s0 as u64);
                (*anchor).info.store(0);
                (*anchor).tail.store(s0 as u64);
                MappedNvm::pbarrier_obj(&*anchor);
            }
            // Images written before the hint moved into the anchor have a
            // zero third word (root blocks are zeroed at creation, granule-
            // rounded, so the slot exists). Seed it from the sentinel —
            // idempotent, and any stale seed is healed by the first walk.
            if (*anchor).tail.peek() == 0 {
                (*anchor).tail.store((*anchor).ptr.peek());
                MappedNvm::pwb(&(*anchor).tail);
            }
        }
        Ok(Self {
            head: AnchorStore::Arena(anchor),
            rec: env.rec_area(),
            collector,
            info_pool,
            node_pool,
            mapped: Some(Arc::clone(&env.heap)),
        })
    }
}

impl<const ARM: u8> SlotOps for RQueue<MappedNvm, ARM> {
    fn validate_image(&self, infos: &mut HashSet<u64>) -> Result<(), MapError> {
        // No dereference below leaves the mapping (whole-node spans), and
        // the chain must terminate within the heap's block count.
        let mut budget = self.heap().bump_granules() + 4;
        // SAFETY: the anchor is a committed root block; every node is
        // dereferenced only after its whole span passed `in_node`.
        unsafe {
            let hv = tag::untagged(self.head.info.load());
            if hv != 0 {
                infos.insert(hv);
            }
            let mut n = self.head.ptr.load();
            if !self.in_node(n) {
                return Err(MapError::CorruptPointer { addr: n });
            }
            loop {
                if budget == 0 {
                    return Err(MapError::CorruptPointer { addr: n });
                }
                budget -= 1;
                let node = n as *mut Node<MappedNvm>;
                let iv = tag::untagged((*node).info.load());
                if iv != 0 {
                    infos.insert(iv);
                }
                let next = (*node).next.load();
                if next == 0 {
                    break;
                }
                if !self.in_node(next) {
                    return Err(MapError::CorruptPointer { addr: next });
                }
                n = next;
            }
        }
        Ok(())
    }

    fn valid_install(&self, addr: u64) -> bool {
        self.in_node(addr)
    }

    fn try_scrub(&self) -> Result<(), AttachError> {
        RQueue::try_scrub(self)
    }

    fn heal(&mut self) {
        self.heal_tail();
    }

    unsafe fn census(&self, live: &mut HashSet<usize>, info_refs: &mut HashMap<usize, u32>) {
        let mut bump = |v: u64| {
            let p = tag::untagged(v) as usize;
            if p != 0 {
                *info_refs.entry(p).or_insert(0) += 1;
            }
        };
        // SAFETY: quiescent exclusive access post-scrub (caller).
        unsafe {
            bump(self.head.info.load());
            let mut n = self.head.ptr.load() as *mut Node<MappedNvm>;
            while !n.is_null() {
                live.insert(n as usize);
                bump((*n).info.load());
                n = (*n).next.load() as *mut Node<MappedNvm>;
            }
        }
    }

    fn each_cached(&mut self, f: &mut dyn FnMut(usize)) {
        self.node_pool.each_idle(|p| f(p as usize));
        self.info_pool.each_idle(|p| f(p as usize));
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send + Sync> {
        self
    }
}

impl<M: Persist, const ARM: u8> Drop for RQueue<M, ARM> {
    fn drop(&mut self) {
        if self.mapped.is_some() {
            // Mapped mode: the arena is the durable state; pools return
            // their caches to the persistent free list on drop.
            return;
        }
        // See RList::drop — the union of reachable and parked objects is
        // freed exactly once (crash images can resurrect reachability).
        let mut grave: std::collections::HashMap<usize, unsafe fn(*mut u8)> =
            self.collector.take_parked().into_iter().map(|(p, f)| (p as usize, f)).collect();
        self.rec.each_published(|rd| {
            if !tag::is_direct(rd) && tag::untagged(rd) != 0 {
                grave.insert(tag::untagged(rd) as usize, drop_info_raw::<M>);
            }
        });
        let anchor_info = tag::untagged(self.head.info.load());
        if anchor_info != 0 {
            grave.insert(anchor_info as usize, drop_info_raw::<M>);
        }
        unsafe {
            let mut n = self.head.ptr.load() as *mut Node<M>;
            while !n.is_null() {
                let next = (*n).next.load() as *mut Node<M>;
                let iv = tag::untagged((*n).info.load());
                if iv != 0 {
                    grave.insert(iv as usize, drop_info_raw::<M>);
                }
                grave.insert(n as usize, drop_node_raw::<M>);
                n = next;
            }
            for (p, f) in grave {
                f(p as *mut u8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::CountingNvm;
    use std::sync::Arc;

    type Q = RQueue<CountingNvm, 0>;
    type QOpt = RQueue<CountingNvm, 1>;

    #[test]
    fn fifo_semantics() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let q = Q::new();
        assert_eq!(q.dequeue(0), None);
        q.enqueue(0, 10);
        q.enqueue(0, 20);
        q.enqueue(0, 30);
        assert_eq!(q.dequeue(0), Some(10));
        assert_eq!(q.dequeue(0), Some(20));
        q.enqueue(0, 40);
        assert_eq!(q.dequeue(0), Some(30));
        assert_eq!(q.dequeue(0), Some(40));
        assert_eq!(q.dequeue(0), None);
    }

    #[test]
    fn snapshot_and_invariants() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let mut q = QOpt::new();
        for v in 1..=10u64 {
            q.enqueue(0, v);
        }
        assert_eq!(q.dequeue(0), Some(1));
        assert_eq!(q.snapshot_vals(), (2..=10).collect::<Vec<_>>());
        q.check_invariants();
    }

    #[test]
    fn no_leaks_after_drop() {
        let _gate = crate::counters::gate_exclusive();
        nvm::tid::set_tid(0);
        let nodes0 = crate::counters::live_nodes();
        let infos0 = crate::counters::live_infos();
        {
            let mut q = Q::new();
            for v in 0..300u64 {
                q.enqueue(0, v);
            }
            for _ in 0..250 {
                q.dequeue(0);
            }
            q.check_invariants();
        }
        assert_eq!(crate::counters::live_nodes(), nodes0, "node leak/double-free");
        assert_eq!(crate::counters::live_infos(), infos0, "info leak/double-free");
    }

    #[test]
    fn concurrent_enqueue_dequeue_conserves_values() {
        let _gate = crate::counters::gate_shared();
        let q = Arc::new(Q::new());
        let producers = 2u64;
        let consumers = 2usize;
        let per = 500u64;
        use std::sync::atomic::{AtomicU64, Ordering};
        let consumed = Arc::new(AtomicU64::new(0));
        let mut hs = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            hs.push(std::thread::spawn(move || {
                nvm::tid::set_tid(p as usize);
                for i in 0..per {
                    q.enqueue(p as usize, 1 + p * per + i);
                }
            }));
        }
        for c in 0..consumers {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            hs.push(std::thread::spawn(move || {
                let pid = 10 + c;
                nvm::tid::set_tid(pid);
                let mut got = 0u64;
                let mut sum = 0u64;
                while got < per {
                    if let Some(v) = q.dequeue(pid) {
                        got += 1;
                        sum += v;
                    }
                }
                consumed.fetch_add(sum, Ordering::Relaxed);
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        let expected: u64 = (1..=producers * per).sum();
        assert_eq!(
            consumed.load(Ordering::Relaxed),
            expected,
            "every value delivered exactly once"
        );
        let mut q = Arc::into_inner(q).unwrap();
        assert_eq!(q.snapshot_vals(), vec![]);
        q.check_invariants();
    }

    #[test]
    fn per_producer_fifo_order_is_preserved() {
        let _gate = crate::counters::gate_shared();
        let q = Arc::new(Q::new());
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            nvm::tid::set_tid(1);
            for i in 1..=1000u64 {
                q2.enqueue(1, i);
            }
        });
        nvm::tid::set_tid(0);
        let mut last = 0u64;
        let mut got = 0;
        while got < 1000 {
            if let Some(v) = q.dequeue(0) {
                assert!(v > last, "FIFO violated: {v} after {last}");
                last = v;
                got += 1;
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn mapped_attach_queue_preserves_contents_across_detach() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let path = std::env::temp_dir().join(format!(
            "isb_q_{}_{}.heap",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let (q, s) = RQueue::<nvm::MappedNvm, 0>::attach_sized(&path, 1 << 21).unwrap();
            assert!(s.heap.created);
            for v in 1..=50u64 {
                q.enqueue(0, v);
            }
            assert_eq!(q.dequeue(0), Some(1));
        }
        {
            let (mut q, s) = RQueue::<nvm::MappedNvm, 0>::attach_sized(&path, 1 << 21).unwrap();
            assert!(!s.heap.created);
            assert_eq!(q.snapshot_vals(), (2..=50).collect::<Vec<_>>());
            q.check_invariants();
            assert_eq!(q.dequeue(0), Some(2));
            q.enqueue(0, 99);
        }
        {
            let (mut q, _) = RQueue::<nvm::MappedNvm, 0>::attach_sized(&path, 1 << 21).unwrap();
            let mut want: Vec<u64> = (3..=50).collect();
            want.push(99);
            assert_eq!(q.snapshot_vals(), want);
            q.check_invariants();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recovery_without_crash_behaves_like_invocation() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let mut q = Q::new();
        // No operation pending for pid 0: recovery re-invokes the enqueue.
        q.recover_enqueue(0, 5);
        assert_eq!(q.snapshot_vals(), vec![5]);
        // Crash "just after" a completed dequeue: its response is recoverable
        // from RD_q -> result, and recovery returns the same value without
        // re-executing the removal (detectability).
        assert_eq!(q.dequeue(0), Some(5));
        assert_eq!(q.recover_dequeue(0), Some(5));
        assert_eq!(q.snapshot_vals(), vec![], "recovery must not double-dequeue");
        // Empty dequeue's response is likewise recoverable.
        assert_eq!(q.dequeue(0), None);
        assert_eq!(q.recover_dequeue(0), None);
    }
}
