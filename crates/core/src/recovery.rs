//! Per-process recovery data: `RD_q` and the check-point `CP_q`.
//!
//! The detectability protocol (Algorithm 1, lines 1–5 / 16–19 and
//! Op-Recover):
//!
//! 1. The *system* sets `CP_q := 0` (persisted) just before an operation of
//!    process `q` starts — modelled by [`RecArea::begin`].
//! 2. The operation runs `RD_q := Null; pbarrier(RD_q); CP_q := 1;
//!    pwb(CP_q); psync` — the `pbarrier` **orders** the reset of `RD_q`
//!    before `CP_q = 1` becomes durable, so recovery can never observe the
//!    previous operation's info pointer together with `CP_q = 1`.
//! 3. Before each call to `Help`, the attempt's Info pointer is published:
//!    `RD_q := opInfo; pwb; psync` ([`RecArea::publish`]).
//! 4. On recovery ([`RecArea::read`]): `CP_q = 0` or `RD_q = Null` means the
//!    operation made no changes — restart it. Otherwise `Help(RD_q)` is run
//!    and the Info's `result` decides: set ⇒ the operation took effect and
//!    this is its response; unset ⇒ it did not take effect and is re-invoked.
//!
//! The hand-tuned variant (`TUNED = true`, "Isb-Opt" in the evaluation)
//! defers the durability of `CP_q = 1` to the attempt's publish `psync`
//! (ordering is still enforced with a `pfence`), saving one `psync` per
//! operation.

use crate::engine::Info;
use nvm::pad::CachePadded;
use nvm::{PWord, Persist, MAX_PROCS};

/// One process's persistent private recovery variables.
pub struct ProcRec<M: Persist> {
    /// `RD_q`: pointer to the Info structure of the last attempt.
    pub rd: PWord<M>,
    /// `CP_q`: 1 once `RD_q` has been initialised for the current operation.
    pub cp: PWord<M>,
}

impl<M: Persist> Default for ProcRec<M> {
    fn default() -> Self {
        Self { rd: PWord::new(0), cp: PWord::new(0) }
    }
}

/// Where a [`RecArea`]'s slots live: owned on the process heap (the
/// in-process backends) or borrowed from a persistent arena (the mapped
/// backend, where `RD_q`/`CP_q` must survive the process).
enum Slots<M: Persist> {
    Owned(Vec<CachePadded<ProcRec<M>>>),
    /// Base of [`MAX_PROCS`] slots at [`ARENA_SLOT_STRIDE`]-byte stride.
    Arena(*const u8),
}

/// Byte stride of one arena-resident recovery slot: the padding of the
/// owned layout without its 128-byte *alignment* demand (arena payloads are
/// 64-byte aligned).
pub const ARENA_SLOT_STRIDE: usize = 128;

/// Per-process recovery areas for one data structure.
pub struct RecArea<M: Persist> {
    slots: Slots<M>,
}

// SAFETY: all slot state is atomics behind `&self`; the arena pointer is
// only dereferenced at fixed per-pid offsets inside a mapping the owning
// structure keeps alive (attach_raw contract).
unsafe impl<M: Persist> Send for RecArea<M> {}
unsafe impl<M: Persist> Sync for RecArea<M> {}

impl<M: Persist> Default for RecArea<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs the system's (non-crashable) glue instructions: under the crash
/// simulator they execute with injection suspended; the real modes skip the
/// thread-local bookkeeping entirely (it sat on every operation's prologue).
#[inline]
fn system_glue<M: Persist>(f: impl FnOnce()) {
    if M::SIMULATED {
        nvm::sim::suspended(f)
    } else {
        f()
    }
}

impl<M: Persist> RecArea<M> {
    /// Creates recovery slots for [`MAX_PROCS`] processes.
    pub fn new() -> Self {
        Self {
            slots: Slots::Owned(
                (0..MAX_PROCS).map(|_| CachePadded::new(ProcRec::default())).collect(),
            ),
        }
    }

    /// Bytes an arena-resident recovery area occupies
    /// ([`MAX_PROCS`] × [`ARENA_SLOT_STRIDE`]).
    pub const fn slots_bytes() -> usize {
        MAX_PROCS * ARENA_SLOT_STRIDE
    }

    /// A recovery area over persistent slots at `base` (the mapped backend's
    /// root block). Zeroed memory is a valid fresh state (`CP = 0`,
    /// `RD = Null`); previously persisted slots are exactly what recovery
    /// needs to read.
    ///
    /// # Safety
    /// `base` must point to [`RecArea::slots_bytes`] bytes of 8-aligned
    /// memory that outlives the returned area and is zeroed or holds a
    /// previously persisted slot array; `M::Meta` must be zero-sized (the
    /// mapped/real models — the crash simulator keeps its shadow state on
    /// the process heap and cannot live in an arena).
    pub unsafe fn attach_raw(base: *const u8) -> Self {
        assert!(std::mem::size_of::<ProcRec<M>>() <= ARENA_SLOT_STRIDE);
        assert_eq!(std::mem::size_of::<M::Meta>(), 0, "arena slots require metadata-free models");
        Self { slots: Slots::Arena(base) }
    }

    #[inline]
    fn slot(&self, pid: usize) -> &ProcRec<M> {
        match &self.slots {
            Slots::Owned(v) => &v[pid],
            Slots::Arena(base) => {
                assert!(pid < MAX_PROCS);
                // SAFETY: in-bounds fixed-stride slot per attach_raw.
                unsafe { &*(base.add(pid * ARENA_SLOT_STRIDE) as *const ProcRec<M>) }
            }
        }
    }

    /// Steps 1–2 of the protocol (see module docs). Returns the *previous*
    /// operation's published info pointer so the caller can release its
    /// reference-count hold on it.
    pub fn begin<const TUNED: bool>(&self, pid: usize) -> u64 {
        let s = self.slot(pid);
        // System glue: CP_q := 0, persisted, before the operation starts.
        // The system itself does not crash (paper Section 2), so crash
        // injection is suspended for these two instructions.
        system_glue::<M>(|| {
            s.cp.store(0);
            M::pbarrier(&s.cp);
        });
        let prev = s.rd.load();
        s.rd.store(0);
        if TUNED {
            M::pwb(&s.rd);
            M::pfence(); // order RD=Null before CP=1 durability
            s.cp.store(1);
            M::pwb(&s.cp);
            // Durability of CP=1 deferred to the attempt's publish psync.
        } else {
            M::pbarrier(&s.rd);
            s.cp.store(1);
            M::pwb(&s.cp);
            M::psync();
        }
        prev
    }

    /// `CP_q := 0` (persisted) only — the prologue of fully read-only
    /// operations, which skip `RD_q := Null / CP_q := 1` because restarting
    /// them is always safe. Returns the previously published info pointer.
    pub fn begin_readonly(&self, pid: usize) -> u64 {
        let s = self.slot(pid);
        // System glue FIRST: `CP_q := 0` happens at invocation, before any
        // (crashable) operation code — otherwise a crash on the operation's
        // first instruction would leave `CP_q = 1` pointing at the previous
        // operation's descriptor and recovery would return a stale response.
        system_glue::<M>(|| {
            s.cp.store(0);
            M::pbarrier(&s.cp);
        });
        s.rd.load()
    }

    /// Step 3: publish the current attempt's Info pointer durably.
    pub fn publish(&self, pid: usize, info: u64) {
        let s = self.slot(pid);
        s.rd.store(info);
        M::pwb(&s.rd);
        M::psync();
    }

    /// Step 4 input: `(CP_q, RD_q)` as found after a crash.
    pub fn read(&self, pid: usize) -> (u64, u64) {
        let s = self.slot(pid);
        (s.cp.load(), s.rd.load())
    }

    /// The currently published info pointer (diagnostics / drop-scan).
    pub fn published(&self, pid: usize) -> u64 {
        self.slot(pid).rd.load()
    }

    /// Iterate all published info pointers (drop-time info scan).
    pub fn each_published(&self, mut f: impl FnMut(u64)) {
        for pid in 0..MAX_PROCS {
            f(self.slot(pid).rd.load());
        }
    }

    /// The *system* half of an invocation: `CP_q := 0`, persisted. The paper
    /// models this as executing atomically **when the operation is invoked**
    /// (Section 2) — the operations' own prologues re-run it, harmlessly.
    ///
    /// Callers that write their own intent records around a mapped structure
    /// (write-ahead logs, request journals) must call this *before* logging
    /// the intent: otherwise a crash between the log write and the
    /// operation's first instruction leaves `CP_q = 1` pointing at the
    /// *previous* operation's descriptor, and recovery would hand the new
    /// operation a stale response.
    pub fn mark_invoked(&self, pid: usize) {
        let s = self.slot(pid);
        system_glue::<M>(|| {
            s.cp.store(0);
            M::pbarrier(&s.cp);
        });
    }
}

/// Outcome of the generic recovery decision (Op-Recover, lines 22–26).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovered {
    /// The crashed operation took effect; this is its (encoded) response.
    Completed(u64),
    /// The operation did not take effect and must be re-invoked.
    Restart,
}

/// Generic Op-Recover: decide whether the pending operation of `pid` took
/// effect, completing it via `Help` if necessary.
///
/// # Safety
/// Must be called in a quiescent-or-recovering context where the published
/// info pointer, if any, is a valid `Info<M>` (guaranteed by the protocol:
/// infos are persisted before publication and never freed in crash mode).
pub unsafe fn op_recover<M: Persist, const TUNED: bool>(
    rec: &RecArea<M>,
    pid: usize,
    guard: &reclaim::Guard<'_>,
) -> Recovered {
    let (cp, rd) = rec.read(pid);
    if cp != 1 || rd == 0 {
        return Recovered::Restart;
    }
    let info = crate::tag::ptr_of::<Info<M>>(rd);
    unsafe {
        let _ = crate::engine::help::<M, TUNED>(info, true, guard);
        let res = M::load(&(*info).result);
        if res != crate::engine::RES_BOT {
            Recovered::Completed(res)
        } else {
            Recovered::Restart
        }
    }
}

/// Root-directory keys the mapped structures register in their heap's
/// superblock. One heap hosts one structure, so the keys only need to be
/// unique within this set.
pub mod rootkeys {
    /// The structure's [`super::RecArea`] slot array.
    pub const RECAREA: u64 = 0x5245_4341; // "RECA"
    /// Structure configuration (shards/tuning), validated on re-attach.
    pub const META: u64 = 0x4D45_5441; // "META"
    /// `RHashMap`: the array of bucket-head node addresses.
    pub const HEADS: u64 = 0x4845_4144; // "HEAD"
    /// `RQueue`: the head anchor (sentinel pointer + info cell).
    pub const ANCHOR: u64 = 0x414E_4348; // "ANCH"
}

/// Replays the generic Op-Recover for **every** process id — the attach-time
/// recovery pass of the mapped backend (`attach(path)` runs it, then
/// `scrub`s). Returns the decision per pid; pids that had nothing pending
/// report [`Recovered::Restart`].
///
/// # Safety
/// As [`op_recover`], for every pid; the calling thread must be registered
/// (`nvm::tid::set_tid`).
pub unsafe fn replay_all<M: Persist, const TUNED: bool>(
    rec: &RecArea<M>,
    collector: &reclaim::Collector,
) -> Vec<(usize, Recovered)> {
    (0..MAX_PROCS)
        .map(|pid| {
            let g = collector.pin();
            (pid, unsafe { op_recover::<M, TUNED>(rec, pid, &g) })
        })
        .collect()
}

/// The parts of a mapped structure's attach shared by every structure kind
/// (see [`mapped_attach_prologue`]).
pub struct MappedPrologue<M: Persist> {
    /// The opened (or freshly created) heap.
    pub heap: std::sync::Arc<nvm::mapped::MappedHeap>,
    /// The recovery area over its arena root block.
    pub rec: RecArea<M>,
    /// Payload address of the recovery-area root block (live-set member).
    pub rec_ptr: usize,
    /// Payload address of the configuration root block (live-set member).
    pub meta_ptr: usize,
    /// `true` iff the heap hosts no completed structure yet: the caller
    /// finishes creating its roots and then stamps the kind.
    pub fresh: bool,
}

/// The common prologue of every mapped structure attach: open/create the
/// heap, check the structure kind, attach the recovery-area root block, and
/// check (or, on a fresh heap, record) the configuration word. Centralised
/// so the safety-critical sequence exists once, not per structure.
pub fn mapped_attach_prologue<M: Persist>(
    path: &std::path::Path,
    kind: u64,
    cfg_word: u64,
    heap_bytes: usize,
) -> Result<MappedPrologue<M>, nvm::MapError> {
    let heap = nvm::mapped::MappedHeap::open(path, heap_bytes)?;
    // kind == 0 also covers a creation cut short before the final stamp:
    // every init step is idempotent, so re-running completes it.
    let fresh = heap.kind() == 0;
    if !fresh && heap.kind() != kind {
        return Err(nvm::MapError::WrongKind { expected: kind, found: heap.kind() });
    }
    let (rec_ptr, _) = heap.root_alloc(rootkeys::RECAREA, RecArea::<M>::slots_bytes())?;
    // SAFETY: the root block is slots_bytes long, zeroed on creation, and
    // outlives the structure (which keeps `heap` alive); mapped models
    // carry no per-word metadata.
    let rec = unsafe { RecArea::attach_raw(rec_ptr) };
    let (meta_ptr, _) = heap.root_alloc(rootkeys::META, 16)?;
    // SAFETY: single-threaded attach; committed 16-byte root block.
    unsafe {
        let meta = meta_ptr as *mut u64;
        if fresh {
            meta.write(cfg_word);
        } else if meta.read() != cfg_word {
            return Err(nvm::MapError::WrongKind { expected: cfg_word, found: meta.read() });
        }
    }
    Ok(MappedPrologue { heap, rec, rec_ptr: rec_ptr as usize, meta_ptr: meta_ptr as usize, fresh })
}

/// The published (untagged, non-null) descriptor pointers of every process.
pub fn published_infos<M: Persist>(rec: &RecArea<M>) -> Vec<u64> {
    let mut out = Vec::new();
    rec.each_published(|rd| {
        let p = crate::tag::untagged(rd);
        if p != 0 {
            out.push(p);
        }
    });
    out
}

/// Pre-recovery validation of every collected descriptor against the
/// mapping: the descriptor's **whole span** must lie inside the heap, and
/// (via [`Info::validate_bounds`]) every cell address it names must have an
/// in-heap 8-byte span while every value it installs must satisfy
/// `valid_install` (callers pass a node-span check — installed values are
/// node pointers the census walk will dereference). Any violation is a
/// typed [`nvm::MapError::CorruptPointer`], never a dereference.
pub fn validate_infos<M: Persist>(
    heap: &nvm::mapped::MappedHeap,
    infos: &std::collections::HashSet<u64>,
    valid_install: impl Fn(u64) -> bool + Copy,
) -> Result<(), nvm::MapError> {
    let cell_ok = |a: u64| a & 7 == 0 && heap.contains_span(a as usize, 8);
    for &info in infos {
        if info & 7 != 0 || !heap.contains_span(info as usize, std::mem::size_of::<Info<M>>()) {
            return Err(nvm::MapError::CorruptPointer { addr: info });
        }
        // SAFETY: the descriptor's whole span is inside the mapping.
        if !unsafe { (*(info as *const Info<M>)).validate_bounds(cell_ok, valid_install) } {
            return Err(nvm::MapError::CorruptPointer { addr: info });
        }
    }
    Ok(())
}

/// The census/sweep epilogue of a mapped attach: rewrite every live
/// descriptor's volatile bookkeeping (recomputed reference count, this
/// process's Info pool as `owner`, `shared` forced) and garbage-collect
/// every committed block not in `live`. Returns the number swept.
///
/// # Safety
/// Quiescent attach-time access; `info_refs` must hold the true reference
/// count per descriptor, `owner` the new Info-pool handle, and `live` every
/// payload address reachable from the structure's roots or this process's
/// caches (the descriptors themselves are added here).
pub unsafe fn census_epilogue<M: Persist>(
    heap: &nvm::mapped::MappedHeap,
    info_refs: &std::collections::HashMap<usize, u32>,
    owner: *const (),
    live: &mut std::collections::HashSet<usize>,
) -> usize {
    for (&info, &cnt) in info_refs {
        // SAFETY: quiescent; count/owner per the contract above.
        unsafe { (*(info as *const Info<M>)).reset_after_attach(cnt, owner) };
        live.insert(info);
    }
    // SAFETY: `live` now covers roots, graph, descriptors and caches.
    unsafe { heap.sweep_except(live) }
}

/// What a mapped-backend `attach(path)` found and did: the heap-level
/// [`nvm::mapped::AttachReport`] plus the structure-level recovery outcome.
#[derive(Debug)]
pub struct AttachSummary {
    /// Heap-level report (created / relocated / poisoned torn blocks / …).
    pub heap: nvm::mapped::AttachReport,
    /// Per-pid Op-Recover decisions of the replay pass (empty on a fresh
    /// heap). `Completed(res)` carries the crashed operation's response.
    pub recovered: Vec<(usize, Recovered)>,
    /// Committed blocks swept by the attach-time garbage collection (blocks
    /// the killed process leaked from pool caches and limbo bags).
    pub swept: usize,
}

impl AttachSummary {
    /// The replayed recovery decision for `pid` (`Restart` on a fresh heap).
    pub fn decision(&self, pid: usize) -> Recovered {
        self.recovered
            .iter()
            .find(|(p, _)| *p == pid)
            .map(|(_, r)| *r)
            .unwrap_or(Recovered::Restart)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Info, InfoFill, RES_TRUE};
    use nvm::CountingNvm;
    use reclaim::Collector;

    type M = CountingNvm;

    #[test]
    fn begin_resets_and_publish_installs() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let rec: RecArea<M> = RecArea::new();
        assert_eq!(rec.read(3), (0, 0), "fresh slot");
        let prev = rec.begin::<false>(3);
        assert_eq!(prev, 0);
        assert_eq!(rec.read(3), (1, 0), "CP set, RD null");
        rec.publish(3, 0xABC0);
        assert_eq!(rec.read(3), (1, 0xABC0));
        // Next operation: begin returns the previous RD and resets.
        let prev = rec.begin::<true>(3);
        assert_eq!(prev, 0xABC0);
        assert_eq!(rec.read(3), (1, 0));
    }

    #[test]
    fn begin_readonly_only_clears_checkpoint() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let rec: RecArea<M> = RecArea::new();
        rec.begin::<false>(1);
        rec.publish(1, 0x1230);
        let prev = rec.begin_readonly(1);
        assert_eq!(prev, 0x1230, "RD untouched by the read-only prologue");
        assert_eq!(rec.read(1), (0, 0x1230), "CP cleared, RD kept");
    }

    /// The Op-Recover decision table (Algorithm 1, lines 22–26).
    #[test]
    fn op_recover_decision_table() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let c = Collector::new();
        let rec: RecArea<M> = RecArea::new();

        // CP = 0 ⇒ restart, regardless of RD.
        {
            let g = c.pin();
            assert_eq!(unsafe { op_recover::<M, false>(&rec, 0, &g) }, Recovered::Restart);
        }
        // CP = 1, RD = Null ⇒ restart.
        rec.begin::<false>(0);
        {
            let g = c.pin();
            assert_eq!(unsafe { op_recover::<M, false>(&rec, 0, &g) }, Recovered::Restart);
        }
        // CP = 1, RD → info whose help cannot proceed and result = ⊥ ⇒ restart.
        let cell: nvm::PWord<M> = nvm::PWord::new(0xDEAD0);
        let info = Info::<M>::alloc();
        unsafe {
            Info::fill(
                info,
                &InfoFill {
                    optype: 1,
                    affect: &[(&cell as *const _ as u64, 0x5550)], // stale expected
                    write: &[],
                    newset: &[],
                    del_mask: 0,
                    presult: RES_TRUE,
                },
            );
        }
        rec.publish(0, info as u64);
        {
            let g = c.pin();
            assert_eq!(unsafe { op_recover::<M, false>(&rec, 0, &g) }, Recovered::Restart);
        }
        // CP = 1, RD → info whose help completes ⇒ Completed(result).
        let cell2: nvm::PWord<M> = nvm::PWord::new(0);
        let info2 = Info::<M>::alloc();
        unsafe {
            Info::fill(
                info2,
                &InfoFill {
                    optype: 1,
                    affect: &[(&cell2 as *const _ as u64, 0)],
                    write: &[],
                    newset: &[],
                    del_mask: 0,
                    presult: RES_TRUE,
                },
            );
        }
        rec.publish(0, info2 as u64);
        {
            let g = c.pin();
            assert_eq!(
                unsafe { op_recover::<M, false>(&rec, 0, &g) },
                Recovered::Completed(RES_TRUE)
            );
        }
        // Drop the descriptors (test owns them).
        unsafe {
            drop(Box::from_raw(info));
            drop(Box::from_raw(info2));
        }
    }

    #[test]
    fn slots_are_isolated_per_process() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let rec: RecArea<M> = RecArea::new();
        rec.begin::<false>(0);
        rec.publish(0, 0x10);
        rec.begin::<false>(7);
        rec.publish(7, 0x70);
        assert_eq!(rec.read(0), (1, 0x10));
        assert_eq!(rec.read(7), (1, 0x70));
        let mut seen = Vec::new();
        rec.each_published(|rd| {
            if rd != 0 {
                seen.push(rd);
            }
        });
        seen.sort();
        assert_eq!(seen, vec![0x10, 0x70]);
    }
}
