//! Per-process recovery data: `RD_q` and the check-point `CP_q`.
//!
//! The detectability protocol (Algorithm 1, lines 1–5 / 16–19 and
//! Op-Recover):
//!
//! 1. The *system* sets `CP_q := 0` (persisted) just before an operation of
//!    process `q` starts — modelled by [`RecArea::begin`].
//! 2. The operation runs `RD_q := Null; pbarrier(RD_q); CP_q := 1;
//!    pwb(CP_q); psync` — the `pbarrier` **orders** the reset of `RD_q`
//!    before `CP_q = 1` becomes durable, so recovery can never observe the
//!    previous operation's info pointer together with `CP_q = 1`.
//! 3. Before each call to `Help`, the attempt's Info pointer is published:
//!    `RD_q := opInfo; pwb; psync` ([`RecArea::publish`]).
//! 4. On recovery ([`RecArea::read`]): `CP_q = 0` or `RD_q = Null` means the
//!    operation made no changes — restart it. Otherwise `Help(RD_q)` is run
//!    and the Info's `result` decides: set ⇒ the operation took effect and
//!    this is its response; unset ⇒ it did not take effect and is re-invoked.
//!
//! The hand-tuned variant (`TUNED = true`, "Isb-Opt" in the evaluation)
//! defers the durability of `CP_q = 1` to the attempt's publish `psync`
//! (ordering is still enforced with a `pfence`), saving one `psync` per
//! operation.

use crate::engine::Info;
use nvm::pad::CachePadded;
use nvm::{PWord, Persist, MAX_PROCS};

/// One process's persistent private recovery variables.
pub struct ProcRec<M: Persist> {
    /// `RD_q`: pointer to the Info structure of the last attempt.
    pub rd: PWord<M>,
    /// `CP_q`: 1 once `RD_q` has been initialised for the current operation.
    pub cp: PWord<M>,
}

impl<M: Persist> Default for ProcRec<M> {
    fn default() -> Self {
        Self { rd: PWord::new(0), cp: PWord::new(0) }
    }
}

/// Per-process recovery areas for one data structure.
pub struct RecArea<M: Persist> {
    slots: Vec<CachePadded<ProcRec<M>>>,
}

impl<M: Persist> Default for RecArea<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs the system's (non-crashable) glue instructions: under the crash
/// simulator they execute with injection suspended; the real modes skip the
/// thread-local bookkeeping entirely (it sat on every operation's prologue).
#[inline]
fn system_glue<M: Persist>(f: impl FnOnce()) {
    if M::SIMULATED {
        nvm::sim::suspended(f)
    } else {
        f()
    }
}

impl<M: Persist> RecArea<M> {
    /// Creates recovery slots for [`MAX_PROCS`] processes.
    pub fn new() -> Self {
        Self { slots: (0..MAX_PROCS).map(|_| CachePadded::new(ProcRec::default())).collect() }
    }

    #[inline]
    fn slot(&self, pid: usize) -> &ProcRec<M> {
        &self.slots[pid]
    }

    /// Steps 1–2 of the protocol (see module docs). Returns the *previous*
    /// operation's published info pointer so the caller can release its
    /// reference-count hold on it.
    pub fn begin<const TUNED: bool>(&self, pid: usize) -> u64 {
        let s = self.slot(pid);
        // System glue: CP_q := 0, persisted, before the operation starts.
        // The system itself does not crash (paper Section 2), so crash
        // injection is suspended for these two instructions.
        system_glue::<M>(|| {
            s.cp.store(0);
            M::pbarrier(&s.cp);
        });
        let prev = s.rd.load();
        s.rd.store(0);
        if TUNED {
            M::pwb(&s.rd);
            M::pfence(); // order RD=Null before CP=1 durability
            s.cp.store(1);
            M::pwb(&s.cp);
            // Durability of CP=1 deferred to the attempt's publish psync.
        } else {
            M::pbarrier(&s.rd);
            s.cp.store(1);
            M::pwb(&s.cp);
            M::psync();
        }
        prev
    }

    /// `CP_q := 0` (persisted) only — the prologue of fully read-only
    /// operations, which skip `RD_q := Null / CP_q := 1` because restarting
    /// them is always safe. Returns the previously published info pointer.
    pub fn begin_readonly(&self, pid: usize) -> u64 {
        let s = self.slot(pid);
        // System glue FIRST: `CP_q := 0` happens at invocation, before any
        // (crashable) operation code — otherwise a crash on the operation's
        // first instruction would leave `CP_q = 1` pointing at the previous
        // operation's descriptor and recovery would return a stale response.
        system_glue::<M>(|| {
            s.cp.store(0);
            M::pbarrier(&s.cp);
        });
        s.rd.load()
    }

    /// Step 3: publish the current attempt's Info pointer durably.
    pub fn publish(&self, pid: usize, info: u64) {
        let s = self.slot(pid);
        s.rd.store(info);
        M::pwb(&s.rd);
        M::psync();
    }

    /// Step 4 input: `(CP_q, RD_q)` as found after a crash.
    pub fn read(&self, pid: usize) -> (u64, u64) {
        let s = self.slot(pid);
        (s.cp.load(), s.rd.load())
    }

    /// The currently published info pointer (diagnostics / drop-scan).
    pub fn published(&self, pid: usize) -> u64 {
        self.slot(pid).rd.load()
    }

    /// Iterate all published info pointers (drop-time info scan).
    pub fn each_published(&self, mut f: impl FnMut(u64)) {
        for s in &self.slots {
            f(s.rd.load());
        }
    }
}

/// Outcome of the generic recovery decision (Op-Recover, lines 22–26).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovered {
    /// The crashed operation took effect; this is its (encoded) response.
    Completed(u64),
    /// The operation did not take effect and must be re-invoked.
    Restart,
}

/// Generic Op-Recover: decide whether the pending operation of `pid` took
/// effect, completing it via `Help` if necessary.
///
/// # Safety
/// Must be called in a quiescent-or-recovering context where the published
/// info pointer, if any, is a valid `Info<M>` (guaranteed by the protocol:
/// infos are persisted before publication and never freed in crash mode).
pub unsafe fn op_recover<M: Persist, const TUNED: bool>(
    rec: &RecArea<M>,
    pid: usize,
    guard: &reclaim::Guard<'_>,
) -> Recovered {
    let (cp, rd) = rec.read(pid);
    if cp != 1 || rd == 0 {
        return Recovered::Restart;
    }
    let info = crate::tag::ptr_of::<Info<M>>(rd);
    unsafe {
        let _ = crate::engine::help::<M, TUNED>(info, true, guard);
        let res = M::load(&(*info).result);
        if res != crate::engine::RES_BOT {
            Recovered::Completed(res)
        } else {
            Recovered::Restart
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Info, InfoFill, RES_TRUE};
    use nvm::CountingNvm;
    use reclaim::Collector;

    type M = CountingNvm;

    #[test]
    fn begin_resets_and_publish_installs() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let rec: RecArea<M> = RecArea::new();
        assert_eq!(rec.read(3), (0, 0), "fresh slot");
        let prev = rec.begin::<false>(3);
        assert_eq!(prev, 0);
        assert_eq!(rec.read(3), (1, 0), "CP set, RD null");
        rec.publish(3, 0xABC0);
        assert_eq!(rec.read(3), (1, 0xABC0));
        // Next operation: begin returns the previous RD and resets.
        let prev = rec.begin::<true>(3);
        assert_eq!(prev, 0xABC0);
        assert_eq!(rec.read(3), (1, 0));
    }

    #[test]
    fn begin_readonly_only_clears_checkpoint() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let rec: RecArea<M> = RecArea::new();
        rec.begin::<false>(1);
        rec.publish(1, 0x1230);
        let prev = rec.begin_readonly(1);
        assert_eq!(prev, 0x1230, "RD untouched by the read-only prologue");
        assert_eq!(rec.read(1), (0, 0x1230), "CP cleared, RD kept");
    }

    /// The Op-Recover decision table (Algorithm 1, lines 22–26).
    #[test]
    fn op_recover_decision_table() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let c = Collector::new();
        let rec: RecArea<M> = RecArea::new();

        // CP = 0 ⇒ restart, regardless of RD.
        {
            let g = c.pin();
            assert_eq!(unsafe { op_recover::<M, false>(&rec, 0, &g) }, Recovered::Restart);
        }
        // CP = 1, RD = Null ⇒ restart.
        rec.begin::<false>(0);
        {
            let g = c.pin();
            assert_eq!(unsafe { op_recover::<M, false>(&rec, 0, &g) }, Recovered::Restart);
        }
        // CP = 1, RD → info whose help cannot proceed and result = ⊥ ⇒ restart.
        let cell: nvm::PWord<M> = nvm::PWord::new(0xDEAD0);
        let info = Info::<M>::alloc();
        unsafe {
            Info::fill(
                info,
                &InfoFill {
                    optype: 1,
                    affect: &[(&cell as *const _ as u64, 0x5550)], // stale expected
                    write: &[],
                    newset: &[],
                    del_mask: 0,
                    presult: RES_TRUE,
                },
            );
        }
        rec.publish(0, info as u64);
        {
            let g = c.pin();
            assert_eq!(unsafe { op_recover::<M, false>(&rec, 0, &g) }, Recovered::Restart);
        }
        // CP = 1, RD → info whose help completes ⇒ Completed(result).
        let cell2: nvm::PWord<M> = nvm::PWord::new(0);
        let info2 = Info::<M>::alloc();
        unsafe {
            Info::fill(
                info2,
                &InfoFill {
                    optype: 1,
                    affect: &[(&cell2 as *const _ as u64, 0)],
                    write: &[],
                    newset: &[],
                    del_mask: 0,
                    presult: RES_TRUE,
                },
            );
        }
        rec.publish(0, info2 as u64);
        {
            let g = c.pin();
            assert_eq!(
                unsafe { op_recover::<M, false>(&rec, 0, &g) },
                Recovered::Completed(RES_TRUE)
            );
        }
        // Drop the descriptors (test owns them).
        unsafe {
            drop(Box::from_raw(info));
            drop(Box::from_raw(info2));
        }
    }

    #[test]
    fn slots_are_isolated_per_process() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let rec: RecArea<M> = RecArea::new();
        rec.begin::<false>(0);
        rec.publish(0, 0x10);
        rec.begin::<false>(7);
        rec.publish(7, 0x70);
        assert_eq!(rec.read(0), (1, 0x10));
        assert_eq!(rec.read(7), (1, 0x70));
        let mut seen = Vec::new();
        rec.each_published(|rd| {
            if rd != 0 {
                seen.push(rd);
            }
        });
        seen.sort();
        assert_eq!(seen, vec![0x10, 0x70]);
    }
}
