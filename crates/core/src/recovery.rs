//! Per-process recovery data: `RD_q` and the check-point `CP_q`.
//!
//! The detectability protocol (Algorithm 1, lines 1–5 / 16–19 and
//! Op-Recover):
//!
//! 1. The *system* sets `CP_q := 0` (persisted) just before an operation of
//!    process `q` starts — modelled by [`RecArea::begin`].
//! 2. The operation runs `RD_q := Null; pbarrier(RD_q); CP_q := 1;
//!    pwb(CP_q); psync` — the `pbarrier` **orders** the reset of `RD_q`
//!    before `CP_q = 1` becomes durable, so recovery can never observe the
//!    previous operation's info pointer together with `CP_q = 1`.
//! 3. Before each call to `Help`, the attempt's Info pointer is published:
//!    `RD_q := opInfo; pwb; psync` ([`RecArea::publish`]).
//! 4. On recovery ([`RecArea::read`]): `CP_q = 0` or `RD_q = Null` means the
//!    operation made no changes — restart it. Otherwise `Help(RD_q)` is run
//!    and the Info's `result` decides: set ⇒ the operation took effect and
//!    this is its response; unset ⇒ it did not take effect and is re-invoked.
//!
//! The hand-tuned variant (`ARM = true`, "Isb-Opt" in the evaluation)
//! defers the durability of `CP_q = 1` to the attempt's publish `psync`
//! (ordering is still enforced with a `pfence`), saving one `psync` per
//! operation.

use crate::engine::Info;
use nvm::pad::CachePadded;
use nvm::{PWord, Persist, MAX_PROCS};

/// One process's persistent private recovery variables.
pub struct ProcRec<M: Persist> {
    /// `RD_q`: pointer to the Info structure of the last attempt.
    pub rd: PWord<M>,
    /// `CP_q`: 1 once `RD_q` has been initialised for the current operation.
    pub cp: PWord<M>,
}

impl<M: Persist> Default for ProcRec<M> {
    fn default() -> Self {
        Self { rd: PWord::new(0), cp: PWord::new(0) }
    }
}

/// Where a [`RecArea`]'s slots live: owned on the process heap (the
/// in-process backends) or borrowed from a persistent arena (the mapped
/// backend, where `RD_q`/`CP_q` must survive the process).
enum Slots<M: Persist> {
    Owned(Vec<CachePadded<ProcRec<M>>>),
    /// Base of [`MAX_PROCS`] slots at [`ARENA_SLOT_STRIDE`]-byte stride.
    Arena(*const u8),
}

/// Byte stride of one arena-resident recovery slot: the padding of the
/// owned layout without its 128-byte *alignment* demand (arena payloads are
/// 64-byte aligned).
pub const ARENA_SLOT_STRIDE: usize = 128;

/// Per-process recovery areas for one data structure.
pub struct RecArea<M: Persist> {
    slots: Slots<M>,
}

// SAFETY: all slot state is atomics behind `&self`; the arena pointer is
// only dereferenced at fixed per-pid offsets inside a mapping the owning
// structure keeps alive (attach_raw contract).
unsafe impl<M: Persist> Send for RecArea<M> {}
unsafe impl<M: Persist> Sync for RecArea<M> {}

impl<M: Persist> Default for RecArea<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs the system's (non-crashable) glue instructions: under the crash
/// simulator they execute with injection suspended; the real modes skip the
/// thread-local bookkeeping entirely (it sat on every operation's prologue).
#[inline]
fn system_glue<M: Persist>(f: impl FnOnce()) {
    if M::SIMULATED {
        nvm::sim::suspended(f)
    } else {
        f()
    }
}

impl<M: Persist> RecArea<M> {
    /// Creates recovery slots for [`MAX_PROCS`] processes.
    pub fn new() -> Self {
        Self {
            slots: Slots::Owned(
                (0..MAX_PROCS).map(|_| CachePadded::new(ProcRec::default())).collect(),
            ),
        }
    }

    /// Bytes an arena-resident recovery area occupies
    /// ([`MAX_PROCS`] × [`ARENA_SLOT_STRIDE`]).
    pub const fn slots_bytes() -> usize {
        MAX_PROCS * ARENA_SLOT_STRIDE
    }

    /// A recovery area over persistent slots at `base` (the mapped backend's
    /// root block). Zeroed memory is a valid fresh state (`CP = 0`,
    /// `RD = Null`); previously persisted slots are exactly what recovery
    /// needs to read.
    ///
    /// # Safety
    /// `base` must point to [`RecArea::slots_bytes`] bytes of 8-aligned
    /// memory that outlives the returned area and is zeroed or holds a
    /// previously persisted slot array; `M::Meta` must be zero-sized (the
    /// mapped/real models — the crash simulator keeps its shadow state on
    /// the process heap and cannot live in an arena).
    pub unsafe fn attach_raw(base: *const u8) -> Self {
        assert!(std::mem::size_of::<ProcRec<M>>() <= ARENA_SLOT_STRIDE);
        assert_eq!(std::mem::size_of::<M::Meta>(), 0, "arena slots require metadata-free models");
        Self { slots: Slots::Arena(base) }
    }

    #[inline]
    fn slot(&self, pid: usize) -> &ProcRec<M> {
        match &self.slots {
            Slots::Owned(v) => &v[pid],
            Slots::Arena(base) => {
                assert!(pid < MAX_PROCS);
                // SAFETY: in-bounds fixed-stride slot per attach_raw.
                unsafe { &*(base.add(pid * ARENA_SLOT_STRIDE) as *const ProcRec<M>) }
            }
        }
    }

    /// Steps 1–2 of the protocol (see module docs). Returns the *previous*
    /// operation's published info pointer so the caller can release its
    /// reference-count hold on it.
    pub fn begin<const ARM: u8>(&self, pid: usize) -> u64 {
        // Coalescing arms route every batched flush through the line set, so
        // a duplicate stand-alone pwb inside one fence window is a flush-diet
        // regression; arm the (feature-gated) lint. Lower arms legitimately
        // re-flush lines, so disarm.
        nvm::coalesce::lint::set_armed(crate::arm::coalesces(ARM));
        let s = self.slot(pid);
        // System glue: CP_q := 0, persisted, before the operation starts.
        // The system itself does not crash (paper Section 2), so crash
        // injection is suspended for these two instructions.
        system_glue::<M>(|| {
            s.cp.store(0);
            M::pbarrier(&s.cp);
        });
        let prev = s.rd.load();
        s.rd.store(0);
        if crate::arm::coalesces(ARM) {
            // Coalescing arms: flush RD=Null (the pfence drains the line —
            // RD=Null must be durable before CP=1 can be), but defer the
            // `CP_q := 1` *store* into `publish_arm`, where it shares the
            // slot's cache line with the RD_q flush. Between begin and
            // publish CP_q stays 0 (durably, via the glue barrier), so a
            // crash in that window decides Restart exactly as it does when
            // CP=1 with RD=Null. See DESIGN.md §12.
            crate::arm::pwb_arm::<M, ARM>(&s.rd);
            M::pfence();
        } else if crate::arm::is_tuned(ARM) {
            M::pwb(&s.rd);
            M::pfence(); // order RD=Null before CP=1 durability
            s.cp.store(1);
            M::pwb(&s.cp);
            // Durability of CP=1 deferred to the attempt's publish psync.
        } else {
            M::pbarrier(&s.rd);
            s.cp.store(1);
            M::pwb(&s.cp);
            M::psync();
        }
        prev
    }

    /// `CP_q := 0` (persisted) only — the prologue of fully read-only
    /// operations, which skip `RD_q := Null / CP_q := 1` because restarting
    /// them is always safe. Returns the previously published info pointer.
    pub fn begin_readonly(&self, pid: usize) -> u64 {
        let s = self.slot(pid);
        // System glue FIRST: `CP_q := 0` happens at invocation, before any
        // (crashable) operation code — otherwise a crash on the operation's
        // first instruction would leave `CP_q = 1` pointing at the previous
        // operation's descriptor and recovery would return a stale response.
        system_glue::<M>(|| {
            s.cp.store(0);
            M::pbarrier(&s.cp);
        });
        s.rd.load()
    }

    /// Step 3: publish the current attempt's Info pointer durably.
    pub fn publish(&self, pid: usize, info: u64) {
        let s = self.slot(pid);
        s.rd.store(info);
        M::pwb(&s.rd);
        M::psync();
    }

    /// Arm-aware [`RecArea::publish`] for descriptor-tracked mutating
    /// operations. Coalescing arms complete the `CP_q := 1` deferred by
    /// [`RecArea::begin`] here: CP and RD live in one cache line
    /// ([`ProcRec`]), so noting both in the line set makes the publish flush
    /// a single write-back where TUNED pays one in begin and one here.
    /// Read-only paths (`find`) must keep using plain `publish` — they never
    /// set `CP_q`.
    pub fn publish_arm<const ARM: u8>(&self, pid: usize, info: u64) {
        if !crate::arm::coalesces(ARM) {
            return self.publish(pid, info);
        }
        let s = self.slot(pid);
        s.cp.store(1);
        crate::arm::pwb_arm::<M, ARM>(&s.cp);
        s.rd.store(info);
        crate::arm::pwb_arm::<M, ARM>(&s.rd); // same line: elided
        M::psync();
    }

    /// Step 4 input: `(CP_q, RD_q)` as found after a crash.
    pub fn read(&self, pid: usize) -> (u64, u64) {
        let s = self.slot(pid);
        (s.cp.load(), s.rd.load())
    }

    /// The currently published info pointer (diagnostics / drop-scan).
    pub fn published(&self, pid: usize) -> u64 {
        self.slot(pid).rd.load()
    }

    /// Iterate all published info pointers (drop-time info scan).
    pub fn each_published(&self, mut f: impl FnMut(u64)) {
        for pid in 0..MAX_PROCS {
            f(self.slot(pid).rd.load());
        }
    }

    /// The *system* half of an invocation: `CP_q := 0`, persisted. The paper
    /// models this as executing atomically **when the operation is invoked**
    /// (Section 2) — the operations' own prologues re-run it, harmlessly.
    ///
    /// Callers that write their own intent records around a mapped structure
    /// (write-ahead logs, request journals) must call this *before* logging
    /// the intent: otherwise a crash between the log write and the
    /// operation's first instruction leaves `CP_q = 1` pointing at the
    /// *previous* operation's descriptor, and recovery would hand the new
    /// operation a stale response.
    pub fn mark_invoked(&self, pid: usize) {
        let s = self.slot(pid);
        system_glue::<M>(|| {
            s.cp.store(0);
            M::pbarrier(&s.cp);
        });
    }

    /// Durably resets a dead peer's slot to the fresh state (`CP = 0`,
    /// `RD = Null`) after a survivor resolved its pending operation
    /// ([`recover_dead_pid`]). `CP` is cleared (and persisted) **first**: a
    /// superseding recoverer that reads the slot mid-clear sees `CP = 0`,
    /// decides `Restart`, and releases the still-published `RD` reference
    /// exactly as the dead recoverer would have — never a double help of a
    /// half-torn decision.
    pub fn clear_slot(&self, pid: usize) {
        let s = self.slot(pid);
        s.cp.store(0);
        M::pbarrier(&s.cp);
        s.rd.store(0);
        M::pbarrier(&s.rd);
    }
}

/// Outcome of the generic recovery decision (Op-Recover, lines 22–26).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovered {
    /// The crashed operation took effect; this is its (encoded) response.
    Completed(u64),
    /// The operation did not take effect and must be re-invoked.
    Restart,
}

/// Generic Op-Recover: decide whether the pending operation of `pid` took
/// effect, completing it via `Help` if necessary. A published value carrying
/// the [`crate::tag::DIRECT`] annotation names a direct-tracked *node*, not
/// a descriptor — it belongs to a different structure's pending operation
/// (the caller's own operation therefore never began), so the decision is
/// `Restart`; the direct structure's own recovery reads it instead.
///
/// # Safety
/// Must be called in a quiescent-or-recovering context where the published
/// info pointer, if any, is a valid `Info<M>` (guaranteed by the protocol:
/// infos are persisted before publication and never freed in crash mode).
pub unsafe fn op_recover<M: Persist, const ARM: u8>(
    rec: &RecArea<M>,
    pid: usize,
    guard: &reclaim::Guard<'_>,
) -> Recovered {
    let (cp, rd) = rec.read(pid);
    if cp != 1 || rd == 0 || crate::tag::is_direct(rd) {
        return Recovered::Restart;
    }
    let info = crate::tag::ptr_of::<Info<M>>(rd);
    unsafe {
        let _ = crate::engine::help::<M, ARM>(info, true, guard);
        let res = M::load(&(*info).result);
        if res != crate::engine::RES_BOT {
            Recovered::Completed(res)
        } else {
            Recovered::Restart
        }
    }
}

/// Releases the `RD_q` reference on the *previous* operation's published
/// value (the word [`RecArea::begin`] returned). With one recovery area
/// shared by several structures ([`crate::store::Store`]) the previous
/// value may be a [`crate::tag::DIRECT`] node announcement instead of an
/// Info pointer — those carry no descriptor reference (the direct-tracked
/// structure reclaims its nodes through its own deferred-retire slots), so
/// they are skipped.
///
/// # Safety
/// As [`Info::release`]: `prev` must be the value `begin` returned for an
/// operation the caller owns, released exactly once.
pub unsafe fn release_prev<M: Persist>(prev: u64, g: &reclaim::Guard<'_>) {
    if crate::tag::is_direct(prev) {
        return;
    }
    unsafe { Info::<M>::release(crate::tag::ptr_of(prev), 1, g) };
}

/// **Online** per-pid recovery: a *survivor* of a shared heap resolves the
/// pending operation of a SIGKILLed peer while every structure keeps
/// serving. This is Op-Recover for exactly one pid — `Help` is lock-free
/// and idempotent, so replaying it concurrently with live traffic is the
/// ordinary helping path, not a special mode — followed by a durable slot
/// reset and the release of the slot's descriptor reference.
///
/// Direct-tracked announcements ([`crate::tag::DIRECT`]) are left in place
/// and decided `Restart`: their resolution needs the owning structure's
/// roots (reachability / claim-stamp reads), which the next full attach
/// performs; the untouched slot keeps the announced node alive for it.
///
/// The sequence is crash-ordered for a recoverer that itself dies: the
/// reference release runs only *after* `RD` is durably nulled, so a
/// superseding recoverer either sees the old `RD` (predecessor had not
/// released — it releases) or `RD = Null` (nothing left to do). A death
/// between the slot clear and the release leaks one reference; the next
/// full attach recomputes true counts and sweeps it.
///
/// # Safety
/// `pid` must belong to a participant that is **dead** (liveness-probed)
/// and whose recovery lease the caller holds
/// ([`nvm::mapped::MappedHeap::lease_try_claim_for`]) — the lease is what
/// makes "at most one resolver at a time" true. The published descriptor,
/// if any, must be a valid `Info` (protocol invariant: persisted before
/// publication, never freed while published).
pub unsafe fn recover_dead_pid(
    rec: &RecArea<MappedNvm>,
    pid: usize,
    guard: &reclaim::Guard<'_>,
) -> Recovered {
    // SAFETY: forwarded contract.
    unsafe { recover_dead_pid_with(rec, pid, guard, |_| {}) }
}

/// [`recover_dead_pid`] with an `on_decision` hook that runs **after** the
/// decision is computed but **before** the slot is durably cleared. Callers
/// that mirror the decision into their own durable state (the KV response
/// table resolving a dead server's op-ID intents) need exactly this window:
/// if the recoverer dies inside the hook, the slot still carries `CP`/`RD`,
/// so a superseding recoverer recomputes the *same* decision and re-runs the
/// hook — which must therefore be idempotent. Hooked work that ran is never
/// lost; work that didn't run is re-derivable.
///
/// # Safety
/// As [`recover_dead_pid`].
pub unsafe fn recover_dead_pid_with(
    rec: &RecArea<MappedNvm>,
    pid: usize,
    guard: &reclaim::Guard<'_>,
    on_decision: impl FnOnce(Recovered),
) -> Recovered {
    let (cp, rd) = rec.read(pid);
    let addr = crate::tag::addr_of(rd);
    if crate::tag::is_direct(rd) && addr != 0 {
        return Recovered::Restart;
    }
    let decision = if cp != 1 || addr == 0 {
        Recovered::Restart
    } else {
        // SAFETY: caller holds the recovery lease over a validated published
        // descriptor; help is the ordinary concurrent helping path.
        unsafe { op_recover::<MappedNvm, 0>(rec, pid, guard) }
    };
    on_decision(decision);
    rec.clear_slot(pid);
    if addr != 0 {
        // SAFETY: the RD slot held one reference on the descriptor and was
        // durably cleared above, so this release runs at most once across
        // recoverer supersessions. A foreign-owned final release leaks the
        // block by design (engine owner-slot guard); full attach sweeps it.
        unsafe { Info::<MappedNvm>::release(crate::tag::ptr_of(rd), 1, guard) };
    }
    decision
}

/// Root-directory keys the mapped backend registers in a heap's superblock.
/// One heap hosts one structure (or one [`crate::store::Store`] catalog), so
/// the keys only need to be unique within this set.
pub mod rootkeys {
    /// The heap-wide [`super::RecArea`] slot array (shared by every
    /// structure in a store: one pending operation per process).
    pub const RECAREA: u64 = 0x5245_4341; // "RECA"
    /// Structure configuration word, validated on re-attach (standalone
    /// heaps; store entries record their cfg in the catalog instead).
    pub const META: u64 = 0x4D45_5441; // "META"
    /// The structure's root block (standalone heaps; store entries' root
    /// blocks are named by the catalog).
    pub const STRUCT: u64 = 0x5354_5543; // "STUC"
    /// The [`crate::store::Store`] catalog block.
    pub const CATALOG: u64 = 0x4341_5441; // "CATA"
    /// The shared cross-process epoch region ([`reclaim::Collector::attach_shared`]):
    /// global epoch + per-participant announce words, one domain per heap.
    pub const EPOCHS: u64 = 0x4550_4F43; // "EPOC"
    /// The KV-service response table ([`crate::resptable::ResponseTable`]):
    /// per-client dedup/response slots plus per-pid op-ID intent records,
    /// resolved against the replay decisions on every attach.
    pub const RESPTAB: u64 = 0x5245_5350; // "RESP"
}

use nvm::mapped::{MapError, MappedHeap, MappedNvm};
use reclaim::Collector;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Typed failures of the mapped attach path ([`MappedLayout`] driver and
/// [`crate::store::Store`]). Every shape of damaged image, mismatched
/// configuration or non-quiescing recovery surfaces here — attach never
/// panics the process and never exhibits undefined behaviour.
#[derive(Debug)]
pub enum AttachError {
    /// Heap-level failure (I/O, corruption, exhaustion, superblock kind).
    Map(MapError),
    /// The post-replay scrub did not quiesce within its pass budget: some
    /// tagged descriptor could not be helped to completion, which no crash
    /// of a correct execution can produce (a diagnosis, not a panic).
    ScrubStalled {
        /// Structure kind name ([`MappedLayout::KIND_NAME`]).
        kind: &'static str,
        /// Passes attempted before giving up.
        passes: usize,
    },
    /// The named entry (or standalone heap) hosts a different structure
    /// kind than the caller asked for.
    WrongKind {
        /// Entry name (empty for a standalone heap).
        name: String,
        /// Kind tag the caller expected.
        expected: u64,
        /// Kind tag recorded in the image.
        found: u64,
    },
    /// The entry exists with a different configuration word (shard count /
    /// tuning) than the caller asked for.
    CfgMismatch {
        /// Entry name (empty for a standalone heap).
        name: String,
        /// Configuration word the caller expected.
        expected: u64,
        /// Configuration word recorded in the image.
        found: u64,
    },
    /// The caller passed an unusable configuration (e.g. a non-power-of-two
    /// shard count). Rejected **before** anything durable happens — a bad
    /// config must never reach the catalog, where it would brick the heap.
    InvalidCfg {
        /// Structure kind name.
        kind: &'static str,
        /// What was wrong.
        reason: String,
    },
    /// The caller passed an unusable entry name (empty, or longer than the
    /// catalog's inline name buffer). Rejected before anything durable
    /// happens.
    InvalidName {
        /// The offending name.
        name: String,
    },
    /// The KV response table carries state no crash of a correct execution
    /// can produce (e.g. an intent record whose state word is neither empty
    /// nor in-flight). Torn-but-reachable shapes are *healed* instead; this
    /// is the unreachable-shape diagnosis, surfaced typed rather than UB.
    CorruptResponseTable {
        /// Index of the offending slot (intent slots are indexed by pid,
        /// client slots by table position).
        slot: usize,
        /// What was wrong.
        reason: &'static str,
    },
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::Map(e) => write!(f, "{e}"),
            AttachError::ScrubStalled { kind, passes } => {
                write!(f, "{kind}: attach scrub did not quiesce after {passes} passes")
            }
            AttachError::WrongKind { name, expected, found } if name.is_empty() => {
                write!(f, "heap hosts structure kind {found}, expected {expected}")
            }
            AttachError::WrongKind { name, expected, found } => {
                write!(f, "entry {name:?} hosts structure kind {found}, expected {expected}")
            }
            AttachError::CfgMismatch { name, expected, found } if name.is_empty() => {
                write!(f, "heap records configuration {found:#x}, expected {expected:#x}")
            }
            AttachError::CfgMismatch { name, expected, found } => {
                write!(f, "entry {name:?} records configuration {found:#x}, expected {expected:#x}")
            }
            AttachError::InvalidCfg { kind, reason } => {
                write!(f, "unusable {kind} configuration: {reason}")
            }
            AttachError::InvalidName { name } => {
                write!(
                    f,
                    "unusable entry name {name:?} (must be 1..={} bytes)",
                    nvm::mapped::CATALOG_NAME_BYTES
                )
            }
            AttachError::CorruptResponseTable { slot, reason } => {
                write!(f, "response table slot {slot}: {reason}")
            }
        }
    }
}

impl std::error::Error for AttachError {}

impl From<MapError> for AttachError {
    fn from(e: MapError) -> Self {
        AttachError::Map(e)
    }
}

/// What the generic driver hands a [`MappedLayout::open`] implementation:
/// the attached heap, the shared recovery-slot block, and the heap-wide
/// Info-descriptor pool (shared across every structure in a store, because
/// `RD_q` hand-over on [`RecArea::begin`] releases the *previous*
/// operation's descriptor regardless of which structure it belonged to).
pub struct AttachEnv {
    /// The opened (or freshly created) heap.
    pub heap: Arc<MappedHeap>,
    rec_base: *const u8,
    /// Shared cross-process epoch region (null ⇒ exclusive heap, collectors
    /// keep private epochs). See [`AttachEnv::collector`].
    epoch_region: *mut u8,
    info_pool: crate::pool::Pool<Info<MappedNvm>>,
}

impl AttachEnv {
    /// Builds the environment over an attached heap (driver / store use).
    pub(crate) fn new(heap: Arc<MappedHeap>, rec_base: *const u8) -> Self {
        let info_pool =
            crate::pool::Pool::with_arena(Arc::clone(&heap), crate::pool::DEFAULT_CAPACITY);
        Self::with_pool(heap, rec_base, info_pool)
    }

    /// As [`AttachEnv::new`], reusing an existing shared Info pool (the
    /// store's handle-creation path).
    pub(crate) fn with_pool(
        heap: Arc<MappedHeap>,
        rec_base: *const u8,
        info_pool: crate::pool::Pool<Info<MappedNvm>>,
    ) -> Self {
        Self { heap, rec_base, epoch_region: std::ptr::null_mut(), info_pool }
    }

    /// Routes every collector built by [`AttachEnv::collector`] through the
    /// heap's shared epoch region (the store's shared-mode open does this
    /// after allocating/initialising the [`rootkeys::EPOCHS`] root block).
    pub(crate) fn set_epochs(&mut self, region: *mut u8) {
        self.epoch_region = region;
    }

    /// A collector for one structure: a plain private-epoch collector on an
    /// exclusive heap, or one attached to the heap's shared epoch region in
    /// multi-process mode (every structure and process then forms a single
    /// epoch domain — required, since a node retired by one process may be
    /// read by any peer).
    pub fn collector(&self) -> Collector {
        let mut c = Collector::new();
        if !self.epoch_region.is_null() {
            // SAFETY: the region is the heap's committed EPOCHS root block
            // (shared_region_bytes() long, 64-aligned), initialised by the
            // initial attacher before any joiner builds structures, and kept
            // alive by the heap Arc every structure holds via pool_cfg.
            unsafe { c.attach_shared(self.epoch_region) };
        }
        c
    }

    /// A recovery-area view over the heap's shared slot block. Every
    /// structure in the heap gets its own view of the **same** slots.
    pub fn rec_area(&self) -> RecArea<MappedNvm> {
        // SAFETY: the slot block is a committed root block of
        // `RecArea::slots_bytes()` zero-initialised bytes that lives as long
        // as the heap; the structure keeps `heap` alive via `pool_cfg`.
        unsafe { RecArea::attach_raw(self.rec_base) }
    }

    /// A clone of the heap-wide Info-descriptor pool.
    pub fn info_pool(&self) -> crate::pool::Pool<Info<MappedNvm>> {
        self.info_pool.clone()
    }

    /// The pool configuration structure node pools must use (all allocation
    /// routed through the persistent arena).
    pub fn pool_cfg(&self) -> crate::pool::PoolCfg {
        crate::pool::PoolCfg::mapped(Arc::clone(&self.heap))
    }
}

/// The attach-time operations the generic driver invokes on an already
/// constructed mapped structure — the object-safe half of [`MappedLayout`]
/// (a [`crate::store::Store`] drives a heterogeneous set of these).
///
/// All methods run during the quiescent attach sequence: no structure
/// operation runs concurrently. Validation and census may be split into
/// [`SlotOps::work_units`] and run on attach-scoped worker threads (the
/// units partition the graph, so per-unit runs never touch the same node);
/// everything else stays on the attaching thread.
pub trait SlotOps: Send + Sync {
    /// Bounds-checked pre-recovery validation of the structure's graph in
    /// the **untrusted** image: every reachable node must have a whole-node
    /// span inside the mapping and the graph must terminate; referenced
    /// descriptors are only *collected* into `infos` (the driver
    /// range-checks them with [`validate_infos`]). No pointer may be
    /// dereferenced before its span check. Typed error on violation.
    fn validate_image(&self, infos: &mut HashSet<u64>) -> Result<(), MapError>;

    /// Number of independent work units the parallel attach driver may
    /// split this structure's validation and census into (e.g. one per
    /// hash-map shard). Units must partition the structure's graph; the
    /// default is one unit — the whole structure.
    fn work_units(&self) -> usize {
        1
    }

    /// As [`SlotOps::validate_image`], restricted to work unit `unit`
    /// (`0..work_units()`). Units run concurrently on scoped threads, each
    /// with its own `infos` set; the driver merges them. The default
    /// delegates to `validate_image` (single unit).
    fn validate_unit(&self, unit: usize, infos: &mut HashSet<u64>) -> Result<(), MapError> {
        debug_assert_eq!(unit, 0);
        self.validate_image(infos)
    }

    /// As [`SlotOps::census`], restricted to work unit `unit`. Each unit
    /// gets private `live`/`info_refs` maps; the driver merges by union and
    /// by summing reference counts, which equals the serial census because
    /// units partition the cells.
    ///
    /// # Safety
    /// Quiescent exclusive attach-time access (as `census`).
    unsafe fn census_unit(
        &self,
        unit: usize,
        live: &mut HashSet<usize>,
        info_refs: &mut HashMap<usize, u32>,
    ) {
        debug_assert_eq!(unit, 0);
        // SAFETY: forwarded contract.
        unsafe { self.census(live, info_refs) }
    }

    /// Whether `addr` is a plausible node of this structure (whole-span
    /// check) — the driver validates descriptor WriteSet install values
    /// against the union of the heap's structures.
    fn valid_install(&self, addr: u64) -> bool;

    /// Completes helping obligations left visible by the crash (bounded;
    /// [`AttachError::ScrubStalled`] instead of a panic when the budget is
    /// exhausted). Runs after the Op-Recover replay.
    fn try_scrub(&self) -> Result<(), AttachError>;

    /// Post-scrub structural repair (e.g. the queue's tail-hint heal).
    fn heal(&mut self) {}

    /// Census of the quiescent structure: every reachable node's payload
    /// address into `live`, and per descriptor still referenced from a node
    /// cell the number of referencing cells into `info_refs`.
    ///
    /// # Safety
    /// Quiescent exclusive attach-time access.
    unsafe fn census(&self, live: &mut HashSet<usize>, info_refs: &mut HashMap<usize, u32>);

    /// Every arena block currently cached in this structure's pools (kept
    /// out of the sweep).
    fn each_cached(&mut self, f: &mut dyn FnMut(usize));

    /// Direct tracking only: whether the node at `addr` is reachable from
    /// this structure's roots (decides a crashed push's recovery).
    fn direct_reachable(&self, _addr: u64) -> bool {
        false
    }

    /// Type-erase for the store's handle cache.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send + Sync>;
}

/// A mapped structure kind: everything the generic attach driver needs to
/// create, re-open and recover one detectably recoverable structure inside
/// a [`MappedHeap`] — the per-kind constants and constructor on top of the
/// attach-time operations of [`SlotOps`].
///
/// Implementations are thin: the whole remap → validate → replay → scrub →
/// census → sweep lifecycle lives once in [`attach_standalone`] /
/// [`finish_attach`], shared by every structure and by the multi-structure
/// [`crate::store::Store`].
pub trait MappedLayout: SlotOps + Sized + std::any::Any {
    /// Structure-kind tag (superblock kind for standalone heaps, catalog
    /// entry kind inside a store). Tuning variants share a kind; the
    /// configuration word carries the tuning bit.
    const KIND: u64;
    /// Human-readable kind name (errors/diagnostics).
    const KIND_NAME: &'static str;
    /// Construction parameters beyond the heap (e.g. shard count).
    type Cfg: Copy;

    /// Rejects unusable configurations with a typed error **before**
    /// anything durable happens — once a config reaches the superblock or
    /// the catalog it is permanent, so a bad one must never get that far.
    fn validate_cfg(_cfg: Self::Cfg) -> Result<(), AttachError> {
        Ok(())
    }

    /// Encodes `cfg` (plus the tuning) into the persisted configuration
    /// word checked on re-attach.
    fn cfg_word(cfg: Self::Cfg) -> u64;

    /// Size of the structure's persistent root block.
    fn root_bytes(cfg: Self::Cfg) -> usize;

    /// Constructs the structure over `root` (a committed, zero-initialised
    /// on first use root block of [`MappedLayout::root_bytes`] bytes inside
    /// `env.heap`): installs fresh roots when the block is still zeroed,
    /// loads them otherwise. Must be idempotent — a creation cut short by a
    /// kill re-runs it.
    fn open(env: &AttachEnv, cfg: Self::Cfg, root: *mut u8) -> Result<Self, AttachError>;
}

/// Attaches (or creates) a standalone single-structure heap at `path` and
/// runs the full restart-recovery sequence (see [`finish_attach`]). This is
/// the one generic driver behind every structure's `attach(path)`.
///
/// The calling thread must be registered ([`nvm::tid::set_tid`]); one
/// process attaches a heap at a time.
pub fn attach_standalone<L: MappedLayout>(
    path: &std::path::Path,
    cfg: L::Cfg,
    heap_bytes: usize,
) -> Result<(L, AttachSummary), AttachError> {
    L::validate_cfg(cfg)?;
    let heap = MappedHeap::open(path, heap_bytes)?;
    // kind == 0 also covers a creation cut short before the final stamp:
    // every init step is idempotent, so re-running completes it.
    let fresh = heap.kind() == 0;
    if !fresh && heap.kind() != L::KIND {
        return Err(AttachError::WrongKind {
            name: String::new(),
            expected: L::KIND,
            found: heap.kind(),
        });
    }
    let (rec_ptr, _) = heap.root_alloc(rootkeys::RECAREA, RecArea::<MappedNvm>::slots_bytes())?;
    // Record (fresh) or validate (re-attach) the recovery-area geometry in
    // the superblock: a binary compiled with different MAX_PROCS / slot
    // stride must fail typed instead of misreading a peer's slots.
    heap.validate_rec_geometry(MAX_PROCS as u64, ARENA_SLOT_STRIDE as u64)?;
    let (meta_ptr, _) = heap.root_alloc(rootkeys::META, 16)?;
    let cfg_word = L::cfg_word(cfg);
    // SAFETY: single-threaded attach; committed 16-byte root block.
    unsafe {
        let meta = meta_ptr as *mut u64;
        if fresh {
            meta.write(cfg_word);
        } else if meta.read() != cfg_word {
            return Err(AttachError::CfgMismatch {
                name: String::new(),
                expected: cfg_word,
                found: meta.read(),
            });
        }
    }
    let (root_ptr, _) = heap.root_alloc(rootkeys::STRUCT, L::root_bytes(cfg))?;
    let env = AttachEnv::new(Arc::clone(&heap), rec_ptr);
    let s = L::open(&env, cfg, root_ptr)?;
    if fresh {
        heap.set_kind(L::KIND);
        return Ok((s, AttachSummary { heap: *heap.report(), recovered: Vec::new(), swept: 0 }));
    }
    let rec = env.rec_area();
    let extra_live = [rec_ptr as usize, meta_ptr as usize, root_ptr as usize];
    let mut slots: Vec<Box<dyn SlotOps>> = vec![Box::new(s)];
    // SAFETY: quiescent single-threaded attach over a validated image; the
    // slot list covers every structure in the heap (standalone: exactly one).
    let (recovered, swept) =
        unsafe { finish_attach(&heap, &rec, &mut slots, &extra_live, env.info_pool.handle())? };
    let s = *slots
        .pop()
        .expect("one slot")
        .into_any()
        .downcast::<L>()
        .expect("slot type is L by construction");
    Ok((s, AttachSummary { heap: *heap.report(), recovered, swept }))
}

/// The shared restart-recovery epilogue over an already re-attached heap:
///
/// 1. **validate** every structure's graph and every referenced descriptor
///    against the mapping (typed [`MapError::CorruptPointer`], never UB),
/// 2. **replay** the per-pid recovery decision over the shared recovery
///    area — generic Op-Recover for descriptor-tracked entries, the
///    direct-tracking decision (reachability / claim stamp) for
///    [`crate::tag::DIRECT`] entries — with refcount bookkeeping suspended,
/// 3. **scrub** every structure to quiescence (typed
///    [`AttachError::ScrubStalled`] on a non-quiescing image) and run
///    structural heals,
/// 4. **census + sweep** over the **union** of all structures' live sets:
///    rebuild every surviving descriptor's volatile bookkeeping and
///    garbage-collect blocks the dead process leaked.
///
/// # Safety
/// Quiescent single-threaded attach; `slots` must cover **every** structure
/// hosted by `heap` (a missing one would have its blocks swept), `rec` must
/// be the heap's shared recovery area, `extra_live` every root/metadata
/// block address, and `owner` the heap-wide Info pool handle. The calling
/// thread must be registered.
pub unsafe fn finish_attach(
    heap: &MappedHeap,
    rec: &RecArea<MappedNvm>,
    slots: &mut [Box<dyn SlotOps>],
    extra_live: &[usize],
    owner: *const (),
) -> Result<(Vec<(usize, Recovered)>, usize), AttachError> {
    // 1. Pre-recovery validation of the untrusted image: no pointer is
    // dereferenced by the replay/scrub/census below unless the whole object
    // graph stays inside the mapping and terminates. This is what turns a
    // tampered superblock (e.g. a rewritten base) into a typed error
    // instead of undefined behaviour. Split into per-structure work units
    // and run on scoped threads — units partition the graphs, so the walks
    // are independent.
    let par_start = std::time::Instant::now();
    let units: Vec<(usize, usize)> = slots
        .iter()
        .enumerate()
        .flat_map(|(i, s)| (0..s.work_units().max(1)).map(move |u| (i, u)))
        .collect();
    let threads = nvm::mapped::attach_threads().clamp(1, units.len().max(1));
    let mut infos: HashSet<u64> = HashSet::new();
    if threads <= 1 {
        for &(i, u) in &units {
            slots[i].validate_unit(u, &mut infos)?;
        }
    } else {
        let slots_ref: &[Box<dyn SlotOps>] = slots;
        let next = std::sync::atomic::AtomicUsize::new(0);
        let locals = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    sc.spawn(|| {
                        let mut local: HashSet<u64> = HashSet::new();
                        loop {
                            let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(&(i, u)) = units.get(k) else { break };
                            slots_ref[i].validate_unit(u, &mut local)?;
                        }
                        Ok::<_, MapError>(local)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("validate worker panicked"))
                .collect::<Vec<_>>()
        });
        for l in locals {
            infos.extend(l?);
        }
    }
    let validate_elapsed = par_start.elapsed();
    let mut bad_rd = None;
    rec.each_published(|rd| {
        let p = crate::tag::addr_of(rd);
        if p == 0 {
            return;
        }
        if crate::tag::is_direct(rd) {
            // Direct entries name nodes; whole-granule span (every arena
            // object occupies at least one committed 64-byte granule).
            if p & 7 != 0 || !heap.contains_span(p as usize, nvm::mapped::GRANULE) {
                bad_rd = Some(p);
            }
        } else {
            infos.insert(p);
        }
    });
    if let Some(addr) = bad_rd {
        return Err(MapError::CorruptPointer { addr }.into());
    }
    validate_infos::<MappedNvm>(heap, &infos, |a| slots.iter().any(|s| s.valid_install(a)))?;

    // 2. Replay + scrub with refcount bookkeeping suspended: the counts the
    // dead process persisted are recomputed from scratch below.
    let recovered = crate::engine::with_release_suspended(|| {
        let col = Collector::new();
        let decisions = (0..MAX_PROCS)
            .map(|pid| {
                let g = col.pin();
                // SAFETY (op_recover): quiescent attach; every published
                // descriptor was validated above. Replay runs the untuned
                // placement — sound for both tunings (strictly more
                // persistency instructions, identical decisions).
                let d = {
                    let (cp, rd) = rec.read(pid);
                    if cp != 1 || crate::tag::addr_of(rd) == 0 {
                        Recovered::Restart
                    } else if crate::tag::is_direct(rd) {
                        // SAFETY: span-validated direct node.
                        unsafe { direct_decide(rd, pid, slots) }
                    } else {
                        unsafe { op_recover::<MappedNvm, 0>(rec, pid, &g) }
                    }
                };
                (pid, d)
            })
            .collect::<Vec<_>>();
        for s in slots.iter() {
            s.try_scrub()?;
        }
        Ok::<_, AttachError>(decisions)
    })?;
    for s in slots.iter_mut() {
        s.heal();
    }

    // 3. Census: the union live set and the true reference count per
    // descriptor across every structure plus the RD slots. Same work-unit
    // fan-out as validation; merging unions the live sets and sums the
    // per-descriptor counts, which equals the serial census because units
    // partition the referencing cells.
    let census_start = std::time::Instant::now();
    let mut live: HashSet<usize> = HashSet::new();
    let mut info_refs: HashMap<usize, u32> = HashMap::new();
    if threads <= 1 {
        for &(i, u) in &units {
            // SAFETY: quiescent exclusive access post-scrub.
            unsafe { slots[i].census_unit(u, &mut live, &mut info_refs) };
        }
    } else {
        let slots_ref: &[Box<dyn SlotOps>] = slots;
        let next = std::sync::atomic::AtomicUsize::new(0);
        let locals = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    sc.spawn(|| {
                        let mut l_live: HashSet<usize> = HashSet::new();
                        let mut l_refs: HashMap<usize, u32> = HashMap::new();
                        loop {
                            let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(&(i, u)) = units.get(k) else { break };
                            // SAFETY: quiescent exclusive access post-scrub;
                            // units partition the graph, so no two workers
                            // visit the same node.
                            unsafe { slots_ref[i].census_unit(u, &mut l_live, &mut l_refs) };
                        }
                        (l_live, l_refs)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("census worker panicked"))
                .collect::<Vec<_>>()
        });
        for (l_live, l_refs) in locals {
            live.extend(l_live);
            for (k, v) in l_refs {
                *info_refs.entry(k).or_insert(0) += v;
            }
        }
    }
    // Parallel-phase wall clock: validation up front plus the census here
    // (replay and scrub between them are serial by design).
    nvm::stats::count_attach_par_ms((validate_elapsed + census_start.elapsed()).as_millis() as u64);
    rec.each_published(|rd| {
        let p = crate::tag::addr_of(rd) as usize;
        if p == 0 {
            return;
        }
        if crate::tag::is_direct(rd) {
            // An announced direct node must survive the sweep even when it
            // was already unlinked: the announcing process's recovery reads
            // its claim stamp.
            live.insert(p);
        } else {
            *info_refs.entry(p).or_insert(0) += 1;
        }
    });
    live.extend(extra_live.iter().copied());
    for s in slots.iter_mut() {
        s.each_cached(&mut |p| {
            live.insert(p);
        });
    }
    // Shared heaps: descriptors this attach reclaims are re-owned by *this*
    // process's pool, so stamp our participant slot (exclusive heaps keep 0).
    let owner_slot =
        if heap.is_shared() { heap.my_participant().map_or(0, |s| s as u32 + 1) } else { 0 };
    // SAFETY: quiescent; `info_refs` holds the recomputed true counts
    // (cells + RD slots) and `live` covers roots, graphs, descriptors and
    // this process's caches across every structure in the heap.
    let swept =
        unsafe { census_epilogue::<MappedNvm>(heap, &info_refs, owner, owner_slot, &mut live) };
    Ok((recovered, swept))
}

/// The direct-tracking recovery decision (paper §1/§5, "direct tracking"):
/// a pop's claim announcement completed iff the claim stamp names the
/// claimant; a push's node announcement completed iff the node is reachable
/// from some structure's roots or carries any claim stamp (pushed, then
/// popped).
///
/// # Safety
/// `rd` must be a span-validated direct entry over a quiescent image.
unsafe fn direct_decide(rd: u64, pid: usize, slots: &[Box<dyn SlotOps>]) -> Recovered {
    let node = crate::tag::addr_of(rd);
    // Direct nodes lead with (val, next, popped_by) persistent words — the
    // stack's layout; see `RStack`'s `MappedLayout` impl.
    let stamp = unsafe { crate::stack::direct_stamp::<MappedNvm>(node) };
    if crate::tag::is_tagged(rd) {
        // Pop claim: the CAS on the stamp is the arbitration.
        if stamp == pid as u64 + 1 {
            let v = unsafe { crate::stack::direct_val::<MappedNvm>(node) };
            Recovered::Completed(crate::engine::res_val(v))
        } else {
            Recovered::Restart
        }
    } else {
        // Push announcement.
        if stamp != 0 || slots.iter().any(|s| s.direct_reachable(node)) {
            Recovered::Completed(crate::engine::RES_UNIT)
        } else {
            Recovered::Restart
        }
    }
}

/// Pre-recovery validation of every collected descriptor against the
/// mapping: the descriptor's **whole span** must lie inside the heap, and
/// (via [`Info::validate_bounds`]) every cell address it names must have an
/// in-heap 8-byte span while every value it installs must satisfy
/// `valid_install` (callers pass a node-span check — installed values are
/// node pointers the census walk will dereference). Any violation is a
/// typed [`nvm::MapError::CorruptPointer`], never a dereference.
pub fn validate_infos<M: Persist>(
    heap: &nvm::mapped::MappedHeap,
    infos: &std::collections::HashSet<u64>,
    valid_install: impl Fn(u64) -> bool + Copy,
) -> Result<(), nvm::MapError> {
    let cell_ok = |a: u64| a & 7 == 0 && heap.contains_span(a as usize, 8);
    for &info in infos {
        if info & 7 != 0 || !heap.contains_span(info as usize, std::mem::size_of::<Info<M>>()) {
            return Err(nvm::MapError::CorruptPointer { addr: info });
        }
        // SAFETY: the descriptor's whole span is inside the mapping.
        if !unsafe { (*(info as *const Info<M>)).validate_bounds(cell_ok, valid_install) } {
            return Err(nvm::MapError::CorruptPointer { addr: info });
        }
    }
    Ok(())
}

/// The census/sweep epilogue of a mapped attach: rewrite every live
/// descriptor's volatile bookkeeping (recomputed reference count, this
/// process's Info pool as `owner`, `shared` forced) and garbage-collect
/// every committed block not in `live`. Returns the number swept.
///
/// # Safety
/// Quiescent attach-time access; `info_refs` must hold the true reference
/// count per descriptor, `owner` the new Info-pool handle, and `live` every
/// payload address reachable from the structure's roots or this process's
/// caches (the descriptors themselves are added here).
pub unsafe fn census_epilogue<M: Persist>(
    heap: &nvm::mapped::MappedHeap,
    info_refs: &std::collections::HashMap<usize, u32>,
    owner: *const (),
    owner_slot: u32,
    live: &mut std::collections::HashSet<usize>,
) -> usize {
    for (&info, &cnt) in info_refs {
        // SAFETY: quiescent; count/owner per the contract above.
        unsafe { (*(info as *const Info<M>)).reset_after_attach(cnt, owner, owner_slot) };
        live.insert(info);
    }
    // SAFETY: `live` now covers roots, graph, descriptors and caches.
    unsafe { heap.sweep_except(live) }
}

/// What a mapped-backend `attach(path)` found and did: the heap-level
/// [`nvm::mapped::AttachReport`] plus the structure-level recovery outcome.
#[derive(Debug)]
pub struct AttachSummary {
    /// Heap-level report (created / relocated / poisoned torn blocks / …).
    pub heap: nvm::mapped::AttachReport,
    /// Per-pid Op-Recover decisions of the replay pass (empty on a fresh
    /// heap). `Completed(res)` carries the crashed operation's response.
    pub recovered: Vec<(usize, Recovered)>,
    /// Committed blocks swept by the attach-time garbage collection (blocks
    /// the killed process leaked from pool caches and limbo bags).
    pub swept: usize,
}

impl AttachSummary {
    /// The replayed recovery decision for `pid` (`Restart` on a fresh heap).
    pub fn decision(&self, pid: usize) -> Recovered {
        self.recovered
            .iter()
            .find(|(p, _)| *p == pid)
            .map(|(_, r)| *r)
            .unwrap_or(Recovered::Restart)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Info, InfoFill, RES_TRUE};
    use nvm::CountingNvm;
    use reclaim::Collector;

    type M = CountingNvm;

    #[test]
    fn begin_resets_and_publish_installs() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let rec: RecArea<M> = RecArea::new();
        assert_eq!(rec.read(3), (0, 0), "fresh slot");
        let prev = rec.begin::<0>(3);
        assert_eq!(prev, 0);
        assert_eq!(rec.read(3), (1, 0), "CP set, RD null");
        rec.publish(3, 0xABC0);
        assert_eq!(rec.read(3), (1, 0xABC0));
        // Next operation: begin returns the previous RD and resets.
        let prev = rec.begin::<1>(3);
        assert_eq!(prev, 0xABC0);
        assert_eq!(rec.read(3), (1, 0));
    }

    #[test]
    fn begin_readonly_only_clears_checkpoint() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let rec: RecArea<M> = RecArea::new();
        rec.begin::<0>(1);
        rec.publish(1, 0x1230);
        let prev = rec.begin_readonly(1);
        assert_eq!(prev, 0x1230, "RD untouched by the read-only prologue");
        assert_eq!(rec.read(1), (0, 0x1230), "CP cleared, RD kept");
    }

    /// The Op-Recover decision table (Algorithm 1, lines 22–26).
    #[test]
    fn op_recover_decision_table() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let c = Collector::new();
        let rec: RecArea<M> = RecArea::new();

        // CP = 0 ⇒ restart, regardless of RD.
        {
            let g = c.pin();
            assert_eq!(unsafe { op_recover::<M, 0>(&rec, 0, &g) }, Recovered::Restart);
        }
        // CP = 1, RD = Null ⇒ restart.
        rec.begin::<0>(0);
        {
            let g = c.pin();
            assert_eq!(unsafe { op_recover::<M, 0>(&rec, 0, &g) }, Recovered::Restart);
        }
        // CP = 1, RD → info whose help cannot proceed and result = ⊥ ⇒ restart.
        let cell: nvm::PWord<M> = nvm::PWord::new(0xDEAD0);
        let info = Info::<M>::alloc();
        unsafe {
            Info::fill(
                info,
                &InfoFill {
                    optype: 1,
                    affect: &[(&cell as *const _ as u64, 0x5550)], // stale expected
                    write: &[],
                    newset: &[],
                    del_mask: 0,
                    presult: RES_TRUE,
                },
            );
        }
        rec.publish(0, info as u64);
        {
            let g = c.pin();
            assert_eq!(unsafe { op_recover::<M, 0>(&rec, 0, &g) }, Recovered::Restart);
        }
        // CP = 1, RD → info whose help completes ⇒ Completed(result).
        let cell2: nvm::PWord<M> = nvm::PWord::new(0);
        let info2 = Info::<M>::alloc();
        unsafe {
            Info::fill(
                info2,
                &InfoFill {
                    optype: 1,
                    affect: &[(&cell2 as *const _ as u64, 0)],
                    write: &[],
                    newset: &[],
                    del_mask: 0,
                    presult: RES_TRUE,
                },
            );
        }
        rec.publish(0, info2 as u64);
        {
            let g = c.pin();
            assert_eq!(unsafe { op_recover::<M, 0>(&rec, 0, &g) }, Recovered::Completed(RES_TRUE));
        }
        // Drop the descriptors (test owns them).
        unsafe {
            drop(Box::from_raw(info));
            drop(Box::from_raw(info2));
        }
    }

    #[test]
    fn slots_are_isolated_per_process() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let rec: RecArea<M> = RecArea::new();
        rec.begin::<0>(0);
        rec.publish(0, 0x10);
        rec.begin::<0>(7);
        rec.publish(7, 0x70);
        assert_eq!(rec.read(0), (1, 0x10));
        assert_eq!(rec.read(7), (1, 0x70));
        let mut seen = Vec::new();
        rec.each_published(|rd| {
            if rd != 0 {
                seen.push(rd);
            }
        });
        seen.sort();
        assert_eq!(seen, vec![0x10, 0x70]);
    }
}
