//! Tuning arms: the persistence-placement variants a structure can be
//! instantiated with.
//!
//! Every structure takes a `const ARM: u8` parameter selecting how persist
//! instructions are placed. Arms are **cumulative** — each level keeps
//! everything below it:
//!
//! | arm | name | adds |
//! |-----|------|------|
//! | [`PAPER`]     | `Isb`      | the paper's per-CAS `pwb` + per-phase `psync` placement |
//! | [`TUNED`]     | `Isb-Opt`  | batched tag-loop flushes, merged barriers (PR 2) |
//! | [`COALESCED`] | `Isb-Coal` | per-op cache-line dedupe via [`nvm::coalesce`]; `CP_q := 1` folded into `publish` so the `RD_q`/`CP_q` line is flushed once |
//! | [`LP`]        | `Isb-LP`   | link-persist: cleanup write-backs elided (re-swept by scrub / lazy helping) and, for single-affect ops (enqueue), the tag-phase `psync` merged into the update-phase `psync` |
//!
//! The `u8` encoding (rather than a second `bool`) exists because stable
//! Rust cannot derive one const generic from another; call sites write the
//! level directly (`RQueue<M, { arm::LP }>` or simply `RQueue<M, 3>`).
//! Arms `0`/`1` are bit-for-bit the old `TUNED = false`/`true` placements —
//! including the mapped-heap config word, which stores the arm in the same
//! byte the bool used to occupy.
//!
//! Soundness arguments for the two new arms are in `DESIGN.md` §12.

/// The paper's placement (`Isb`): `pwb` after every CAS, `psync` per phase.
pub const PAPER: u8 = 0;
/// Hand-tuned placement (`Isb-Opt`): batched tag flushes, merged barriers.
pub const TUNED: u8 = 1;
/// `Isb-Coal`: TUNED plus per-operation cache-line flush coalescing.
pub const COALESCED: u8 = 2;
/// `Isb-LP`: COALESCED plus link-persist elisions (see module docs).
pub const LP: u8 = 3;

/// Does `arm` use the hand-tuned (batched) placement?
#[inline]
pub const fn is_tuned(arm: u8) -> bool {
    arm >= TUNED
}

/// Does `arm` route batched flushes through the coalescing line set?
#[inline]
pub const fn coalesces(arm: u8) -> bool {
    arm >= COALESCED
}

/// Does `arm` apply the link-persist elisions?
#[inline]
pub const fn is_lp(arm: u8) -> bool {
    arm >= LP
}

/// Display name of the arm (benchmark legends, diagnostics).
pub const fn name(arm: u8) -> &'static str {
    match arm {
        PAPER => "Isb",
        TUNED => "Isb-Opt",
        COALESCED => "Isb-Coal",
        _ => "Isb-LP",
    }
}

use nvm::{PWord, Persist, PersistWords};

/// Arm-dispatched stand-alone flush: coalescing arms defer into the line
/// set, lower arms flush immediately. Monomorphises to one call either way.
#[inline]
pub(crate) fn pwb_arm<M: Persist, const ARM: u8>(w: &PWord<M>) {
    if coalesces(ARM) {
        M::pwb_coal(w);
    } else {
        M::pwb(w);
    }
}

/// Arm-dispatched whole-object flush (see [`pwb_arm`]).
#[inline]
pub(crate) fn pwb_obj_arm<M: Persist, T: PersistWords<M> + ?Sized, const ARM: u8>(obj: &T) {
    if coalesces(ARM) {
        M::pwb_obj_coal(obj);
    } else {
        M::pwb_obj(obj);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_cumulative() {
        assert!(!is_tuned(PAPER) && !coalesces(PAPER) && !is_lp(PAPER));
        assert!(is_tuned(TUNED) && !coalesces(TUNED));
        assert!(is_tuned(COALESCED) && coalesces(COALESCED) && !is_lp(COALESCED));
        assert!(is_tuned(LP) && coalesces(LP) && is_lp(LP));
        assert_eq!(name(PAPER), "Isb");
        assert_eq!(name(TUNED), "Isb-Opt");
        assert_eq!(name(COALESCED), "Isb-Coal");
        assert_eq!(name(LP), "Isb-LP");
    }
}
