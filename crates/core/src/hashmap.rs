//! Sharded, detectably recoverable hash map (set of `u64` keys) built on the
//! head-parameterized ordered-set core (DESIGN.md §8).
//!
//! `RHashMap` keeps a fixed power-of-two array of bucket heads, each an
//! independent sorted-list bucket run by [`crate::set_core::SetCore`]. Keys
//! are routed to a bucket by fibonacci hashing (multiply by 2⁶⁴/φ, take the
//! top bits), which whitens dense integer key ranges across shards. All
//! shards share **one** [`RecArea`] — the paper's model allows a single
//! pending operation per process, regardless of which part of the structure
//! it touches — and one collector, so `recover_*` needs no shard routing for
//! the *decision*: the published descriptor carries everything `Help` needs,
//! and only a `Restart` re-routes through the shard function (with the
//! original arguments, exactly like the system model's re-invocation).
//!
//! Per-bucket **pointer freshness** (DESIGN.md §4) is unaffected by
//! sharding: the guarantee is per info/next *cell*, and every cell belongs
//! to exactly one bucket; operations on different shards touch disjoint
//! cells and interact only through the shared recovery slots, which keep the
//! single-pending-op discipline per process.

use crate::engine::RES_TRUE;
use crate::pool::PoolCfg;
use crate::recovery::{
    attach_standalone, AttachEnv, AttachError, AttachSummary, MappedLayout, RecArea, Recovered,
    SlotOps,
};
use crate::set_core::{self, Node, SetCore, SetPools};
use nvm::mapped::{MapError, MappedHeap, MappedNvm, DEFAULT_HEAP_BYTES};
use nvm::Persist;
use reclaim::Collector;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

/// Default shard count for [`RHashMap::new`].
pub const DEFAULT_SHARDS: usize = 16;

/// Superblock structure-kind tag of a mapped `RHashMap`.
pub const KIND_MAP: u64 = 1;

/// 2⁶⁴ / φ, the fibonacci-hashing multiplier.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Sharded, detectably recoverable hash map. `ARM` selects the persistency
/// placement exactly as for [`crate::list::RList`] (false = "Isb", true =
/// "Isb-Opt").
///
/// # Example: the detectable recovery flow
///
/// ```
/// use isb::hashmap::RHashMap;
/// use nvm::CountingNvm;
///
/// nvm::tid::set_tid(0);
/// let map: RHashMap<CountingNvm> = RHashMap::with_shards(8);
/// assert!(map.insert(0, 42));
/// assert!(map.delete(0, 42));
///
/// // Crash "just after" the completed delete: recovery returns its
/// // persisted response instead of deleting again (detectability)...
/// assert!(map.recover_delete(0, 42));
/// assert!(!map.find(0, 42));
/// // ...while a process that crashed before *publishing* anything
/// // (here: process 1 never ran an operation) simply re-invokes:
/// assert!(map.recover_insert(1, 42));
/// assert!(map.find(0, 42));
/// ```
///
/// With the mapped backend ([`RHashMap::attach`]) the same flow runs across
/// an actual process restart: the attach replays Op-Recover for every
/// process id and reports the decisions in its [`AttachSummary`].
pub struct RHashMap<M: Persist, const ARM: u8 = 0> {
    heads: Box<[*mut Node<M>]>,
    /// Right-shift distance extracting the top `log2(shards)` hash bits.
    shift: u32,
    /// Lazy post-attach scrub: shard `s`'s flag is set when attach deferred
    /// its tag-healing pass. The first operation routed to the shard drains
    /// it ([`RHashMap::ensure_scrubbed`]); snapshot/invariant entry points
    /// drain all. Deferral is sound because helping is part of the normal
    /// operation paths — a leftover tag is healed on first contact either
    /// way; the flag only bounds *when* the eager pass happens.
    pending_scrub: Box<[std::sync::atomic::AtomicBool]>,
    rec: RecArea<M>,
    // `collector` must drop before `pools` (drop-time drain recycles into
    // the free lists). ONE pool pair serves every shard: free lists are
    // per-process, so cross-shard sharing adds no contention.
    collector: Collector,
    pools: SetPools<M>,
    /// Mapped mode: the persistent heap every node/descriptor/head lives in.
    /// `Some` suppresses drop-time teardown — the contents *are* the durable
    /// state the next attach recovers.
    mapped: Option<Arc<MappedHeap>>,
}

unsafe impl<M: Persist, const ARM: u8> Send for RHashMap<M, ARM> {}
unsafe impl<M: Persist, const ARM: u8> Sync for RHashMap<M, ARM> {}

impl<M: Persist, const ARM: u8> Default for RHashMap<M, ARM> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Persist, const ARM: u8> RHashMap<M, ARM> {
    /// New empty map with [`DEFAULT_SHARDS`] shards and a reclaiming
    /// collector.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// New empty map with `shards` buckets (must be a power of two).
    pub fn with_shards(shards: usize) -> Self {
        Self::with_shards_and_collector(shards, Collector::new())
    }

    /// New empty map with the given collector and [`DEFAULT_SHARDS`] shards.
    /// Crash-simulation runs pass [`Collector::disabled`] (a crash must not
    /// free memory).
    pub fn with_collector(collector: Collector) -> Self {
        Self::with_shards_and_collector(DEFAULT_SHARDS, collector)
    }

    /// New empty map with `shards` buckets (power of two) and the given
    /// collector.
    pub fn with_shards_and_collector(shards: usize, collector: Collector) -> Self {
        Self::with_shards_and_config(shards, collector, PoolCfg::default())
    }

    /// New empty map with pooling off (the fig9 "boxed" ablation arm).
    pub fn boxed_with_shards(shards: usize) -> Self {
        Self::with_shards_and_config(shards, Collector::new(), PoolCfg::boxed())
    }

    /// New empty map with `shards` buckets (power of two), the given
    /// collector, and pool configuration.
    pub fn with_shards_and_config(shards: usize, collector: Collector, pool: PoolCfg) -> Self {
        assert!(shards.is_power_of_two(), "shard count must be a power of two, got {shards}");
        let heads = (0..shards).map(|_| set_core::new_bucket()).collect();
        // For one shard every key maps to bucket 0; `min(63)` keeps the
        // shift in range and the mask in `shard_of` does the rest.
        let shift = (64 - shards.trailing_zeros()).min(63);
        let pools = SetPools::new(pool, &collector);
        Self {
            heads,
            shift,
            pending_scrub: (0..shards).map(|_| std::sync::atomic::AtomicBool::new(false)).collect(),
            rec: RecArea::new(),
            collector,
            pools,
            mapped: None,
        }
    }

    /// Number of shards (buckets).
    pub fn shards(&self) -> usize {
        self.heads.len()
    }

    /// The map's collector (for diagnostics).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Fibonacci-hash shard routing: top `log2(shards)` bits of `key · FIB`.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB) >> self.shift) as usize & (self.heads.len() - 1)
    }

    /// The core view over bucket `shard` (the shard choice does not matter
    /// for [`SetCore::op_recover`], which only reads the shared recovery
    /// area).
    #[inline]
    fn core_at(&self, shard: usize) -> SetCore<'_, M, ARM> {
        // SAFETY: every head is a live bucket owned by this map; all buckets
        // share the map's single recovery area, collector and pools.
        unsafe { SetCore::new(self.heads[shard], &self.rec, &self.collector, &self.pools) }
    }

    /// Drains a deferred post-attach scrub of `shard`, if one is pending.
    /// One relaxed load on the hot path; the swap runs at most once per
    /// shard per attach. Concurrent operations on the shard are fine — the
    /// eager pass is the same idempotent helping they perform themselves.
    #[inline]
    fn ensure_scrubbed(&self, shard: usize) {
        use std::sync::atomic::Ordering;
        if self.pending_scrub[shard].load(Ordering::Relaxed)
            && self.pending_scrub[shard].swap(false, Ordering::Acquire)
        {
            self.core_at(shard).scrub();
        }
    }

    /// Drains every shard's deferred scrub (quiescent entry points).
    fn drain_pending_scrub(&self) {
        for shard in 0..self.heads.len() {
            self.ensure_scrubbed(shard);
        }
    }

    /// Inserts `key`; returns `false` iff it was already present.
    pub fn insert(&self, pid: usize, key: u64) -> bool {
        let shard = self.shard_of(key);
        self.ensure_scrubbed(shard);
        self.core_at(shard).insert(pid, key)
    }

    /// Deletes `key`; returns `false` iff it was absent.
    pub fn delete(&self, pid: usize, key: u64) -> bool {
        let shard = self.shard_of(key);
        self.ensure_scrubbed(shard);
        self.core_at(shard).delete(pid, key)
    }

    /// Whether `key` is present.
    pub fn find(&self, pid: usize, key: u64) -> bool {
        let shard = self.shard_of(key);
        self.ensure_scrubbed(shard);
        self.core_at(shard).find(pid, key)
    }

    /// `Insert.Recover` (generic Op-Recover on the shared recovery area,
    /// re-invoking with the original key — and thus the original shard — on
    /// `Restart`).
    pub fn recover_insert(&self, pid: usize, key: u64) -> bool {
        match self.core_at(0).op_recover(pid) {
            Recovered::Completed(v) => v == RES_TRUE,
            Recovered::Restart => self.insert(pid, key),
        }
    }

    /// `Delete.Recover`.
    pub fn recover_delete(&self, pid: usize, key: u64) -> bool {
        match self.core_at(0).op_recover(pid) {
            Recovered::Completed(v) => v == RES_TRUE,
            Recovered::Restart => self.delete(pid, key),
        }
    }

    /// `Find.Recover`: finds never set `CP_q = 1`, so recovery always
    /// restarts them.
    pub fn recover_find(&self, pid: usize, key: u64) -> bool {
        match self.core_at(0).op_recover(pid) {
            Recovered::Completed(v) => v == RES_TRUE,
            Recovered::Restart => self.find(pid, key),
        }
    }

    /// Completes helping obligations left visible by a crash in any shard
    /// (resurrected tags of completed operations under the tuned
    /// placement); call after every process ran its `recover_*`. See
    /// [`crate::set_core::SetCore::scrub`].
    pub fn scrub(&self) {
        for shard in 0..self.heads.len() {
            self.pending_scrub[shard].store(false, std::sync::atomic::Ordering::Relaxed);
            self.core_at(shard).scrub();
        }
    }

    /// [`RHashMap::scrub`] with the pass budget surfaced as a typed
    /// [`AttachError`] instead of a panic (the mapped attach path).
    pub fn try_scrub(&self) -> Result<(), AttachError> {
        for shard in 0..self.heads.len() {
            self.pending_scrub[shard].store(false, std::sync::atomic::Ordering::Relaxed);
            self.core_at(shard).try_scrub()?;
        }
        Ok(())
    }

    /// Sorted snapshot of the user keys across all shards (requires
    /// exclusive access ⇒ quiescence).
    pub fn snapshot_keys(&mut self) -> Vec<u64> {
        self.drain_pending_scrub();
        let mut out = Vec::new();
        for shard in 0..self.heads.len() {
            self.core_at(shard).snapshot_keys_into(&mut out);
        }
        out.sort_unstable();
        out
    }

    /// Structural invariants of every shard, plus shard-routing consistency:
    /// each reachable key must live in the bucket the shard function routes
    /// it to. Panics on violation.
    pub fn check_invariants(&mut self) {
        self.drain_pending_scrub();
        for shard in 0..self.heads.len() {
            self.core_at(shard).check_invariants();
            let mut keys = Vec::new();
            self.core_at(shard).snapshot_keys_into(&mut keys);
            for k in keys {
                assert_eq!(
                    self.shard_of(k),
                    shard,
                    "key {k} reachable in shard {shard} but routes to {}",
                    self.shard_of(k)
                );
            }
        }
    }
}

impl<const ARM: u8> RHashMap<MappedNvm, ARM> {
    /// Attaches (or creates) a detectably recoverable hash map backed by the
    /// file-backed persistent heap at `path`
    /// ([`nvm::mapped::DEFAULT_HEAP_BYTES`] on creation).
    ///
    /// On an existing heap this runs the full restart-recovery sequence of
    /// the generic driver ([`crate::recovery::attach_standalone`]): remap,
    /// bounds-validated graph walk, per-pid Op-Recover replay (decisions in
    /// the [`AttachSummary`]), scrub, census + sweep.
    ///
    /// The calling thread must be registered ([`nvm::tid::set_tid`]). One
    /// process attaches a heap at a time; `shards` and `ARM` must match
    /// the heap's recorded configuration.
    pub fn attach(
        path: impl AsRef<Path>,
        shards: usize,
    ) -> Result<(Self, AttachSummary), AttachError> {
        Self::attach_sized(path, shards, DEFAULT_HEAP_BYTES)
    }

    /// [`RHashMap::attach`] with an explicit heap size for creation
    /// (ignored when the heap already exists).
    pub fn attach_sized(
        path: impl AsRef<Path>,
        shards: usize,
        heap_bytes: usize,
    ) -> Result<(Self, AttachSummary), AttachError> {
        attach_standalone::<Self>(path.as_ref(), shards, heap_bytes)
    }

    /// The persistent heap backing this map.
    pub fn heap(&self) -> &Arc<MappedHeap> {
        self.mapped.as_ref().expect("mapped-mode map")
    }

    /// Whole-node span check against the backing heap.
    fn in_node(&self, a: u64) -> bool {
        let heap = self.heap();
        a & 7 == 0 && heap.contains_span(a as usize, std::mem::size_of::<Node<MappedNvm>>())
    }
}

impl<const ARM: u8> MappedLayout for RHashMap<MappedNvm, ARM> {
    const KIND: u64 = KIND_MAP;
    const KIND_NAME: &'static str = "hashmap";
    type Cfg = usize; // shard count

    fn validate_cfg(shards: usize) -> Result<(), AttachError> {
        if shards.is_power_of_two() {
            Ok(())
        } else {
            Err(AttachError::InvalidCfg {
                kind: Self::KIND_NAME,
                reason: format!("shard count must be a power of two, got {shards}"),
            })
        }
    }

    fn cfg_word(shards: usize) -> u64 {
        shards as u64 | (ARM as u64) << 32
    }

    fn root_bytes(shards: usize) -> usize {
        shards * 8 // one bucket-head address per shard
    }

    fn open(env: &AttachEnv, shards: usize, root: *mut u8) -> Result<Self, AttachError> {
        assert!(shards.is_power_of_two(), "shard count must be a power of two, got {shards}");
        let collector = env.collector();
        let pools = SetPools::with_shared_info(env.info_pool(), env.pool_cfg(), &collector);
        let heads_w = root as *mut u64;
        let mut heads = Vec::with_capacity(shards);
        for i in 0..shards {
            // SAFETY: `shards`-word committed root block, single-threaded.
            let existing = unsafe { heads_w.add(i).read() };
            if existing != 0 {
                heads.push(existing as *mut Node<MappedNvm>);
            } else {
                let b = set_core::new_bucket_in(&pools);
                unsafe { heads_w.add(i).write(b as u64) };
                heads.push(b);
            }
        }
        let shift = (64 - shards.trailing_zeros()).min(63);
        Ok(Self {
            heads: heads.into_boxed_slice(),
            shift,
            pending_scrub: (0..shards).map(|_| std::sync::atomic::AtomicBool::new(false)).collect(),
            rec: env.rec_area(),
            collector,
            pools,
            mapped: Some(Arc::clone(&env.heap)),
        })
    }
}

impl<const ARM: u8> SlotOps for RHashMap<MappedNvm, ARM> {
    fn validate_image(&self, infos: &mut HashSet<u64>) -> Result<(), MapError> {
        for shard in 0..self.heads.len() {
            self.validate_unit(shard, infos)?;
        }
        Ok(())
    }

    // Attach parallelism: each bucket is an independent work unit — the
    // buckets partition every node and cell, so per-shard validation and
    // census walks never touch the same memory.
    fn work_units(&self) -> usize {
        self.heads.len()
    }

    fn validate_unit(&self, unit: usize, infos: &mut HashSet<u64>) -> Result<(), MapError> {
        let max_nodes = self.heap().bump_granules() + 4;
        // SAFETY: `in_node` guarantees whole-node spans inside the mapping
        // for every dereference.
        unsafe {
            set_core::validate_bucket(self.heads[unit], &|a| self.in_node(a), max_nodes, infos)
        }
        .map_err(|addr| MapError::CorruptPointer { addr })
    }

    fn valid_install(&self, addr: u64) -> bool {
        self.in_node(addr)
    }

    fn try_scrub(&self) -> Result<(), AttachError> {
        // Deferred: mark every shard pending instead of an O(structure)
        // eager pass during attach. Sound because (a) runtime operations
        // help any tagged descriptor they encounter — the eager pass is the
        // same idempotent helping, merely batched — and (b) the census below
        // counts descriptor references through *tagged* cells too
        // (`census_bucket` untags before counting), so a descriptor kept
        // alive only by an unscrubbed tag survives the sweep.
        for flag in self.pending_scrub.iter() {
            flag.store(true, std::sync::atomic::Ordering::Release);
        }
        Ok(())
    }

    unsafe fn census(&self, live: &mut HashSet<usize>, info_refs: &mut HashMap<usize, u32>) {
        for shard in 0..self.heads.len() {
            // SAFETY: forwarded contract.
            unsafe { self.census_unit(shard, live, info_refs) };
        }
    }

    unsafe fn census_unit(
        &self,
        unit: usize,
        live: &mut HashSet<usize>,
        info_refs: &mut HashMap<usize, u32>,
    ) {
        // SAFETY: quiescent exclusive access (caller); units are disjoint
        // buckets.
        unsafe { set_core::census_bucket(self.heads[unit], live, info_refs) };
    }

    fn each_cached(&mut self, f: &mut dyn FnMut(usize)) {
        self.pools.node.each_idle(|p| f(p as usize));
        self.pools.info.each_idle(|p| f(p as usize));
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send + Sync> {
        self
    }
}

impl<M: Persist, const ARM: u8> RHashMap<M, ARM> {
    /// The *system* half of an invocation (`CP_q := 0`, persisted). Callers
    /// that journal their own intent records around the map (write-ahead
    /// logs driving a mapped heap) must call this **before** writing the
    /// intent record — see [`RecArea::mark_invoked`] for the crash-window
    /// argument. Plain in-process use never needs it: every operation's own
    /// prologue re-runs it.
    pub fn note_invocation(&self, pid: usize) {
        self.rec.mark_invoked(pid);
    }
}

impl<M: Persist, const ARM: u8> Drop for RHashMap<M, ARM> {
    fn drop(&mut self) {
        if self.mapped.is_some() {
            // Mapped mode: the arena contents are the durable state; the
            // pools return their caches to the persistent free list when
            // they drop, and everything else stays for the next attach.
            return;
        }
        // Quiescent teardown, as for `RList` but walking every shard: free
        // the deduplicated union of {reachable across all buckets} ∪
        // {parked} ∪ {published descriptors} exactly once (the shared
        // collector and recovery area are scanned once, not per shard).
        let mut grave: set_core::Grave =
            self.collector.take_parked().into_iter().map(|(p, f)| (p as usize, f)).collect();
        self.rec.each_published(|rd| set_core::grave_published_info::<M>(&mut grave, rd));
        unsafe {
            for &head in self.heads.iter() {
                set_core::grave_scan_bucket(head, &mut grave);
            }
            set_core::free_grave(grave);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::CountingNvm;
    use std::sync::Arc;

    type H = RHashMap<CountingNvm, 0>;
    type HOpt = RHashMap<CountingNvm, 1>;

    #[test]
    fn sequential_set_semantics() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let map = H::new();
        assert!(!map.find(0, 5));
        assert!(map.insert(0, 5));
        assert!(map.find(0, 5));
        assert!(!map.insert(0, 5), "duplicate insert");
        assert!(map.insert(0, 3));
        assert!(map.insert(0, 9));
        assert!(map.delete(0, 5));
        assert!(!map.delete(0, 5), "double delete");
        assert!(!map.find(0, 5));
        assert!(map.find(0, 3) && map.find(0, 9));
    }

    #[test]
    fn shard_routing_is_total_and_stable() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        for shards in [1usize, 2, 8, 64] {
            let map: RHashMap<CountingNvm> = RHashMap::with_shards(shards);
            let mut hit = vec![false; shards];
            for k in 1..=4096u64 {
                let s = map.shard_of(k);
                assert!(s < shards);
                assert_eq!(s, map.shard_of(k), "routing must be deterministic");
                hit[s] = true;
            }
            // Fibonacci hashing must actually spread a dense key range.
            assert!(hit.iter().all(|&h| h), "{shards} shards: some shard never hit");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        let _ = RHashMap::<CountingNvm>::with_shards(12);
    }

    #[test]
    fn mixed_random_ops_match_model_across_shard_counts() {
        use rand::{Rng, SeedableRng};
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        for shards in [1usize, 4, 32] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(42 + shards as u64);
            let mut map: RHashMap<CountingNvm> = RHashMap::with_shards(shards);
            let mut model = std::collections::BTreeSet::new();
            for _ in 0..3000 {
                let k = rng.gen_range(1..128u64);
                match rng.gen_range(0..3) {
                    0 => assert_eq!(map.insert(0, k), model.insert(k), "insert {k}"),
                    1 => assert_eq!(map.delete(0, k), model.remove(&k), "delete {k}"),
                    _ => assert_eq!(map.find(0, k), model.contains(&k), "find {k}"),
                }
            }
            assert_eq!(map.snapshot_keys(), model.iter().copied().collect::<Vec<_>>());
            map.check_invariants();
        }
    }

    #[test]
    fn tuned_variant_same_semantics() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let mut map = HOpt::with_shards(8);
        for k in 1..=200u64 {
            assert!(map.insert(0, k));
        }
        for k in (1..=200u64).step_by(2) {
            assert!(map.delete(0, k));
        }
        for k in 1..=200u64 {
            assert_eq!(map.find(0, k), k % 2 == 0);
        }
        map.check_invariants();
        assert_eq!(map.snapshot_keys().len(), 100);
    }

    #[test]
    fn no_leaks_after_drop() {
        let _gate = crate::counters::gate_exclusive();
        nvm::tid::set_tid(0);
        let nodes0 = crate::counters::live_nodes();
        let infos0 = crate::counters::live_infos();
        {
            let mut map = H::with_shards(8);
            for k in 1..=400u64 {
                map.insert(0, k);
            }
            for k in 1..=400u64 {
                map.delete(0, k);
            }
            for k in 1..=100u64 {
                map.insert(0, k);
                map.find(0, k);
            }
            map.check_invariants();
        }
        assert_eq!(crate::counters::live_nodes(), nodes0, "node leak/double-free");
        assert_eq!(crate::counters::live_infos(), infos0, "info leak/double-free");
    }

    #[test]
    fn concurrent_disjoint_inserts_all_succeed() {
        let _gate = crate::counters::gate_shared();
        let map = Arc::new(H::with_shards(16));
        let nthreads = 4u64;
        let per = 300u64;
        let hs: Vec<_> = (0..nthreads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    nvm::tid::set_tid(t as usize);
                    for i in 0..per {
                        assert!(map.insert(t as usize, 1 + t + i * nthreads));
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let mut map = Arc::into_inner(map).unwrap();
        assert_eq!(map.snapshot_keys().len(), (nthreads * per) as usize);
        map.check_invariants();
    }

    #[test]
    fn concurrent_churn_no_leaks() {
        let _gate = crate::counters::gate_exclusive();
        nvm::tid::set_tid(0);
        let nodes0 = crate::counters::live_nodes();
        let infos0 = crate::counters::live_infos();
        {
            let map = Arc::new(H::with_shards(4));
            let hs: Vec<_> = (0..4)
                .map(|t| {
                    let map = Arc::clone(&map);
                    std::thread::spawn(move || {
                        use rand::{Rng, SeedableRng};
                        nvm::tid::set_tid(t);
                        let mut rng = rand::rngs::StdRng::seed_from_u64(900 + t as u64);
                        for _ in 0..1500 {
                            let k = rng.gen_range(1..48u64);
                            if rng.gen_bool(0.5) {
                                map.insert(t, k);
                            } else {
                                map.delete(t, k);
                            }
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            drop(Arc::into_inner(map).unwrap());
        }
        assert_eq!(crate::counters::live_nodes(), nodes0, "node leak/double-free");
        assert_eq!(crate::counters::live_infos(), infos0, "info leak/double-free");
    }

    #[test]
    fn recovery_without_crash_restarts_cleanly() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let map = H::with_shards(8);
        assert!(map.recover_insert(0, 10));
        assert!(map.find(0, 10));
        assert!(map.recover_delete(0, 10));
        assert!(!map.find(0, 10));
        assert!(!map.recover_find(0, 10));
    }

    fn tmp_heap(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!(
            "isb_hm_{}_{}_{name}.heap",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn mapped_attach_preserves_contents_across_detach() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let path = tmp_heap("roundtrip");
        {
            let (map, s) = RHashMap::<nvm::MappedNvm, 0>::attach_sized(&path, 8, 1 << 21).unwrap();
            assert!(s.heap.created);
            for k in 1..=200u64 {
                assert!(map.insert(0, k));
            }
            for k in (1..=200u64).step_by(3) {
                assert!(map.delete(0, k));
            }
        }
        {
            let (mut map, s) =
                RHashMap::<nvm::MappedNvm, 0>::attach_sized(&path, 8, 1 << 21).unwrap();
            assert!(!s.heap.created);
            assert_eq!(s.heap.poisoned, 0, "clean detach leaves no torn blocks");
            for k in 1..=200u64 {
                assert_eq!(map.find(0, k), k % 3 != 1, "key {k} after re-attach");
            }
            map.check_invariants();
            // The recovered map stays fully operational.
            assert!(map.insert(0, 1000));
            assert!(map.delete(0, 2));
        }
        {
            let (mut map, _) =
                RHashMap::<nvm::MappedNvm, 0>::attach_sized(&path, 8, 1 << 21).unwrap();
            assert!(map.find(0, 1000));
            assert!(!map.find(0, 2));
            map.check_invariants();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapped_attach_rejects_config_mismatch() {
        let _gate = crate::counters::gate_shared();
        nvm::tid::set_tid(0);
        let path = tmp_heap("cfg");
        drop(RHashMap::<nvm::MappedNvm, 0>::attach_sized(&path, 8, 1 << 21).unwrap());
        // Different shard count.
        match RHashMap::<nvm::MappedNvm, 0>::attach_sized(&path, 16, 1 << 21) {
            Err(AttachError::CfgMismatch { .. }) => {}
            Err(e) => panic!("expected CfgMismatch, got {e}"),
            Ok(_) => panic!("shard-count mismatch must fail"),
        }
        // Different tuning.
        match RHashMap::<nvm::MappedNvm, 1>::attach_sized(&path, 8, 1 << 21) {
            Err(AttachError::CfgMismatch { .. }) => {}
            Err(e) => panic!("expected CfgMismatch, got {e}"),
            Ok(_) => panic!("tuning mismatch must fail"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
