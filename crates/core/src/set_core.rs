//! Head-parameterized core of the detectably recoverable sorted-list set
//! (paper Section 4, Algorithms 3–5, obtained by applying ROpt-ISB).
//!
//! The ISB construction is *head-agnostic*: AffectSet/WriteSet tracking,
//! helping and Op-Recover never mention where the traversal started. This
//! module exploits that by factoring the whole search/gather/help/recover
//! algorithm out of [`crate::list::RList`] into [`SetCore`], a borrowed view
//! `(head node, &RecArea, &Collector)`. [`crate::list::RList`] is the
//! one-bucket instantiation; [`crate::hashmap::RHashMap`] routes keys to a
//! power-of-two array of bucket heads sharing **one** recovery area (one
//! pending operation per process, per the paper's model) and one collector.
//!
//! The bucket is sorted by strictly increasing `u64` keys with two sentinels
//! (`0 = −∞`, `u64::MAX = +∞`); user keys must lie strictly between. Each
//! node carries an `info` field (tagged pointer, see [`crate::tag`]).
//!
//! * A node tagged **for update** has its `next` field about to change; it
//!   is untagged when the update completes.
//! * A node tagged **for deletion** stays tagged forever (the Harris mark
//!   bit) — this includes the successor that a successful *Insert*
//!   **copy-replaces**: `Insert(k)` links `pred → newnd(k) → newcurr(copy of
//!   curr)` and retires `curr`. The copy guarantees **pointer freshness**: a
//!   node only ever leaves a `next` field by being retired, so no `next` or
//!   `info` field ever holds the same value twice and stale helper CASes
//!   fail harmlessly (DESIGN.md §4).
//!
//! Read-only outcomes (`Find`, `Insert` of a present key, `Delete` of an
//! absent key) take the ROpt fast path: a single-element AffectSet, the
//! response computed from immutable fields *before* the descriptor is
//! persisted, and no call to `Help`.
//!
//! ### Deviation from the paper's pseudocode
//! Algorithm 1 reuses the same Info structure after an attempt that failed
//! without installing anything. We allocate a fresh Info for every attempt
//! that follows a *published* one: refilling a descriptor that `RD_q`
//! already points to is not crash-atomic on real hardware (a torn descriptor
//! could be helped during recovery). The single-attempt fast path is
//! unchanged.

use crate::arm;
use crate::counters;
use crate::engine::{help, HelpOutcome, Info, InfoFill, RES_FALSE, RES_TRUE};
use crate::optype;
use crate::pool::{Pool, PoolCfg, PoolItem};
use crate::recovery::{op_recover, RecArea, Recovered};
use crate::tag;
use nvm::{PWord, Persist, PersistWords};
use reclaim::{Collector, Guard};

/// Sentinel key of a bucket head (−∞).
pub const KEY_MIN: u64 = 0;
/// Sentinel key of a bucket tail (+∞).
pub const KEY_MAX: u64 = u64::MAX;

/// A list node: `key` (immutable once published), `next`, `info`.
#[repr(C)]
pub struct Node<M: Persist> {
    key: PWord<M>,
    next: PWord<M>,
    info: PWord<M>,
}

unsafe impl<M: Persist> PersistWords<M> for Node<M> {
    fn each_word(&self, f: &mut dyn FnMut(&PWord<M>)) {
        f(&self.key);
        f(&self.next);
        f(&self.info);
    }
}

impl<M: Persist> Node<M> {
    fn alloc(key: u64, next: u64, info: u64) -> *mut Node<M> {
        counters::node_alloc();
        Box::into_raw(Box::new(Node {
            key: PWord::new(key),
            next: PWord::new(next),
            info: PWord::new(info),
        }))
    }

    /// Re-initialize a pool-recycled node (all fields — the node is dirty).
    fn init(&self, key: u64, next: u64, info: u64) {
        self.key.store(key);
        self.next.store(next);
        self.info.store(info);
    }
}

impl<M: Persist> PoolItem for Node<M> {
    fn fresh() -> Self {
        counters::node_alloc();
        Node { key: PWord::new(0), next: PWord::new(0), info: PWord::new(0) }
    }

    fn count_reuse() {
        counters::node_reuse();
    }
}

/// The descriptor/node pools shared by every bucket of one ordered-set
/// structure (`RList` owns one pair; `RHashMap` shares one pair across all
/// shards). Pooling is forced into passthrough mode under crash simulation
/// and disabled collectors — see [`crate::pool`].
pub struct SetPools<M: Persist> {
    /// Info-descriptor pool.
    pub info: Pool<Info<M>>,
    /// List-node pool.
    pub node: Pool<Node<M>>,
}

impl<M: Persist> SetPools<M> {
    /// Pools per `cfg`, gated on the structure's collector mode.
    pub fn new(cfg: PoolCfg, collector: &Collector) -> Self {
        Self {
            info: Pool::new_for::<M>(cfg.clone(), collector),
            node: Pool::new_for::<M>(cfg, collector),
        }
    }

    /// Pools whose Info half is a clone of an existing (shared) pool — the
    /// mapped backend hands every structure in one heap the same descriptor
    /// pool, because `RD_q` hand-over releases the *previous* operation's
    /// descriptor regardless of which structure it belonged to.
    pub fn with_shared_info(info: Pool<Info<M>>, cfg: PoolCfg, collector: &Collector) -> Self {
        Self { info, node: Pool::new_for::<M>(cfg, collector) }
    }
}

impl<M: Persist> Drop for Node<M> {
    fn drop(&mut self) {
        counters::node_free();
    }
}

/// Allocates a fresh empty bucket: a `−∞` head linked to a `+∞` tail.
/// Ownership passes to the caller, which must tear it down through
/// [`grave_scan_bucket`] (or by walking and freeing the nodes itself).
pub fn new_bucket<M: Persist>() -> *mut Node<M> {
    let tail: *mut Node<M> = Node::alloc(KEY_MAX, 0, 0);
    Node::alloc(KEY_MIN, tail as u64, 0)
}

/// Allocates a fresh empty bucket whose sentinels are drawn from `pools`:
/// the mapped backend routes this through its persistent arena so bucket
/// heads survive the process. Panics on a passthrough pool — a heap-`Box`
/// sentinel whose address gets persisted into the arena would dangle after
/// a restart, so there is deliberately no fallback.
pub fn new_bucket_in<M: Persist>(pools: &SetPools<M>) -> *mut Node<M> {
    let draw = |key: u64, next: u64| {
        let p = pools.node.take().expect("mapped bucket sentinels require an arena-backed pool");
        // SAFETY: a pool object is live and exclusively ours until
        // published; init rewrites every (dirty) field.
        unsafe { (*p).init(key, next, 0) };
        p
    };
    let tail = draw(KEY_MAX, 0);
    draw(KEY_MIN, tail as u64)
}

/// Bounds-checked pre-validation of a bucket read from an **untrusted**
/// mapped image, run before any recovery code dereferences it: every node
/// reached from `head` must lie inside the heap (per `in_node`, a
/// whole-node span check), and the chain must terminate at a `+∞` sentinel
/// within `max_nodes` steps (cycle guard). Referenced info descriptors are
/// only *collected* into `infos`; the caller range-checks them with
/// [`crate::recovery::validate_infos`]. Returns the offending pointer value
/// on violation.
///
/// # Safety
/// Every node is dereferenced only after `in_node` passes, so the caller
/// must guarantee that `in_node(a)` implies the whole `Node<M>` at `a` is
/// mapped (the mapped backend passes a `contains_span` check).
pub unsafe fn validate_bucket<M: Persist>(
    head: *mut Node<M>,
    in_node: &impl Fn(u64) -> bool,
    max_nodes: usize,
    infos: &mut std::collections::HashSet<u64>,
) -> Result<(), u64> {
    if !in_node(head as u64) {
        return Err(head as u64);
    }
    let mut n = head;
    let mut budget = max_nodes;
    loop {
        if budget == 0 {
            return Err(n as u64); // non-terminating chain (cycle/corruption)
        }
        budget -= 1;
        unsafe {
            let iv = tag::untagged((*n).info.load());
            if iv != 0 {
                infos.insert(iv);
            }
            if (*n).key.load() == KEY_MAX {
                return Ok(());
            }
            let next = (*n).next.load();
            if !in_node(next) {
                return Err(next);
            }
            n = next as *mut Node<M>;
        }
    }
}

/// Census of one **quiescent** bucket: records every reachable node's
/// address in `nodes` and, per info descriptor still referenced from a node
/// cell, the number of referencing cells in `info_refs`. The mapped
/// backend's attach uses this (after `scrub`) to rebuild descriptor
/// reference counts and compute the live set for its arena sweep.
///
/// # Safety
/// Requires quiescent exclusive access to a live bucket.
pub unsafe fn census_bucket<M: Persist>(
    head: *mut Node<M>,
    nodes: &mut std::collections::HashSet<usize>,
    info_refs: &mut std::collections::HashMap<usize, u32>,
) {
    unsafe {
        let mut n = head;
        loop {
            nodes.insert(n as usize);
            let iv = tag::untagged((*n).info.load());
            if iv != 0 {
                *info_refs.entry(iv as usize).or_insert(0) += 1;
            }
            if (*n).key.load() == KEY_MAX {
                break;
            }
            n = (*n).next.load() as *mut Node<M>;
        }
    }
}

struct SearchRes<M: Persist> {
    pred: *mut Node<M>,
    curr: *mut Node<M>,
    pred_info: u64,
    curr_info: u64,
}

/// A borrowed view of one ordered-set bucket plus the structure-wide
/// recovery area and collector — everything the ISB set algorithm needs.
/// `ARM = false` is the paper's general persistency placement ("Isb");
/// `ARM = true` is the hand-tuned one ("Isb-Opt").
///
/// `SetCore` is constructed per call by the owning structure; it holds no
/// state of its own and performs no allocation besides the operation's
/// nodes/descriptors.
pub struct SetCore<'a, M: Persist, const ARM: u8> {
    head: *mut Node<M>,
    rec: &'a RecArea<M>,
    collector: &'a Collector,
    pools: &'a SetPools<M>,
}

impl<'a, M: Persist, const ARM: u8> SetCore<'a, M, ARM> {
    /// A view over the bucket rooted at `head`.
    ///
    /// # Safety
    /// `head` must point to a live bucket created by [`new_bucket`] whose
    /// nodes are only reclaimed through `collector`, `rec` must be the
    /// recovery area every operation on this bucket publishes through, and
    /// `pools` must be the pools every operation on the structure draws
    /// from (and must outlive `collector`).
    pub unsafe fn new(
        head: *mut Node<M>,
        rec: &'a RecArea<M>,
        collector: &'a Collector,
        pools: &'a SetPools<M>,
    ) -> Self {
        Self { head, rec, collector, pools }
    }

    /// Draw a descriptor: pool hit, or heap in passthrough mode.
    #[inline]
    fn alloc_info(&self) -> *mut Info<M> {
        self.pools.info.take().unwrap_or_else(Info::alloc)
    }

    /// Draw a node: pool hit (re-initialized), or heap in passthrough mode.
    #[inline]
    fn alloc_node(&self, key: u64, next: u64, info: u64) -> *mut Node<M> {
        match self.pools.node.take() {
            Some(p) => {
                unsafe { (*p).init(key, next, info) };
                p
            }
            None => Node::alloc(key, next, info),
        }
    }

    fn assert_key(key: u64) {
        assert!(key > KEY_MIN && key < KEY_MAX, "key must be in (0, u64::MAX)");
    }

    /// Algorithm 5 `Search`: returns the first node with `node.key >= key`
    /// as `curr`, its predecessor, and their info values — each info value
    /// read on first access to its node (before the node's `next`).
    ///
    /// # Safety
    /// Caller must hold an EBR pin.
    unsafe fn search(&self, key: u64) -> SearchRes<M> {
        unsafe {
            let mut curr = self.head;
            let mut curr_info = (*curr).info.load();
            let mut pred = curr;
            let mut pred_info = curr_info;
            while (*curr).key.load() < key {
                pred = curr;
                pred_info = curr_info;
                curr = (*curr).next.load() as *mut Node<M>;
                curr_info = (*curr).info.load();
            }
            SearchRes { pred, curr, pred_info, curr_info }
        }
    }

    /// Persist the attempt's new nodes and descriptor before publication
    /// (paper line 106 `pbarrier(newcurr, newnd, *opInfo)`).
    unsafe fn persist_attempt(
        &self,
        info: *mut Info<M>,
        newnd: *mut Node<M>,
        newcurr: *mut Node<M>,
    ) {
        unsafe {
            if !newnd.is_null() {
                arm::pwb_obj_arm::<M, _, ARM>(&*newnd);
            }
            if !newcurr.is_null() {
                arm::pwb_obj_arm::<M, _, ARM>(&*newcurr);
            }
            if arm::is_tuned(ARM) {
                arm::pwb_obj_arm::<M, _, ARM>(&*info);
                M::pfence(); // order descriptor write-backs before RD_q's
            } else {
                M::pbarrier_obj(&*info);
            }
        }
    }

    /// Publish `info` in `RD_q`, releasing the hold on the previously
    /// published descriptor.
    fn publish(&self, pid: usize, info: *mut Info<M>, published: &mut u64, g: &Guard<'_>) {
        self.rec.publish_arm::<ARM>(pid, info as u64);
        if *published != 0 && *published != info as u64 {
            unsafe { Info::<M>::release(tag::ptr_of(*published), 1, g) };
        }
        *published = info as u64;
    }

    /// Publish for the read-only `find` path: never touches `CP_q` (finds
    /// always restart), so it must not use the arm-aware publish that folds
    /// the coalescing arms' deferred `CP_q := 1` in.
    fn publish_ro(&self, pid: usize, info: *mut Info<M>, published: &mut u64, g: &Guard<'_>) {
        self.rec.publish(pid, info as u64);
        if *published != 0 && *published != info as u64 {
            unsafe { Info::<M>::release(tag::ptr_of(*published), 1, g) };
        }
        *published = info as u64;
    }

    /// Retire a node that left the structure, releasing its info reference.
    /// The node was published, so reuse waits out the epoch delay.
    unsafe fn retire_node(&self, node: *mut Node<M>, g: &Guard<'_>) {
        unsafe {
            let iv = (*node).info.load();
            Info::<M>::release(tag::ptr_of(iv), 1, g);
            self.pools.node.retire(node, g);
        }
    }

    /// Return never-published new nodes straight to the pool (and release
    /// their info-cell references) — the private-failure fast path.
    unsafe fn drop_pending(
        &self,
        newnd: *mut Node<M>,
        newcurr: *mut Node<M>,
        filled: u64,
        g: &Guard<'_>,
    ) {
        unsafe {
            if filled != 0 {
                Info::<M>::release(tag::ptr_of(filled), 2, g);
            }
            self.pools.node.give(newnd, g);
            self.pools.node.give(newcurr, g);
        }
    }

    /// Inserts `key`; returns `false` iff it was already present.
    /// (Algorithm 3, `Insert`.)
    pub fn insert(&self, pid: usize, key: u64) -> bool {
        Self::assert_key(key);
        // ONE pin covers the whole operation: the previous descriptor's
        // release, every attempt, and all retirements (interior help calls
        // re-pin through the collector's nested fast path).
        let g = self.collector.pin();
        let prev = self.rec.begin::<ARM>(pid);
        unsafe { crate::recovery::release_prev::<M>(prev, &g) };
        // newnd → newcurr; newcurr refreshed per attempt as a copy of curr.
        let newcurr = self.alloc_node(0, 0, 0);
        let newnd = self.alloc_node(key, newcurr as u64, 0);
        let mut info = self.alloc_info();
        let mut filled: u64 = 0; // tagged-info value currently in the new nodes' cells
        let mut published: u64 = 0;
        loop {
            let s = unsafe { self.search(key) };
            // Helping phase.
            if tag::is_tagged(s.pred_info) {
                unsafe { help::<M, ARM>(tag::ptr_of(s.pred_info), false, &g) };
                continue;
            }
            if tag::is_tagged(s.curr_info) {
                unsafe { help::<M, ARM>(tag::ptr_of(s.curr_info), false, &g) };
                continue;
            }
            let curr_key = unsafe { (*s.curr).key.load() };
            if curr_key == key {
                // ROpt read-only path: key already present.
                unsafe {
                    Info::fill(
                        info,
                        &InfoFill {
                            optype: optype::INSERT,
                            affect: &[(cell_addr(&(*s.curr).info), s.curr_info)],
                            write: &[],
                            newset: &[],
                            del_mask: 0,
                            presult: RES_FALSE,
                        },
                    );
                    // Response computed early so one barrier persists it with
                    // the descriptor (Algorithm 2, lines 73–77).
                    M::store(&(*info).result, RES_FALSE);
                    self.persist_attempt(info, std::ptr::null_mut(), std::ptr::null_mut());
                }
                self.publish(pid, info, &mut published, &g);
                unsafe {
                    Info::release(info, 1, &g); // the never-installed affect slot
                    self.drop_pending(newnd, newcurr, filled, &g);
                }
                return false;
            }
            // Update path: refresh the copy of curr and the new nodes' tags.
            unsafe {
                (*newcurr).key.store(curr_key);
                (*newcurr).next.store((*s.curr).next.load());
                let t = tag::tagged(info as u64);
                if filled != t {
                    if filled != 0 {
                        Info::<M>::release(tag::ptr_of(filled), 2, &g);
                    }
                    (*newnd).info.store(t);
                    (*newcurr).info.store(t);
                    filled = t;
                }
                Info::fill(
                    info,
                    &InfoFill {
                        optype: optype::INSERT,
                        affect: &[
                            (cell_addr(&(*s.pred).info), s.pred_info),
                            (cell_addr(&(*s.curr).info), s.curr_info),
                        ],
                        write: &[(cell_addr(&(*s.pred).next), s.curr as u64, newnd as u64)],
                        newset: &[cell_addr(&(*newnd).info), cell_addr(&(*newcurr).info)],
                        del_mask: 0b10, // curr is deletion-tagged (copy-replaced)
                        presult: RES_TRUE,
                    },
                );
                self.persist_attempt(info, newnd, newcurr);
            }
            self.publish(pid, info, &mut published, &g);
            match unsafe { help::<M, ARM>(info, true, &g) } {
                HelpOutcome::Done => {
                    unsafe { self.retire_node(s.curr, &g) };
                    return true;
                }
                HelpOutcome::FailedAt(i) => {
                    // Abandon: release never-installed affect slots; fresh
                    // descriptor for the next attempt (pointer freshness —
                    // the pool's epoch delay keeps the failed descriptor's
                    // address out of circulation while it is still visible).
                    unsafe { Info::release(info, (2 - i) as u32, &g) };
                    info = self.alloc_info();
                }
            }
        }
    }

    /// Deletes `key`; returns `false` iff it was absent. (Algorithm 5.)
    pub fn delete(&self, pid: usize, key: u64) -> bool {
        Self::assert_key(key);
        let g = self.collector.pin();
        let prev = self.rec.begin::<ARM>(pid);
        unsafe { crate::recovery::release_prev::<M>(prev, &g) };
        let mut info = self.alloc_info();
        let mut published: u64 = 0;
        loop {
            let s = unsafe { self.search(key) };
            if tag::is_tagged(s.pred_info) {
                unsafe { help::<M, ARM>(tag::ptr_of(s.pred_info), false, &g) };
                continue;
            }
            if tag::is_tagged(s.curr_info) {
                unsafe { help::<M, ARM>(tag::ptr_of(s.curr_info), false, &g) };
                continue;
            }
            let curr_key = unsafe { (*s.curr).key.load() };
            if curr_key != key {
                // ROpt read-only path: key not present.
                unsafe {
                    Info::fill(
                        info,
                        &InfoFill {
                            optype: optype::DELETE,
                            affect: &[(cell_addr(&(*s.curr).info), s.curr_info)],
                            write: &[],
                            newset: &[],
                            del_mask: 0,
                            presult: RES_FALSE,
                        },
                    );
                    M::store(&(*info).result, RES_FALSE);
                    self.persist_attempt(info, std::ptr::null_mut(), std::ptr::null_mut());
                }
                self.publish(pid, info, &mut published, &g);
                unsafe { Info::release(info, 1, &g) };
                return false;
            }
            // succ read after the helping phase; stable once both tags hold.
            let succ = unsafe { (*s.curr).next.load() };
            unsafe {
                Info::fill(
                    info,
                    &InfoFill {
                        optype: optype::DELETE,
                        affect: &[
                            (cell_addr(&(*s.pred).info), s.pred_info),
                            (cell_addr(&(*s.curr).info), s.curr_info),
                        ],
                        write: &[(cell_addr(&(*s.pred).next), s.curr as u64, succ)],
                        newset: &[],
                        del_mask: 0b10, // curr stays deletion-tagged forever
                        presult: RES_TRUE,
                    },
                );
                self.persist_attempt(info, std::ptr::null_mut(), std::ptr::null_mut());
            }
            self.publish(pid, info, &mut published, &g);
            match unsafe { help::<M, ARM>(info, true, &g) } {
                HelpOutcome::Done => {
                    unsafe { self.retire_node(s.curr, &g) };
                    return true;
                }
                HelpOutcome::FailedAt(i) => {
                    unsafe { Info::release(info, (2 - i) as u32, &g) };
                    info = self.alloc_info();
                }
            }
        }
    }

    /// Whether `key` is present. (Algorithm 3, `Find` — fully read-only,
    /// skips the `RD_q := Null / CP_q := 1` prologue: restarting a find is
    /// always safe, but its response is still persisted for strict
    /// recoverability / nesting.)
    pub fn find(&self, pid: usize, key: u64) -> bool {
        Self::assert_key(key);
        let g = self.collector.pin();
        let prev = self.rec.begin_readonly(pid);
        let info = self.alloc_info();
        // A DIRECT previous entry carries no descriptor reference to hand
        // over (see `recovery::release_prev`).
        let mut published = if tag::is_direct(prev) { 0 } else { prev };
        loop {
            let s = unsafe { self.search(key) };
            if tag::is_tagged(s.curr_info) {
                unsafe { help::<M, ARM>(tag::ptr_of(s.curr_info), false, &g) };
                continue;
            }
            let res = unsafe { (*s.curr).key.load() } == key;
            let enc = if res { RES_TRUE } else { RES_FALSE };
            unsafe {
                Info::fill(
                    info,
                    &InfoFill {
                        optype: optype::FIND,
                        affect: &[(cell_addr(&(*s.curr).info), s.curr_info)],
                        write: &[],
                        newset: &[],
                        del_mask: 0,
                        presult: enc,
                    },
                );
                M::store(&(*info).result, enc);
                self.persist_attempt(info, std::ptr::null_mut(), std::ptr::null_mut());
            }
            self.publish_ro(pid, info, &mut published, &g);
            unsafe { Info::release(info, 1, &g) };
            return res;
        }
    }

    /// Generic Op-Recover on the shared recovery area: `Completed` carries
    /// the crashed operation's persisted (encoded) response; `Restart` means
    /// the caller must re-invoke the operation with its original arguments.
    pub fn op_recover(&self, pid: usize) -> Recovered {
        let g = self.collector.pin();
        unsafe { op_recover::<M, ARM>(self.rec, pid, &g) }
    }

    /// Completes helping obligations left *visible* in this bucket by a
    /// crash: walks the bucket and runs `Help` on every tagged info until a
    /// full pass finds none. Call after every process ran its `Op.Recover`.
    ///
    /// Needed by the hand-tuned placement, which defers the cleanup-phase
    /// `psync`: the adversarial crash image may roll a completed operation's
    /// untag write-backs back, resurrecting its tags on reachable nodes.
    /// During normal execution lazy helping heals them on first contact;
    /// this performs the same (idempotent) helping eagerly so a quiescent
    /// post-recovery structure is tag-free. The effects themselves cannot
    /// roll back — an operation only reports completion after the update
    /// phase's `psync` — so re-helping can only untag, never re-apply.
    pub fn scrub(&self) {
        self.try_scrub().unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`SetCore::scrub`] with the pass budget surfaced as a typed
    /// [`crate::recovery::AttachError::ScrubStalled`] instead of a panic —
    /// the mapped attach path reports non-quiescing images as errors.
    pub fn try_scrub(&self) -> Result<(), crate::recovery::AttachError> {
        // Each pass helps every descriptor visible in it; descriptors are
        // finite (≤ one per process) and helping never re-tags, so a couple
        // of passes quiesce. The bound turns a logic bug into a diagnosis.
        const PASSES: usize = 64;
        for _ in 0..PASSES {
            let g = self.collector.pin();
            let mut dirty = false;
            unsafe {
                let mut n = self.head;
                loop {
                    let iv = (*n).info.load();
                    if tag::is_tagged(iv) {
                        dirty = true;
                        help::<M, ARM>(tag::ptr_of(iv), false, &g);
                    }
                    if (*n).key.load() == KEY_MAX {
                        break;
                    }
                    n = (*n).next.load() as *mut Node<M>;
                }
            }
            if !dirty {
                return Ok(());
            }
        }
        Err(crate::recovery::AttachError::ScrubStalled {
            kind: "ordered-set bucket",
            passes: PASSES,
        })
    }

    /// Appends this bucket's user keys to `out` in bucket order (requires
    /// exclusive access ⇒ quiescence).
    pub fn snapshot_keys_into(&self, out: &mut Vec<u64>) {
        unsafe {
            let mut n = (*self.head).next.load() as *mut Node<M>;
            while (*n).key.load() != KEY_MAX {
                out.push((*n).key.load());
                n = (*n).next.load() as *mut Node<M>;
            }
        }
    }

    /// Structural invariants of this bucket: strictly sorted keys, intact
    /// sentinels, no reachable node is tagged (quiescent bucket). Panics on
    /// violation.
    pub fn check_invariants(&self) {
        unsafe {
            assert_eq!((*self.head).key.load(), KEY_MIN);
            let mut prev_key = KEY_MIN;
            let mut n = (*self.head).next.load() as *mut Node<M>;
            loop {
                let k = (*n).key.load();
                assert!(k > prev_key, "keys must be strictly increasing: {prev_key} !< {k}");
                assert!(
                    !tag::is_tagged((*n).info.load()),
                    "reachable node (key {k}) is tagged in a quiescent list"
                );
                if k == KEY_MAX {
                    break;
                }
                prev_key = k;
                n = (*n).next.load() as *mut Node<M>;
            }
        }
    }
}

#[inline]
fn cell_addr<M: Persist>(w: &PWord<M>) -> u64 {
    w as *const PWord<M> as u64
}

unsafe fn drop_node_raw<M: Persist>(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut Node<M>) });
}

unsafe fn drop_info_raw<M: Persist>(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut Info<M>) });
}

/// Drop-time grave map: address → deallocation function, deduplicated so
/// overlapping sources (reachable scan, parked bag, published descriptors)
/// free each object exactly once.
pub type Grave = std::collections::HashMap<usize, unsafe fn(*mut u8)>;

/// Records a published `RD_q` descriptor in the grave map ([`crate::tag::DIRECT`]
/// node announcements are not descriptors and are skipped — the direct
/// structure owns those nodes).
pub fn grave_published_info<M: Persist>(grave: &mut Grave, rd: u64) {
    if !tag::is_direct(rd) && tag::untagged(rd) != 0 {
        grave.insert(tag::untagged(rd) as usize, drop_info_raw::<M>);
    }
}

/// Walks one bucket from `head` and records every reachable node — and every
/// info descriptor still referenced by a node — in the grave map. After a
/// simulated crash the NVM image may have rolled pointers back, making
/// *retired* (parked) nodes reachable again, so callers merge this scan with
/// the collector's parked bag and free the deduplicated union exactly once.
///
/// # Safety
/// Requires quiescent exclusive access to the bucket (drop-time teardown).
pub unsafe fn grave_scan_bucket<M: Persist>(head: *mut Node<M>, grave: &mut Grave) {
    unsafe {
        let mut n = head;
        while !n.is_null() {
            let next = (*n).next.load() as *mut Node<M>;
            let iv = tag::untagged((*n).info.load());
            if iv != 0 {
                grave.insert(iv as usize, drop_info_raw::<M>);
            }
            let is_tail = (*n).key.load() == KEY_MAX;
            grave.insert(n as usize, drop_node_raw::<M>);
            n = if is_tail { std::ptr::null_mut() } else { next };
        }
    }
}

/// Frees everything recorded in the grave map.
///
/// # Safety
/// Every recorded address must be a live allocation owned by the caller and
/// recorded with its matching deallocation function.
pub unsafe fn free_grave(grave: Grave) {
    for (p, f) in grave {
        unsafe { f(p as *mut u8) };
    }
}
