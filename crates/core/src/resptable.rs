//! Durable KV-service response table: client-visible exactly-once.
//!
//! The network service (`crates/kvserve`) lets clients name every request
//! with a `(client_id, op_seq)` operation ID. This module is the durable
//! half of that contract, one root block ([`rootkeys::RESPTAB`]) holding two
//! arrays:
//!
//! * **Client slots** — one per registered client: the highest acknowledged
//!   sequence number (`last_seq`) and the encoded response of exactly that
//!   operation. A retried request whose `op_seq == last_seq` is answered
//!   from here without touching any structure — byte-identical to the
//!   original acknowledgement, applied exactly once.
//! * **Intent slots** — one per process slot (`MAX_PROCS`, indexed by the
//!   worker's tid): the op-ID currently being applied by that worker. An
//!   intent is recorded *after* [`RecArea::mark_invoked`](crate::recovery::RecArea::mark_invoked)
//!   (see below) and
//!   cleared after the response is finalized, so after a crash every
//!   in-flight request is resolvable: the attach replay's per-pid
//!   [`Recovered`] decision says whether the interrupted operation took
//!   effect, and [`ResponseTable::resolve`] maps that verdict back onto the
//!   client slot.
//!
//! # Write ordering (the crash-window argument)
//!
//! The request path is, in order:
//!
//! 1. foreign-intent check ([`ResponseTable::foreign_inflight`] → typed
//!    `Recovering`) — **before any read of the client slot**: a dead
//!    peer's resolver finalizes into the client slot and only then clears
//!    the intent, so the observed absence of the intent is what proves
//!    the dedup pair below is quiescent and the watermark fully resolved;
//! 2. dedup check (`op_seq == last_seq` → replay stored response);
//! 3. `mark_invoked(pid)` — the system half: `CP_q := 0`, persisted;
//! 4. [`ResponseTable::begin_op`] — durable intent record, state word
//!    stamped last (after a flush + fence over the payload words);
//! 5. apply the structure operation (which publishes its own descriptor);
//! 6. [`ResponseTable::finish_op`] — durable response finalize into the
//!    client slot (`resp` word flushed and fenced **before** `last_seq`),
//!    then the intent is cleared;
//! 7. acknowledge on the socket.
//!
//! Step 3 before step 4 is load-bearing: because `CP_q` is durably zero
//! before the intent record exists, a `Completed` replay decision found
//! behind an in-flight intent can only describe *this* operation — never a
//! stale descriptor of the previous one (see
//! [`RecArea::mark_invoked`](crate::recovery::RecArea::mark_invoked)).
//! Step 6's internal order makes the client-slot pair atomic for readers:
//! `last_seq` is written only after its response word is flush+fenced, so
//! `op_seq == last_seq` proves `resp` is that operation's response — given
//! step 1, which rules out a concurrent resolver mid-finalize on the slot.
//!
//! Crash windows, per step: before 4 → no intent, decision ignored, client
//! retry re-applies as fresh (the operation never started, or at worst
//! published nothing: `Restart`). Between 4 and 6 → intent in flight;
//! `Completed(res)` finalizes `res` into the client slot, `Restart` just
//! clears the intent and the retry re-applies. Between 6's finalize and the
//! intent clear → re-finalizing is idempotent (same words). After 6 → the
//! retry is a dedup hit. In every window the operation applies exactly once
//! and the response the client eventually reads is the original.
//!
//! # GC / ack watermark
//!
//! `last_seq` *is* the garbage collection: a client slot retains exactly one
//! response — the newest acknowledged one — and every older response is
//! reclaimed by overwrite. That is safe because the wire protocol pins the
//! client to `op_seq ∈ {last_seq, last_seq + 1}`: acknowledging `op_seq`
//! is the client's promise that every earlier response was received, so
//! `last_seq` is the ack watermark and nothing below it can be re-asked
//! (such a request is answered with a typed `StaleSeq` error, not silence).
//! Client slots themselves are never evicted — a table-full registration
//! fails typed (`TableFull` on the wire) rather than silently recycling a
//! slot whose owner might still retry.

use crate::engine::RES_BOT;
use crate::recovery::{rootkeys, AttachError, Recovered};
use nvm::mapped::{MappedHeap, MappedNvm};
use nvm::{PWord, Persist};
use std::sync::Arc;

/// Registered clients the table can hold (one 64-byte slot each).
pub const CLIENT_SLOTS: usize = 256;

const SLOT_BYTES: usize = 64;
/// Header magic, stamped when the block is first initialised.
const MAGIC: u64 = 0x5254_4231; // "RTB1"

/// Intent state: no in-flight op recorded for this pid.
const ST_EMPTY: u64 = 0;
/// Intent state: the recorded op-ID is being applied.
const ST_INFLIGHT: u64 = 1;

/// Client-slot ID left when healing drops a duplicate registration.
/// [`ResponseTable::find`] probes *past* a tombstone (writing a plain 0
/// mid-chain would truncate the probe chain of every client that passed
/// through the slot, orphaning their watermarks), and registration may
/// reclaim it. `u64::MAX` is reserved: client IDs must be below it.
const TOMBSTONE: u64 = u64::MAX;

/// One client's dedup/response record (64 bytes).
#[repr(C)]
struct ClientSlot {
    /// Owning client ID (nonzero; 0 = free). CAS-claimed at registration.
    id: PWord<MappedNvm>,
    /// Highest acknowledged sequence number — the ack watermark.
    last_seq: PWord<MappedNvm>,
    /// Encoded response of operation `last_seq` (engine result word).
    resp: PWord<MappedNvm>,
    _pad: [u64; 5],
}

/// One worker's in-flight op-ID record (64 bytes).
#[repr(C)]
struct IntentSlot {
    /// State word, stamped **last** on record and first on clear.
    state: PWord<MappedNvm>,
    /// Client owning the in-flight request.
    client_id: PWord<MappedNvm>,
    /// The request's sequence number.
    op_seq: PWord<MappedNvm>,
    /// Wire opcode (for diagnostics; resolution doesn't re-apply).
    op: PWord<MappedNvm>,
    /// The request argument (key or value).
    arg: PWord<MappedNvm>,
    _pad: [u64; 3],
}

/// What healing/validation found and repaired (all zero on a clean image).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HealReport {
    /// Client slots zeroed because registration tore before the ID stamp
    /// persisted (`id == 0` with residue in `last_seq`/`resp`).
    pub torn_clients: usize,
    /// Duplicate registrations collapsed: the slot with the lower
    /// `last_seq` was tombstoned (deterministically, ties keep the first;
    /// a tombstone keeps later chain entries reachable and is reusable by
    /// new registrations).
    pub dup_clients: usize,
    /// In-flight intents naming no registered client, cleared (the crash
    /// predates the client's first durable registration — nothing to
    /// finalize, the client will re-register and retry fresh).
    pub orphan_intents: usize,
}

/// How [`ResponseTable::resolve`] disposed of one in-flight intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// The interrupted operation took effect: its response was finalized
    /// into the client slot (idempotently), the retry will dedup-hit.
    Finalized {
        /// The client whose slot now carries the response.
        client_id: u64,
        /// The resolved operation's sequence number.
        op_seq: u64,
        /// The encoded response.
        resp: u64,
    },
    /// The interrupted operation did not take effect: the intent was
    /// cleared and the client's retry will re-apply as a fresh operation.
    Restarted {
        /// The client whose request must be retried.
        client_id: u64,
        /// The unapplied operation's sequence number.
        op_seq: u64,
    },
}

/// Handle over the committed [`rootkeys::RESPTAB`] root block.
///
/// Cheap to clone; all state is in the mapped heap. Concurrency contract:
/// a pid's intent slot is written only by the worker owning that tid (or,
/// after its death, by the holder of its recovery lease), and a client slot
/// is written only by the worker the client is routed to — the service
/// routes each `client_id` to exactly one worker, so slot writes never
/// race. Cross-thread *reads* (dedup scans, [`ResponseTable::foreign_inflight`])
/// are safe against the documented write orderings.
#[derive(Clone)]
pub struct ResponseTable {
    _heap: Arc<MappedHeap>,
    base: *mut u8,
}

// SAFETY: the raw base points into the heap mapping, which `_heap` keeps
// alive; all access goes through atomics (PWord).
unsafe impl Send for ResponseTable {}
// SAFETY: as above — interior mutability is atomic-word-based.
unsafe impl Sync for ResponseTable {}

impl ResponseTable {
    /// Size of the root block: header + per-pid intents + client slots.
    pub fn bytes() -> usize {
        SLOT_BYTES * (1 + nvm::MAX_PROCS + CLIENT_SLOTS)
    }

    /// Allocates (or re-opens) the table on `heap`, then validates and
    /// heals it. Must run while the caller has exclusive ownership of the
    /// heap (attach flock held, no live peers) — healing rewrites slots.
    pub(crate) fn attach_excl(heap: &Arc<MappedHeap>) -> Result<(Self, HealReport), AttachError> {
        let t = Self::open(heap)?;
        let report = t.validate_heal()?;
        Ok((t, report))
    }

    /// Opens the table without validation — the joiner's path (the image
    /// was validated by the initial attacher; peers are live and mid-write,
    /// so healing here would race their slot updates).
    pub(crate) fn open(heap: &Arc<MappedHeap>) -> Result<Self, AttachError> {
        let (base, fresh) = heap.root_alloc(rootkeys::RESPTAB, Self::bytes())?;
        let t = Self { _heap: Arc::clone(heap), base };
        let magic = t.header().load();
        if fresh || magic == 0 {
            t.header().store(MAGIC);
            MappedNvm::pbarrier(t.header());
        } else if magic != MAGIC {
            return Err(AttachError::CorruptResponseTable { slot: 0, reason: "bad header magic" });
        }
        Ok(t)
    }

    fn header(&self) -> &PWord<MappedNvm> {
        // SAFETY: word 0 of the committed root block.
        unsafe { &*(self.base as *const PWord<MappedNvm>) }
    }

    fn intent(&self, pid: usize) -> &IntentSlot {
        assert!(pid < nvm::MAX_PROCS);
        // SAFETY: in-bounds fixed-stride slot of the committed root block.
        unsafe { &*(self.base.add(SLOT_BYTES * (1 + pid)) as *const IntentSlot) }
    }

    fn client(&self, idx: usize) -> &ClientSlot {
        assert!(idx < CLIENT_SLOTS);
        // SAFETY: in-bounds fixed-stride slot of the committed root block.
        unsafe { &*(self.base.add(SLOT_BYTES * (1 + nvm::MAX_PROCS + idx)) as *const ClientSlot) }
    }

    fn probe_start(client_id: u64) -> usize {
        // Fibonacci hash; the table is a power of two.
        (client_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % CLIENT_SLOTS
    }

    /// Finds `client_id`'s slot index, if registered. Only a free slot
    /// (`id == 0`) terminates the probe: tombstones and other clients'
    /// slots are probed past.
    fn find(&self, client_id: u64) -> Option<usize> {
        let start = Self::probe_start(client_id);
        for i in 0..CLIENT_SLOTS {
            let idx = (start + i) % CLIENT_SLOTS;
            let id = self.client(idx).id.load();
            if id == client_id {
                return Some(idx);
            }
            if id == 0 {
                return None;
            }
        }
        None
    }

    /// Registers `client_id` (idempotent), returning its slot index, or
    /// `None` when the table is full. `client_id` must be nonzero and
    /// below `u64::MAX` (the tombstone value).
    pub fn register(&self, client_id: u64) -> Option<usize> {
        assert_ne!(client_id, 0, "client IDs are nonzero");
        assert_ne!(client_id, TOMBSTONE, "client ID u64::MAX is reserved");
        // A lost CAS race below means a different client claimed the slot
        // mid-probe (a racing claim for the *same* id cannot exist — one
        // worker per client); re-probe from the start against the new
        // occupancy. Each retry follows another client's successful claim,
        // so the loop terminates: the table fills in ≤ CLIENT_SLOTS claims.
        'probe: loop {
            let start = Self::probe_start(client_id);
            // Earliest tombstone passed on this probe: the preferred claim
            // target — reusing it keeps chains short and stops repeated
            // heals from leaking slots forever.
            let mut grave: Option<usize> = None;
            for i in 0..CLIENT_SLOTS {
                let idx = (start + i) % CLIENT_SLOTS;
                let id = self.client(idx).id.load();
                if id == client_id {
                    return Some(idx);
                }
                if id == TOMBSTONE {
                    grave.get_or_insert(idx);
                    continue;
                }
                if id == 0 {
                    // Free terminator: `client_id` is not registered (a
                    // registered slot is never zeroed, so no chain passes
                    // a 0). Claim the earliest tombstone if we passed one,
                    // else this free slot.
                    let (claim, expect) = match grave {
                        Some(g) => (g, TOMBSTONE),
                        None => (idx, 0),
                    };
                    let s = self.client(claim);
                    if s.id.cas(expect, client_id) == expect {
                        // The ID stamp is the slot's commit point: persist
                        // it before any response lands here. A crash before
                        // this flush reaches media leaves the slot free (or
                        // tombstoned) with zero residue — still claimable.
                        MappedNvm::pbarrier(&s.id);
                        return Some(claim);
                    }
                    continue 'probe;
                }
            }
            // No free terminator: full scan. A passed tombstone is still
            // claimable (the full scan proved `client_id` is nowhere).
            let g = grave?;
            let s = self.client(g);
            if s.id.cas(TOMBSTONE, client_id) == TOMBSTONE {
                MappedNvm::pbarrier(&s.id);
                return Some(g);
            }
        }
    }

    /// The client's ack watermark and the response stored at it:
    /// `(last_seq, resp)`, or `None` for an unregistered client. A
    /// `last_seq` of 0 means no operation was ever acknowledged.
    ///
    /// The pair is read as written (`resp` paired with `last_seq`) only
    /// while no concurrent writer is finalizing the slot. The routed
    /// worker is the sole live writer; a dead peer's *resolver* is the
    /// other one — which is why the service checks
    /// [`ResponseTable::foreign_inflight`] **before** calling this (a
    /// resolver finalizes, then clears the intent, so no foreign intent ⇒
    /// the slot is quiescent).
    pub fn lookup(&self, client_id: u64) -> Option<(u64, u64)> {
        let idx = self.find(client_id)?;
        let s = self.client(idx);
        let seq = s.last_seq.load();
        let resp = s.resp.load();
        Some((seq, resp))
    }

    /// Durably records pid's in-flight op-ID. Call **after**
    /// [`crate::recovery::RecArea::mark_invoked`] (see module docs) and
    /// before the structure operation's first instruction.
    pub fn begin_op(&self, pid: usize, client_id: u64, op_seq: u64, op: u64, arg: u64) {
        let s = self.intent(pid);
        debug_assert_eq!(s.state.load(), ST_EMPTY, "one in-flight op per pid");
        s.client_id.store(client_id);
        s.op_seq.store(op_seq);
        s.op.store(op);
        s.arg.store(arg);
        // One line (64-byte slot): a single write-back covers the payload.
        MappedNvm::pwb(&s.client_id);
        MappedNvm::pfence();
        // Commit point: the state word is stamped only over a durable
        // payload, so an in-flight intent always names a real op-ID.
        s.state.store(ST_INFLIGHT);
        MappedNvm::pwb(&s.state);
        MappedNvm::psync();
    }

    /// Durably finalizes the response into the client slot, then clears
    /// pid's intent. `client_idx` is the index [`ResponseTable::register`]
    /// returned for the request's client.
    pub fn finish_op(&self, pid: usize, client_idx: usize, op_seq: u64, resp: u64) {
        self.finalize(client_idx, op_seq, resp);
        self.clear_intent(pid);
    }

    /// The client-slot half of [`ResponseTable::finish_op`]: `resp` first
    /// (flushed, fenced), `last_seq` second — readers treat `last_seq` as
    /// the commit point of the pair.
    fn finalize(&self, client_idx: usize, op_seq: u64, resp: u64) {
        let s = self.client(client_idx);
        debug_assert!(resp != RES_BOT, "finalized responses are never ⊥");
        s.resp.store(resp);
        MappedNvm::pwb(&s.resp);
        MappedNvm::pfence();
        s.last_seq.store(op_seq);
        MappedNvm::pwb(&s.last_seq);
        MappedNvm::psync();
    }

    fn clear_intent(&self, pid: usize) {
        let s = self.intent(pid);
        s.state.store(ST_EMPTY);
        MappedNvm::pbarrier(&s.state);
    }

    /// Resolves pid's in-flight intent (if any) against the replay decision
    /// for that pid — the attach-time and peer-recovery wiring. Idempotent:
    /// once resolved, the intent is clear and later calls are no-ops.
    ///
    /// `Completed(res)` finalizes `res` as the intent's op-ID response (the
    /// write-ordering argument in the module docs is what makes the
    /// decision attributable to this op-ID); `Restart` clears the intent so
    /// the client's retry re-applies. An intent whose client was never
    /// durably registered is cleared bare (nothing to finalize — the crash
    /// predates the client's first persisted state).
    pub fn resolve(&self, pid: usize, decision: Recovered) -> Option<Resolution> {
        let s = self.intent(pid);
        if s.state.load() != ST_INFLIGHT {
            return None;
        }
        let client_id = s.client_id.load();
        let op_seq = s.op_seq.load();
        let out = match decision {
            Recovered::Completed(resp) if resp != RES_BOT => {
                match self.find(client_id) {
                    Some(idx) => {
                        self.finalize(idx, op_seq, resp);
                        Resolution::Finalized { client_id, op_seq, resp }
                    }
                    // Registration never became durable: the client has no
                    // slot to carry the response; it will re-register and
                    // retry, and the retry must re-apply. That is still
                    // exactly-once: with no durable registration the
                    // operation's effects were swept with the crash's
                    // unreachable state only if the decision says so —
                    // Completed with an unregistered client cannot occur
                    // for a correctly ordered client (register is durable
                    // before the first request is sent). Treat as restart.
                    None => Resolution::Restarted { client_id, op_seq },
                }
            }
            _ => Resolution::Restarted { client_id, op_seq },
        };
        self.clear_intent(pid);
        Some(out)
    }

    /// `true` when some pid *outside* `own_band` holds an in-flight intent
    /// for `client_id`. The service checks this **before reading the
    /// client slot at all** (step 1 of the module docs): a hit means the
    /// client's previous request died with a peer whose recovery has not
    /// resolved it yet — applying now could double-apply, so the server
    /// answers a typed `Recovering` error and the client retries after
    /// the healer has run. Conversely, a miss proves the slot quiescent:
    /// [`ResponseTable::resolve`] finalizes (psync) before clearing the
    /// intent, and the state-word load here is an acquire, so a cleared
    /// intent makes the finalized watermark visible to a later lookup.
    pub fn foreign_inflight(&self, client_id: u64, own_band: std::ops::Range<usize>) -> bool {
        (0..nvm::MAX_PROCS).any(|pid| {
            !own_band.contains(&pid) && {
                let s = self.intent(pid);
                s.state.load() == ST_INFLIGHT && s.client_id.load() == client_id
            }
        })
    }

    /// Validation + deterministic healing (exclusive access only — see
    /// [`ResponseTable::attach_excl`]). Torn shapes reachable by a crash of
    /// a correct execution are healed; unreachable shapes fail typed.
    fn validate_heal(&self) -> Result<HealReport, AttachError> {
        let mut report = HealReport::default();
        // -- client slots ---------------------------------------------------
        let mut seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for idx in 0..CLIENT_SLOTS {
            let s = self.client(idx);
            let id = s.id.load();
            if id == 0 || id == TOMBSTONE {
                if s.last_seq.load() != 0 || s.resp.load() != 0 {
                    // Registration tore before the ID stamp persisted but
                    // after response words landed — impossible under the
                    // live ordering (ID is persisted at claim), yet cheap
                    // to heal deterministically: the slot is claimable.
                    s.last_seq.store(0);
                    s.resp.store(0);
                    MappedNvm::pwb(&s.last_seq);
                    MappedNvm::psync();
                    report.torn_clients += 1;
                }
                continue;
            }
            if let Some(&prev) = seen.get(&id) {
                // Duplicate registration (a torn probe chain). Keep the
                // slot with the higher watermark — it supersedes the other
                // by the ack-watermark argument; ties keep the earlier
                // slot, which the probe order reaches first. The dropped
                // slot becomes a TOMBSTONE, not 0: a mid-chain 0 would
                // stop `find` short and orphan every client whose probe
                // chain passed through this slot (it would re-register in
                // the hole with a fresh watermark and be answered `SeqGap`
                // forever after).
                let (keep, drop_) = if self.client(prev).last_seq.load() >= s.last_seq.load() {
                    (prev, idx)
                } else {
                    (idx, prev)
                };
                let d = self.client(drop_);
                d.last_seq.store(0);
                d.resp.store(0);
                MappedNvm::pwb(&d.last_seq);
                MappedNvm::pfence();
                // Residue is durably zero before the tombstone stamp, so a
                // later reclaim starts from a clean watermark.
                d.id.store(TOMBSTONE);
                MappedNvm::pwb(&d.id);
                MappedNvm::psync();
                seen.insert(id, keep);
                report.dup_clients += 1;
            } else {
                seen.insert(id, idx);
            }
        }
        // -- intent slots ---------------------------------------------------
        for pid in 0..nvm::MAX_PROCS {
            let s = self.intent(pid);
            match s.state.load() {
                ST_EMPTY => {}
                ST_INFLIGHT => {
                    let cid = s.client_id.load();
                    if cid == 0 || self.find(cid).is_none() {
                        // In-flight for a client with no durable slot:
                        // nothing to finalize into; clear so the pid's
                        // worker starts clean.
                        self.clear_intent(pid);
                        report.orphan_intents += 1;
                    }
                }
                _ => {
                    // The state word is stamped from 0→1 and cleared 1→0
                    // with barriers; any other value was never written by
                    // this code.
                    return Err(AttachError::CorruptResponseTable {
                        slot: pid,
                        reason: "intent state word is neither empty nor in-flight",
                    });
                }
            }
        }
        Ok(report)
    }

    /// Diagnostic view of pid's in-flight intent:
    /// `(client_id, op_seq, op, arg)`.
    pub fn inflight(&self, pid: usize) -> Option<(u64, u64, u64, u64)> {
        let s = self.intent(pid);
        if s.state.load() != ST_INFLIGHT {
            return None;
        }
        Some((s.client_id.load(), s.op_seq.load(), s.op.load(), s.arg.load()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{res_val, RES_TRUE};

    fn mk(name: &str) -> (Arc<MappedHeap>, ResponseTable) {
        let path =
            std::env::temp_dir().join(format!("isb-resptable-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_file(&path);
        let heap = MappedHeap::create(&path, 1 << 20).unwrap();
        let t = ResponseTable::open(&heap).unwrap();
        (heap, t)
    }

    #[test]
    fn register_lookup_roundtrip() {
        nvm::tid::set_tid(0);
        let (_h, t) = mk("roundtrip");
        let idx = t.register(7).unwrap();
        assert_eq!(t.register(7), Some(idx), "idempotent");
        assert_eq!(t.lookup(7), Some((0, 0)), "fresh watermark");
        assert_eq!(t.lookup(8), None);
        t.begin_op(3, 7, 1, 2, 40);
        assert_eq!(t.inflight(3), Some((7, 1, 2, 40)));
        t.finish_op(3, idx, 1, RES_TRUE);
        assert_eq!(t.inflight(3), None);
        assert_eq!(t.lookup(7), Some((1, RES_TRUE)));
    }

    #[test]
    fn resolve_completed_finalizes_and_restart_clears() {
        nvm::tid::set_tid(0);
        let (_h, t) = mk("resolve");
        let idx = t.register(9).unwrap();
        let _ = idx;
        t.begin_op(5, 9, 4, 5, 0);
        let r = t.resolve(5, Recovered::Completed(res_val(123))).unwrap();
        assert_eq!(r, Resolution::Finalized { client_id: 9, op_seq: 4, resp: res_val(123) });
        assert_eq!(t.lookup(9), Some((4, res_val(123))));
        assert_eq!(t.resolve(5, Recovered::Restart), None, "idempotent");

        t.begin_op(5, 9, 5, 1, 7);
        let r = t.resolve(5, Recovered::Restart).unwrap();
        assert_eq!(r, Resolution::Restarted { client_id: 9, op_seq: 5 });
        assert_eq!(t.lookup(9), Some((4, res_val(123))), "watermark untouched");
    }

    #[test]
    fn foreign_inflight_sees_other_bands_only() {
        nvm::tid::set_tid(0);
        let (_h, t) = mk("foreign");
        t.register(11).unwrap();
        t.begin_op(17, 11, 2, 1, 0);
        assert!(t.foreign_inflight(11, 0..8));
        assert!(!t.foreign_inflight(11, 16..24), "own band excluded");
        assert!(!t.foreign_inflight(12, 0..8), "other clients unaffected");
    }

    /// `n` distinct nonzero IDs sharing one probe start (a forced chain).
    fn colliding_ids(n: usize) -> Vec<u64> {
        let target = ResponseTable::probe_start(1);
        let mut ids = Vec::new();
        let mut id = 1u64;
        while ids.len() < n {
            if ResponseTable::probe_start(id) == target {
                ids.push(id);
            }
            id += 1;
        }
        ids
    }

    #[test]
    fn heal_dup_collapse_keeps_chain_reachable_and_reuses_tombstone() {
        nvm::tid::set_tid(0);
        let (_h, t) = mk("dupchain");
        let ids = colliding_ids(3);
        let (a, b, c) = (ids[0], ids[1], ids[2]);
        let ia = t.register(a).unwrap();
        // Forge the corrupt image healing must cope with: a duplicate
        // registration of `a` in the next slot of its probe chain.
        let dup = (ia + 1) % CLIENT_SLOTS;
        t.client(dup).id.store(a);
        let ib = t.register(b).unwrap();
        assert_eq!(ib, (ia + 2) % CLIENT_SLOTS, "b probed past the duplicate");
        t.finish_op(0, ib, 1, RES_TRUE);
        let report = t.validate_heal().unwrap();
        assert_eq!(report.dup_clients, 1);
        // b's chain passes through the collapsed slot: it must still
        // resolve to its slot and watermark (a zeroed slot would strand b
        // behind a probe terminator and reset its watermark).
        assert_eq!(t.register(b), Some(ib), "chain past the collapsed slot intact");
        assert_eq!(t.lookup(b), Some((1, RES_TRUE)), "watermark survived the heal");
        assert_eq!(t.lookup(a), Some((0, 0)), "kept slot still registered");
        // A new colliding client reclaims the tombstone instead of
        // growing the chain.
        let ic = t.register(c).unwrap();
        assert_eq!(ic, dup, "tombstone reclaimed");
        assert_eq!(t.lookup(c), Some((0, 0)), "clean watermark on reclaim");
        assert_eq!(t.register(b), Some(ib), "chain intact after the reclaim");
    }

    #[test]
    fn table_full_fails_typed_not_silent() {
        nvm::tid::set_tid(0);
        let (_h, t) = mk("full");
        for id in 1..=CLIENT_SLOTS as u64 {
            assert!(t.register(id).is_some());
        }
        assert_eq!(t.register(CLIENT_SLOTS as u64 + 1), None);
        assert!(t.register(5).is_some(), "existing clients still resolve");
    }
}
