//! # `lincheck` — a linearizability checker (Wing–Gong / WGL) with
//! memoisation, plus sequential specifications for sets, queues and stacks.
//!
//! Concurrent stress tests record a **history**: per completed operation,
//! its thread, its invocation and response timestamps (from one global
//! monotone counter) and its response. The checker searches for a
//! linearisation: a total order of the operations that (1) respects the
//! real-time partial order (an operation that responded before another was
//! invoked must precede it) and (2) replays correctly against a sequential
//! specification.
//!
//! The search is the classic Wing–Gong DFS, pruned with the
//! Wing–Gong–Lowe memoisation on `(linearised-set, state)` pairs. The
//! worst case is exponential; keep histories small (≤ ~24 operations, ≤ 64
//! enforced by the bitmask).

#![warn(missing_docs)]

use std::collections::HashSet;
use std::hash::Hash;

/// A sequential specification.
pub trait Spec {
    /// Abstract state.
    type State: Clone + Eq + Hash;
    /// Operation descriptions.
    type Op: Clone + std::fmt::Debug;
    /// Responses.
    type Ret: PartialEq + Clone + std::fmt::Debug;

    /// Initial state.
    fn init(&self) -> Self::State;
    /// Apply `op` to `s`, returning the new state and the response.
    fn apply(&self, s: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret);
}

/// One completed operation in a history.
#[derive(Debug, Clone)]
pub struct OpRec<O, R> {
    /// Executing thread (diagnostics only).
    pub thread: usize,
    /// The operation.
    pub op: O,
    /// Observed response.
    pub ret: R,
    /// Invocation timestamp.
    pub invoked: u64,
    /// Response timestamp (must be > `invoked`).
    pub returned: u64,
}

/// Checks whether `hist` is linearizable with respect to `spec`.
///
/// # Panics
/// If the history holds more than 64 operations.
pub fn is_linearizable<S: Spec>(spec: &S, hist: &[OpRec<S::Op, S::Ret>]) -> bool {
    assert!(hist.len() <= 64, "history too large for the bitmask");
    let n = hist.len();
    if n == 0 {
        return true;
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut seen: HashSet<(u64, S::State)> = HashSet::new();
    let init = spec.init();

    // DFS stack: (mask of linearised ops, state).
    fn dfs<S: Spec>(
        spec: &S,
        hist: &[OpRec<S::Op, S::Ret>],
        mask: u64,
        state: &S::State,
        full: u64,
        seen: &mut HashSet<(u64, S::State)>,
    ) -> bool {
        if mask == full {
            return true;
        }
        if !seen.insert((mask, state.clone())) {
            return false; // configuration already explored
        }
        // Minimal response among the not-yet-linearised operations: only
        // operations invoked before it may linearise next.
        let min_ret = hist
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) == 0)
            .map(|(_, r)| r.returned)
            .min()
            .unwrap();
        for (i, r) in hist.iter().enumerate() {
            if mask & (1 << i) != 0 || r.invoked > min_ret {
                continue;
            }
            let (next, ret) = spec.apply(state, &r.op);
            if ret != r.ret {
                continue;
            }
            if dfs(spec, hist, mask | (1 << i), &next, full, seen) {
                return true;
            }
        }
        false
    }
    dfs(spec, hist, 0, &init, full, &mut seen)
}

/// A global monotone clock for recording histories.
pub mod clock {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CLOCK: AtomicU64 = AtomicU64::new(1);

    /// Next timestamp.
    pub fn now() -> u64 {
        CLOCK.fetch_add(1, Ordering::SeqCst)
    }
}

/// Sequential specifications for the structures in this workspace.
pub mod specs {
    use super::Spec;
    use std::collections::BTreeSet;
    use std::collections::VecDeque;

    /// Set operations.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SetOp {
        /// Insert a key.
        Insert(u64),
        /// Delete a key.
        Delete(u64),
        /// Membership test.
        Find(u64),
    }

    /// A sorted-set specification (list, BST).
    pub struct SetSpec;

    impl Spec for SetSpec {
        type State = BTreeSet<u64>;
        type Op = SetOp;
        type Ret = bool;

        fn init(&self) -> Self::State {
            BTreeSet::new()
        }
        fn apply(&self, s: &Self::State, op: &Self::Op) -> (Self::State, bool) {
            let mut t = s.clone();
            let r = match *op {
                SetOp::Insert(k) => t.insert(k),
                SetOp::Delete(k) => t.remove(&k),
                SetOp::Find(k) => t.contains(&k),
            };
            (t, r)
        }
    }

    /// Queue operations.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum QueueOp {
        /// Enqueue a value.
        Enq(u64),
        /// Dequeue.
        Deq,
    }

    /// FIFO queue specification. Responses: `None` for enqueue acks and
    /// empty dequeues are distinguished by `Some`/`None` on `Deq` only.
    pub struct QueueSpec;

    impl Spec for QueueSpec {
        type State = VecDeque<u64>;
        type Op = QueueOp;
        type Ret = Option<u64>;

        fn init(&self) -> Self::State {
            VecDeque::new()
        }
        fn apply(&self, s: &Self::State, op: &Self::Op) -> (Self::State, Option<u64>) {
            let mut t = s.clone();
            match *op {
                QueueOp::Enq(v) => {
                    t.push_back(v);
                    (t, None)
                }
                QueueOp::Deq => {
                    let r = t.pop_front();
                    (t, r)
                }
            }
        }
    }

    /// Stack operations.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum StackOp {
        /// Push a value.
        Push(u64),
        /// Pop.
        Pop,
    }

    /// LIFO stack specification.
    pub struct StackSpec;

    impl Spec for StackSpec {
        type State = Vec<u64>;
        type Op = StackOp;
        type Ret = Option<u64>;

        fn init(&self) -> Self::State {
            Vec::new()
        }
        fn apply(&self, s: &Self::State, op: &Self::Op) -> (Self::State, Option<u64>) {
            let mut t = s.clone();
            match *op {
                StackOp::Push(v) => {
                    t.push(v);
                    (t, None)
                }
                StackOp::Pop => {
                    let r = t.pop();
                    (t, r)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::specs::*;
    use super::*;

    fn rec<O, R>(thread: usize, op: O, ret: R, invoked: u64, returned: u64) -> OpRec<O, R> {
        OpRec { thread, op, ret, invoked, returned }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(is_linearizable(&SetSpec, &[]));
    }

    #[test]
    fn sequential_correct_history_passes() {
        let h = vec![
            rec(0, SetOp::Insert(1), true, 1, 2),
            rec(0, SetOp::Find(1), true, 3, 4),
            rec(0, SetOp::Delete(1), true, 5, 6),
            rec(0, SetOp::Find(1), false, 7, 8),
        ];
        assert!(is_linearizable(&SetSpec, &h));
    }

    #[test]
    fn sequential_wrong_response_fails() {
        let h = vec![
            rec(0, SetOp::Insert(1), true, 1, 2),
            rec(0, SetOp::Find(1), false, 3, 4), // wrong: 1 is present
        ];
        assert!(!is_linearizable(&SetSpec, &h));
    }

    #[test]
    fn overlapping_ops_may_reorder() {
        // Find(1)=true overlaps the insert: legal (linearise insert first).
        let h = vec![rec(0, SetOp::Insert(1), true, 1, 10), rec(1, SetOp::Find(1), true, 2, 9)];
        assert!(is_linearizable(&SetSpec, &h));
        // But if the find *returned before the insert was invoked*, illegal.
        let h = vec![rec(1, SetOp::Find(1), true, 1, 2), rec(0, SetOp::Insert(1), true, 3, 4)];
        assert!(!is_linearizable(&SetSpec, &h));
    }

    #[test]
    fn real_time_order_is_respected() {
        // Two sequential inserts of the same key cannot both return true...
        let h = vec![rec(0, SetOp::Insert(5), true, 1, 2), rec(1, SetOp::Insert(5), true, 3, 4)];
        assert!(!is_linearizable(&SetSpec, &h));
        // ...unless a delete overlaps both.
        let h = vec![
            rec(0, SetOp::Insert(5), true, 1, 2),
            rec(2, SetOp::Delete(5), true, 1, 6),
            rec(1, SetOp::Insert(5), true, 3, 4),
        ];
        assert!(is_linearizable(&SetSpec, &h));
    }

    #[test]
    fn queue_fifo_violation_detected() {
        let h = vec![
            rec(0, QueueOp::Enq(1), None, 1, 2),
            rec(0, QueueOp::Enq(2), None, 3, 4),
            rec(1, QueueOp::Deq, Some(2), 5, 6), // must have been 1
        ];
        assert!(!is_linearizable(&QueueSpec, &h));
        let h = vec![
            rec(0, QueueOp::Enq(1), None, 1, 2),
            rec(0, QueueOp::Enq(2), None, 3, 4),
            rec(1, QueueOp::Deq, Some(1), 5, 6),
            rec(1, QueueOp::Deq, Some(2), 7, 8),
            rec(1, QueueOp::Deq, None, 9, 10),
        ];
        assert!(is_linearizable(&QueueSpec, &h));
    }

    #[test]
    fn concurrent_enqueues_allow_either_order() {
        let h = vec![
            rec(0, QueueOp::Enq(1), None, 1, 10),
            rec(1, QueueOp::Enq(2), None, 2, 9),
            rec(2, QueueOp::Deq, Some(2), 11, 12),
            rec(2, QueueOp::Deq, Some(1), 13, 14),
        ];
        assert!(is_linearizable(&QueueSpec, &h));
    }

    #[test]
    fn stack_lifo_checked() {
        let h = vec![
            rec(0, StackOp::Push(1), None, 1, 2),
            rec(0, StackOp::Push(2), None, 3, 4),
            rec(1, StackOp::Pop, Some(2), 5, 6),
            rec(1, StackOp::Pop, Some(1), 7, 8),
            rec(1, StackOp::Pop, None, 9, 10),
        ];
        assert!(is_linearizable(&StackSpec, &h));
        let h = vec![
            rec(0, StackOp::Push(1), None, 1, 2),
            rec(0, StackOp::Push(2), None, 3, 4),
            rec(1, StackOp::Pop, Some(1), 5, 6), // LIFO violation
        ];
        assert!(!is_linearizable(&StackSpec, &h));
    }

    #[test]
    fn memoisation_handles_wide_histories() {
        // 2 threads × 10 alternating ops: large but memo-friendly.
        let mut h = Vec::new();
        let mut t = 1;
        for i in 0..10u64 {
            h.push(rec(0, SetOp::Insert(i), true, t, t + 3));
            h.push(rec(1, SetOp::Find(i), i % 2 == 0, t + 1, t + 2));
            t += 4;
        }
        // Find(i) overlaps Insert(i): both answers are legal; odd-i finds
        // return false (linearised before the insert).
        assert!(is_linearizable(&SetSpec, &h));
    }

    #[test]
    fn clock_is_monotone() {
        let a = clock::now();
        let b = clock::now();
        assert!(b > a);
    }
}
