//! Regenerates every table/figure of the paper's evaluation (Section 5 and
//! supplementary material). See DESIGN.md §7 for the experiment index.
//!
//! ```text
//! figures --all                 # every figure, CI-scaled defaults
//! figures --fig fig1a           # one figure
//! figures --paper               # paper-scaled durations/thread counts
//! figures --threads 1,2,4,8    # custom thread sweep
//! figures --dur-ms 300          # per-point duration
//! figures --out results/        # also write CSV files
//! figures --json bench.json     # machine-readable archive of every table
//! ```
//!
//! Algorithms (paper names): `Isb`, `Isb-Opt`, `Capsules`, `Capsules-Opt`,
//! `DT-Opt`, `Harris-LL` (lists); `Isb-Q`, `Log-Queue`, `Capsules-General`,
//! `Capsules-Normal`, `MS-Queue` (queues). Shared-cache figures run with
//! real `clflush`/`mfence` simulation (as in the paper); Figure 4 and the
//! private-cache parts of Figure 7 run under the private-cache model.

use baselines::capsules_list::CapsulesList;
use baselines::capsules_queue::CapsulesQueue;
use baselines::dt_list::DtList;
use baselines::harris::HarrisList;
use baselines::log_queue::LogQueue;
use baselines::ms_queue::MsQueue;
use bench_harness::adapters::{QueueBench, SetBench};
use bench_harness::report::Table;
use bench_harness::workload::{
    prefill_set, run_queue, run_set, run_shard_sweep, Mix, QueueCfg, RunResult, SetCfg,
};
use isb::hashmap::RHashMap;
use isb::list::RList;
use isb::queue::RQueue;
use nvm::{CountingNvm, NoPersist, Persist, RealNvm};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Duration;

struct Opts {
    figs: Vec<String>,
    threads: Vec<usize>,
    dur: Duration,
    out: Option<String>,
    json: Option<String>,
    queue_prefill: u64,
}

fn parse_args() -> Opts {
    let mut figs = Vec::new();
    let mut threads = vec![1, 2, 4, 8];
    let mut dur = Duration::from_millis(250);
    let mut out = None;
    let mut json = None;
    let mut queue_prefill = 100_000;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--all" => figs = ALL_FIGS.iter().map(|s| s.to_string()).collect(),
            "--fig" => figs.push(args.next().expect("--fig <id>")),
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads a,b,c")
                    .split(',')
                    .map(|s| s.parse().expect("thread count"))
                    .collect()
            }
            "--dur-ms" => {
                dur = Duration::from_millis(args.next().expect("--dur-ms n").parse().unwrap())
            }
            "--paper" => {
                threads = vec![1, 2, 4, 8, 16, 32];
                dur = Duration::from_millis(2000);
                queue_prefill = 1_000_000;
            }
            "--out" => out = Some(args.next().expect("--out dir")),
            "--json" => json = Some(args.next().expect("--json <path>")),
            "--help" | "-h" => {
                println!(
                    "figures [--all|--fig id]* [--paper] [--threads l] [--dur-ms n] [--out dir] \
                     [--json path]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    if figs.is_empty() {
        figs = ALL_FIGS.iter().map(|s| s.to_string()).collect();
    }
    Opts { figs, threads, dur, out, json, queue_prefill }
}

const ALL_FIGS: &[&str] = &[
    "fig1a", "fig1b", "fig1c", "fig1d", "fig1e", "fig1f", "fig3", "fig4", "fig5", "fig6", "fig7",
    "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
];

/// The list algorithms of the figures, by paper name.
fn make_list<M: Persist>(name: &str) -> Arc<dyn SetBench> {
    match name {
        "Isb" => Arc::new(RList::<M, 0>::new()),
        "Isb-Opt" => Arc::new(RList::<M, 1>::new()),
        "Capsules" => Arc::new(CapsulesList::<M, false>::new()),
        "Capsules-Opt" => Arc::new(CapsulesList::<M, true>::new()),
        "DT-Opt" => Arc::new(DtList::<M>::new()),
        "Harris-LL" => Arc::new(HarrisList::<M>::new()),
        _ => panic!("unknown list algorithm {name}"),
    }
}

fn make_queue<M: Persist>(name: &str) -> Arc<dyn QueueBench> {
    match name {
        "Isb-Q" => Arc::new(RQueue::<M, 1>::new()),
        "Log-Queue" => Arc::new(LogQueue::<M>::new()),
        "Capsules-General" => Arc::new(CapsulesQueue::<M, false>::new()),
        "Capsules-Normal" => Arc::new(CapsulesQueue::<M, true>::new()),
        "MS-Queue" => Arc::new(MsQueue::<M>::new()),
        _ => panic!("unknown queue algorithm {name}"),
    }
}

const SHARED_LIST_ALGOS: &[&str] = &["Isb", "Isb-Opt", "Capsules", "Capsules-Opt", "DT-Opt"];
const PRIVATE_LIST_ALGOS: &[&str] =
    &["Isb", "Isb-Opt", "Capsules", "Capsules-Opt", "DT-Opt", "Harris-LL"];

fn run_list_point<M: Persist>(
    algo: &str,
    threads: usize,
    range: u64,
    mix: Mix,
    dur: Duration,
) -> RunResult {
    let s = make_list::<M>(algo);
    prefill_set(&*s, range, 7);
    nvm::stats::reset();
    run_set(s, SetCfg { threads, key_range: range, mix, duration: dur, seed: 42 })
}

struct Ctx {
    threads: Vec<usize>,
    dur: Duration,
    out: Option<String>,
    json: Option<String>,
    /// Per-table JSON objects accumulated for the `--json` archive.
    collected: RefCell<Vec<String>>,
    queue_prefill: u64,
}

impl Ctx {
    fn emit(&self, id: &str, t: &Table) {
        println!("{}", t.to_markdown());
        if let Some(dir) = &self.out {
            std::fs::create_dir_all(dir).unwrap();
            std::fs::write(format!("{dir}/{id}.csv"), t.to_csv()).unwrap();
        }
        if self.json.is_some() {
            self.collected.borrow_mut().push(t.to_json(id));
        }
    }

    /// Throughput sweep over threads for one (range, mix) — Figures 1a/d/e/f, 3.
    fn list_throughput(&self, id: &str, title: &str, range: u64, mix: Mix) {
        let mut t = Table::new(
            format!("{title} (Mops/s; keys [1,{range}])"),
            SHARED_LIST_ALGOS.iter().map(|s| s.to_string()).collect(),
        );
        for &n in &self.threads {
            let vals = SHARED_LIST_ALGOS
                .iter()
                .map(|a| run_list_point::<RealNvm>(a, n, range, mix, self.dur).mops())
                .collect();
            t.row(n.to_string(), vals);
        }
        self.emit(id, &t);
    }

    /// Persistency-instruction counts per op — Figures 1b/1c/5/6.
    fn list_counts(&self, id: &str, title: &str, ranges: &[u64], mix: Mix) {
        for &range in ranges {
            let mut tb = Table::new(
                format!("{title}: pbarriers/op (keys [1,{range}])"),
                SHARED_LIST_ALGOS.iter().map(|s| s.to_string()).collect(),
            );
            let mut tf = Table::new(
                format!("{title}: stand-alone flushes/op (keys [1,{range}])"),
                SHARED_LIST_ALGOS.iter().map(|s| s.to_string()).collect(),
            );
            for &n in &self.threads {
                let results: Vec<RunResult> = SHARED_LIST_ALGOS
                    .iter()
                    .map(|a| run_list_point::<RealNvm>(a, n, range, mix, self.dur))
                    .collect();
                tb.row(n.to_string(), results.iter().map(|r| r.barriers_per_op()).collect());
                tf.row(n.to_string(), results.iter().map(|r| r.flushes_per_op()).collect());
            }
            self.emit(&format!("{id}_barriers_{range}"), &tb);
            self.emit(&format!("{id}_flushes_{range}"), &tf);
        }
    }

    /// Private-cache model throughput — Figure 4.
    fn fig4(&self) {
        for (mix, label) in
            [(Mix::READ_INTENSIVE, "read-intensive"), (Mix::UPDATE_INTENSIVE, "update-intensive")]
        {
            for range in [500u64, 1500] {
                let mut t = Table::new(
                    format!(
                        "Figure 4: private-cache throughput, {label} (Mops/s; keys [1,{range}])"
                    ),
                    PRIVATE_LIST_ALGOS.iter().map(|s| s.to_string()).collect(),
                );
                for &n in &self.threads {
                    let vals = PRIVATE_LIST_ALGOS
                        .iter()
                        .map(|a| run_list_point::<NoPersist>(a, n, range, mix, self.dur).mops())
                        .collect();
                    t.row(n.to_string(), vals);
                }
                self.emit(&format!("fig4_{label}_{range}"), &t);
            }
        }
    }

    /// Queue throughput — Figure 7 (left: shared cache; middle/right: private).
    fn fig7(&self) {
        let shared = ["Isb-Q", "Log-Queue", "Capsules-General", "Capsules-Normal"];
        let mut t = Table::new(
            "Figure 7 (left): queue throughput, shared cache (Mops/s)",
            shared.iter().map(|s| s.to_string()).collect(),
        );
        for &n in &self.threads {
            let vals = shared
                .iter()
                .map(|a| {
                    let q = make_queue::<RealNvm>(a);
                    nvm::stats::reset();
                    run_queue(
                        q,
                        QueueCfg { threads: n, prefill: self.queue_prefill, duration: self.dur },
                    )
                    .mops()
                })
                .collect();
            t.row(n.to_string(), vals);
        }
        self.emit("fig7_shared", &t);

        let private = ["Isb-Q", "Log-Queue", "Capsules-General", "Capsules-Normal", "MS-Queue"];
        let mut t = Table::new(
            "Figure 7 (middle+right): queue throughput, private cache (Mops/s)",
            private.iter().map(|s| s.to_string()).collect(),
        );
        for &n in &self.threads {
            let vals = private
                .iter()
                .map(|a| {
                    let q = make_queue::<NoPersist>(a);
                    run_queue(
                        q,
                        QueueCfg { threads: n, prefill: self.queue_prefill, duration: self.dur },
                    )
                    .mops()
                })
                .collect();
            t.row(n.to_string(), vals);
        }
        self.emit("fig7_private", &t);
    }

    /// Sharded hash map shard sweep — Figure 8 (beyond the paper): RHashMap
    /// throughput per shard count, plus the hand-tuned placement at the
    /// default shard count. A single-shard map is exactly the Isb list, so
    /// the leftmost column doubles as the unsharded baseline.
    fn fig8(&self) {
        const SHARDS: &[usize] = &[1, 4, 16, 64];
        let range = 4096u64;
        for (mix, label) in
            [(Mix::READ_INTENSIVE, "read-intensive"), (Mix::UPDATE_INTENSIVE, "update-intensive")]
        {
            let mut cols: Vec<String> = SHARDS.iter().map(|s| format!("Isb-HM/{s}")).collect();
            cols.push("Isb-HM-Opt/16".to_string());
            let mut t = Table::new(
                format!("Figure 8: hash-map shard sweep, {label} (Mops/s; keys [1,{range}])"),
                cols,
            );
            for &n in &self.threads {
                let cfg =
                    SetCfg { threads: n, key_range: range, mix, duration: self.dur, seed: 42 };
                let mut vals: Vec<f64> = run_shard_sweep(
                    |s| {
                        nvm::stats::reset();
                        Arc::new(RHashMap::<RealNvm, 0>::with_shards(s))
                    },
                    SHARDS,
                    cfg,
                )
                .into_iter()
                .map(|(_, r)| r.mops())
                .collect();
                let opt = {
                    nvm::stats::reset();
                    let m = Arc::new(RHashMap::<RealNvm, 1>::with_shards(16));
                    prefill_set(&*m, range, 43);
                    run_set(m, cfg).mops()
                };
                vals.push(opt);
                t.row(n.to_string(), vals);
            }
            self.emit(&format!("fig8_{label}"), &t);
        }
    }

    /// Hot-path allocation ablation — Figure 9 (beyond the paper): pooled
    /// (epoch-recycled descriptor/node pools, the default) vs boxed
    /// (fresh heap allocation per descriptor/node, the pre-pool behaviour),
    /// on the default read-heavy mix.
    ///
    /// Throughput runs under the **counting** model: the persistency
    /// placement is identical by construction (asserted by the persists
    /// table below and the `persist_placement` golden test), so executing
    /// real `clflush`es would only add a constant that masks the allocator
    /// effect being measured — and makes the numbers hardware-dependent. A
    /// RealNvm pair is emitted alongside for the end-to-end picture.
    fn fig9(&self) {
        let range = 500u64;
        let mix = Mix::READ_INTENSIVE;

        // One (pooled, boxed) pair of runs per thread count and model.
        struct Pair {
            pooled: RunResult,
            boxed: RunResult,
            pooled_reuse_per_op: f64,
        }
        fn pair_for<M: Persist>(threads: usize, range: u64, mix: Mix, dur: Duration) -> Pair {
            let cfg = SetCfg { threads, key_range: range, mix, duration: dur, seed: 42 };
            let (pooled, reused) = {
                let s = Arc::new(RList::<M, 0>::new());
                prefill_set(&*s, range, 7);
                // Snapshot AFTER prefill so reuses/op relates the timed
                // run's reuses to the timed run's operations only.
                let reuse0 = isb::counters::info_reuses() + isb::counters::node_reuses();
                nvm::stats::reset();
                let r = run_set(s, cfg);
                (r, isb::counters::info_reuses() + isb::counters::node_reuses() - reuse0)
            };
            let boxed = {
                let s = Arc::new(RList::<M, 0>::boxed());
                prefill_set(&*s, range, 7);
                nvm::stats::reset();
                run_set(s, cfg)
            };
            Pair { pooled, boxed, pooled_reuse_per_op: reused as f64 / pooled.ops.max(1) as f64 }
        }

        let cols = |what: &str| vec![format!("Isb-pooled {what}"), format!("Isb-boxed {what}")];
        let mut t_tp = Table::new(
            format!("Figure 9: pooled vs boxed list throughput, counting model (Mops/s; keys [1,{range}], read-heavy)"),
            cols("Mops/s"),
        );
        let mut t_real = Table::new(
            format!("Figure 9: pooled vs boxed list throughput, real flushes (Mops/s; keys [1,{range}], read-heavy)"),
            cols("Mops/s"),
        );
        let mut t_persist = Table::new(
            "Figure 9: persistency instructions per op (must be identical pooled vs boxed)"
                .to_string(),
            vec![
                "pooled pbarrier/op".into(),
                "boxed pbarrier/op".into(),
                "pooled pwb/op".into(),
                "boxed pwb/op".into(),
                "pooled psync/op".into(),
                "boxed psync/op".into(),
            ],
        );
        let mut t_reuse = Table::new(
            "Figure 9: pool reuses per operation (info + node; counting model)".to_string(),
            vec!["reuses/op".into()],
        );
        for &n in &self.threads {
            let c = pair_for::<CountingNvm>(n, range, mix, self.dur);
            t_tp.row(n.to_string(), vec![c.pooled.mops(), c.boxed.mops()]);
            t_persist.row(
                n.to_string(),
                vec![
                    c.pooled.barriers_per_op(),
                    c.boxed.barriers_per_op(),
                    c.pooled.flushes_per_op(),
                    c.boxed.flushes_per_op(),
                    c.pooled.psyncs_per_op(),
                    c.boxed.psyncs_per_op(),
                ],
            );
            t_reuse.row(n.to_string(), vec![c.pooled_reuse_per_op]);
            let r = pair_for::<RealNvm>(n, range, mix, self.dur);
            t_real.row(n.to_string(), vec![r.pooled.mops(), r.boxed.mops()]);
        }
        self.emit("fig9_list", &t_tp);
        self.emit("fig9_list_real", &t_real);
        self.emit("fig9_persists", &t_persist);
        self.emit("fig9_reuse", &t_reuse);

        // Map arm: pooled vs boxed RHashMap/16 under the counting model.
        let mut t_map = Table::new(
            "Figure 9: pooled vs boxed hash-map throughput, counting model (Mops/s; 16 shards, keys [1,4096], read-heavy)".to_string(),
            vec!["Isb-HM/16-pooled".into(), "Isb-HM/16-boxed".into()],
        );
        for &n in &self.threads {
            let cfg = SetCfg { threads: n, key_range: 4096, mix, duration: self.dur, seed: 42 };
            let pooled = {
                let m = Arc::new(RHashMap::<CountingNvm, 0>::with_shards(16));
                prefill_set(&*m, 4096, 7);
                nvm::stats::reset();
                run_set(m, cfg)
            };
            let boxed = {
                let m = Arc::new(RHashMap::<CountingNvm, 0>::boxed_with_shards(16));
                prefill_set(&*m, 4096, 7);
                nvm::stats::reset();
                run_set(m, cfg)
            };
            t_map.row(n.to_string(), vec![pooled.mops(), boxed.mops()]);
        }
        self.emit("fig9_map", &t_map);
    }

    /// Mapped-backend attach latency + throughput — Figure 10 (beyond the
    /// paper): how expensive is a *real* cross-process restart (remap +
    /// Op-Recover replay + scrub + census/sweep) as the store grows, and
    /// what running over a file-backed arena costs at runtime versus the
    /// same structure on the process heap.
    fn fig10(&self) {
        use isb::hashmap::RHashMap as HM;
        use nvm::MappedNvm;
        use std::time::Instant;

        nvm::tid::set_tid(nvm::MAX_PROCS - 1);
        let dir = std::env::temp_dir().join(format!("isb_fig10_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Attach latency vs store size (fresh process ≈ detach + re-attach).
        let mut t_attach = Table::new(
            "Figure 10: mapped-backend attach latency vs store size (16 shards, 64 MiB heap)"
                .to_string(),
            vec![
                "fill ms".into(),
                "attach ms".into(),
                "committed blocks".into(),
                "swept blocks".into(),
            ],
        );
        for &n in &[1_000u64, 10_000, 50_000] {
            let path = dir.join(format!("attach_{n}.heap"));
            let _ = std::fs::remove_file(&path);
            let t0 = Instant::now();
            {
                let (map, _) = HM::<MappedNvm, 0>::attach(&path, 16).unwrap();
                for k in 1..=n {
                    map.insert(nvm::MAX_PROCS - 1, k);
                }
            }
            let fill_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            let (map, summary) = HM::<MappedNvm, 0>::attach(&path, 16).unwrap();
            let attach_ms = t1.elapsed().as_secs_f64() * 1e3;
            t_attach.row(
                n.to_string(),
                vec![fill_ms, attach_ms, summary.heap.committed as f64, summary.swept as f64],
            );
            drop(map);
            let _ = std::fs::remove_file(&path);
        }
        self.emit("fig10_attach", &t_attach);

        // Runtime throughput: mapped arena vs process heap, same structure,
        // same RealNvm-style flush behaviour.
        let range = 4096u64;
        let mut t_tp = Table::new(
            format!(
                "Figure 10: mapped vs in-heap hash-map throughput (Mops/s; 16 shards, \
                 keys [1,{range}], read-heavy)"
            ),
            vec!["Isb-HM/16-mapped".into(), "Isb-HM/16-heap".into()],
        );
        for &threads in &self.threads {
            let cfg = SetCfg {
                threads,
                key_range: range,
                mix: Mix::READ_INTENSIVE,
                duration: self.dur,
                seed: 42,
            };
            let mapped = {
                let path = dir.join(format!("tp_{threads}.heap"));
                let _ = std::fs::remove_file(&path);
                let (map, _) = HM::<MappedNvm, 0>::attach(&path, 16).unwrap();
                let map = Arc::new(map);
                prefill_set(&*map, range, 7);
                nvm::stats::reset();
                let r = run_set(map, cfg);
                let _ = std::fs::remove_file(&path);
                r
            };
            let heap = {
                let m = Arc::new(HM::<RealNvm, 0>::with_shards(16));
                prefill_set(&*m, range, 7);
                nvm::stats::reset();
                run_set(m, cfg)
            };
            t_tp.row(threads.to_string(), vec![mapped.mops(), heap.mops()]);
        }
        self.emit("fig10_throughput", &t_tp);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Multi-structure store — Figure 11 (beyond the paper): what the
    /// catalog layer costs. (a) store attach latency as the number of
    /// cataloged structures grows (the union census/sweep walks every
    /// entry's live set), (b) per-structure throughput when a map and a
    /// queue share ONE heap versus each owning a dedicated heap (shared
    /// bump allocator + shared recovery area vs private ones).
    fn fig11(&self) {
        use isb::store::Store;
        use nvm::MappedNvm;
        use std::time::Instant;

        nvm::tid::set_tid(nvm::MAX_PROCS - 1);
        let pid = nvm::MAX_PROCS - 1;
        let dir = std::env::temp_dir().join(format!("isb_fig11_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // (a) Attach latency vs catalog entries (4k-key map per entry).
        let keys_per_entry = 4_000u64;
        let mut t_attach = Table::new(
            format!(
                "Figure 11: store attach latency vs catalog entries \
                 ({keys_per_entry} keys per entry, 8 shards each, 64 MiB heap)"
            ),
            vec![
                "fill ms".into(),
                "attach ms".into(),
                "committed blocks".into(),
                "swept blocks".into(),
            ],
        );
        for &n in &[1usize, 2, 4, 8] {
            let path = dir.join(format!("attach_{n}.heap"));
            let _ = std::fs::remove_file(&path);
            let t0 = Instant::now();
            {
                let store = Store::open(&path).unwrap();
                for e in 0..n {
                    let m = store.hashmap::<0>(&format!("m{e}"), 8).unwrap();
                    for k in 1..=keys_per_entry {
                        m.insert(pid, k);
                    }
                }
            }
            let fill_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            let store = Store::open(&path).unwrap();
            let attach_ms = t1.elapsed().as_secs_f64() * 1e3;
            let s = store.summary();
            t_attach.row(
                n.to_string(),
                vec![fill_ms, attach_ms, s.heap.committed as f64, s.swept as f64],
            );
            drop(store);
            let _ = std::fs::remove_file(&path);
        }
        self.emit("fig11_attach", &t_attach);

        // (b) Shared vs dedicated heap throughput, per structure.
        let range = 4096u64;
        let mut t_tp = Table::new(
            format!(
                "Figure 11: shared-heap (store) vs dedicated-heap throughput \
                 (Mops/s; map: 16 shards, keys [1,{range}], read-heavy; queue: 10k prefill)"
            ),
            vec![
                "map shared".into(),
                "map dedicated".into(),
                "queue shared".into(),
                "queue dedicated".into(),
            ],
        );
        for &threads in &self.threads {
            let cfg = SetCfg {
                threads,
                key_range: range,
                mix: Mix::READ_INTENSIVE,
                duration: self.dur,
                seed: 42,
            };
            let qcfg = QueueCfg { threads, prefill: 10_000, duration: self.dur };
            let (map_shared, queue_shared) = {
                let path = dir.join(format!("shared_{threads}.heap"));
                let _ = std::fs::remove_file(&path);
                let store = Store::open(&path).unwrap();
                let m = store.hashmap::<0>("users", 16).unwrap();
                let q = store.queue::<0>("jobs").unwrap();
                prefill_set(&*m, range, 7);
                nvm::stats::reset();
                let rm = run_set(Arc::clone(&m), cfg);
                nvm::stats::reset();
                let rq = run_queue(Arc::clone(&q), qcfg);
                drop((m, q, store));
                let _ = std::fs::remove_file(&path);
                (rm.mops(), rq.mops())
            };
            let map_dedicated = {
                let path = dir.join(format!("ded_map_{threads}.heap"));
                let _ = std::fs::remove_file(&path);
                let (map, _) = RHashMap::<MappedNvm, 0>::attach(&path, 16).unwrap();
                let map = Arc::new(map);
                prefill_set(&*map, range, 7);
                nvm::stats::reset();
                let r = run_set(map, cfg);
                let _ = std::fs::remove_file(&path);
                r.mops()
            };
            let queue_dedicated = {
                let path = dir.join(format!("ded_q_{threads}.heap"));
                let _ = std::fs::remove_file(&path);
                let (q, _) = RQueue::<MappedNvm, 0>::attach(&path).unwrap();
                nvm::stats::reset();
                let r = run_queue(Arc::new(q), qcfg);
                let _ = std::fs::remove_file(&path);
                r.mops()
            };
            t_tp.row(
                threads.to_string(),
                vec![map_shared, map_dedicated, queue_shared, queue_dedicated],
            );
        }
        self.emit("fig11_throughput", &t_tp);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flush-coalescing tuning arms — Figure 12 (beyond the paper, PR 6):
    /// the full arm ladder (`Isb` → `Isb-Opt` → `Isb-Coal` → `Isb-LP`) on
    /// the sharded hash map and the queue, under both the counting model
    /// (pwb-equivalents, elided write-backs and drained lines per op — the
    /// hardware-independent placement picture) and real flushes (Mops/s —
    /// what the saved `clflush`/`psync` traffic buys end-to-end).
    fn fig12(&self) {
        const ARM_NAMES: &[&str] = &["Isb", "Isb-Opt", "Isb-Coal", "Isb-LP"];
        fn map_for<M: Persist>(arm: u8) -> Arc<dyn SetBench> {
            match arm {
                0 => Arc::new(RHashMap::<M, 0>::with_shards(16)),
                1 => Arc::new(RHashMap::<M, 1>::with_shards(16)),
                2 => Arc::new(RHashMap::<M, 2>::with_shards(16)),
                _ => Arc::new(RHashMap::<M, 3>::with_shards(16)),
            }
        }
        fn queue_for<M: Persist>(arm: u8) -> Arc<dyn QueueBench> {
            match arm {
                0 => Arc::new(RQueue::<M, 0>::new()),
                1 => Arc::new(RQueue::<M, 1>::new()),
                2 => Arc::new(RQueue::<M, 2>::new()),
                _ => Arc::new(RQueue::<M, 3>::new()),
            }
        }
        let arm_cols = || ARM_NAMES.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let coal_cols = |what: &str| vec![format!("Isb-Coal {what}"), format!("Isb-LP {what}")];

        // Map: update-intensive (the arms tune the mutating hot path).
        let range = 4096u64;
        let mix = Mix::UPDATE_INTENSIVE;
        let mut t_pwb = Table::new(
            format!("Figure 12: hash-map pwb-equivalents/op by tuning arm (counting model; 16 shards, keys [1,{range}], update-intensive)"),
            arm_cols(),
        );
        let mut t_coal = Table::new(
            "Figure 12: hash-map coalescing traffic per op (counting model)".to_string(),
            [coal_cols("elided/op"), coal_cols("drained/op")].concat(),
        );
        let mut t_real = Table::new(
            format!("Figure 12: hash-map throughput by tuning arm, real flushes (Mops/s; 16 shards, keys [1,{range}], update-intensive)"),
            arm_cols(),
        );
        for &n in &self.threads {
            let cfg = SetCfg { threads: n, key_range: range, mix, duration: self.dur, seed: 42 };
            let counting: Vec<RunResult> = (0u8..4)
                .map(|arm| {
                    let m = map_for::<CountingNvm>(arm);
                    prefill_set(&*m, range, 7);
                    nvm::stats::reset();
                    run_set(m, cfg)
                })
                .collect();
            t_pwb.row(n.to_string(), counting.iter().map(|r| r.flushes_per_op()).collect());
            t_coal.row(
                n.to_string(),
                vec![
                    counting[2].elided_per_op(),
                    counting[3].elided_per_op(),
                    counting[2].coalesced_per_op(),
                    counting[3].coalesced_per_op(),
                ],
            );
            let real: Vec<f64> = (0u8..4)
                .map(|arm| {
                    let m = map_for::<RealNvm>(arm);
                    prefill_set(&*m, range, 7);
                    nvm::stats::reset();
                    run_set(m, cfg).mops()
                })
                .collect();
            t_real.row(n.to_string(), real);
        }
        self.emit("fig12_map_pwb", &t_pwb);
        self.emit("fig12_map_coal", &t_coal);
        self.emit("fig12_map_real", &t_real);

        // Queue: same ladder; the LP arm also merges a whole psync on
        // enqueue, so the psync column is reported alongside.
        let mut t_pwb = Table::new(
            "Figure 12: queue pwb-equivalents/op by tuning arm (counting model)".to_string(),
            arm_cols(),
        );
        let mut t_psync = Table::new(
            "Figure 12: queue psyncs/op by tuning arm (counting model)".to_string(),
            arm_cols(),
        );
        let mut t_coal = Table::new(
            "Figure 12: queue coalescing traffic per op (counting model)".to_string(),
            [coal_cols("elided/op"), coal_cols("drained/op")].concat(),
        );
        let mut t_real = Table::new(
            "Figure 12: queue throughput by tuning arm, real flushes (Mops/s)".to_string(),
            arm_cols(),
        );
        for &n in &self.threads {
            let qcfg = QueueCfg { threads: n, prefill: self.queue_prefill, duration: self.dur };
            let counting: Vec<RunResult> = (0u8..4)
                .map(|arm| {
                    let q = queue_for::<CountingNvm>(arm);
                    nvm::stats::reset();
                    run_queue(q, qcfg)
                })
                .collect();
            t_pwb.row(n.to_string(), counting.iter().map(|r| r.flushes_per_op()).collect());
            t_psync.row(n.to_string(), counting.iter().map(|r| r.psyncs_per_op()).collect());
            t_coal.row(
                n.to_string(),
                vec![
                    counting[2].elided_per_op(),
                    counting[3].elided_per_op(),
                    counting[2].coalesced_per_op(),
                    counting[3].coalesced_per_op(),
                ],
            );
            let real: Vec<f64> = (0u8..4)
                .map(|arm| {
                    let q = queue_for::<RealNvm>(arm);
                    nvm::stats::reset();
                    run_queue(q, qcfg).mops()
                })
                .collect();
            t_real.row(n.to_string(), real);
        }
        self.emit("fig12_queue_pwb", &t_pwb);
        self.emit("fig12_queue_psync", &t_psync);
        self.emit("fig12_queue_coal", &t_coal);
        self.emit("fig12_queue_real", &t_real);
    }

    /// Production-scale heap — Figure 13 (beyond the paper, PR 7): what the
    /// multi-segment arena, the sharded allocator and the parallel attach
    /// pipeline buy. (a) Attach wall-clock vs live keys with 1 vs 4 attach
    /// worker threads (the heap starts at 4 MiB and grows segments under the
    /// fill, so segment remapping is part of every measured attach); (b) an
    /// alloc/free microbench of the legacy single-mutex allocator vs the
    /// sharded per-thread free lists; (c) the new observability counters for
    /// each arm. On a single-vCPU host the 4-thread attach shows scheduling
    /// overhead, not speedup — see `bench_results/README.md`.
    fn fig13(&self) {
        use isb::hashmap::RHashMap as HM;
        use nvm::mapped::MappedHeap;
        use nvm::MappedNvm;
        use std::time::Instant;

        nvm::tid::set_tid(nvm::MAX_PROCS - 1);
        let pid = nvm::MAX_PROCS - 1;
        let dir = std::env::temp_dir().join(format!("isb_fig13_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let initial_bytes = 1 << 22; // 4 MiB: every fill below grows the heap
        let shards = 64;

        // (a) Attach latency vs live keys, sequential vs 4 attach threads.
        let mut t_attach = Table::new(
            format!(
                "Figure 13: mapped attach wall-clock vs live keys, 1 vs 4 attach threads \
                 ({shards} shards, {initial_bytes}-byte initial segment, grown under fill)"
            ),
            vec![
                "attach ms (1 thread)".into(),
                "attach ms (4 threads)".into(),
                "parallel-phase ms (4t)".into(),
                "committed blocks".into(),
                "segments".into(),
            ],
        );
        for &n in &[10_000u64, 65_536, 262_144] {
            let path = dir.join(format!("attach_{n}.heap"));
            let _ = std::fs::remove_file(&path);
            {
                let (map, _) =
                    HM::<MappedNvm, 0>::attach_sized(&path, shards, initial_bytes).unwrap();
                for k in 1..=n {
                    map.insert(pid, k);
                }
            }
            let mut attach_ms = [0.0f64; 2];
            let mut par_ms = 0.0;
            let mut committed = 0usize;
            let mut segments = 0usize;
            for (i, &threads) in [1usize, 4].iter().enumerate() {
                nvm::mapped::set_attach_threads(threads);
                let before = nvm::stats::snapshot();
                let t0 = Instant::now();
                let (map, summary) =
                    HM::<MappedNvm, 0>::attach_sized(&path, shards, initial_bytes).unwrap();
                attach_ms[i] = t0.elapsed().as_secs_f64() * 1e3;
                if threads == 4 {
                    par_ms = nvm::stats::snapshot().since(&before).attach_par_ms as f64;
                }
                committed = summary.heap.committed;
                segments = summary.heap.segments;
                drop(map);
            }
            nvm::mapped::set_attach_threads(0);
            t_attach.row(
                n.to_string(),
                vec![attach_ms[0], attach_ms[1], par_ms, committed as f64, segments as f64],
            );
            let _ = std::fs::remove_file(&path);
        }
        self.emit("fig13_attach", &t_attach);

        // (b)+(c) Allocator microbench: alloc/free pairs per second through
        // the legacy global-mutex path vs the sharded per-thread free lists,
        // with the counters that explain the difference. Blocks are 64-byte
        // payloads (one granule — the node size class).
        let mut t_alloc = Table::new(
            "Figure 13: persistent-arena allocator, global mutex vs sharded free lists \
             (alloc+free pairs, Mops/s)"
                .to_string(),
            vec!["mutex".into(), "sharded".into()],
        );
        let mut t_ctr = Table::new(
            "Figure 13: allocator/attach observability counters for the sharded arm \
             (per whole run)"
                .to_string(),
            vec![
                "heap_allocs".into(),
                "free_list_hits".into(),
                "slab_refills".into(),
                "segments_grown".into(),
            ],
        );
        for &threads in &self.threads {
            let per = 100_000usize;
            let mut mops = [0.0f64; 2];
            for (i, sharded) in [false, true].into_iter().enumerate() {
                let path = dir.join(format!("alloc_{threads}_{sharded}.heap"));
                let _ = std::fs::remove_file(&path);
                let heap = MappedHeap::create(&path, initial_bytes).unwrap();
                heap.set_use_sharded(sharded);
                let before = nvm::stats::snapshot();
                let t0 = Instant::now();
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let heap = &heap;
                        s.spawn(move || {
                            nvm::tid::set_tid(t);
                            for j in 0..per {
                                let p = heap.alloc(64).unwrap();
                                heap.commit(p);
                                // Keep every 8th block: pure alloc/free of
                                // one address would serialize on one line.
                                if j % 8 != 0 {
                                    // SAFETY: freshly committed, exclusively
                                    // owned, never referenced.
                                    unsafe { heap.free(p) };
                                }
                            }
                        });
                    }
                });
                mops[i] = (threads * per) as f64 / t0.elapsed().as_secs_f64() / 1e6;
                if sharded {
                    let d = nvm::stats::snapshot().since(&before);
                    t_ctr.row(
                        threads.to_string(),
                        vec![
                            d.heap_allocs as f64,
                            d.free_list_hits as f64,
                            d.slab_refills as f64,
                            d.segments_grown as f64,
                        ],
                    );
                }
                drop(heap);
                let _ = std::fs::remove_file(&path);
            }
            t_alloc.row(threads.to_string(), vec![mops[0], mops[1]]);
        }
        self.emit("fig13_alloc", &t_alloc);
        self.emit("fig13_counters", &t_ctr);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Live peer kill — Figure 14 (beyond the paper, PR 8): the service-level
    /// cost of losing one of two live processes sharing a heap. The parent
    /// hammers the shared map in 10 ms buckets while a child process (same
    /// binary, `ISB_FIG14_CHILD`) hammers it too; mid-run the child is
    /// SIGKILLed and the parent's healer thread detects the dead pid, claims
    /// the recovery lease, replays the dead band, releases its epoch pins and
    /// frees the slot — all while the parent's workload thread keeps serving.
    /// Reported per store size: steady-state vs dip vs post-recovery
    /// throughput, detection and recovery latency, and the recovery counters
    /// (`peers_recovered` / `leases_stolen` / `epoch_stalls`).
    fn fig14(&self) {
        use isb::store::Store;
        use nvm::mapped::MappedHeap;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::Instant;

        const BUCKET: Duration = Duration::from_millis(10);
        const PRE: Duration = Duration::from_millis(150);
        const POST: Duration = Duration::from_millis(150);
        const CAP: Duration = Duration::from_secs(5);

        let dir = std::env::temp_dir().join(format!("isb_fig14_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut t_tp = Table::new(
            "Figure 14: throughput across a live peer SIGKILL (16 shards, 64 MiB shared heap, \
             parent + 1 child, 10 ms buckets)"
                .to_string(),
            vec![
                "baseline Mops/s".into(),
                "dip Mops/s".into(),
                "dip %".into(),
                "post Mops/s".into(),
                "detect ms".into(),
                "recover ms".into(),
            ],
        );
        let mut t_ctr = Table::new(
            "Figure 14: online-recovery counters (parent process, per run)".to_string(),
            vec!["peers_recovered".into(), "leases_stolen".into(), "epoch_stalls".into()],
        );
        for &keys in &[1_000u64, 10_000, 50_000] {
            let path = dir.join(format!("kill_{keys}.heap"));
            let _ = std::fs::remove_file(&path);
            let ready = dir.join(format!("ready_{keys}"));

            nvm::tid::set_tid(0);
            let store =
                Arc::new(Store::open_shared_sized(&path, FIG14_HEAP_BYTES).expect("parent open"));
            let slot = store.heap().my_participant().expect("parent slot");
            let band = MappedHeap::tid_band(slot);
            nvm::tid::set_tid(band.start);
            let map = store.hashmap::<0>("users", 16).expect("users");
            for k in 1..=keys {
                map.insert(band.start, k);
            }

            let mut child = std::process::Command::new(std::env::current_exe().unwrap())
                .env("ISB_FIG14_CHILD", &dir)
                .env("ISB_FIG14_HEAP", &path)
                .env("ISB_FIG14_READY", &ready)
                .env("ISB_FIG14_KEYS", keys.to_string())
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .spawn()
                .expect("spawn fig14 child");
            while !ready.exists() {
                std::thread::sleep(Duration::from_millis(1));
            }

            // detect/done instants as nanos-from-t0 (0 = not yet).
            let detect_ns = AtomicU64::new(0);
            let done_ns = AtomicU64::new(0);
            let s0 = nvm::stats::snapshot();
            let t0 = Instant::now();
            let mut buckets: Vec<u64> = Vec::new();
            std::thread::scope(|s| {
                let healer = {
                    let store = Arc::clone(&store);
                    let (detect_ns, done_ns) = (&detect_ns, &done_ns);
                    let healer_tid = band.start + 1;
                    s.spawn(move || {
                        nvm::tid::set_tid(healer_tid);
                        loop {
                            if let Some(&dead) = store.dead_peers().first() {
                                detect_ns.store(t0.elapsed().as_nanos() as u64, Ordering::SeqCst);
                                if store.claim_recovery(dead) {
                                    store.recover_peer(dead).expect("recover dead peer");
                                }
                                done_ns.store(t0.elapsed().as_nanos() as u64, Ordering::SeqCst);
                                return;
                            }
                            if t0.elapsed() > CAP {
                                return;
                            }
                            std::thread::sleep(Duration::from_micros(500));
                        }
                    })
                };

                // Workload loop: per-bucket op counts; the child is killed at
                // the end of the PRE window, and the loop runs until POST past
                // the healer's completion (or the cap).
                let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ keys;
                let mut killed = false;
                let mut ops_in_bucket = 0u64;
                let mut bucket_end = BUCKET;
                loop {
                    let el = t0.elapsed();
                    if el >= bucket_end {
                        buckets.push(ops_in_bucket);
                        ops_in_bucket = 0;
                        bucket_end += BUCKET;
                    }
                    if !killed && el >= PRE {
                        child.kill().expect("SIGKILL fig14 child");
                        killed = true;
                    }
                    let done = done_ns.load(Ordering::SeqCst);
                    if (done != 0 && el >= Duration::from_nanos(done) + POST) || el > CAP {
                        buckets.push(ops_in_bucket);
                        break;
                    }
                    let r = splitmix(&mut rng);
                    let k = 1 + splitmix(&mut rng) % keys;
                    match r % 4 {
                        0 => map.insert(band.start, k),
                        1 => map.delete(band.start, k),
                        _ => map.find(band.start, k),
                    };
                    ops_in_bucket += 1;
                }
                healer.join().unwrap();
            });
            let _ = child.wait();
            let d = nvm::stats::snapshot().since(&s0);

            let detect = Duration::from_nanos(detect_ns.load(Ordering::SeqCst));
            let done = Duration::from_nanos(done_ns.load(Ordering::SeqCst));
            assert!(done > Duration::ZERO, "fig14: the dead peer was never recovered");
            let rate = |b: u64| b as f64 / BUCKET.as_secs_f64() / 1e6;
            let b_of = |t: Duration| (t.as_nanos() / BUCKET.as_nanos()) as usize;
            let (kill_b, done_b) = (b_of(PRE), b_of(done).min(buckets.len() - 1));
            let mean = |r: &[u64]| r.iter().map(|&b| rate(b)).sum::<f64>() / r.len().max(1) as f64;
            let baseline = mean(&buckets[..kill_b.max(1)]);
            let dip =
                buckets[kill_b..=done_b].iter().map(|&b| rate(b)).fold(f64::INFINITY, f64::min);
            let post = mean(&buckets[(done_b + 1).min(buckets.len() - 1)..]);
            t_tp.row(
                keys.to_string(),
                vec![
                    baseline,
                    dip,
                    100.0 * dip / baseline.max(f64::MIN_POSITIVE),
                    post,
                    (detect - PRE).as_secs_f64() * 1e3,
                    (done - PRE).as_secs_f64() * 1e3,
                ],
            );
            t_ctr.row(
                keys.to_string(),
                vec![d.peers_recovered as f64, d.leases_stolen as f64, d.epoch_stalls as f64],
            );
            drop((map, store));
            let _ = std::fs::remove_file(&path);
        }
        self.emit("fig14_timeline", &t_tp);
        self.emit("fig14_counters", &t_ctr);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Figure 15: the network-facing KV service under zipfian skew —
    /// request throughput and tail latency of the full exactly-once path
    /// (frame parse → dedup lookup → durable intent → apply → durable
    /// response → ack) over loopback TCP. One in-process server (16
    /// shards, 4 workers); N loadgen client threads, each a journaling
    /// [`kvserve::KvClient`] drawing keys Zipf(1024, 0.99) with a
    /// 5:3:7 put:del:get mix, plus one dedup *replay* of the last
    /// acknowledged request every 16th op — so the served-from-the-table
    /// path is measured under load, not just in recovery tests.
    fn fig15(&self) {
        use bench_harness::workload::Zipf;
        use kvserve::{Config, KvClient, Server};
        use std::time::Instant;

        const KEYS: u64 = 1024;
        const THETA: f64 = 0.99;
        let dir = std::env::temp_dir().join(format!("isb_fig15_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let zipf = Zipf::new(KEYS, THETA);

        let mut t_lat = Table::new(
            "Figure 15: KV service over loopback TCP, zipfian keys (1024 keys, theta 0.99, \
             16 shards, 4 workers; per-request latency incl. dedup replays)"
                .to_string(),
            vec!["req/s".into(), "p50 us".into(), "p99 us".into(), "max us".into()],
        );
        let mut t_ctr = Table::new(
            "Figure 15: service counters per run (applied ops vs dedup replays served from \
             the durable response table)"
                .to_string(),
            vec!["kv_requests".into(), "kv_dedup_hits".into()],
        );
        for &n in &self.threads {
            let heap = dir.join(format!("kv_{n}.heap"));
            let _ = std::fs::remove_file(&heap);
            let mut cfg = Config::new(&heap);
            cfg.shards = 16;
            cfg.workers = 4;
            let server = Server::start(cfg).expect("fig15 server start");
            let addr = server.local_addr();
            let dur = self.dur;
            let s0 = nvm::stats::snapshot();
            let t0 = Instant::now();
            let mut lats: Vec<u64> = Vec::new();
            let mut total = 0u64;
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..n)
                    .map(|c| {
                        let zipf = &zipf;
                        s.spawn(move || {
                            let mut client =
                                KvClient::connect(addr, 1000 + c as u64).expect("loadgen connect");
                            let mut rng = 0x1234_5678u64 ^ (c as u64) << 17;
                            let mut lat = Vec::new();
                            while t0.elapsed() < dur {
                                // Spread hot ranks across the key space.
                                let key = 1 + (zipf.sample(splitmix(&mut rng)) * 631) % KEYS;
                                let t1 = Instant::now();
                                match splitmix(&mut rng) % 16 {
                                    0 if client.last_acked().is_some() => {
                                        client.replay_last_acked().expect("replay").unwrap();
                                    }
                                    1..=5 => {
                                        client.put(key).expect("put");
                                    }
                                    6..=8 => {
                                        client.del(key).expect("del");
                                    }
                                    _ => {
                                        client.get(key).expect("get");
                                    }
                                }
                                lat.push(t1.elapsed().as_nanos() as u64);
                            }
                            lat
                        })
                    })
                    .collect();
                for h in handles {
                    let lat = h.join().expect("loadgen thread");
                    total += lat.len() as u64;
                    lats.extend(lat);
                }
            });
            let elapsed = t0.elapsed();
            server.stop();
            let d = nvm::stats::snapshot().since(&s0);
            lats.sort_unstable();
            let pct = |p: usize| lats[(lats.len() * p / 100).min(lats.len() - 1)] as f64 / 1e3;
            t_lat.row(
                n.to_string(),
                vec![
                    total as f64 / elapsed.as_secs_f64(),
                    pct(50),
                    pct(99),
                    *lats.last().unwrap() as f64 / 1e3,
                ],
            );
            t_ctr.row(n.to_string(), vec![d.kv_requests as f64, d.kv_dedup_hits as f64]);
            let _ = std::fs::remove_file(&heap);
        }
        self.emit("fig15_latency", &t_lat);
        self.emit("fig15_counters", &t_ctr);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

const FIG14_HEAP_BYTES: usize = 64 << 20;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The fig14 child: joins the shared heap and hammers the map until the
/// parent SIGKILLs it (it never exits on its own).
fn fig14_child() -> ! {
    use isb::store::Store;
    let path = std::env::var("ISB_FIG14_HEAP").unwrap();
    let keys: u64 = std::env::var("ISB_FIG14_KEYS").unwrap().parse().unwrap();
    nvm::tid::set_tid(0);
    let store = Store::open_shared_sized(&path, FIG14_HEAP_BYTES).expect("child shared open");
    let slot = store.heap().my_participant().expect("child slot");
    let t = nvm::mapped::MappedHeap::tid_band(slot).start;
    nvm::tid::set_tid(t);
    let map = store.hashmap::<0>("users", 16).expect("users");
    std::fs::write(std::env::var("ISB_FIG14_READY").unwrap(), b"").unwrap();
    let mut rng = 0xdead_beef_cafe_f00du64;
    loop {
        let r = splitmix(&mut rng);
        let k = 1 + splitmix(&mut rng) % keys;
        match r % 4 {
            0 => map.insert(t, k),
            1 => map.delete(t, k),
            _ => map.find(t, k),
        };
    }
}

fn main() {
    if std::env::var_os("ISB_FIG14_CHILD").is_some() {
        fig14_child();
    }
    let opts = parse_args();
    println!(
        "pwb/psync in RealNvm: {} (shared-cache figures are only comparable \
         to the paper's when real flushes are compiled in)",
        if nvm::flush::HAS_REAL_FLUSH { "clflush/mfence" } else { "spin-delay fallback" }
    );
    let ctx = Ctx {
        threads: opts.threads,
        dur: opts.dur,
        out: opts.out,
        json: opts.json,
        collected: RefCell::new(Vec::new()),
        queue_prefill: opts.queue_prefill,
    };
    for fig in &opts.figs {
        match fig.as_str() {
            "fig1a" => ctx.list_throughput(
                "fig1a",
                "Figure 1a: throughput, read-intensive",
                500,
                Mix::READ_INTENSIVE,
            ),
            "fig1b" => ctx.list_counts("fig1b", "Figure 1b", &[500], Mix::READ_INTENSIVE),
            "fig1c" => ctx.list_counts("fig1c", "Figure 1c", &[500], Mix::UPDATE_INTENSIVE),
            "fig1d" => ctx.list_throughput(
                "fig1d",
                "Figure 1d: throughput, update-intensive",
                500,
                Mix::UPDATE_INTENSIVE,
            ),
            "fig1e" => ctx.list_throughput(
                "fig1e",
                "Figure 1e: throughput, read-intensive",
                1500,
                Mix::READ_INTENSIVE,
            ),
            "fig1f" => ctx.list_throughput(
                "fig1f",
                "Figure 1f: throughput, update-intensive",
                1500,
                Mix::UPDATE_INTENSIVE,
            ),
            "fig3" => {
                ctx.list_throughput(
                    "fig3_read_1000",
                    "Figure 3: throughput, read-intensive",
                    1000,
                    Mix::READ_INTENSIVE,
                );
                ctx.list_throughput(
                    "fig3_update_1000",
                    "Figure 3: throughput, update-intensive",
                    1000,
                    Mix::UPDATE_INTENSIVE,
                );
                ctx.list_throughput(
                    "fig3_read_2000",
                    "Figure 3: throughput, read-intensive",
                    2000,
                    Mix::READ_INTENSIVE,
                );
                ctx.list_throughput(
                    "fig3_update_2000",
                    "Figure 3: throughput, update-intensive",
                    2000,
                    Mix::UPDATE_INTENSIVE,
                );
            }
            "fig4" => ctx.fig4(),
            "fig5" => ctx.list_counts(
                "fig5",
                "Figure 5 (read-intensive)",
                &[1000, 1500, 2000],
                Mix::READ_INTENSIVE,
            ),
            "fig6" => ctx.list_counts(
                "fig6",
                "Figure 6 (update-intensive)",
                &[1000, 1500, 2000],
                Mix::UPDATE_INTENSIVE,
            ),
            "fig7" => ctx.fig7(),
            "fig8" => ctx.fig8(),
            "fig9" => ctx.fig9(),
            "fig10" => ctx.fig10(),
            "fig11" => ctx.fig11(),
            "fig12" => ctx.fig12(),
            "fig13" => ctx.fig13(),
            "fig14" => ctx.fig14(),
            "fig15" => ctx.fig15(),
            other => panic!("unknown figure {other}"),
        }
    }
    if let Some(path) = &ctx.json {
        let figs = ctx.collected.borrow();
        let body = format!("{{\"schema\":1,\"figures\":[{}]}}", figs.join(","));
        std::fs::write(path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {} figure tables to {path}", figs.len());
    }
}
