//! Uniform benchmark view over every evaluated implementation.
//!
//! Implementations are added here as the baselines land; the `figures`
//! binary selects them by the names used in the paper's plots
//! (`Isb`, `Isb-Opt`, `Capsules`, `Capsules-Opt`, `DT-Opt`, `Harris-LL`, …).

use isb::hashmap::RHashMap;
use isb::list::RList;
use isb::queue::RQueue;
use nvm::Persist;

/// A concurrent set (the list benchmarks).
pub trait SetBench: Send + Sync {
    /// Insert `k`; false if present.
    fn insert(&self, pid: usize, k: u64) -> bool;
    /// Delete `k`; false if absent.
    fn delete(&self, pid: usize, k: u64) -> bool;
    /// Membership test.
    fn find(&self, pid: usize, k: u64) -> bool;
}

/// A sharded concurrent map (the hash-map benchmarks): the set surface plus
/// shard introspection, so sweeps can label series by shard count.
pub trait MapBench: SetBench {
    /// Number of shards the keys are routed over.
    fn shard_count(&self) -> usize;
}

/// A concurrent FIFO queue (the queue benchmarks).
pub trait QueueBench: Send + Sync {
    /// Enqueue `v`.
    fn enqueue(&self, pid: usize, v: u64);
    /// Dequeue; `None` when empty.
    fn dequeue(&self, pid: usize) -> Option<u64>;
}

impl<M: Persist> SetBench for baselines::harris::HarrisList<M> {
    fn insert(&self, pid: usize, k: u64) -> bool {
        baselines::harris::HarrisList::insert(self, pid, k)
    }
    fn delete(&self, pid: usize, k: u64) -> bool {
        baselines::harris::HarrisList::delete(self, pid, k)
    }
    fn find(&self, pid: usize, k: u64) -> bool {
        baselines::harris::HarrisList::find(self, pid, k)
    }
}

impl<M: Persist> SetBench for baselines::dt_list::DtList<M> {
    fn insert(&self, pid: usize, k: u64) -> bool {
        baselines::dt_list::DtList::insert(self, pid, k)
    }
    fn delete(&self, pid: usize, k: u64) -> bool {
        baselines::dt_list::DtList::delete(self, pid, k)
    }
    fn find(&self, pid: usize, k: u64) -> bool {
        baselines::dt_list::DtList::find(self, pid, k)
    }
}

impl<M: Persist, const OPT: bool> SetBench for baselines::capsules_list::CapsulesList<M, OPT> {
    fn insert(&self, pid: usize, k: u64) -> bool {
        baselines::capsules_list::CapsulesList::insert(self, pid, k)
    }
    fn delete(&self, pid: usize, k: u64) -> bool {
        baselines::capsules_list::CapsulesList::delete(self, pid, k)
    }
    fn find(&self, pid: usize, k: u64) -> bool {
        baselines::capsules_list::CapsulesList::find(self, pid, k)
    }
}

impl<M: Persist> QueueBench for baselines::ms_queue::MsQueue<M> {
    fn enqueue(&self, pid: usize, v: u64) {
        baselines::ms_queue::MsQueue::enqueue(self, pid, v)
    }
    fn dequeue(&self, pid: usize) -> Option<u64> {
        baselines::ms_queue::MsQueue::dequeue(self, pid)
    }
}

impl<M: Persist> QueueBench for baselines::log_queue::LogQueue<M> {
    fn enqueue(&self, pid: usize, v: u64) {
        baselines::log_queue::LogQueue::enqueue(self, pid, v)
    }
    fn dequeue(&self, pid: usize) -> Option<u64> {
        baselines::log_queue::LogQueue::dequeue(self, pid)
    }
}

impl<M: Persist, const N: bool> QueueBench for baselines::capsules_queue::CapsulesQueue<M, N> {
    fn enqueue(&self, pid: usize, v: u64) {
        baselines::capsules_queue::CapsulesQueue::enqueue(self, pid, v)
    }
    fn dequeue(&self, pid: usize) -> Option<u64> {
        baselines::capsules_queue::CapsulesQueue::dequeue(self, pid)
    }
}

impl<M: Persist, const ARM: u8> SetBench for RList<M, ARM> {
    fn insert(&self, pid: usize, k: u64) -> bool {
        RList::insert(self, pid, k)
    }
    fn delete(&self, pid: usize, k: u64) -> bool {
        RList::delete(self, pid, k)
    }
    fn find(&self, pid: usize, k: u64) -> bool {
        RList::find(self, pid, k)
    }
}

impl<M: Persist, const ARM: u8> SetBench for RHashMap<M, ARM> {
    fn insert(&self, pid: usize, k: u64) -> bool {
        RHashMap::insert(self, pid, k)
    }
    fn delete(&self, pid: usize, k: u64) -> bool {
        RHashMap::delete(self, pid, k)
    }
    fn find(&self, pid: usize, k: u64) -> bool {
        RHashMap::find(self, pid, k)
    }
}

impl<M: Persist, const ARM: u8> MapBench for RHashMap<M, ARM> {
    fn shard_count(&self) -> usize {
        self.shards()
    }
}

impl<M: Persist, const ARM: u8> QueueBench for RQueue<M, ARM> {
    fn enqueue(&self, pid: usize, v: u64) {
        RQueue::enqueue(self, pid, v)
    }
    fn dequeue(&self, pid: usize) -> Option<u64> {
        RQueue::dequeue(self, pid)
    }
}
