//! # `bench_harness` — workloads, figure runners and the crash harness
//!
//! Three jobs:
//! 1. [`workload`]: the paper's benchmark driver — N threads, timed runs,
//!    uniform keys, operation mixes, throughput + persistency-instruction
//!    counts per operation (Figures 1, 3–7).
//! 2. [`adapters`]: a uniform [`adapters::SetBench`] / [`adapters::QueueBench`]
//!    view over every evaluated implementation (ISB and baselines).
//! 3. [`crash`]: the crash-recovery test harness over [`nvm::SimNvm`]:
//!    seeded system-wide crashes, adversarial NVM-image reconstruction,
//!    per-process recovery, and exactly-once/detectability validation.

#![warn(missing_docs)]

pub mod adapters;
pub mod crash;
pub mod report;
pub mod workload;
