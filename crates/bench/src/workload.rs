//! The paper's benchmark driver (Section 5, "Experimental setting"):
//! N threads, uniformly random keys from a range, a find/insert/delete mix,
//! timed runs, with prefill to ≈40% occupancy; reports throughput and
//! persistency-instruction counts per operation.

use crate::adapters::{QueueBench, SetBench};
use nvm::stats;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Operation mix: percentages of finds and inserts (deletes are the rest).
/// Paper: read-intensive = 70% finds, update-intensive = 30% finds, with
/// inserts/deletes split evenly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Percent finds.
    pub find_pct: u8,
    /// Percent inserts.
    pub insert_pct: u8,
}

impl Mix {
    /// 70% finds, 15% inserts, 15% deletes.
    pub const READ_INTENSIVE: Mix = Mix { find_pct: 70, insert_pct: 15 };
    /// 30% finds, 35% inserts, 35% deletes.
    pub const UPDATE_INTENSIVE: Mix = Mix { find_pct: 30, insert_pct: 35 };
}

/// Configuration of one set-benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct SetCfg {
    /// Concurrent threads (processes).
    pub threads: usize,
    /// Keys are drawn uniformly from `[1, key_range]`.
    pub key_range: u64,
    /// Operation mix.
    pub mix: Mix,
    /// Measured duration.
    pub duration: Duration,
    /// Seed for key streams.
    pub seed: u64,
}

impl Default for SetCfg {
    fn default() -> Self {
        Self {
            threads: 2,
            key_range: 500,
            mix: Mix::READ_INTENSIVE,
            duration: Duration::from_millis(300),
            seed: 42,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Completed operations.
    pub ops: u64,
    /// Measured wall-clock time.
    pub elapsed: Duration,
    /// Persistency instructions during the measured window.
    pub stats: stats::Snapshot,
}

impl RunResult {
    /// Million operations per second.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }
    /// `pbarrier` events per operation.
    pub fn barriers_per_op(&self) -> f64 {
        self.stats.pbarrier as f64 / self.ops.max(1) as f64
    }
    /// Stand-alone flushes per operation.
    pub fn flushes_per_op(&self) -> f64 {
        self.stats.pwb as f64 / self.ops.max(1) as f64
    }
    /// `psync` events per operation.
    pub fn psyncs_per_op(&self) -> f64 {
        self.stats.psync as f64 / self.ops.max(1) as f64
    }
    /// Write-backs elided by the coalescing set per operation (zero on the
    /// non-coalescing arms and under models without `pwb_coal` overrides).
    pub fn elided_per_op(&self) -> f64 {
        self.stats.pwb_elided as f64 / self.ops.max(1) as f64
    }
    /// Unique cache lines drained out of the coalescing set at fences, per
    /// operation.
    pub fn coalesced_per_op(&self) -> f64 {
        self.stats.lines_coalesced as f64 / self.ops.max(1) as f64
    }
}

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Zipfian key sampler (YCSB-style skew): rank `r` of `[1, n]` is drawn
/// with probability proportional to `1/r^theta`. Built once per run
/// (cumulative table), sampled by binary search — O(log n) per draw and
/// deterministic given the caller's uniform stream.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over ranks `[1, n]` with skew `theta` (YCSB default 0.99;
    /// 0 degenerates to uniform).
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "empty key space");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(theta);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Zipf { cdf }
    }

    /// Maps one uniform `u64` draw to a 1-based rank. Hot ranks are the
    /// low ones — callers wanting hot *keys* spread across the space can
    /// permute (e.g. multiply by a constant mod n).
    pub fn sample(&self, uniform: u64) -> u64 {
        let x = (uniform >> 11) as f64 / (1u64 << 53) as f64;
        (self.cdf.partition_point(|&c| c < x) + 1).min(self.cdf.len()) as u64
    }
}

/// Prefill a set to ≈40% of `key_range` (the paper performs `range/2`
/// uniform inserts; duplicates land it near 40%).
pub fn prefill_set<B: SetBench + ?Sized>(s: &B, key_range: u64, seed: u64) {
    nvm::tid::set_tid(0);
    let mut x = seed | 1;
    for _ in 0..key_range / 2 {
        let k = 1 + xorshift(&mut x) % key_range;
        s.insert(0, k);
    }
}

/// Runs the set benchmark: `cfg.threads` threads hammer `s` for
/// `cfg.duration`, counting completed operations and persistency
/// instructions (measured-window only).
pub fn run_set<B: SetBench + ?Sized + 'static>(s: Arc<B>, cfg: SetCfg) -> RunResult {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(cfg.threads + 1));
    let mut handles = Vec::new();
    for t in 0..cfg.threads {
        let s = Arc::clone(&s);
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total);
        let barrier = Arc::clone(&barrier);
        let mix = cfg.mix;
        let range = cfg.key_range;
        let mut x = cfg.seed ^ ((t as u64 + 1) << 20) | 1;
        handles.push(std::thread::spawn(move || {
            nvm::tid::set_tid(t);
            barrier.wait();
            let mut ops = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let r = xorshift(&mut x);
                let k = 1 + (r >> 8) % range;
                let dice = (r % 100) as u8;
                if dice < mix.find_pct {
                    std::hint::black_box(s.find(t, k));
                } else if dice < mix.find_pct + mix.insert_pct {
                    std::hint::black_box(s.insert(t, k));
                } else {
                    std::hint::black_box(s.delete(t, k));
                }
                ops += 1;
            }
            total.fetch_add(ops, Ordering::Relaxed);
        }));
    }
    barrier.wait();
    let s0 = stats::snapshot();
    let start = Instant::now();
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    let s1 = stats::snapshot();
    RunResult { ops: total.load(Ordering::Relaxed), elapsed, stats: s1.since(&s0) }
}

/// Runs the set workload once per shard count: `mk(shards)` builds a fresh
/// sharded map, which is prefilled and hammered under `cfg`. Returns
/// `(shards, result)` per point — the shard-sweep workload behind the
/// `map_throughput` bench and the `fig8` figures experiment.
pub fn run_shard_sweep<B, F>(mk: F, shard_counts: &[usize], cfg: SetCfg) -> Vec<(usize, RunResult)>
where
    B: crate::adapters::MapBench + ?Sized + 'static,
    F: Fn(usize) -> Arc<B>,
{
    shard_counts
        .iter()
        .map(|&shards| {
            let m = mk(shards);
            assert_eq!(m.shard_count(), shards, "factory built the wrong shard count");
            prefill_set(&*m, cfg.key_range, cfg.seed | 1);
            (shards, run_set(m, cfg))
        })
        .collect()
}

/// Configuration of one queue run (paper: each thread alternates
/// enqueue/dequeue pairs; prefilled).
#[derive(Debug, Clone, Copy)]
pub struct QueueCfg {
    /// Concurrent threads.
    pub threads: usize,
    /// Initial queue population.
    pub prefill: u64,
    /// Measured duration.
    pub duration: Duration,
}

impl Default for QueueCfg {
    fn default() -> Self {
        Self { threads: 2, prefill: 10_000, duration: Duration::from_millis(300) }
    }
}

/// Runs the queue benchmark: each thread performs enqueue/dequeue pairs
/// (the paper's workload, scaled prefill).
pub fn run_queue<B: QueueBench + ?Sized + 'static>(q: Arc<B>, cfg: QueueCfg) -> RunResult {
    nvm::tid::set_tid(0);
    for i in 0..cfg.prefill {
        q.enqueue(0, i + 1);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(cfg.threads + 1));
    let mut handles = Vec::new();
    for t in 0..cfg.threads {
        let q = Arc::clone(&q);
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            nvm::tid::set_tid(t);
            barrier.wait();
            let mut ops = 0u64;
            let mut v = (t as u64 + 1) << 32;
            while !stop.load(Ordering::Relaxed) {
                v += 1;
                q.enqueue(t, v);
                std::hint::black_box(q.dequeue(t));
                ops += 2;
            }
            total.fetch_add(ops, Ordering::Relaxed);
        }));
    }
    barrier.wait();
    let s0 = stats::snapshot();
    let start = Instant::now();
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    let s1 = stats::snapshot();
    RunResult { ops: total.load(Ordering::Relaxed), elapsed, stats: s1.since(&s0) }
}
