//! Markdown/CSV table rendering for figure output.

use std::fmt::Write as _;

/// A simple table: one row per thread count (or key range), one column per
/// algorithm — mirroring the paper's plot series.
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// New table titled `title` with `columns` series names.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Self { title: title.into(), columns, rows: Vec::new() }
    }

    /// Append a row (`label` = x-axis value).
    pub fn row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len());
        self.rows.push((label.into(), values));
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "### {}", self.title);
        let _ = write!(s, "| |");
        for c in &self.columns {
            let _ = write!(s, " {c} |");
        }
        let _ = writeln!(s);
        let _ = write!(s, "|---|");
        for _ in &self.columns {
            let _ = write!(s, "---|");
        }
        let _ = writeln!(s);
        for (label, vals) in &self.rows {
            let _ = write!(s, "| {label} |");
            for v in vals {
                let _ = write!(s, " {v:.3} |");
            }
            let _ = writeln!(s);
        }
        s
    }

    /// Render as a JSON object tagged with `id` (the figure id), for the
    /// machine-readable archive written by `figures --json`. Hand-rolled —
    /// the offline build environment has no serde.
    pub fn to_json(&self, id: &str) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"id\":{},\"title\":{},\"columns\":[",
            json_str(id),
            json_str(&self.title)
        );
        for (i, c) in self.columns.iter().enumerate() {
            let _ = write!(s, "{}{}", if i > 0 { "," } else { "" }, json_str(c));
        }
        let _ = write!(s, "],\"rows\":[");
        for (i, (label, vals)) in self.rows.iter().enumerate() {
            let _ = write!(
                s,
                "{}{{\"x\":{},\"values\":[",
                if i > 0 { "," } else { "" },
                json_str(label)
            );
            for (j, v) in vals.iter().enumerate() {
                // JSON has no NaN/Inf; a degenerate measurement becomes null.
                let _ = write!(
                    s,
                    "{}{}",
                    if j > 0 { "," } else { "" },
                    if v.is_finite() { format!("{v:.6}") } else { "null".into() }
                );
            }
            let _ = write!(s, "]}}");
        }
        let _ = write!(s, "]}}");
        s
    }

    /// Render as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "x");
        for c in &self.columns {
            let _ = write!(s, ",{c}");
        }
        let _ = writeln!(s);
        for (label, vals) in &self.rows {
            let _ = write!(s, "{label}");
            for v in vals {
                let _ = write!(s, ",{v:.6}");
            }
            let _ = writeln!(s);
        }
        s
    }
}

/// Minimal JSON string quoting (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_shapes() {
        let mut t = Table::new("fig", vec!["A".into(), "B".into()]);
        t.row("1", vec![1.0, 2.0]);
        t.row("2", vec![3.0, 4.5]);
        let md = t.to_markdown();
        assert!(md.contains("### fig"));
        assert!(md.contains("| 1 | 1.000 | 2.000 |"));
        let csv = t.to_csv();
        assert!(csv.starts_with("x,A,B\n"));
        assert!(csv.contains("2,3.000000,4.500000"));
    }

    #[test]
    fn json_shape_and_escaping() {
        let mut t = Table::new("fig \"quoted\"", vec!["A".into()]);
        t.row("1", vec![1.5]);
        t.row("2", vec![f64::NAN]);
        let j = t.to_json("fig9_x");
        assert!(j.starts_with("{\"id\":\"fig9_x\",\"title\":\"fig \\\"quoted\\\"\""));
        assert!(j.contains("\"columns\":[\"A\"]"));
        assert!(j.contains("{\"x\":\"1\",\"values\":[1.500000]}"));
        assert!(j.contains("{\"x\":\"2\",\"values\":[null]}"), "NaN must become null: {j}");
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("fig", vec!["A".into()]);
        t.row("1", vec![1.0, 2.0]);
    }
}
