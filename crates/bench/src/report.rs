//! Markdown/CSV table rendering for figure output.

use std::fmt::Write as _;

/// A simple table: one row per thread count (or key range), one column per
/// algorithm — mirroring the paper's plot series.
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// New table titled `title` with `columns` series names.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Self { title: title.into(), columns, rows: Vec::new() }
    }

    /// Append a row (`label` = x-axis value).
    pub fn row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len());
        self.rows.push((label.into(), values));
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "### {}", self.title);
        let _ = write!(s, "| |");
        for c in &self.columns {
            let _ = write!(s, " {c} |");
        }
        let _ = writeln!(s);
        let _ = write!(s, "|---|");
        for _ in &self.columns {
            let _ = write!(s, "---|");
        }
        let _ = writeln!(s);
        for (label, vals) in &self.rows {
            let _ = write!(s, "| {label} |");
            for v in vals {
                let _ = write!(s, " {v:.3} |");
            }
            let _ = writeln!(s);
        }
        s
    }

    /// Render as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "x");
        for c in &self.columns {
            let _ = write!(s, ",{c}");
        }
        let _ = writeln!(s);
        for (label, vals) in &self.rows {
            let _ = write!(s, "{label}");
            for v in vals {
                let _ = write!(s, ",{v:.6}");
            }
            let _ = writeln!(s);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_shapes() {
        let mut t = Table::new("fig", vec!["A".into(), "B".into()]);
        t.row("1", vec![1.0, 2.0]);
        t.row("2", vec![3.0, 4.5]);
        let md = t.to_markdown();
        assert!(md.contains("### fig"));
        assert!(md.contains("| 1 | 1.000 | 2.000 |"));
        let csv = t.to_csv();
        assert!(csv.starts_with("x,A,B\n"));
        assert!(csv.contains("2,3.000000,4.500000"));
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("fig", vec!["A".into()]);
        t.row("1", vec![1.0, 2.0]);
    }
}
