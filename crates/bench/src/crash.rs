//! Crash-recovery harness over [`nvm::SimNvm`].
//!
//! A crash scenario (paper Section 2 model):
//!
//! 1. Build the structure on the simulator with reclamation **disabled**
//!    (crashes must not free memory) and persist the initial state.
//! 2. Worker threads (= processes) run operations; each records its
//!    invocation *before* starting (the paper assumes the system re-invokes
//!    `Op.Recover` with the same arguments, i.e., the system knows them).
//! 3. At a random moment the harness triggers a **system-wide crash**: every
//!    worker dies at its next instrumented memory access.
//! 4. [`nvm::sim::build_crash_image`] reconstructs an adversarial NVM image
//!    (per word: guaranteed-persisted or latest volatile value, seeded).
//! 5. Fresh threads with the same process ids run each pending operation's
//!    recovery function — possibly crashing *again* (`recovery_crashes`),
//!    modelling repeated failures during recovery.
//! 6. Validation: structural invariants, plus **exactly-once** semantics —
//!    each process uses a disjoint key/value space, so its completed +
//!    recovered responses must replay exactly against a sequential model
//!    and the final structure must match the models' union.
//!
//! Scenarios are fully seeded; every failure report includes the seed.
//!
//! Set-shaped structures (list, BST, and anything added later) share one
//! generic driver, [`run_set_scenario`], parameterised by the
//! [`RecoverableSet`] view; recovery decisions stay inside each structure's
//! `recover_*` methods (which wrap `isb::recovery::op_recover`) — the
//! harness only re-invokes them, exactly like the paper's system model.

use isb::bst::RBst;
use isb::hashmap::RHashMap;
use isb::list::RList;
use isb::queue::RQueue;
use nvm::sim;
use nvm::SimNvm;
use reclaim::Collector;
use std::sync::{Arc, Mutex};

/// Serialises crash scenarios within a process (the simulator registry is
/// global) and enforces the reset discipline.
static SESSION: Mutex<()> = Mutex::new(());

/// Tunables for one crash scenario.
#[derive(Debug, Clone, Copy)]
pub struct CrashCfg {
    /// Worker processes.
    pub procs: usize,
    /// Operations each worker tries to complete (it may crash earlier).
    pub ops_per_proc: usize,
    /// Keys (list) / values (queue) per process — disjoint across processes.
    pub keys_per_proc: u64,
    /// Additional crashes injected *during recovery* (each recovery round
    /// may die again and be re-recovered).
    pub recovery_crashes: usize,
    /// Scenario seed.
    pub seed: u64,
}

impl Default for CrashCfg {
    fn default() -> Self {
        Self { procs: 3, ops_per_proc: 60, keys_per_proc: 12, recovery_crashes: 0, seed: 1 }
    }
}

/// Outcome statistics of a scenario (for reporting/assertions).
#[derive(Debug, Default, Clone, Copy)]
pub struct CrashReport {
    /// Operations completed before the crash (across all workers).
    pub completed: usize,
    /// Workers that died mid-operation.
    pub pending: usize,
    /// Of the pending operations, how many recoveries returned a response
    /// that proves the op took effect before the crash (result recovered).
    pub recovered_completed: usize,
    /// Words rolled back by the image builder.
    pub rolled_back: usize,
}

// ---------------------------------------------------------------------------
// Small deterministic RNG (the harness must not depend on thread timing for
// its *logical* choices; only the crash moment is timing-dependent).
// ---------------------------------------------------------------------------
#[derive(Clone)]
struct Rng(u64);
impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

// ---------------------------------------------------------------------------
// Set scenarios (list, BST)
// ---------------------------------------------------------------------------

/// Uniform crash-scenario view of a detectably recoverable set.
///
/// The harness only needs the set API, the matching `recover_*` entry points
/// (re-invoked with the same arguments after a crash, per the paper's system
/// model), and quiescent snapshot/invariant hooks for validation.
pub trait RecoverableSet: Send + Sync + 'static {
    /// Structure name used in failure reports.
    const NAME: &'static str;

    /// Fresh instance whose collector is disabled (a crash must not free
    /// memory — recovery may still inspect retired nodes).
    fn build_for_crash() -> Self;

    /// Insert `k`; false if present.
    fn insert(&self, pid: usize, k: u64) -> bool;
    /// Delete `k`; false if absent.
    fn delete(&self, pid: usize, k: u64) -> bool;
    /// Membership test.
    fn find(&self, pid: usize, k: u64) -> bool;

    /// `Insert.Recover` with the crashed invocation's arguments.
    fn recover_insert(&self, pid: usize, k: u64) -> bool;
    /// `Delete.Recover`.
    fn recover_delete(&self, pid: usize, k: u64) -> bool;
    /// `Find.Recover`.
    fn recover_find(&self, pid: usize, k: u64) -> bool;

    /// Sorted user keys (requires quiescence).
    fn snapshot(&mut self) -> Vec<u64>;
    /// Panics on structural-invariant violations (requires quiescence).
    fn check_invariants(&mut self);

    /// Post-recovery scrub, run once after every process finished its
    /// `recover_*` rounds: completes helping obligations the crash left
    /// visible (the tuned placement defers cleanup-`psync`s, so the image
    /// can resurrect tags of *completed* operations — harmless at runtime,
    /// where lazy helping heals them, but the harness validates a quiescent
    /// structure immediately). Default: nothing to scrub.
    fn scrub(&self) {}
}

macro_rules! impl_recoverable_set {
    // Optional trailing method name: forwards the trait's `scrub` to the
    // structure's own eager-helping scrub (not every structure exposes one).
    ($ty:ty, $name:literal $(, $scrub:ident)?) => {
        impl RecoverableSet for $ty {
            const NAME: &'static str = $name;
            fn build_for_crash() -> Self {
                Self::with_collector(Collector::disabled())
            }
            $(
                fn scrub(&self) {
                    <$ty>::$scrub(self)
                }
            )?
            fn insert(&self, pid: usize, k: u64) -> bool {
                <$ty>::insert(self, pid, k)
            }
            fn delete(&self, pid: usize, k: u64) -> bool {
                <$ty>::delete(self, pid, k)
            }
            fn find(&self, pid: usize, k: u64) -> bool {
                <$ty>::find(self, pid, k)
            }
            fn recover_insert(&self, pid: usize, k: u64) -> bool {
                <$ty>::recover_insert(self, pid, k)
            }
            fn recover_delete(&self, pid: usize, k: u64) -> bool {
                <$ty>::recover_delete(self, pid, k)
            }
            fn recover_find(&self, pid: usize, k: u64) -> bool {
                <$ty>::recover_find(self, pid, k)
            }
            fn snapshot(&mut self) -> Vec<u64> {
                self.snapshot_keys()
            }
            fn check_invariants(&mut self) {
                <$ty>::check_invariants(self)
            }
        }
    };
}

impl_recoverable_set!(RList<SimNvm, 0>, "RList", scrub);
// The BST scrubs too: a failed attempt whose earlier affect cells rolled
// back past their expected values leaves its later tags for (eager) helping.
impl_recoverable_set!(RBst<SimNvm, 0>, "RBst", scrub);
// The sharded map in both persistency placements; `with_collector` builds
// the default 16 shards, so seeded crashes land in different buckets while
// all pending descriptors live in the one shared recovery area.
impl_recoverable_set!(RHashMap<SimNvm, 0>, "RHashMap", scrub);
impl_recoverable_set!(RHashMap<SimNvm, 1>, "RHashMap-Opt", scrub);
// The coalescing arms against the same per-word adversary: `SimNvm` keeps its
// default `pwb_coal = pwb` (a noted line is simply an outstanding word until
// the next fence — exactly the crash-visibility window coalescing introduces),
// while the write-backs the arms *elide* (deferred `CP_q := 1`, LP's cleanup
// untag flushes, the merged enqueue `psync`) genuinely never happen, so the
// image builder is free to roll those words back and recovery must cope.
impl_recoverable_set!(RHashMap<SimNvm, 2>, "RHashMap-Coal", scrub);
impl_recoverable_set!(RHashMap<SimNvm, 3>, "RHashMap-LP", scrub);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetOp {
    Insert(u64),
    Delete(u64),
    Find(u64),
}

fn set_apply_model(model: &mut std::collections::BTreeSet<u64>, op: SetOp) -> bool {
    match op {
        SetOp::Insert(k) => model.insert(k),
        SetOp::Delete(k) => model.remove(&k),
        SetOp::Find(k) => model.contains(&k),
    }
}

/// Runs one seeded crash scenario against any [`RecoverableSet`]; panics
/// (with the seed) on any detectability or consistency violation. Returns
/// statistics.
pub fn run_set_scenario<S: RecoverableSet>(cfg: CrashCfg) -> CrashReport {
    let _session = SESSION.lock().unwrap_or_else(|e| e.into_inner());
    // Exclusive process-wide simulator session: a concurrent one (e.g. a
    // test bypassing this harness) now panics cleanly instead of corrupting
    // build_crash_image (nvm::sim registry contract).
    let _sim = sim::begin_session();
    sim::quiet_crash_panics();
    sim::reset();
    let mut report = CrashReport::default();
    {
        nvm::tid::set_tid(nvm::MAX_PROCS - 1); // harness thread identity
        let set = Arc::new(S::build_for_crash());
        // Prefill: every process's even keys start present.
        for p in 0..cfg.procs {
            for i in 0..cfg.keys_per_proc {
                if i % 2 == 0 {
                    set.insert(p, key_of(p, i, cfg.keys_per_proc));
                }
            }
        }
        sim::persist_all();

        // Worker phase. The plug is pulled *cooperatively*: the worker that
        // completes the seeded target-th operation arms the crash itself.
        // The target is below 90% of the workload, so ≥10% of the operations
        // are still outstanding when the crash lands — some worker always
        // dies mid-operation, regardless of scheduling (a harness-side spin
        // loop can miss the window entirely on an oversubscribed machine).
        let mut rng = Rng::new(cfg.seed ^ 0xC0FFEE);
        let target = 1 + rng.below((cfg.procs * cfg.ops_per_proc) as u64 * 9 / 10);
        let logs: Vec<_> =
            (0..cfg.procs).map(|_| Arc::new(Mutex::new(WorkerLog::default()))).collect();
        let progress = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for (p, log) in logs.iter().enumerate() {
            let set = Arc::clone(&set);
            let log = Arc::clone(log);
            let progress = Arc::clone(&progress);
            let mut rng = Rng::new(cfg.seed ^ (p as u64 + 1) << 8);
            let kpp = cfg.keys_per_proc;
            let ops = cfg.ops_per_proc;
            handles.push(std::thread::spawn(move || {
                nvm::tid::set_tid(p);
                for _ in 0..ops {
                    let k = key_of(p, rng.below(kpp), kpp);
                    let op = match rng.below(3) {
                        0 => SetOp::Insert(k),
                        1 => SetOp::Delete(k),
                        _ => SetOp::Find(k),
                    };
                    log.lock().unwrap().invoke(op);
                    let r = sim::run_crashable(|| match op {
                        SetOp::Insert(k) => set.insert(p, k),
                        SetOp::Delete(k) => set.delete(p, k),
                        SetOp::Find(k) => set.find(p, k),
                    });
                    match r {
                        Ok(resp) => {
                            log.lock().unwrap().complete(resp);
                            let done =
                                progress.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                            if done == target {
                                sim::trigger_crash();
                            }
                        }
                        Err(_) => return, // died mid-operation; op stays pending
                    }
                }
            }));
        }
        watchdog_crash(&progress, target);
        for h in handles {
            h.join().unwrap();
        }

        // Crash image (+ optional repeated crashes during recovery).
        let img = sim::build_crash_image(cfg.seed ^ 0xD1CE);
        report.rolled_back = img.rolled_back;
        report.pending = logs.iter().filter(|l| l.lock().unwrap().pending.is_some()).count();

        for round in 0..=cfg.recovery_crashes {
            let crash_again = round < cfg.recovery_crashes;
            let mut rhandles = Vec::new();
            for (p, log) in logs.iter().enumerate() {
                let set = Arc::clone(&set);
                let log = Arc::clone(log);
                rhandles.push(std::thread::spawn(move || {
                    nvm::tid::set_tid(p);
                    let pending = log.lock().unwrap().pending;
                    if let Some(op) = pending {
                        let r = sim::run_crashable(|| match op {
                            SetOp::Insert(k) => set.recover_insert(p, k),
                            SetOp::Delete(k) => set.recover_delete(p, k),
                            SetOp::Find(k) => set.recover_find(p, k),
                        });
                        if let Ok(resp) = r {
                            log.lock().unwrap().complete(resp);
                        } // else: still pending; next round recovers again
                    }
                }));
            }
            if crash_again {
                busy_wait_us(rng.below(200));
                sim::trigger_crash();
            }
            for h in rhandles {
                h.join().unwrap();
            }
            if crash_again {
                sim::build_crash_image(cfg.seed ^ (0xBEEF + round as u64));
            }
        }

        // ---- Validation --------------------------------------------------
        let mut set = Arc::into_inner(set).expect("all workers joined");
        set.scrub();
        set.check_invariants();
        let snapshot = set.snapshot();
        for w in snapshot.windows(2) {
            assert!(w[0] < w[1], "seed {}: {} snapshot unsorted", cfg.seed, S::NAME);
        }
        // POISON scan: a reachable key whose persisted side was never covered
        // by a completed persist reads as `sim::POISON` after the adversarial
        // image — publishing a reachable pointer to unpersisted state is a
        // missing-flush bug (DESIGN.md §3), never legitimate key material.
        assert!(
            !snapshot.contains(&sim::POISON),
            "seed {}: {} snapshot contains POISON (reachable unpersisted node)",
            cfg.seed,
            S::NAME
        );
        let mut expected = std::collections::BTreeSet::new();
        for (p, log) in logs.iter().enumerate() {
            let log = log.lock().unwrap();
            report.completed += log.entries.len();
            // Replay this process's ops against its private model: with
            // disjoint key spaces, its history is sequential, so every
            // response must match exactly (exactly-once effects).
            let mut model = std::collections::BTreeSet::new();
            for i in 0..cfg.keys_per_proc {
                if i % 2 == 0 {
                    model.insert(key_of(p, i, cfg.keys_per_proc));
                }
            }
            for (idx, &(op, resp)) in log.entries.iter().enumerate() {
                let want = set_apply_model(&mut model, op);
                assert_eq!(
                    resp, want,
                    "seed {}: {} proc {p} op #{idx} {op:?} returned {resp} but model says {want} \
                     (an effect was lost or applied twice across the crash); log: {:?}; snapshot: {snapshot:?}",
                    cfg.seed,
                    S::NAME,
                    log.entries,
                );
            }
            if let Some(op) = log.pending {
                // Never-recovered pending op (only when recovery itself kept
                // crashing): the op may or may not have taken effect — accept
                // either model state.
                let mut alt = model.clone();
                set_apply_model(&mut alt, op);
                let part: Vec<u64> = snapshot
                    .iter()
                    .copied()
                    .filter(|k| owner_of(*k, cfg.keys_per_proc) == p)
                    .collect();
                let m: Vec<u64> = model.iter().copied().collect();
                let a: Vec<u64> = alt.iter().copied().collect();
                assert!(
                    part == m || part == a,
                    "seed {}: {} proc {p} final keys {part:?} match neither {m:?} nor {a:?}",
                    cfg.seed,
                    S::NAME
                );
                expected.extend(part);
            } else {
                expected.extend(model.iter().copied());
            }
        }
        assert_eq!(
            snapshot,
            expected.iter().copied().collect::<Vec<u64>>(),
            "seed {}: final {} diverges from the replayed models",
            cfg.seed,
            S::NAME
        );
    }
    sim::reset();
    report
}

/// Runs one seeded list crash scenario (see [`run_set_scenario`]).
pub fn run_list_scenario(cfg: CrashCfg) -> CrashReport {
    run_set_scenario::<RList<SimNvm, 0>>(cfg)
}

/// Runs one seeded BST crash scenario (see [`run_set_scenario`]).
pub fn run_bst_scenario(cfg: CrashCfg) -> CrashReport {
    run_set_scenario::<RBst<SimNvm, 0>>(cfg)
}

/// Runs one seeded sharded-hash-map crash scenario, untuned placement
/// (see [`run_set_scenario`]).
pub fn run_hashmap_scenario(cfg: CrashCfg) -> CrashReport {
    run_set_scenario::<RHashMap<SimNvm, 0>>(cfg)
}

/// Runs one seeded sharded-hash-map crash scenario, hand-tuned placement.
pub fn run_hashmap_opt_scenario(cfg: CrashCfg) -> CrashReport {
    run_set_scenario::<RHashMap<SimNvm, 1>>(cfg)
}

/// Runs one seeded sharded-hash-map crash scenario, coalescing placement.
pub fn run_hashmap_coal_scenario(cfg: CrashCfg) -> CrashReport {
    run_set_scenario::<RHashMap<SimNvm, 2>>(cfg)
}

/// Runs one seeded sharded-hash-map crash scenario, link-persist placement.
pub fn run_hashmap_lp_scenario(cfg: CrashCfg) -> CrashReport {
    run_set_scenario::<RHashMap<SimNvm, 3>>(cfg)
}

// ---------------------------------------------------------------------------
// Queue scenario
// ---------------------------------------------------------------------------

/// Runs one seeded queue crash scenario, paper placement
/// (see [`run_queue_scenario_arm`]).
pub fn run_queue_scenario(cfg: CrashCfg) -> CrashReport {
    run_queue_scenario_arm::<0>(cfg)
}

/// Runs one seeded queue crash scenario, coalescing placement.
pub fn run_queue_coal_scenario(cfg: CrashCfg) -> CrashReport {
    run_queue_scenario_arm::<2>(cfg)
}

/// Runs one seeded queue crash scenario, link-persist placement — the arm
/// whose enqueue merges the tag-phase `psync` into the update-phase one, so
/// the adversarial image may roll the tag CAS back independently of the
/// descriptor state it points at.
pub fn run_queue_lp_scenario(cfg: CrashCfg) -> CrashReport {
    run_queue_scenario_arm::<3>(cfg)
}

/// Runs one seeded queue crash scenario; panics on violations (duplicate or
/// lost values across the crash). Producers/consumers use disjoint pid and
/// value spaces.
pub fn run_queue_scenario_arm<const ARM: u8>(cfg: CrashCfg) -> CrashReport {
    type SimQueue<const ARM: u8> = RQueue<SimNvm, ARM>;
    let _session = SESSION.lock().unwrap_or_else(|e| e.into_inner());
    // Exclusive process-wide simulator session: a concurrent one (e.g. a
    // test bypassing this harness) now panics cleanly instead of corrupting
    // build_crash_image (nvm::sim registry contract).
    let _sim = sim::begin_session();
    sim::quiet_crash_panics();
    sim::reset();
    let mut report = CrashReport::default();
    {
        nvm::tid::set_tid(nvm::MAX_PROCS - 1);
        let q = Arc::new(SimQueue::<ARM>::with_collector(Collector::disabled()));
        let prefill = cfg.keys_per_proc;
        for i in 0..prefill {
            q.enqueue(nvm::MAX_PROCS - 1, 1_000_000_000 + i);
        }
        sim::persist_all();

        let producers = cfg.procs.div_ceil(2).max(1);
        let consumers = (cfg.procs - producers).max(1);
        // Logs: per producer the values acked-enqueued (+ pending value);
        // per consumer the values acked-dequeued (+ whether pending).
        let plogs: Vec<_> =
            (0..producers).map(|_| Arc::new(Mutex::new(ProdLog::default()))).collect();
        let clogs: Vec<_> =
            (0..consumers).map(|_| Arc::new(Mutex::new(ConsLog::default()))).collect();
        // Cooperative crash trigger, as in the set scenario: the worker that
        // completes the seeded target-th operation (< 90% of the workload)
        // arms the crash, so it always lands with operations outstanding.
        let total_ops = ((producers + consumers) * cfg.ops_per_proc) as u64;
        let mut rng = Rng::new(cfg.seed ^ 0xFEED);
        let target = 1 + rng.below(total_ops * 9 / 10);
        let progress = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for (p, log) in plogs.iter().enumerate() {
            let q = Arc::clone(&q);
            let log = Arc::clone(log);
            let progress = Arc::clone(&progress);
            let ops = cfg.ops_per_proc;
            handles.push(std::thread::spawn(move || {
                nvm::tid::set_tid(p);
                for i in 0..ops as u64 {
                    let v = (p as u64 + 1) * 1_000_000 + i;
                    log.lock().unwrap().pending = Some(v);
                    match sim::run_crashable(|| q.enqueue(p, v)) {
                        Ok(()) => {
                            let mut l = log.lock().unwrap();
                            l.pending = None;
                            l.acked.push(v);
                            if progress.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1
                                == target
                            {
                                sim::trigger_crash();
                            }
                        }
                        Err(_) => return,
                    }
                }
            }));
        }
        for (c, log) in clogs.iter().enumerate() {
            let q = Arc::clone(&q);
            let log = Arc::clone(log);
            let progress = Arc::clone(&progress);
            let pid = producers + c;
            let ops = cfg.ops_per_proc;
            handles.push(std::thread::spawn(move || {
                nvm::tid::set_tid(pid);
                for _ in 0..ops {
                    log.lock().unwrap().pending = true;
                    match sim::run_crashable(|| q.dequeue(pid)) {
                        Ok(r) => {
                            let mut l = log.lock().unwrap();
                            l.pending = false;
                            if let Some(v) = r {
                                l.got.push(v);
                            }
                            if progress.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1
                                == target
                            {
                                sim::trigger_crash();
                            }
                        }
                        Err(_) => return,
                    }
                }
            }));
        }
        watchdog_crash(&progress, target);
        for h in handles {
            h.join().unwrap();
        }
        let img = sim::build_crash_image(cfg.seed ^ 0xD1CE);
        report.rolled_back = img.rolled_back;

        // Recovery (single round; queue scenarios keep it simple — repeated
        // recovery crashes are exercised by the list scenario).
        let mut rhandles = Vec::new();
        for (p, log) in plogs.iter().enumerate() {
            let q = Arc::clone(&q);
            let log = Arc::clone(log);
            rhandles.push(std::thread::spawn(move || {
                nvm::tid::set_tid(p);
                let pend = log.lock().unwrap().pending;
                if let Some(v) = pend {
                    sim::run_crashable(|| q.recover_enqueue(p, v)).expect("no crash armed");
                    let mut l = log.lock().unwrap();
                    l.pending = None;
                    l.acked.push(v);
                }
            }));
        }
        for (c, log) in clogs.iter().enumerate() {
            let q = Arc::clone(&q);
            let log = Arc::clone(log);
            let pid = producers + c;
            rhandles.push(std::thread::spawn(move || {
                nvm::tid::set_tid(pid);
                let pend = log.lock().unwrap().pending;
                if pend {
                    let r = sim::run_crashable(|| q.recover_dequeue(pid)).expect("no crash armed");
                    let mut l = log.lock().unwrap();
                    l.pending = false;
                    if let Some(v) = r {
                        l.got.push(v);
                    }
                }
            }));
        }
        for h in rhandles {
            h.join().unwrap();
        }

        // ---- Validation --------------------------------------------------
        let mut q = Arc::into_inner(q).expect("all workers joined");
        // Post-recovery scrub, as in the set driver: the LP arm elides the
        // cleanup untag flushes entirely, so the adversarial image can
        // resurrect tags of *completed* operations — at runtime lazy helping
        // heals them, but the harness validates a quiescent queue now.
        q.scrub();
        q.heal_tail();
        q.check_invariants();
        let remaining = q.snapshot_vals();
        let mut seen = std::collections::HashMap::new();
        for &v in remaining.iter() {
            *seen.entry(v).or_insert(0u32) += 1;
        }
        for log in &clogs {
            let l = log.lock().unwrap();
            report.completed += l.got.len();
            for &v in &l.got {
                *seen.entry(v).or_insert(0) += 1;
            }
        }
        // Every value must exist at most once anywhere (no duplication), and
        // every acked-enqueued value exactly once (no loss).
        for (&v, &n) in &seen {
            assert!(
                n <= 1,
                "seed {}: value {v} appears {n} times (duplicated across crash)",
                cfg.seed
            );
        }
        for i in 0..prefill {
            let v = 1_000_000_000 + i;
            assert_eq!(seen.get(&v), Some(&1), "seed {}: prefilled {v} lost", cfg.seed);
        }
        for log in &plogs {
            let l = log.lock().unwrap();
            report.completed += l.acked.len();
            for &v in &l.acked {
                assert_eq!(
                    seen.get(&v),
                    Some(&1),
                    "seed {}: acked value {v} lost or duplicated",
                    cfg.seed
                );
            }
        }
    }
    sim::reset();
    report
}

// ---------------------------------------------------------------------------

#[derive(Default)]
struct WorkerLog {
    entries: Vec<(SetOp, bool)>,
    pending: Option<SetOp>,
}

impl WorkerLog {
    fn invoke(&mut self, op: SetOp) {
        debug_assert!(self.pending.is_none());
        self.pending = Some(op);
    }
    fn complete(&mut self, resp: bool) {
        let op = self.pending.take().expect("completion without invocation");
        self.entries.push((op, resp));
    }
}

#[derive(Default)]
struct ProdLog {
    acked: Vec<u64>,
    pending: Option<u64>,
}

#[derive(Default)]
struct ConsLog {
    got: Vec<u64>,
    pending: bool,
}

fn key_of(pid: usize, i: u64, keys_per_proc: u64) -> u64 {
    1 + pid as u64 * keys_per_proc + i
}

fn owner_of(key: u64, keys_per_proc: u64) -> usize {
    ((key - 1) / keys_per_proc) as usize
}

fn busy_wait_us(us: u64) {
    let start = std::time::Instant::now();
    while (start.elapsed().as_micros() as u64) < us {
        std::hint::spin_loop();
    }
}

/// Livelock backstop for the cooperative crash trigger: if the workers never
/// reach `target` completions (a progress bug in the structure under test),
/// arm the crash after a generous deadline so the scenario terminates with a
/// diagnosable state instead of hanging `join()` behind the global session
/// lock. `trigger_crash` is idempotent, so racing the cooperative trigger is
/// harmless.
fn watchdog_crash(progress: &std::sync::atomic::AtomicU64, target: u64) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while progress.load(std::sync::atomic::Ordering::Relaxed) < target && !sim::crash_armed() {
        if std::time::Instant::now() >= deadline {
            eprintln!("crash harness watchdog: workers stalled below target; arming crash");
            sim::trigger_crash();
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
