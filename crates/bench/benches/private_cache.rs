//! Criterion mirror of Figure 4: per-op latency in the private-cache model
//! (zero persistency cost) — isolates the algorithmic overhead of
//! detectability, including Harris-LL as the non-recoverable baseline.

use baselines::capsules_list::CapsulesList;
use baselines::dt_list::DtList;
use baselines::harris::HarrisList;
use bench_harness::adapters::SetBench;
use bench_harness::workload::{prefill_set, run_set, Mix, SetCfg};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isb::list::RList;
use nvm::NoPersist;
use std::sync::Arc;
use std::time::Duration;

fn time_per_op<B: SetBench + 'static>(s: Arc<B>, iters: u64) -> Duration {
    prefill_set(&*s, 500, 7);
    let r = run_set(
        s,
        SetCfg {
            threads: 2,
            key_range: 500,
            mix: Mix::READ_INTENSIVE,
            duration: Duration::from_millis(100),
            seed: 42,
        },
    );
    Duration::from_secs_f64(r.elapsed.as_secs_f64() / r.ops.max(1) as f64 * iters as f64)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_private_cache");
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter("Harris-LL"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(HarrisList::<NoPersist>::new()), iters))
    });
    g.bench_function(BenchmarkId::from_parameter("DT-Opt"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(DtList::<NoPersist>::new()), iters))
    });
    g.bench_function(BenchmarkId::from_parameter("Capsules-Opt"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(CapsulesList::<NoPersist, true>::new()), iters))
    });
    g.bench_function(BenchmarkId::from_parameter("Isb"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(RList::<NoPersist, 0>::new()), iters))
    });
    g.bench_function(BenchmarkId::from_parameter("Isb-Opt"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(RList::<NoPersist, 1>::new()), iters))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
