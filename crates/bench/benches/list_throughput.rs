//! Criterion mirror of Figures 1a/1d/1e/1f/3: per-operation latency of every
//! list implementation under the paper's workload mixes (shared-cache model,
//! real clflush/mfence) — plus the fig9 allocation ablation (pooled vs
//! boxed, counting model, 1 and 4 threads).

use baselines::capsules_list::CapsulesList;
use baselines::dt_list::DtList;
use bench_harness::adapters::SetBench;
use bench_harness::workload::{prefill_set, run_set, Mix, SetCfg};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isb::list::RList;
use nvm::{CountingNvm, RealNvm};
use std::sync::Arc;
use std::time::Duration;

fn time_per_op_at<B: SetBench + 'static>(
    s: Arc<B>,
    threads: usize,
    mix: Mix,
    range: u64,
    iters: u64,
) -> Duration {
    prefill_set(&*s, range, 7);
    let r = run_set(
        s,
        SetCfg { threads, key_range: range, mix, duration: Duration::from_millis(120), seed: 42 },
    );
    Duration::from_secs_f64(r.elapsed.as_secs_f64() / r.ops.max(1) as f64 * iters as f64)
}

fn time_per_op<B: SetBench + 'static>(s: Arc<B>, mix: Mix, range: u64, iters: u64) -> Duration {
    time_per_op_at(s, 2, mix, range, iters)
}

fn bench(c: &mut Criterion) {
    for (mix, label) in
        [(Mix::READ_INTENSIVE, "read-intensive"), (Mix::UPDATE_INTENSIVE, "update-intensive")]
    {
        let mut g = c.benchmark_group(format!("fig1_list_{label}_range500"));
        g.sample_size(10);
        g.bench_function(BenchmarkId::from_parameter("Isb"), |b| {
            b.iter_custom(|iters| {
                time_per_op(Arc::new(RList::<RealNvm, 0>::new()), mix, 500, iters)
            })
        });
        g.bench_function(BenchmarkId::from_parameter("Isb-Opt"), |b| {
            b.iter_custom(|iters| {
                time_per_op(Arc::new(RList::<RealNvm, 1>::new()), mix, 500, iters)
            })
        });
        g.bench_function(BenchmarkId::from_parameter("Capsules-Opt"), |b| {
            b.iter_custom(|iters| {
                time_per_op(Arc::new(CapsulesList::<RealNvm, true>::new()), mix, 500, iters)
            })
        });
        g.bench_function(BenchmarkId::from_parameter("DT-Opt"), |b| {
            b.iter_custom(|iters| time_per_op(Arc::new(DtList::<RealNvm>::new()), mix, 500, iters))
        });
        g.finish();
    }

    // fig9 allocation ablation: pooled (default) vs boxed (pre-pool
    // behaviour), counting model so the allocator effect isn't buried under
    // hardware-dependent clflush latency. Persist placement is identical in
    // both arms (golden-tested), so only the hot-path allocation differs.
    for threads in [1usize, 4] {
        let mut g = c.benchmark_group(format!("fig9_list_alloc_{threads}t_read-heavy_range500"));
        g.sample_size(10);
        g.bench_function(BenchmarkId::from_parameter("Isb-pooled"), |b| {
            b.iter_custom(|iters| {
                time_per_op_at(
                    Arc::new(RList::<CountingNvm, 0>::new()),
                    threads,
                    Mix::READ_INTENSIVE,
                    500,
                    iters,
                )
            })
        });
        g.bench_function(BenchmarkId::from_parameter("Isb-boxed"), |b| {
            b.iter_custom(|iters| {
                time_per_op_at(
                    Arc::new(RList::<CountingNvm, 0>::boxed()),
                    threads,
                    Mix::READ_INTENSIVE,
                    500,
                    iters,
                )
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
