//! Criterion mirror of Figures 1a/1d/1e/1f/3: per-operation latency of every
//! list implementation under the paper's workload mixes (shared-cache model,
//! real clflush/mfence).

use baselines::capsules_list::CapsulesList;
use baselines::dt_list::DtList;
use bench_harness::adapters::SetBench;
use bench_harness::workload::{prefill_set, run_set, Mix, SetCfg};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isb::list::RList;
use nvm::RealNvm;
use std::sync::Arc;
use std::time::Duration;

fn time_per_op<B: SetBench + 'static>(s: Arc<B>, mix: Mix, range: u64, iters: u64) -> Duration {
    prefill_set(&*s, range, 7);
    let r = run_set(
        s,
        SetCfg {
            threads: 2,
            key_range: range,
            mix,
            duration: Duration::from_millis(120),
            seed: 42,
        },
    );
    Duration::from_secs_f64(r.elapsed.as_secs_f64() / r.ops.max(1) as f64 * iters as f64)
}

fn bench(c: &mut Criterion) {
    for (mix, label) in
        [(Mix::READ_INTENSIVE, "read-intensive"), (Mix::UPDATE_INTENSIVE, "update-intensive")]
    {
        let mut g = c.benchmark_group(format!("fig1_list_{label}_range500"));
        g.sample_size(10);
        g.bench_function(BenchmarkId::from_parameter("Isb"), |b| {
            b.iter_custom(|iters| {
                time_per_op(Arc::new(RList::<RealNvm, false>::new()), mix, 500, iters)
            })
        });
        g.bench_function(BenchmarkId::from_parameter("Isb-Opt"), |b| {
            b.iter_custom(|iters| {
                time_per_op(Arc::new(RList::<RealNvm, true>::new()), mix, 500, iters)
            })
        });
        g.bench_function(BenchmarkId::from_parameter("Capsules-Opt"), |b| {
            b.iter_custom(|iters| {
                time_per_op(Arc::new(CapsulesList::<RealNvm, true>::new()), mix, 500, iters)
            })
        });
        g.bench_function(BenchmarkId::from_parameter("DT-Opt"), |b| {
            b.iter_custom(|iters| time_per_op(Arc::new(DtList::<RealNvm>::new()), mix, 500, iters))
        });
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
