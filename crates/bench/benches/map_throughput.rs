//! Sharded hash-map throughput: per-operation latency of `RHashMap` as the
//! shard count grows, on a multi-thread run (shared-cache model). A
//! one-shard map is exactly the Isb list, so the sweep directly shows what
//! sharding buys over the single-head structure; `RList` itself is included
//! as the wrapper-overhead control.

use bench_harness::adapters::SetBench;
use bench_harness::workload::{prefill_set, run_set, Mix, SetCfg};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isb::hashmap::RHashMap;
use isb::list::RList;
use nvm::RealNvm;
use std::sync::Arc;
use std::time::Duration;

const THREADS: usize = 4;
const RANGE: u64 = 4096;

fn time_per_op<B: SetBench + 'static>(s: Arc<B>, iters: u64) -> Duration {
    prefill_set(&*s, RANGE, 7);
    let r = run_set(
        s,
        SetCfg {
            threads: THREADS,
            key_range: RANGE,
            mix: Mix::UPDATE_INTENSIVE,
            duration: Duration::from_millis(120),
            seed: 42,
        },
    );
    Duration::from_secs_f64(r.elapsed.as_secs_f64() / r.ops.max(1) as f64 * iters as f64)
}

fn mops<B: SetBench + 'static>(s: Arc<B>) -> f64 {
    prefill_set(&*s, RANGE, 7);
    run_set(
        s,
        SetCfg {
            threads: THREADS,
            key_range: RANGE,
            mix: Mix::UPDATE_INTENSIVE,
            duration: Duration::from_millis(120),
            seed: 42,
        },
    )
    .mops()
}

fn bench(c: &mut Criterion) {
    // Shard-scaling summary first (the number the sweep exists to show).
    for shards in [1usize, 4, 16, 64] {
        let m = mops(Arc::new(RHashMap::<RealNvm, 0>::with_shards(shards)));
        println!("[map_throughput] {THREADS} threads, {shards:>2} shards: {m:.3} Mops/s");
    }

    let mut g = c.benchmark_group(format!("map_shard_sweep_{THREADS}t_range{RANGE}"));
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter("Isb-list"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(RList::<RealNvm, 0>::new()), iters))
    });
    for shards in [1usize, 4, 16, 64] {
        g.bench_function(BenchmarkId::from_parameter(format!("Isb-HM/{shards}")), |b| {
            b.iter_custom(|iters| {
                time_per_op(Arc::new(RHashMap::<RealNvm, 0>::with_shards(shards)), iters)
            })
        });
    }
    g.bench_function(BenchmarkId::from_parameter("Isb-HM-Opt/16"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(RHashMap::<RealNvm, 1>::with_shards(16)), iters))
    });
    // fig9 allocation-ablation arm: the same sweep point with pooling off
    // (pre-pool heap allocation per descriptor/node), for the pooled-vs-
    // boxed comparison at the default shard count.
    g.bench_function(BenchmarkId::from_parameter("Isb-HM/16-boxed"), |b| {
        b.iter_custom(|iters| {
            time_per_op(Arc::new(RHashMap::<RealNvm, 0>::boxed_with_shards(16)), iters)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
