//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Persistency-mode ablation**: the same ISB list under real flushes,
//!    counting-only, and private-cache — isolating how much of the cost is
//!    clflush/mfence versus algorithmic.
//! 2. **Tuned-placement ablation**: Isb vs Isb-Opt (paper placement vs
//!    hand-tuned batching), the paper's central optimisation.
//! 3. **Elimination ablation**: the recoverable stack's exchanger layer
//!    under producer/consumer contention.

use bench_harness::adapters::SetBench;
use bench_harness::workload::{prefill_set, run_set, Mix, SetCfg};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isb::list::RList;
use isb::stack::RStack;
use nvm::{CountingNvm, NoPersist, RealNvm};
use std::sync::Arc;
use std::time::Duration;

fn time_per_op<B: SetBench + 'static>(s: Arc<B>, iters: u64) -> Duration {
    prefill_set(&*s, 500, 7);
    let r = run_set(
        s,
        SetCfg {
            threads: 2,
            key_range: 500,
            mix: Mix::UPDATE_INTENSIVE,
            duration: Duration::from_millis(100),
            seed: 42,
        },
    );
    Duration::from_secs_f64(r.elapsed.as_secs_f64() / r.ops.max(1) as f64 * iters as f64)
}

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_persistency_mode");
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter("real-flushes"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(RList::<RealNvm, 1>::new()), iters))
    });
    g.bench_function(BenchmarkId::from_parameter("counting-only"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(RList::<CountingNvm, 1>::new()), iters))
    });
    g.bench_function(BenchmarkId::from_parameter("private-cache"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(RList::<NoPersist, 1>::new()), iters))
    });
    g.finish();

    let mut g = c.benchmark_group("ablation_tuned_placement");
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter("paper-placement"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(RList::<RealNvm, 0>::new()), iters))
    });
    g.bench_function(BenchmarkId::from_parameter("hand-tuned"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(RList::<RealNvm, 1>::new()), iters))
    });
    g.finish();
}

fn bench_stack(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_elimination_stack");
    g.sample_size(10);
    g.bench_function("push_pop_pairs_2threads", |b| {
        b.iter_custom(|iters| {
            let s = Arc::new(RStack::<RealNvm>::new());
            let start = std::time::Instant::now();
            let ops_per_thread = 2_000u64;
            let hs: Vec<_> = (0..2usize)
                .map(|t| {
                    let s = Arc::clone(&s);
                    std::thread::spawn(move || {
                        nvm::tid::set_tid(t);
                        for i in 0..ops_per_thread {
                            s.push(t, i + 1);
                            std::hint::black_box(s.pop(t));
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            let total_ops = 2 * 2 * ops_per_thread;
            Duration::from_secs_f64(start.elapsed().as_secs_f64() / total_ops as f64 * iters as f64)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_modes, bench_stack);
criterion_main!(benches);
