//! Criterion mirror of Figures 1b/1c/5/6: the *number* of persistency
//! instructions per operation (counting mode — no real flushes), asserted as
//! custom measurements via per-op wall time under CountingNvm plus printed
//! counter summaries.

use baselines::capsules_list::CapsulesList;
use baselines::dt_list::DtList;
use bench_harness::adapters::SetBench;
use bench_harness::workload::{prefill_set, run_set, Mix, SetCfg};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isb::list::RList;
use nvm::CountingNvm;
use std::sync::Arc;
use std::time::Duration;

fn counted_run<B: SetBench + 'static + ?Sized>(s: Arc<B>, range: u64) -> (f64, f64) {
    prefill_set(&*s, range, 7);
    nvm::stats::reset();
    let r = run_set(
        s,
        SetCfg {
            threads: 2,
            key_range: range,
            mix: Mix::UPDATE_INTENSIVE,
            duration: Duration::from_millis(100),
            seed: 42,
        },
    );
    (r.barriers_per_op(), r.flushes_per_op())
}

type AlgoFactory = Box<dyn Fn() -> Arc<dyn SetBench>>;

fn bench(c: &mut Criterion) {
    // Print the paper-figure counters once per algorithm, then benchmark the
    // counting-mode run itself (its cost ≈ algorithmic cost minus flushes).
    let algos: Vec<(&str, AlgoFactory)> = vec![
        ("Isb", Box::new(|| Arc::new(RList::<CountingNvm, 0>::new()))),
        ("Isb-Opt", Box::new(|| Arc::new(RList::<CountingNvm, 1>::new()))),
        ("Capsules-Opt", Box::new(|| Arc::new(CapsulesList::<CountingNvm, true>::new()))),
        ("DT-Opt", Box::new(|| Arc::new(DtList::<CountingNvm>::new()))),
    ];
    for (name, mk) in &algos {
        let (b, f) = counted_run(mk(), 500);
        println!("[fig1b/c] {name}: {b:.2} barriers/op, {f:.2} stand-alone flushes/op");
    }
    let mut g = c.benchmark_group("fig1bc_counting_mode");
    g.sample_size(10);
    for (name, mk) in algos {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_custom(|iters| {
                let s = mk();
                prefill_set(&*s, 500, 7);
                let r = run_set(
                    s,
                    SetCfg {
                        threads: 2,
                        key_range: 500,
                        mix: Mix::UPDATE_INTENSIVE,
                        duration: Duration::from_millis(80),
                        seed: 42,
                    },
                );
                Duration::from_secs_f64(
                    r.elapsed.as_secs_f64() / r.ops.max(1) as f64 * iters as f64,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
