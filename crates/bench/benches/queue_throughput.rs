//! Criterion mirror of Figure 7: queue per-op latency, shared-cache and
//! private-cache models.

use baselines::capsules_queue::CapsulesQueue;
use baselines::log_queue::LogQueue;
use baselines::ms_queue::MsQueue;
use bench_harness::adapters::QueueBench;
use bench_harness::workload::{run_queue, QueueCfg};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isb::queue::RQueue;
use nvm::{NoPersist, RealNvm};
use std::sync::Arc;
use std::time::Duration;

fn time_per_op<B: QueueBench + 'static>(q: Arc<B>, iters: u64) -> Duration {
    let r = run_queue(
        q,
        QueueCfg { threads: 2, prefill: 20_000, duration: Duration::from_millis(100) },
    );
    Duration::from_secs_f64(r.elapsed.as_secs_f64() / r.ops.max(1) as f64 * iters as f64)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_queue_shared_cache");
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter("Isb-Q"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(RQueue::<RealNvm, 1>::new()), iters))
    });
    g.bench_function(BenchmarkId::from_parameter("Log-Queue"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(LogQueue::<RealNvm>::new()), iters))
    });
    g.bench_function(BenchmarkId::from_parameter("Capsules-Normal"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(CapsulesQueue::<RealNvm, true>::new()), iters))
    });
    g.bench_function(BenchmarkId::from_parameter("Capsules-General"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(CapsulesQueue::<RealNvm, false>::new()), iters))
    });
    g.finish();

    let mut g = c.benchmark_group("fig7_queue_private_cache");
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter("MS-Queue"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(MsQueue::<NoPersist>::new()), iters))
    });
    g.bench_function(BenchmarkId::from_parameter("Isb-Q"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(RQueue::<NoPersist, 1>::new()), iters))
    });
    g.bench_function(BenchmarkId::from_parameter("Log-Queue"), |b| {
        b.iter_custom(|iters| time_per_op(Arc::new(LogQueue::<NoPersist>::new()), iters))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
