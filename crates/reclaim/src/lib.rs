//! # `reclaim` — epoch-based memory reclamation (EBR)
//!
//! The paper's implementations "rely on garbage collectors that correctly
//! recycle memory once it becomes unreachable" (Section 7). Rust has no GC,
//! so this crate provides the substrate: a classic three-epoch EBR scheme
//! with per-process (padded) slots, per-process limbo bags and a global
//! epoch.
//!
//! * A thread **pins** ([`Collector::pin`]) before traversing a structure and
//!   holds the [`Guard`] for the duration of one operation attempt. Pins are
//!   re-entrant.
//! * Unreachable objects are **retired** ([`Guard::retire_box`] /
//!   [`Guard::retire_with`]); they are freed only after every thread pinned
//!   at retirement time has unpinned (two global epoch advances).
//! * A [`Collector`] can be created **disabled** ([`Collector::disabled`]):
//!   pins become no-ops and retired objects are kept until the collector is
//!   dropped. This is the defined behaviour of crash-simulation runs — a
//!   crash must not free anything, because recovery code may still inspect
//!   it (recoverable memory managers are future work in the paper, too).
//!
//! Each data structure owns its own `Collector`, so a stalled thread in one
//! structure never blocks reclamation in another.
//!
//! ## Cross-process epochs (shared mapped heaps)
//!
//! When several processes attach one `MappedHeap`, their collectors must
//! agree on epochs — an address retired by one process may still be read by
//! another. [`Collector::attach_shared`] redirects the global epoch and the
//! per-process *announce* words into a caller-provided region of the shared
//! arena (layout: one cache line for the global epoch, then one line per
//! process slot holding its announce word and a cross-collector pin depth).
//! Limbo bags stay process-local: each process frees only what *it* retired,
//! once the shared epoch has advanced past every announced pin — including
//! the announcements of peer processes. A SIGKILLed peer leaves its announce
//! word pinned, which stalls (never corrupts) reclamation until the recovery
//! path calls [`Collector::release_shared_band`] for the dead slot.
//!
//! ## Recycling rules (object pools)
//!
//! [`Guard::retire_ctx`] defers an arbitrary *recycle* action instead of a
//! free: the `isb` object pools use it to route a retired descriptor/node
//! back into a per-thread free list (or, under the mapped backend, back to
//! the persistent arena). The contract is exactly that of a free — the
//! action runs only after two global epoch advances, so an address re-enters
//! circulation no earlier than deallocation would have allowed, and the
//! ABA argument for tagged info pointers carries over unchanged. Only
//! *enabled* collectors accept `retire_ctx`; disabled (crash-sim) collectors
//! park plain frees so [`Collector::take_parked`] can deduplicate them
//! against the post-crash reachable set.

#![warn(missing_docs)]

use nvm::pad::CachePadded;
use nvm::tid;
use nvm::MAX_PROCS;
use std::cell::UnsafeCell;
use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering::SeqCst;
use std::sync::Mutex;

/// A deferred deallocation handed back by [`Collector::take_parked`]: the
/// raw allocation plus the function that frees it (exactly once).
pub type DeferredFree = (*mut u8, unsafe fn(*mut u8));

/// A deferred reclamation action: either a plain deallocation or a
/// context-carrying recycle hook ([`Guard::retire_ctx`] — object pools route
/// retirement back into their free lists through this).
enum Garbage {
    Plain { ptr: *mut u8, drop_fn: unsafe fn(*mut u8) },
    Ctx { ptr: *mut u8, ctx: *mut u8, drop_fn: unsafe fn(*mut u8, *mut u8) },
}

unsafe impl Send for Garbage {}

impl Garbage {
    unsafe fn free(self) {
        match self {
            Garbage::Plain { ptr, drop_fn } => unsafe { drop_fn(ptr) },
            Garbage::Ctx { ptr, ctx, drop_fn } => unsafe { drop_fn(ptr, ctx) },
        }
    }
}

unsafe fn drop_box<T>(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut T) });
}

const UNPINNED: u64 = 0;
const GENS: usize = 3;
/// How many pins between attempts to advance the global epoch.
const ADVANCE_PERIOD: u64 = 64;

/// Bytes a shared epoch region occupies: one cache line for the global epoch
/// plus one per process slot (announce word at offset 0, cross-collector pin
/// depth at offset 8). See [`Collector::attach_shared`].
pub const fn shared_region_bytes() -> usize {
    (1 + MAX_PROCS) * nvm::CACHE_LINE
}

/// Pointer into a shared epoch region (see [`Collector::attach_shared`]).
struct SharedEpochs {
    base: *mut u8,
}

unsafe impl Send for SharedEpochs {}
unsafe impl Sync for SharedEpochs {}

impl SharedEpochs {
    #[inline]
    fn global(&self) -> &AtomicU64 {
        // SAFETY: attach contract — `base` points to `shared_region_bytes()`
        // valid bytes, 8-aligned, outliving the collector.
        unsafe { &*(self.base as *const AtomicU64) }
    }

    #[inline]
    fn announce(&self, pid: usize) -> &AtomicU64 {
        // SAFETY: as above; `pid < MAX_PROCS` (tid() is bounded).
        unsafe { &*(self.base.add((1 + pid) * nvm::CACHE_LINE) as *const AtomicU64) }
    }

    /// Cross-collector pin depth for `pid` — written only by the owning
    /// process's thread (and by recovery once that process is dead).
    #[inline]
    fn depth(&self, pid: usize) -> &AtomicU64 {
        // SAFETY: as above.
        unsafe { &*(self.base.add((1 + pid) * nvm::CACHE_LINE + 8) as *const AtomicU64) }
    }
}

/// Thread-private reclamation state (owned exclusively by the slot's thread).
struct Bags {
    depth: u32,
    pins: u64,
    bags: [Vec<Garbage>; GENS],
    bag_epochs: [u64; GENS],
}

impl Default for Bags {
    fn default() -> Self {
        Self { depth: 0, pins: 0, bags: Default::default(), bag_epochs: [u64::MAX; GENS] }
    }
}

#[derive(Default)]
struct Slot {
    /// `(epoch << 1) | 1` while pinned; [`UNPINNED`] otherwise.
    state: AtomicU64,
    bags: UnsafeCell<Bags>,
}

unsafe impl Sync for Slot {}

/// An epoch-based garbage collector (see crate docs).
pub struct Collector {
    global: CachePadded<AtomicU64>,
    slots: Vec<CachePadded<Slot>>,
    /// When `Some`, the global epoch and announce words live in this shared
    /// region instead of the two fields above ([`Collector::attach_shared`]).
    shared: Option<SharedEpochs>,
    enabled: bool,
    /// Retired-but-never-freed garbage in disabled mode (freed on drop).
    parked: Mutex<Vec<Garbage>>,
}

unsafe impl Send for Collector {}
unsafe impl Sync for Collector {}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A collector that actually reclaims memory.
    pub fn new() -> Self {
        Self::with_mode(true)
    }

    /// A collector whose `retire`s are parked until drop (crash-sim mode).
    pub fn disabled() -> Self {
        Self::with_mode(false)
    }

    fn with_mode(enabled: bool) -> Self {
        Self {
            global: CachePadded::new(AtomicU64::new(1)),
            slots: (0..MAX_PROCS).map(|_| CachePadded::new(Slot::default())).collect(),
            shared: None,
            enabled,
            parked: Mutex::new(Vec::new()),
        }
    }

    /// Whether this collector actually frees memory.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether this collector's epochs live in a shared region.
    pub fn is_shared(&self) -> bool {
        self.shared.is_some()
    }

    /// Redirects this collector's global epoch and announce words into a
    /// shared memory region (typically a mapped-heap root block), making
    /// every collector attached to the same region — across structures *and*
    /// processes — one epoch domain.
    ///
    /// Limbo bags stay process-local: objects retired through this collector
    /// are freed by this process once the shared epoch advances two steps,
    /// which requires every live participant to unpin. On drop a shared
    /// collector **leaks** still-deferred garbage instead of freeing it — a
    /// peer process may still be pinned reading it, and the blocks live in
    /// the persistent arena anyway; the sweep of the next full (exclusive)
    /// attach reclaims them.
    ///
    /// Within one process, several collectors (one per structure) may attach
    /// the same region. They share one announce word per process slot; a
    /// per-slot depth word makes the announcement re-entrant across
    /// collectors, so interleaved guards from different structures cannot
    /// clear each other's pin.
    ///
    /// # Safety
    /// `region` must point to [`shared_region_bytes`] bytes of 8-aligned
    /// memory shared by all participants, initialised exactly once via
    /// [`Collector::init_shared_region`], and outliving this collector. Must
    /// be called before the collector is used (no live guards, nothing
    /// retired). All participants must agree on [`MAX_PROCS`] and process
    /// slot assignment.
    pub unsafe fn attach_shared(&mut self, region: *mut u8) {
        assert!(self.enabled, "shared epochs require an enabled collector");
        self.shared = Some(SharedEpochs { base: region });
    }

    /// Zeroes a shared epoch region and seeds the global epoch to 1 (the
    /// same starting epoch as a fresh owned collector). The *initial*
    /// attacher of a shared heap calls this exactly once, before any
    /// collector attaches; joiners must not (a live region holds peers'
    /// pins).
    ///
    /// # Safety
    /// `region` must point to [`shared_region_bytes`] writable, 8-aligned
    /// bytes not currently in use by any collector.
    pub unsafe fn init_shared_region(region: *mut u8) {
        unsafe { std::ptr::write_bytes(region, 0, shared_region_bytes()) };
        let sh = SharedEpochs { base: region };
        sh.global().store(1, SeqCst);
    }

    /// Releases the announce words of the process slots in `band` — the
    /// recovery path calls this for a dead participant's tid band, so an
    /// epoch pinned at the moment of death stops wedging reclamation.
    /// Returns how many words were actually found pinned (each was stalling
    /// global advance).
    ///
    /// # Safety
    /// `region` must be a live shared epoch region and every slot in `band`
    /// must belong to a dead (or never-started) process: releasing a live
    /// process's pin would expose it to use-after-free.
    pub unsafe fn release_shared_band(region: *mut u8, band: std::ops::Range<usize>) -> usize {
        let sh = SharedEpochs { base: region };
        let mut stalled = 0;
        for pid in band {
            if sh.announce(pid).swap(UNPINNED, SeqCst) != UNPINNED {
                stalled += 1;
            }
            sh.depth(pid).store(0, SeqCst);
        }
        stalled
    }

    #[inline]
    fn global_word(&self) -> &AtomicU64 {
        match &self.shared {
            Some(sh) => sh.global(),
            None => &self.global,
        }
    }

    #[inline]
    fn announce_of(&self, pid: usize) -> &AtomicU64 {
        match &self.shared {
            Some(sh) => sh.announce(pid),
            None => &self.slots[pid].state,
        }
    }

    /// Pins the calling thread; reclamation of anything retired afterwards
    /// is deferred until the returned guard (and any nested guards) drop.
    ///
    /// Nested pins take a fast path: a thread already pinned only bumps its
    /// re-entrancy depth — no epoch-table traffic. Data structures exploit
    /// this by holding **one** guard per operation and letting interior
    /// helpers (`op_recover`, recursive helping) re-pin for free.
    #[inline]
    pub fn pin(&self) -> Guard<'_> {
        let pid = tid::tid();
        if !self.enabled {
            return Guard { c: self, pid, active: false };
        }
        let slot = &self.slots[pid];
        // SAFETY: `bags` is only touched by the thread owning slot `pid`.
        let bags = unsafe { &mut *slot.bags.get() };
        bags.depth += 1;
        if bags.depth == 1 {
            self.pin_outermost(pid, bags);
        }
        Guard { c: self, pid, active: true }
    }

    /// The outermost-pin slow path: announce an epoch, free ripe bags, and
    /// periodically try to advance the global epoch.
    fn pin_outermost(&self, pid: usize, bags: &mut Bags) {
        let epoch = if let Some(sh) = &self.shared {
            // Collectors attached to the same region share one announce word
            // per process slot. Only the first outermost pin across all of
            // them announces; later ones adopt the already-announced epoch
            // (older or equal — strictly more conservative for `collect`).
            // The depth word is written only by the owning thread, so plain
            // load/store pairs are race-free.
            let d = sh.depth(pid).load(SeqCst);
            sh.depth(pid).store(d + 1, SeqCst);
            if d == 0 {
                self.announce(sh.announce(pid))
            } else {
                sh.announce(pid).load(SeqCst) >> 1
            }
        } else {
            self.announce(&self.slots[pid].state)
        };
        bags.pins += 1;
        self.collect(bags, epoch);
        if bags.pins.is_multiple_of(ADVANCE_PERIOD) {
            self.try_advance(epoch);
        }
    }

    /// Announce-and-stabilise: publish a pin at the current global epoch,
    /// re-reading until the announced value is the epoch the global held
    /// *after* the store became visible.
    fn announce(&self, state: &AtomicU64) -> u64 {
        let mut epoch = self.global_word().load(SeqCst);
        loop {
            state.store((epoch << 1) | 1, SeqCst);
            let now = self.global_word().load(SeqCst);
            if now == epoch {
                return epoch;
            }
            epoch = now;
        }
    }

    /// Frees bags at least two epochs old.
    fn collect(&self, bags: &mut Bags, epoch: u64) {
        for i in 0..GENS {
            let e = bags.bag_epochs[i];
            if e != u64::MAX && epoch >= e + 2 && !bags.bags[i].is_empty() {
                for g in bags.bags[i].drain(..) {
                    // SAFETY: retired in epoch e, and every thread pinned at
                    // that time has since unpinned (global advanced by ≥2).
                    unsafe { g.free() };
                }
                bags.bag_epochs[i] = u64::MAX;
            }
        }
    }

    fn try_advance(&self, epoch: u64) {
        for pid in 0..MAX_PROCS {
            let s = self.announce_of(pid).load(SeqCst);
            if s != UNPINNED && (s >> 1) != epoch {
                return;
            }
        }
        let _ = self.global_word().compare_exchange(epoch, epoch + 1, SeqCst, SeqCst);
    }

    fn unpin(&self, pid: usize) {
        let slot = &self.slots[pid];
        // SAFETY: slot owner.
        let bags = unsafe { &mut *slot.bags.get() };
        debug_assert!(bags.depth > 0);
        bags.depth -= 1;
        if bags.depth == 0 {
            if let Some(sh) = &self.shared {
                // Mirror of the shared pin path: only the last collector of
                // this process to unpin clears the shared announce word.
                let d = sh.depth(pid).load(SeqCst);
                debug_assert!(d > 0, "shared unpin without a shared pin");
                sh.depth(pid).store(d.saturating_sub(1), SeqCst);
                if d <= 1 {
                    sh.announce(pid).store(UNPINNED, SeqCst);
                }
            } else {
                slot.state.store(UNPINNED, SeqCst);
            }
        }
    }

    fn retire_raw(&self, pid: usize, g: Garbage) {
        if !self.enabled {
            self.parked.lock().unwrap().push(g);
            return;
        }
        let slot = &self.slots[pid];
        // SAFETY: slot owner; retire is only legal while pinned.
        let bags = unsafe { &mut *slot.bags.get() };
        debug_assert!(bags.depth > 0, "retire outside of a pin");
        // Seal with the CURRENT global epoch, not the epoch this thread
        // pinned at. The global may have advanced one step during our pin
        // (advancement only waits for threads announcing OLDER epochs), so
        // a reader pinned at `pin_epoch + 1` may have obtained a reference
        // to this object before we unlinked it. Sealing with `pin_epoch`
        // would free at global `pin_epoch + 2` — an advancement that reader
        // does NOT block (it announces `pin_epoch + 1`) — a one-epoch-early
        // use-after-free. Sealing with the epoch loaded here (SeqCst,
        // strictly after the unlink) is airtight: in the SeqCst total order
        // every reader that obtained the pointer before the unlink pinned
        // no later than this load, so it announced at most `e` and blocks
        // advancement beyond `e + 1`, while the bag is freed only once the
        // global reaches `e + 2`. The same argument carries to shared
        // regions verbatim: announce words and the global live in memory
        // with SeqCst semantics regardless of which process wrote them.
        let e = self.global_word().load(SeqCst);
        let idx = (e % GENS as u64) as usize;
        if bags.bag_epochs[idx] != e {
            // The slot cycled to a new epoch: its old content is ≥3 epochs old.
            for old in bags.bags[idx].drain(..) {
                unsafe { old.free() };
            }
            bags.bag_epochs[idx] = e;
        }
        bags.bags[idx].push(g);
    }

    /// Takes ownership of all *parked* garbage (disabled mode). Used by
    /// structure teardown after a simulated crash: the crash image may have
    /// rolled pointers back, resurrecting reachability to retired objects,
    /// so the structure must free the union of {reachable} ∪ {parked}
    /// deduplicated by address rather than let both sides free separately.
    ///
    /// Returns `(address, drop_fn)` pairs; the caller becomes responsible
    /// for freeing each address exactly once.
    pub fn take_parked(&mut self) -> Vec<DeferredFree> {
        self.parked
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .map(|g| match g {
                Garbage::Plain { ptr, drop_fn } => (ptr, drop_fn),
                // retire_ctx asserts the collector is enabled, so parked
                // garbage is always plain.
                Garbage::Ctx { .. } => unreachable!("ctx retire parked on a disabled collector"),
            })
            .collect()
    }

    /// Number of objects currently awaiting reclamation (diagnostics only;
    /// racy when other threads are active).
    pub fn pending(&self) -> usize {
        let parked = self.parked.lock().unwrap().len();
        let mut n = parked;
        for slot in &self.slots {
            let bags = unsafe { &*slot.bags.get() };
            n += bags.bags.iter().map(Vec::len).sum::<usize>();
        }
        n
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        // Shared mode LEAKS still-deferred garbage instead of force-freeing:
        // a peer process may still be pinned reading it, and the objects are
        // persistent-arena blocks — the sweep of the next full (exclusive)
        // attach reclaims anything unreachable.
        if self.shared.is_none() {
            for slot in &self.slots {
                let bags = unsafe { &mut *slot.bags.get() };
                for bag in &mut bags.bags {
                    for g in bag.drain(..) {
                        unsafe { g.free() };
                    }
                }
            }
        }
        for g in self.parked.get_mut().unwrap().drain(..) {
            unsafe { g.free() };
        }
    }
}

/// RAII pin token; see [`Collector::pin`].
pub struct Guard<'c> {
    c: &'c Collector,
    pid: usize,
    active: bool,
}

impl Guard<'_> {
    /// Defers deallocation of `ptr` (a `Box::into_raw` allocation) until no
    /// pinned thread can still hold a reference.
    ///
    /// # Safety
    /// `ptr` must be a valid `Box<T>` allocation, unreachable to any thread
    /// that pins after this call, and retired exactly once.
    pub unsafe fn retire_box<T>(&self, ptr: *mut T) {
        self.c.retire_raw(self.pid, Garbage::Plain { ptr: ptr as *mut u8, drop_fn: drop_box::<T> });
    }

    /// Defers an arbitrary reclamation action (same contract as
    /// [`Guard::retire_box`]; `drop_fn` runs on the retiring thread later).
    ///
    /// # Safety
    /// See [`Guard::retire_box`]; additionally `drop_fn(ptr)` must be safe to
    /// call once `ptr` is unreachable.
    pub unsafe fn retire_with(&self, ptr: *mut u8, drop_fn: unsafe fn(*mut u8)) {
        self.c.retire_raw(self.pid, Garbage::Plain { ptr, drop_fn });
    }

    /// Defers a reclamation action that carries a context pointer —
    /// `drop_fn(ptr, ctx)` runs once no pinned thread can still reference
    /// `ptr` (two global epoch advances, like [`Guard::retire_box`]). Object
    /// pools use this to route retirement back into a free list instead of
    /// the allocator: the epoch delay is exactly what makes address reuse
    /// safe under the same argument as deallocation.
    ///
    /// Only legal on an enabled collector: parked (crash-sim) garbage must
    /// stay expressible as plain frees for [`Collector::take_parked`].
    ///
    /// # Safety
    /// See [`Guard::retire_box`]; additionally `ctx` must stay valid until
    /// the collector is dropped, and `drop_fn(ptr, ctx)` must be safe to
    /// call once `ptr` is unreachable.
    pub unsafe fn retire_ctx(
        &self,
        ptr: *mut u8,
        ctx: *mut u8,
        drop_fn: unsafe fn(*mut u8, *mut u8),
    ) {
        assert!(self.c.enabled, "retire_ctx on a disabled collector");
        self.c.retire_raw(self.pid, Garbage::Ctx { ptr, ctx, drop_fn });
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        if self.active {
            self.c.unpin(self.pid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
    use std::sync::Arc;

    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Relaxed);
        }
    }

    fn churn(c: &Collector, rounds: usize, drops: &Arc<AtomicUsize>) {
        for _ in 0..rounds {
            let g = c.pin();
            let p = Box::into_raw(Box::new(Tracked(Arc::clone(drops))));
            unsafe { g.retire_box(p) };
        }
    }

    #[test]
    fn retired_objects_eventually_free() {
        tid::set_tid(0);
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        churn(&c, 1000, &drops);
        drop(c);
        assert_eq!(drops.load(Relaxed), 1000);
    }

    #[test]
    fn progress_frees_before_drop() {
        tid::set_tid(0);
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        churn(&c, 10_000, &drops);
        // Single thread, epoch advances every ADVANCE_PERIOD pins: almost
        // everything must already be free before collector drop.
        assert!(drops.load(Relaxed) > 9_000, "only {} freed", drops.load(Relaxed));
        drop(c);
        assert_eq!(drops.load(Relaxed), 10_000);
    }

    #[test]
    fn disabled_collector_parks_until_drop() {
        tid::set_tid(0);
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::disabled();
        churn(&c, 100, &drops);
        assert_eq!(drops.load(Relaxed), 0);
        assert_eq!(c.pending(), 100);
        drop(c);
        assert_eq!(drops.load(Relaxed), 100);
    }

    #[test]
    fn nested_pins_are_reentrant() {
        tid::set_tid(0);
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        let g1 = c.pin();
        let g2 = c.pin();
        let p = Box::into_raw(Box::new(Tracked(Arc::clone(&drops))));
        unsafe { g2.retire_box(p) };
        drop(g2);
        drop(g1);
        churn(&c, 500, &drops); // force epochs forward; must not double-free
        drop(c);
        assert_eq!(drops.load(Relaxed), 501);
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let freed = Arc::new(AtomicUsize::new(0));
        let c = Arc::new(Collector::new());

        struct Flag(Arc<AtomicUsize>);
        impl Drop for Flag {
            fn drop(&mut self) {
                self.0.fetch_add(1, Relaxed);
            }
        }

        // Reader thread: pins and holds.
        let c2 = Arc::clone(&c);
        let hold = Arc::new(AtomicUsize::new(0));
        let hold2 = Arc::clone(&hold);
        let reader = std::thread::spawn(move || {
            tid::set_tid(1);
            let g = c2.pin();
            hold2.store(1, Relaxed);
            while hold2.load(Relaxed) != 2 {
                std::hint::spin_loop();
            }
            drop(g);
        });
        while hold.load(Relaxed) != 1 {
            std::hint::spin_loop();
        }

        // Writer: retire an object *after* the reader pinned, then churn.
        let c3 = Arc::clone(&c);
        let freed2 = Arc::clone(&freed);
        let writer = std::thread::spawn(move || {
            tid::set_tid(2);
            {
                let g = c3.pin();
                let p = Box::into_raw(Box::new(Flag(freed2)));
                unsafe { g.retire_box(p) };
            }
            for _ in 0..1000 {
                drop(c3.pin());
            }
        });
        writer.join().unwrap();
        assert_eq!(freed.load(Relaxed), 0, "freed while a pre-retirement reader is pinned");

        hold.store(2, Relaxed);
        reader.join().unwrap();
        // Churn on the retiring slot until the flag is freed.
        for _ in 0..10 {
            std::thread::spawn({
                let c = Arc::clone(&c);
                move || {
                    tid::set_tid(2);
                    for _ in 0..1000 {
                        drop(c.pin());
                    }
                }
            })
            .join()
            .unwrap();
            if freed.load(Relaxed) == 1 {
                break;
            }
        }
        assert_eq!(freed.load(Relaxed), 1, "object never freed after reader unpinned");
    }

    #[test]
    fn retire_ctx_runs_with_context_after_epochs() {
        tid::set_tid(0);
        let c = Collector::new();
        let sink: Box<Mutex<Vec<usize>>> = Box::new(Mutex::new(Vec::new()));
        unsafe fn collect_into(p: *mut u8, ctx: *mut u8) {
            let sink = unsafe { &*(ctx as *const Mutex<Vec<usize>>) };
            sink.lock().unwrap().push(p as usize);
            drop(unsafe { Box::from_raw(p as *mut u64) });
        }
        let p = Box::into_raw(Box::new(7u64));
        {
            let g = c.pin();
            unsafe { g.retire_ctx(p as *mut u8, &*sink as *const _ as *mut u8, collect_into) };
        }
        // Not freed while the current epoch set could still reference it.
        assert_eq!(c.pending(), 1);
        for _ in 0..500 {
            drop(c.pin());
        }
        drop(c);
        assert_eq!(sink.lock().unwrap().as_slice(), &[p as usize]);
    }

    #[test]
    #[should_panic(expected = "retire_ctx on a disabled collector")]
    fn retire_ctx_rejects_disabled_collectors() {
        unsafe fn nop(_p: *mut u8, _ctx: *mut u8) {}
        tid::set_tid(0);
        let c = Collector::disabled();
        let g = c.pin();
        let p = Box::into_raw(Box::new(1u64));
        unsafe { g.retire_ctx(p as *mut u8, std::ptr::null_mut(), nop) };
        drop(unsafe { Box::from_raw(p) }); // unreachable; keeps miri-style hygiene
    }

    /// An 8-aligned scratch buffer standing in for a mapped-heap root block.
    fn scratch_region() -> Vec<u64> {
        vec![0u64; shared_region_bytes() / 8]
    }

    #[test]
    fn shared_announce_is_reentrant_across_collectors() {
        tid::set_tid(0);
        let mut region = scratch_region();
        let base = region.as_mut_ptr() as *mut u8;
        unsafe { Collector::init_shared_region(base) };
        let (mut a, mut b) = (Collector::new(), Collector::new());
        unsafe { a.attach_shared(base) };
        unsafe { b.attach_shared(base) };
        assert!(a.is_shared());

        // Announce word of process slot 0 (line 1 of the region).
        let announce0 =
            || unsafe { &*(base.add(nvm::CACHE_LINE) as *const AtomicU64) }.load(SeqCst);
        let ga = a.pin();
        assert_ne!(announce0(), UNPINNED, "pin must announce");
        let gb = b.pin();
        drop(gb);
        // The interleaved guard from the *other* structure must not clear
        // this process's announcement while `ga` is still live.
        assert_ne!(announce0(), UNPINNED, "cross-collector unpin cleared a live pin");
        drop(ga);
        assert_eq!(announce0(), UNPINNED);
        drop(a);
        drop(b);
    }

    #[test]
    fn shared_collectors_form_one_epoch_domain() {
        tid::set_tid(0);
        let mut region = scratch_region();
        let base = region.as_mut_ptr() as *mut u8;
        unsafe { Collector::init_shared_region(base) };
        let drops = Arc::new(AtomicUsize::new(0));
        let (mut a, mut b) = (Collector::new(), Collector::new());
        unsafe { a.attach_shared(base) };
        unsafe { b.attach_shared(base) };

        {
            let g = a.pin();
            let p = Box::into_raw(Box::new(Tracked(Arc::clone(&drops))));
            unsafe { g.retire_box(p) };
        }
        // Churn on B advances the SHARED global epoch...
        for _ in 0..500 {
            drop(b.pin());
        }
        // ...so a couple of pins on A suffice to collect A's ripe bag.
        for _ in 0..4 {
            drop(a.pin());
        }
        assert_eq!(drops.load(Relaxed), 1, "peer-collector churn did not ripen the bag");
        drop(a);
        drop(b);
    }

    #[test]
    fn shared_drop_leaks_deferred_garbage() {
        tid::set_tid(0);
        let mut region = scratch_region();
        let base = region.as_mut_ptr() as *mut u8;
        unsafe { Collector::init_shared_region(base) };
        let drops = Arc::new(AtomicUsize::new(0));
        let mut c = Collector::new();
        unsafe { c.attach_shared(base) };
        {
            let g = c.pin();
            let p = Box::into_raw(Box::new(Tracked(Arc::clone(&drops))));
            unsafe { g.retire_box(p) };
        }
        drop(c);
        // Intentional leak: a peer may still be pinned; the next full attach
        // sweeps. (The test leaks one heap Box — bounded and deliberate.)
        assert_eq!(drops.load(Relaxed), 0, "shared drop must not force-free");
    }

    #[test]
    fn release_shared_band_clears_dead_pins_and_counts_stalls() {
        let mut region = scratch_region();
        let base = region.as_mut_ptr() as *mut u8;
        unsafe { Collector::init_shared_region(base) };
        let base_addr = base as usize;
        let drops = Arc::new(AtomicUsize::new(0));

        // A "dead peer": pins on slot 5 and never unpins (guard forgotten —
        // exactly what a SIGKILL mid-operation leaves behind).
        {
            let mut dead = Collector::new();
            unsafe { dead.attach_shared(base) };
            std::thread::spawn(move || {
                tid::set_tid(5);
                std::mem::forget(dead.pin());
                dead
            })
            .join()
            .map(drop) // shared drop: leaks bags, leaves the announce pinned
            .unwrap();
        }

        // A survivor retires an object; churn cannot ripen it because the
        // dead peer's announce wedges the global epoch.
        std::thread::spawn({
            let drops = Arc::clone(&drops);
            move || {
                tid::set_tid(0);
                let base = base_addr as *mut u8;
                let mut s = Collector::new();
                unsafe { s.attach_shared(base) };
                {
                    let g = s.pin();
                    let p = Box::into_raw(Box::new(Tracked(Arc::clone(&drops))));
                    unsafe { g.retire_box(p) };
                }
                for _ in 0..500 {
                    drop(s.pin());
                }
                assert_eq!(drops.load(Relaxed), 0, "advanced past a pinned dead peer");
                // Recovery releases the dead band: exactly one stall cleared,
                // and a second release is a no-op.
                assert_eq!(unsafe { Collector::release_shared_band(base, 5..6) }, 1);
                assert_eq!(unsafe { Collector::release_shared_band(base, 5..6) }, 0);
                for _ in 0..500 {
                    drop(s.pin());
                }
                assert_eq!(drops.load(Relaxed), 1, "release did not unwedge reclamation");
            }
        })
        .join()
        .unwrap();
        drop(region); // outlived every collector above
    }

    #[test]
    fn concurrent_churn_is_sound() {
        let c = Arc::new(Collector::new());
        let drops = Arc::new(AtomicUsize::new(0));
        let total: usize = 4 * 2000;
        let hs: Vec<_> = (0..4)
            .map(|i| {
                let c = Arc::clone(&c);
                let drops = Arc::clone(&drops);
                std::thread::spawn(move || {
                    tid::set_tid(10 + i);
                    churn(&c, 2000, &drops);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        drop(c);
        assert_eq!(drops.load(Relaxed), total);
    }
}
